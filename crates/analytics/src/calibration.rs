//! Calibration curves from replicate standard additions.

use bios_units::{Amperes, ConcentrationRange, Molar, Sensitivity, SquareCm};

use crate::error::{AnalyticsError, Result};
use crate::limits::detection_limit;
use crate::linear_range::{detect_linear_range, LinearRangeOptions};
use crate::regression::LinearFit;

/// One standard: a known concentration with its replicate current
/// readings.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationPoint {
    concentration: Molar,
    replicates: Vec<Amperes>,
}

impl CalibrationPoint {
    /// Creates a point from replicate readings.
    ///
    /// # Panics
    ///
    /// Panics if no replicates are given.
    #[must_use]
    pub fn new(concentration: Molar, replicates: Vec<Amperes>) -> CalibrationPoint {
        assert!(!replicates.is_empty(), "at least one replicate required");
        CalibrationPoint {
            concentration,
            replicates,
        }
    }

    /// The standard's concentration.
    #[must_use]
    pub fn concentration(&self) -> Molar {
        self.concentration
    }

    /// Raw replicate readings.
    #[must_use]
    pub fn replicates(&self) -> &[Amperes] {
        &self.replicates
    }

    /// Mean current across replicates.
    #[must_use]
    pub fn mean_current(&self) -> Amperes {
        let sum: f64 = self.replicates.iter().map(|i| i.as_amps()).sum();
        Amperes::from_amps(sum / self.replicates.len() as f64)
    }

    /// Sample standard deviation across replicates (zero with one
    /// replicate).
    #[must_use]
    pub fn current_sd(&self) -> Amperes {
        let n = self.replicates.len();
        if n < 2 {
            return Amperes::ZERO;
        }
        let mean = self.mean_current().as_amps();
        let var: f64 = self
            .replicates
            .iter()
            .map(|i| (i.as_amps() - mean).powi(2))
            .sum::<f64>()
            / (n - 1) as f64;
        Amperes::from_amps(var.sqrt())
    }
}

/// A full calibration: standards, electrode area, and the blank noise.
///
/// # Examples
///
/// ```
/// use bios_analytics::{CalibrationCurve, CalibrationPoint};
/// use bios_units::{Amperes, Molar, SquareCm};
///
/// let points = (0..=5).map(|k| {
///     let c = Molar::from_milli_molar(k as f64 * 0.2);
///     let i = Amperes::from_micro_amps(k as f64 * 0.2 * 7.2); // 7.2 µA/mM
///     CalibrationPoint::new(c, vec![i])
/// }).collect();
/// let curve = CalibrationCurve::new(
///     points,
///     SquareCm::from_square_cm(0.13),
///     Amperes::from_nano_amps(1.0),
/// );
/// let s = curve.sensitivity()?;
/// assert!((s.as_micro_amps_per_milli_molar_square_cm() - 7.2 / 0.13).abs() < 0.1);
/// # Ok::<(), bios_analytics::AnalyticsError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationCurve {
    points: Vec<CalibrationPoint>,
    electrode_area: SquareCm,
    blank_sigma: Amperes,
}

impl CalibrationCurve {
    /// Assembles a calibration curve. Points are sorted by concentration.
    #[must_use]
    pub fn new(
        mut points: Vec<CalibrationPoint>,
        electrode_area: SquareCm,
        blank_sigma: Amperes,
    ) -> CalibrationCurve {
        points.sort_by(|a, b| {
            a.concentration()
                .as_molar()
                .total_cmp(&b.concentration().as_molar())
        });
        CalibrationCurve {
            points,
            electrode_area,
            blank_sigma,
        }
    }

    /// The standards in ascending concentration order.
    #[must_use]
    pub fn points(&self) -> &[CalibrationPoint] {
        &self.points
    }

    /// Electrode geometric area used for normalization.
    #[must_use]
    pub fn electrode_area(&self) -> SquareCm {
        self.electrode_area
    }

    /// Blank-signal standard deviation (for detection limits).
    #[must_use]
    pub fn blank_sigma(&self) -> Amperes {
        self.blank_sigma
    }

    /// Concentrations in mM, as a plain vector (x axis).
    #[must_use]
    pub fn concentrations_milli_molar(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.concentration().as_milli_molar())
            .collect()
    }

    /// Mean currents in µA (y axis).
    #[must_use]
    pub fn mean_currents_micro_amps(&self) -> Vec<f64> {
        self.points
            .iter()
            .map(|p| p.mean_current().as_micro_amps())
            .collect()
    }

    /// Least-squares fit over *all* points (µA vs mM).
    ///
    /// # Errors
    ///
    /// Propagates regression errors (too few points, degenerate x, …).
    pub fn fit_all(&self) -> Result<LinearFit> {
        LinearFit::fit(
            &self.concentrations_milli_molar(),
            &self.mean_currents_micro_amps(),
        )
    }

    /// Variance-weighted fit over all points, weighting each standard by
    /// `1/σ²` of its replicates (floored at the blank σ so noiseless
    /// points don't dominate). The right estimator when replicate scatter
    /// varies along the curve (heteroscedastic calibrations).
    ///
    /// # Errors
    ///
    /// Propagates regression errors.
    pub fn fit_all_weighted(&self) -> Result<LinearFit> {
        let xs = self.concentrations_milli_molar();
        let ys = self.mean_currents_micro_amps();
        let floor = self.blank_sigma.as_micro_amps().max(1e-12);
        let weights: Vec<f64> = self
            .points
            .iter()
            .map(|p| {
                let sd = p.current_sd().as_micro_amps().max(floor);
                1.0 / (sd * sd)
            })
            .collect();
        LinearFit::fit_weighted(&xs, &ys, Some(&weights))
    }

    /// Detects the linear range and returns `(range, fit within range)`.
    ///
    /// # Errors
    ///
    /// Propagates regression errors from the detector.
    pub fn linear_range(
        &self,
        options: &LinearRangeOptions,
    ) -> Result<(ConcentrationRange, LinearFit)> {
        detect_linear_range(self, options)
    }

    /// Area-normalized sensitivity from the fit inside the detected
    /// linear range (default options).
    ///
    /// # Errors
    ///
    /// Propagates regression errors; returns
    /// [`AnalyticsError::NonPositiveSlope`] if the calibration slope is
    /// not positive.
    pub fn sensitivity(&self) -> Result<Sensitivity> {
        let (_, fit) = self.linear_range(&LinearRangeOptions::default())?;
        self.sensitivity_from_fit(&fit)
    }

    /// Area-normalized sensitivity from an explicit fit.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticsError::NonPositiveSlope`] if the slope is not
    /// positive.
    pub fn sensitivity_from_fit(&self, fit: &LinearFit) -> Result<Sensitivity> {
        if fit.slope() <= 0.0 {
            return Err(AnalyticsError::NonPositiveSlope);
        }
        // slope is µA/mM; normalize by area.
        Ok(Sensitivity::new(
            fit.slope() / self.electrode_area.as_square_cm(),
        ))
    }

    /// 3σ detection limit using the linear-range fit (default options).
    ///
    /// # Errors
    ///
    /// Propagates regression errors and non-positive slopes.
    pub fn detection_limit(&self) -> Result<Molar> {
        let (_, fit) = self.linear_range(&LinearRangeOptions::default())?;
        detection_limit(self.blank_sigma, &fit)
    }

    /// Full summary: sensitivity, linear range, detection limit, and R².
    ///
    /// # Errors
    ///
    /// Propagates regression errors and non-positive slopes.
    pub fn summary(&self, options: &LinearRangeOptions) -> Result<CalibrationSummary> {
        let (range, fit) = self.linear_range(options)?;
        let sensitivity = self.sensitivity_from_fit(&fit)?;
        let lod = detection_limit(self.blank_sigma, &fit)?;
        Ok(CalibrationSummary {
            sensitivity,
            linear_range: range,
            detection_limit: lod,
            r_squared: fit.r_squared(),
        })
    }
}

/// The figures of merit of one calibrated sensor — one Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationSummary {
    /// Area-normalized sensitivity.
    pub sensitivity: Sensitivity,
    /// Detected linear range.
    pub linear_range: ConcentrationRange,
    /// 3σ limit of detection.
    pub detection_limit: Molar,
    /// R² of the linear-range fit.
    pub r_squared: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linear_curve(slope_ua_per_mm: f64, n: usize, max_mm: f64) -> CalibrationCurve {
        let points = (0..n)
            .map(|k| {
                let c_mm = max_mm * k as f64 / (n - 1) as f64;
                let i = Amperes::from_micro_amps(slope_ua_per_mm * c_mm);
                CalibrationPoint::new(Molar::from_milli_molar(c_mm), vec![i])
            })
            .collect();
        CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(5.0),
        )
    }

    #[test]
    fn point_statistics() {
        let p = CalibrationPoint::new(
            Molar::from_milli_molar(1.0),
            vec![
                Amperes::from_micro_amps(1.0),
                Amperes::from_micro_amps(2.0),
                Amperes::from_micro_amps(3.0),
            ],
        );
        assert!((p.mean_current().as_micro_amps() - 2.0).abs() < 1e-12);
        assert!((p.current_sd().as_micro_amps() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn single_replicate_has_zero_sd() {
        let p = CalibrationPoint::new(
            Molar::from_milli_molar(1.0),
            vec![Amperes::from_micro_amps(1.0)],
        );
        assert_eq!(p.current_sd(), Amperes::ZERO);
    }

    #[test]
    fn points_sorted_on_construction() {
        let pts = vec![
            CalibrationPoint::new(Molar::from_milli_molar(2.0), vec![Amperes::ZERO]),
            CalibrationPoint::new(Molar::from_milli_molar(0.5), vec![Amperes::ZERO]),
            CalibrationPoint::new(Molar::from_milli_molar(1.0), vec![Amperes::ZERO]),
        ];
        let curve = CalibrationCurve::new(pts, SquareCm::from_square_cm(1.0), Amperes::ZERO);
        let cs = curve.concentrations_milli_molar();
        assert!(cs.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn sensitivity_normalizes_by_area() {
        let curve = linear_curve(10.0, 8, 1.0);
        let s = curve.sensitivity().unwrap();
        assert!((s.as_micro_amps_per_milli_molar_square_cm() - 10.0).abs() < 1e-6);

        // Same currents on a 0.1 cm² electrode → 10× the sensitivity.
        let small = CalibrationCurve::new(
            curve.points().to_vec(),
            SquareCm::from_square_cm(0.1),
            curve.blank_sigma(),
        );
        let s_small = small.sensitivity().unwrap();
        assert!((s_small.as_micro_amps_per_milli_molar_square_cm() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn detection_limit_is_3_sigma_over_slope() {
        let curve = linear_curve(10.0, 8, 1.0); // slope 10 µA/mM, σ = 5 nA
        let lod = curve.detection_limit().unwrap();
        // 3 × 5e-3 µA / 10 µA/mM = 1.5e-3 mM = 1.5 µM.
        assert!((lod.as_micro_molar() - 1.5).abs() < 0.01);
    }

    #[test]
    fn summary_bundles_figures_of_merit() {
        let curve = linear_curve(10.0, 8, 1.0);
        let s = curve.summary(&LinearRangeOptions::default()).unwrap();
        assert!(s.r_squared > 0.999);
        assert!(s.linear_range.high() >= Molar::from_milli_molar(0.9));
        assert!(s.detection_limit.as_micro_molar() < 2.0);
    }

    #[test]
    fn weighted_fit_matches_ols_on_homoscedastic_data() {
        let curve = linear_curve(10.0, 8, 1.0);
        let ols = curve.fit_all().unwrap();
        let wls = curve.fit_all_weighted().unwrap();
        assert!((ols.slope() - wls.slope()).abs() < 1e-9);
    }

    #[test]
    fn weighted_fit_discounts_noisy_standards() {
        // Clean points on y = 10x plus one standard with huge replicate
        // scatter pulling the mean off the line.
        let mut points: Vec<CalibrationPoint> = (0..6)
            .map(|k| {
                let c = k as f64 * 0.2;
                CalibrationPoint::new(
                    Molar::from_milli_molar(c),
                    vec![Amperes::from_micro_amps(10.0 * c)],
                )
            })
            .collect();
        points.push(CalibrationPoint::new(
            Molar::from_milli_molar(1.2),
            vec![
                Amperes::from_micro_amps(2.0),
                Amperes::from_micro_amps(34.0),
            ], // mean 18, true 12, sd huge
        ));
        let curve = CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(5.0),
        );
        let ols = curve.fit_all().unwrap();
        let wls = curve.fit_all_weighted().unwrap();
        assert!((wls.slope() - 10.0).abs() < (ols.slope() - 10.0).abs());
        assert!((wls.slope() - 10.0).abs() < 0.2);
    }

    #[test]
    fn non_positive_slope_is_an_error() {
        let points = (0..5)
            .map(|k| {
                CalibrationPoint::new(
                    Molar::from_milli_molar(k as f64),
                    vec![Amperes::from_micro_amps(5.0 - k as f64)],
                )
            })
            .collect();
        let curve = CalibrationCurve::new(points, SquareCm::from_square_cm(1.0), Amperes::ZERO);
        let fit = curve.fit_all().unwrap();
        assert!(matches!(
            curve.sensitivity_from_fit(&fit),
            Err(AnalyticsError::NonPositiveSlope)
        ));
    }

    #[test]
    #[should_panic(expected = "replicate")]
    fn empty_replicates_rejected() {
        let _ = CalibrationPoint::new(Molar::ZERO, Vec::new());
    }
}

//! Drift and fault detection from calibration residuals.
//!
//! A deployed sensor re-calibrates periodically; comparing each fresh
//! calibration curve against a trusted reference curve is the cheapest
//! way to notice that the device has degraded (film denaturation,
//! fouling, drifting reference, glitching readout) *before* its reported
//! concentrations go quietly wrong. [`DriftDetector`] implements the
//! rolling-residual test the chaos ablation uses to score *detected*
//! faults against *injected* ones: point-wise residuals between the two
//! curves are normalized by the replicate noise scale, averaged over a
//! rolling window (so a consistent shift stands out above uncorrelated
//! noise), and compared against a z-score threshold.

use crate::calibration::CalibrationCurve;
use crate::error::{AnalyticsError, Result};

/// Rolling-residual drift detector.
///
/// # Examples
///
/// ```
/// use bios_analytics::drift::DriftDetector;
///
/// let detector = DriftDetector::default();
/// assert_eq!(detector.window(), 5);
/// assert!((detector.threshold() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDetector {
    window: usize,
    threshold: f64,
}

impl DriftDetector {
    /// Builds a detector with the given rolling-window length (clamped
    /// to at least 1) and z-score threshold.
    #[must_use]
    pub fn new(window: usize, threshold: f64) -> DriftDetector {
        DriftDetector {
            window: window.max(1),
            threshold,
        }
    }

    /// Rolling-window length in calibration points.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Detection threshold on the windowed mean z-score.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Compares `observed` against the trusted `reference` curve.
    ///
    /// Both curves must cover the same standards. Residuals are scaled
    /// by the larger of the two blank sigmas (reduced by √replicates,
    /// since each point is a replicate mean), then averaged over the
    /// rolling window; the largest |windowed mean| is the drift score.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticsError::LengthMismatch`] when the curves have
    /// different numbers of points, [`AnalyticsError::TooFewPoints`]
    /// when they have fewer than 3, and
    /// [`AnalyticsError::NonFiniteInput`] when the standards disagree or
    /// the noise scale degenerates.
    pub fn assess(
        &self,
        reference: &CalibrationCurve,
        observed: &CalibrationCurve,
    ) -> Result<DriftAssessment> {
        let ref_x = reference.concentrations_milli_molar();
        let obs_x = observed.concentrations_milli_molar();
        if ref_x.len() != obs_x.len() {
            return Err(AnalyticsError::LengthMismatch {
                xs: ref_x.len(),
                ys: obs_x.len(),
            });
        }
        if ref_x.len() < 3 {
            return Err(AnalyticsError::TooFewPoints {
                needed: 3,
                got: ref_x.len(),
            });
        }
        for (a, b) in ref_x.iter().zip(&obs_x) {
            if (a - b).abs() > 1e-9 * a.abs().max(1.0) {
                return Err(AnalyticsError::NonFiniteInput);
            }
        }

        let replicates = reference
            .points()
            .iter()
            .map(|p| p.replicates().len())
            .min()
            .unwrap_or(1)
            .max(1);
        let sigma_amps = reference
            .blank_sigma()
            .as_amps()
            .max(observed.blank_sigma().as_amps());
        let sigma_point = sigma_amps * 1e6 / (replicates as f64).sqrt();
        if !(sigma_point.is_finite() && sigma_point > 0.0) {
            return Err(AnalyticsError::NonFiniteInput);
        }

        let ref_y = reference.mean_currents_micro_amps();
        let obs_y = observed.mean_currents_micro_amps();
        let z: Vec<f64> = ref_y
            .iter()
            .zip(&obs_y)
            .map(|(r, o)| (o - r) / sigma_point)
            .collect();

        let window = self.window.min(z.len());
        let mut score: f64 = 0.0;
        for chunk in z.windows(window) {
            let mean = chunk.iter().sum::<f64>() / window as f64;
            score = score.max(mean.abs());
        }
        Ok(DriftAssessment {
            score,
            drifted: score > self.threshold,
            window,
        })
    }
}

impl Default for DriftDetector {
    /// Window of 5 points, threshold 4σ — comfortably above the ~1.6σ
    /// worst-case windowed mean of two healthy same-protocol curves.
    fn default() -> Self {
        DriftDetector::new(5, 4.0)
    }
}

/// Outcome of one drift comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAssessment {
    /// Largest |rolling mean| of the normalized residuals, in σ units.
    pub score: f64,
    /// Whether the score exceeded the detector threshold.
    pub drifted: bool,
    /// The window length actually used (≤ configured, bounded by the
    /// number of points).
    pub window: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{Amperes, Molar, SquareCm};

    use crate::calibration::CalibrationPoint;

    /// A synthetic curve: y = slope·x µA with per-point offsets, σ_blank
    /// = 0.01 µA, triplicates.
    fn curve(slope: f64, offsets: &[f64]) -> CalibrationCurve {
        let points: Vec<CalibrationPoint> = offsets
            .iter()
            .enumerate()
            .map(|(i, off)| {
                let x = (i + 1) as f64; // mM
                let y = slope * x + off; // µA
                CalibrationPoint::new(
                    Molar::from_milli_molar(x),
                    vec![Amperes::from_micro_amps(y); 3],
                )
            })
            .collect();
        CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(0.1),
            Amperes::from_micro_amps(0.01),
        )
    }

    #[test]
    fn identical_curves_do_not_drift() {
        let reference = curve(2.0, &[0.0; 12]);
        let observed = curve(2.0, &[0.0; 12]);
        let assessment = DriftDetector::default()
            .assess(&reference, &observed)
            .unwrap();
        assert!(!assessment.drifted);
        assert_eq!(assessment.score, 0.0);
    }

    #[test]
    fn small_uncorrelated_noise_stays_below_threshold() {
        let reference = curve(2.0, &[0.0; 12]);
        // ±1σ_point alternating noise: rolling mean shrinks toward zero.
        let sigma_point = 0.01 / 3f64.sqrt();
        let noise: Vec<f64> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    sigma_point
                } else {
                    -sigma_point
                }
            })
            .collect();
        let observed = curve(2.0, &noise);
        let assessment = DriftDetector::default()
            .assess(&reference, &observed)
            .unwrap();
        assert!(!assessment.drifted, "score {}", assessment.score);
    }

    #[test]
    fn sensitivity_loss_is_detected() {
        let reference = curve(2.0, &[0.0; 12]);
        let degraded = curve(1.6, &[0.0; 12]); // 20 % slope loss
        let assessment = DriftDetector::default()
            .assess(&reference, &degraded)
            .unwrap();
        assert!(assessment.drifted, "score {}", assessment.score);
        assert!(assessment.score > 10.0);
    }

    #[test]
    fn consistent_offset_is_detected() {
        let reference = curve(2.0, &[0.0; 12]);
        let shifted = curve(2.0, &[0.1; 12]); // +0.1 µA everywhere
        let assessment = DriftDetector::default()
            .assess(&reference, &shifted)
            .unwrap();
        assert!(assessment.drifted);
    }

    #[test]
    fn mismatched_curves_are_rejected() {
        let reference = curve(2.0, &[0.0; 12]);
        let short = curve(2.0, &[0.0; 6]);
        assert!(matches!(
            DriftDetector::default().assess(&reference, &short),
            Err(AnalyticsError::LengthMismatch { .. })
        ));
        let tiny = curve(2.0, &[0.0; 2]);
        assert!(matches!(
            DriftDetector::default().assess(&tiny, &tiny),
            Err(AnalyticsError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn window_clamps_to_curve_length() {
        let reference = curve(2.0, &[0.0; 4]);
        let observed = curve(2.0, &[0.0; 4]);
        let assessment = DriftDetector::new(50, 4.0)
            .assess(&reference, &observed)
            .unwrap();
        assert_eq!(assessment.window, 4);
    }
}

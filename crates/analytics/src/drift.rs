//! Drift and fault detection from calibration residuals.
//!
//! A deployed sensor re-calibrates periodically; comparing each fresh
//! calibration curve against a trusted reference curve is the cheapest
//! way to notice that the device has degraded (film denaturation,
//! fouling, drifting reference, glitching readout) *before* its reported
//! concentrations go quietly wrong. [`DriftDetector`] implements the
//! rolling-residual test the chaos ablation uses to score *detected*
//! faults against *injected* ones: point-wise residuals between the two
//! curves are normalized by the replicate noise scale, averaged over a
//! rolling window (so a consistent shift stands out above uncorrelated
//! noise), and compared against a z-score threshold.

//!
//! [`ResidualRing`] is the fixed-capacity rolling window both detectors
//! share: one allocation at construction, zero per-push allocation, and
//! a mean that sums the retained residuals in logical (oldest-first)
//! order so its result is bit-identical to the slice-window formulation
//! it replaced. [`DriftMonitor`] wraps the ring into the *incremental*
//! form the longitudinal stream engine needs: one normalized residual
//! per logical tick, a warm-up baseline that absorbs calibration bias,
//! and a latched trip decision.

use crate::calibration::CalibrationCurve;
use crate::error::{AnalyticsError, Result};

/// A fixed-capacity ring buffer over the last `capacity` normalized
/// residuals. Allocates once at construction; every push thereafter is
/// a slot overwrite, so rolling a window across a curve (or a
/// million-tick patient stream) costs zero allocation.
///
/// # Examples
///
/// ```
/// use bios_analytics::drift::ResidualRing;
///
/// let mut ring = ResidualRing::new(3);
/// for z in [1.0, 2.0, 3.0, 4.0] {
///     ring.push(z);
/// }
/// // Oldest value (1.0) was evicted; mean of [2, 3, 4] is 3.
/// assert!((ring.mean() - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct ResidualRing {
    slots: Vec<f64>,
    head: usize,
    len: usize,
}

impl ResidualRing {
    /// A ring holding the last `capacity` pushes (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> ResidualRing {
        ResidualRing {
            slots: vec![0.0; capacity.max(1)],
            head: 0,
            len: 0,
        }
    }

    /// The fixed window length.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Residuals currently retained (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether nothing has been pushed since construction/`clear`.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the window has filled to capacity.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.len == self.capacity()
    }

    /// Pushes one residual, evicting the oldest once full.
    pub fn push(&mut self, z: f64) {
        self.slots[self.head] = z;
        self.head = (self.head + 1) % self.capacity();
        self.len = (self.len + 1).min(self.capacity());
    }

    /// Mean of the retained residuals, summed oldest-first — the same
    /// association order as summing a contiguous slice window, so the
    /// result is bit-identical to the `windows()` formulation. Returns
    /// 0.0 while empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.len == 0 {
            return 0.0;
        }
        let cap = self.capacity();
        let start = (self.head + cap - self.len) % cap;
        let mut sum = 0.0;
        for k in 0..self.len {
            sum += self.slots[(start + k) % cap];
        }
        sum / self.len as f64
    }

    /// Forgets every retained residual (capacity is kept).
    pub fn clear(&mut self) {
        self.head = 0;
        self.len = 0;
    }
}

/// Rolling-residual drift detector.
///
/// # Examples
///
/// ```
/// use bios_analytics::drift::DriftDetector;
///
/// let detector = DriftDetector::default();
/// assert_eq!(detector.window(), 5);
/// assert!((detector.threshold() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftDetector {
    window: usize,
    threshold: f64,
}

impl DriftDetector {
    /// Builds a detector with the given rolling-window length (clamped
    /// to at least 1) and z-score threshold.
    #[must_use]
    pub fn new(window: usize, threshold: f64) -> DriftDetector {
        DriftDetector {
            window: window.max(1),
            threshold,
        }
    }

    /// Rolling-window length in calibration points.
    #[must_use]
    pub fn window(&self) -> usize {
        self.window
    }

    /// Detection threshold on the windowed mean z-score.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Compares `observed` against the trusted `reference` curve.
    ///
    /// Both curves must cover the same standards. Residuals are scaled
    /// by the larger of the two blank sigmas (reduced by √replicates,
    /// since each point is a replicate mean), then averaged over the
    /// rolling window; the largest |windowed mean| is the drift score.
    ///
    /// # Errors
    ///
    /// Returns [`AnalyticsError::LengthMismatch`] when the curves have
    /// different numbers of points, [`AnalyticsError::TooFewPoints`]
    /// when they have fewer than 3, and
    /// [`AnalyticsError::NonFiniteInput`] when the standards disagree or
    /// the noise scale degenerates.
    pub fn assess(
        &self,
        reference: &CalibrationCurve,
        observed: &CalibrationCurve,
    ) -> Result<DriftAssessment> {
        let ref_x = reference.concentrations_milli_molar();
        let obs_x = observed.concentrations_milli_molar();
        if ref_x.len() != obs_x.len() {
            return Err(AnalyticsError::LengthMismatch {
                xs: ref_x.len(),
                ys: obs_x.len(),
            });
        }
        if ref_x.len() < 3 {
            return Err(AnalyticsError::TooFewPoints {
                needed: 3,
                got: ref_x.len(),
            });
        }
        for (a, b) in ref_x.iter().zip(&obs_x) {
            if (a - b).abs() > 1e-9 * a.abs().max(1.0) {
                return Err(AnalyticsError::NonFiniteInput);
            }
        }

        let replicates = reference
            .points()
            .iter()
            .map(|p| p.replicates().len())
            .min()
            .unwrap_or(1)
            .max(1);
        let sigma_amps = reference
            .blank_sigma()
            .as_amps()
            .max(observed.blank_sigma().as_amps());
        let sigma_point = sigma_amps * 1e6 / (replicates as f64).sqrt();
        if !(sigma_point.is_finite() && sigma_point > 0.0) {
            return Err(AnalyticsError::NonFiniteInput);
        }

        let ref_y = reference.mean_currents_micro_amps();
        let obs_y = observed.mean_currents_micro_amps();
        let window = self.window.min(ref_y.len());
        // One fixed ring instead of materializing the residual vector
        // and re-walking slice windows: each push overwrites one slot,
        // and `mean()` sums oldest-first, so the scores are bit-identical
        // to the previous `windows()` formulation.
        let mut ring = ResidualRing::new(window);
        let mut score: f64 = 0.0;
        for (r, o) in ref_y.iter().zip(&obs_y) {
            ring.push((o - r) / sigma_point);
            if ring.is_full() {
                score = score.max(ring.mean().abs());
            }
        }
        Ok(DriftAssessment {
            score,
            drifted: score > self.threshold,
            window,
        })
    }
}

impl Default for DriftDetector {
    /// Window of 5 points, threshold 4σ — comfortably above the ~1.6σ
    /// worst-case windowed mean of two healthy same-protocol curves.
    fn default() -> Self {
        DriftDetector::new(5, 4.0)
    }
}

/// Outcome of one drift comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DriftAssessment {
    /// Largest |rolling mean| of the normalized residuals, in σ units.
    pub score: f64,
    /// Whether the score exceeded the detector threshold.
    pub drifted: bool,
    /// The window length actually used (≤ configured, bounded by the
    /// number of points).
    pub window: usize,
}

/// Incremental per-channel drift monitor — [`DriftDetector`] promoted
/// from offline curve comparison to online tick-by-tick operation.
///
/// Feed it one *normalized residual* per observation (observed minus
/// predicted current, divided by the channel's noise scale). The first
/// `window` observations after construction or [`DriftMonitor::rebaseline`]
/// form a **baseline**: their mean is subtracted from every later
/// rolling mean, so a constant calibration bias (the new epoch's slope
/// being a hair off the channel's true slope) can never masquerade as
/// drift. Once warmed, the monitor trips — and stays tripped, so a
/// caller polling it cannot miss the edge — when the baseline-corrected
/// rolling mean exceeds the threshold.
///
/// # Examples
///
/// ```
/// use bios_analytics::drift::DriftMonitor;
///
/// let mut monitor = DriftMonitor::new(4, 4.0);
/// for _ in 0..8 {
///     assert!(!monitor.observe(0.1)); // warm-up + healthy plateau
/// }
/// for _ in 0..4 {
///     monitor.observe(9.0); // a real shift
/// }
/// assert!(monitor.tripped());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DriftMonitor {
    threshold: f64,
    ring: ResidualRing,
    warmup: ResidualRing,
    baseline: Option<f64>,
    score: f64,
    tripped: bool,
}

impl DriftMonitor {
    /// A monitor with the given rolling-window length (clamped to ≥ 1)
    /// and z-score threshold on the baseline-corrected window mean.
    #[must_use]
    pub fn new(window: usize, threshold: f64) -> DriftMonitor {
        DriftMonitor {
            threshold,
            ring: ResidualRing::new(window),
            warmup: ResidualRing::new(window),
            baseline: None,
            score: 0.0,
            tripped: false,
        }
    }

    /// A monitor with the same window and threshold as `detector`.
    #[must_use]
    pub fn from_detector(detector: &DriftDetector) -> DriftMonitor {
        DriftMonitor::new(detector.window(), detector.threshold())
    }

    /// Rolling-window length in observations.
    #[must_use]
    pub fn window(&self) -> usize {
        self.ring.capacity()
    }

    /// Detection threshold on the baseline-corrected window mean.
    #[must_use]
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Whether the monitor has tripped since the last
    /// [`DriftMonitor::rebaseline`] / [`DriftMonitor::rearm`].
    #[must_use]
    pub fn tripped(&self) -> bool {
        self.tripped
    }

    /// Whether the warm-up baseline has been established.
    #[must_use]
    pub fn warmed(&self) -> bool {
        self.baseline.is_some()
    }

    /// The last baseline-corrected |window mean|, in σ units (0.0 until
    /// warmed).
    #[must_use]
    pub fn score(&self) -> f64 {
        self.score
    }

    /// Pushes one normalized residual and returns the (latched) trip
    /// state after it.
    pub fn observe(&mut self, z: f64) -> bool {
        match self.baseline {
            None => {
                self.warmup.push(z);
                if self.warmup.is_full() {
                    self.baseline = Some(self.warmup.mean());
                    self.warmup.clear();
                }
            }
            Some(baseline) => {
                self.ring.push(z);
                if self.ring.is_full() {
                    self.score = (self.ring.mean() - baseline).abs();
                    if self.score > self.threshold {
                        self.tripped = true;
                    }
                }
            }
        }
        self.tripped
    }

    /// Full reset after a calibration-epoch swap: forgets the window,
    /// the trip, *and* the baseline, so the next `window` observations
    /// re-zero the monitor against the fresh calibration.
    pub fn rebaseline(&mut self) {
        self.ring.clear();
        self.warmup.clear();
        self.baseline = None;
        self.score = 0.0;
        self.tripped = false;
    }

    /// Clears only the trip latch (window and baseline are kept): a
    /// still-drifting channel re-trips on the next observation. Used
    /// when a re-calibration attempt was rejected and should be retried
    /// later.
    pub fn rearm(&mut self) {
        self.tripped = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::{Amperes, Molar, SquareCm};

    use crate::calibration::CalibrationPoint;

    /// A synthetic curve: y = slope·x µA with per-point offsets, σ_blank
    /// = 0.01 µA, triplicates.
    fn curve(slope: f64, offsets: &[f64]) -> CalibrationCurve {
        let points: Vec<CalibrationPoint> = offsets
            .iter()
            .enumerate()
            .map(|(i, off)| {
                let x = (i + 1) as f64; // mM
                let y = slope * x + off; // µA
                CalibrationPoint::new(
                    Molar::from_milli_molar(x),
                    vec![Amperes::from_micro_amps(y); 3],
                )
            })
            .collect();
        CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(0.1),
            Amperes::from_micro_amps(0.01),
        )
    }

    #[test]
    fn identical_curves_do_not_drift() {
        let reference = curve(2.0, &[0.0; 12]);
        let observed = curve(2.0, &[0.0; 12]);
        let assessment = DriftDetector::default()
            .assess(&reference, &observed)
            .unwrap();
        assert!(!assessment.drifted);
        assert_eq!(assessment.score, 0.0);
    }

    #[test]
    fn small_uncorrelated_noise_stays_below_threshold() {
        let reference = curve(2.0, &[0.0; 12]);
        // ±1σ_point alternating noise: rolling mean shrinks toward zero.
        let sigma_point = 0.01 / 3f64.sqrt();
        let noise: Vec<f64> = (0..12)
            .map(|i| {
                if i % 2 == 0 {
                    sigma_point
                } else {
                    -sigma_point
                }
            })
            .collect();
        let observed = curve(2.0, &noise);
        let assessment = DriftDetector::default()
            .assess(&reference, &observed)
            .unwrap();
        assert!(!assessment.drifted, "score {}", assessment.score);
    }

    #[test]
    fn sensitivity_loss_is_detected() {
        let reference = curve(2.0, &[0.0; 12]);
        let degraded = curve(1.6, &[0.0; 12]); // 20 % slope loss
        let assessment = DriftDetector::default()
            .assess(&reference, &degraded)
            .unwrap();
        assert!(assessment.drifted, "score {}", assessment.score);
        assert!(assessment.score > 10.0);
    }

    #[test]
    fn consistent_offset_is_detected() {
        let reference = curve(2.0, &[0.0; 12]);
        let shifted = curve(2.0, &[0.1; 12]); // +0.1 µA everywhere
        let assessment = DriftDetector::default()
            .assess(&reference, &shifted)
            .unwrap();
        assert!(assessment.drifted);
    }

    #[test]
    fn mismatched_curves_are_rejected() {
        let reference = curve(2.0, &[0.0; 12]);
        let short = curve(2.0, &[0.0; 6]);
        assert!(matches!(
            DriftDetector::default().assess(&reference, &short),
            Err(AnalyticsError::LengthMismatch { .. })
        ));
        let tiny = curve(2.0, &[0.0; 2]);
        assert!(matches!(
            DriftDetector::default().assess(&tiny, &tiny),
            Err(AnalyticsError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn ring_matches_slice_windows_bit_for_bit() {
        bios_prng::cases(0x41B6_D21F, 64, |rng| {
            let n = 3 + (rng.uniform() * 20.0) as usize;
            let window = 1 + (rng.uniform() * n as f64) as usize;
            let z: Vec<f64> = (0..n).map(|_| rng.gaussian() * 3.0).collect();
            let mut expected: f64 = 0.0;
            for chunk in z.windows(window.min(n)) {
                let mean = chunk.iter().sum::<f64>() / window.min(n) as f64;
                expected = expected.max(mean.abs());
            }
            let mut ring = ResidualRing::new(window.min(n));
            let mut got: f64 = 0.0;
            for &v in &z {
                ring.push(v);
                if ring.is_full() {
                    got = got.max(ring.mean().abs());
                }
            }
            assert_eq!(got.to_bits(), expected.to_bits());
        });
    }

    #[test]
    fn detector_never_trips_on_reference_level_noise() {
        // Property (`cases`): replicate-scale uncorrelated noise around
        // the reference curve never trips the default detector.
        let sigma_point = 0.01 / 3f64.sqrt();
        bios_prng::cases(0xD21F_0001, 48, |rng| {
            let reference = curve(2.0, &[0.0; 12]);
            let offsets: Vec<f64> = (0..12).map(|_| rng.gaussian() * sigma_point).collect();
            let observed = curve(2.0, &offsets);
            let assessment = DriftDetector::default()
                .assess(&reference, &observed)
                .unwrap();
            assert!(
                !assessment.drifted,
                "noise tripped the detector: score {}",
                assessment.score
            );
        });
    }

    #[test]
    fn detector_score_grows_monotonically_with_drift_magnitude() {
        // Property (`cases`): for any base slope, injecting a larger
        // sensitivity loss can never score lower than a smaller one,
        // and large losses trip.
        bios_prng::cases(0xD21F_0002, 48, |rng| {
            let slope = 1.0 + 3.0 * rng.uniform();
            let reference = curve(slope, &[0.0; 12]);
            let detector = DriftDetector::default();
            let mut last = -1.0f64;
            for loss in [0.0, 0.02, 0.05, 0.1, 0.2, 0.4] {
                let degraded = curve(slope * (1.0 - loss), &[0.0; 12]);
                let assessment = detector.assess(&reference, &degraded).unwrap();
                assert!(
                    assessment.score >= last,
                    "score fell from {last} to {} at loss {loss}",
                    assessment.score
                );
                last = assessment.score;
            }
            assert!(last > detector.threshold(), "40% loss must trip: {last}");
        });
    }

    #[test]
    fn monitor_never_trips_on_pure_noise() {
        bios_prng::cases(0xD21F_0003, 32, |rng| {
            let mut monitor = DriftMonitor::new(12, 4.0);
            for _ in 0..600 {
                assert!(!monitor.observe(rng.gaussian()), "noise tripped");
            }
        });
    }

    #[test]
    fn monitor_trips_on_a_ramp_and_rebaseline_clears_it() {
        let mut monitor = DriftMonitor::new(8, 4.0);
        for _ in 0..16 {
            monitor.observe(0.0);
        }
        assert!(monitor.warmed());
        assert!(!monitor.tripped());
        let mut t = 0u64;
        let tripped_at = loop {
            t += 1;
            if monitor.observe(t as f64 * 0.5) {
                break t;
            }
            assert!(t < 200, "ramp never tripped");
        };
        assert!(tripped_at >= 8, "needs a full window past warm-up");
        // The latch holds even when the signal returns to baseline.
        monitor.observe(0.0);
        assert!(monitor.tripped());
        monitor.rebaseline();
        assert!(!monitor.tripped());
        assert!(!monitor.warmed());
    }

    #[test]
    fn monitor_baseline_absorbs_constant_calibration_bias() {
        // A constant 3σ bias (slightly-off epoch slope) is absorbed by
        // the warm-up baseline; only *additional* drift can trip.
        let mut monitor = DriftMonitor::new(6, 4.0);
        for _ in 0..60 {
            assert!(!monitor.observe(3.0), "constant bias must not trip");
        }
        for _ in 0..6 {
            monitor.observe(3.0 + 9.0);
        }
        assert!(monitor.tripped(), "drift on top of bias must trip");
    }

    #[test]
    fn monitor_rearm_keeps_window_so_persistent_drift_retrips() {
        let mut monitor = DriftMonitor::new(4, 4.0);
        for _ in 0..8 {
            monitor.observe(0.0);
        }
        for _ in 0..4 {
            monitor.observe(8.0);
        }
        assert!(monitor.tripped());
        monitor.rearm();
        assert!(!monitor.tripped());
        assert!(monitor.observe(8.0), "persistent drift re-trips at once");
    }

    #[test]
    fn window_clamps_to_curve_length() {
        let reference = curve(2.0, &[0.0; 4]);
        let observed = curve(2.0, &[0.0; 4]);
        let assessment = DriftDetector::new(50, 4.0)
            .assess(&reference, &observed)
            .unwrap();
        assert_eq!(assessment.window, 4);
    }
}

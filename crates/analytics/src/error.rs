//! Error type for calibration analytics.

use std::error::Error;
use std::fmt;

/// Convenience alias for analytics results.
pub type Result<T> = std::result::Result<T, AnalyticsError>;

/// Errors arising while fitting or interpreting calibration data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnalyticsError {
    /// Fewer data points than the operation needs.
    TooFewPoints {
        /// Points required.
        needed: usize,
        /// Points supplied.
        got: usize,
    },
    /// x and y slices differ in length.
    LengthMismatch {
        /// Length of the x slice.
        xs: usize,
        /// Length of the y slice.
        ys: usize,
    },
    /// All x values identical — slope is undefined.
    DegenerateAbscissa,
    /// A non-finite value was encountered in the input.
    NonFiniteInput,
    /// The fitted slope is zero or negative where a positive calibration
    /// slope is required (e.g. detection-limit computation).
    NonPositiveSlope,
}

impl fmt::Display for AnalyticsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyticsError::TooFewPoints { needed, got } => {
                write!(f, "need at least {needed} points, got {got}")
            }
            AnalyticsError::LengthMismatch { xs, ys } => {
                write!(f, "length mismatch: {xs} x-values vs {ys} y-values")
            }
            AnalyticsError::DegenerateAbscissa => {
                write!(f, "all x values identical; slope undefined")
            }
            AnalyticsError::NonFiniteInput => write!(f, "input contains non-finite values"),
            AnalyticsError::NonPositiveSlope => {
                write!(f, "calibration slope must be positive")
            }
        }
    }
}

impl Error for AnalyticsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_informative() {
        assert_eq!(
            AnalyticsError::TooFewPoints { needed: 3, got: 1 }.to_string(),
            "need at least 3 points, got 1"
        );
        assert_eq!(
            AnalyticsError::LengthMismatch { xs: 4, ys: 5 }.to_string(),
            "length mismatch: 4 x-values vs 5 y-values"
        );
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AnalyticsError>();
    }
}

//! # bios-analytics
//!
//! Calibration analytics: everything needed to turn a simulated (or
//! real) concentration/current sweep into the three figures of merit the
//! paper's Table 2 reports — **sensitivity**, **linear range**, and
//! **limit of detection**.
//!
//! * [`regression`] — ordinary and weighted least squares with full
//!   diagnostics (standard errors, R², residual SD).
//! * [`calibration`] — calibration curves built from replicate
//!   measurements at each standard concentration.
//! * [`linear_range`] — data-driven detection of where a calibration
//!   stops being linear.
//! * [`limits`] — 3σ detection and 10σ quantification limits.
//! * [`drift`] — rolling-residual drift/fault detection between a
//!   reference calibration and a fresh one.
//! * [`report`] — plain-text table rendering for the bench harness.
//!
//! # Examples
//!
//! ```
//! use bios_analytics::regression::LinearFit;
//!
//! let xs = [0.0, 1.0, 2.0, 3.0];
//! let ys = [1.0, 3.0, 5.0, 7.0];
//! let fit = LinearFit::fit(&xs, &ys)?;
//! assert!((fit.slope() - 2.0).abs() < 1e-12);
//! assert!((fit.intercept() - 1.0).abs() < 1e-12);
//! assert!(fit.r_squared() > 0.9999);
//! # Ok::<(), bios_analytics::AnalyticsError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod calibration;
pub mod drift;
pub mod error;
pub mod limits;
pub mod linear_range;
pub mod regression;
pub mod report;
pub mod standard_addition;

pub use calibration::{CalibrationCurve, CalibrationPoint, CalibrationSummary};
pub use drift::{DriftAssessment, DriftDetector, DriftMonitor, ResidualRing};
pub use error::{AnalyticsError, Result};
pub use limits::{detection_limit, quantification_limit};
pub use linear_range::{detect_linear_range, LinearRangeOptions};
pub use regression::LinearFit;

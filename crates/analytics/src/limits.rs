//! Detection and quantification limits.

use bios_units::{Amperes, Molar};

use crate::error::{AnalyticsError, Result};
use crate::regression::LinearFit;

/// IUPAC 3σ limit of detection: the concentration whose signal equals
/// three blank standard deviations, `LOD = 3·σ_blank / slope`.
///
/// The fit must be in µA vs mM (the convention of
/// [`crate::CalibrationCurve`]).
///
/// # Errors
///
/// Returns [`AnalyticsError::NonPositiveSlope`] if the calibration slope
/// is not positive.
///
/// # Examples
///
/// ```
/// use bios_analytics::{detection_limit, LinearFit};
/// use bios_units::Amperes;
///
/// // 10 µA/mM calibration with 5 nA blank noise → LOD = 1.5 µM.
/// let fit = LinearFit::fit(&[0.0, 1.0], &[0.0, 10.0])?;
/// let lod = detection_limit(Amperes::from_nano_amps(5.0), &fit)?;
/// assert!((lod.as_micro_molar() - 1.5).abs() < 1e-9);
/// # Ok::<(), bios_analytics::AnalyticsError>(())
/// ```
pub fn detection_limit(blank_sigma: Amperes, fit: &LinearFit) -> Result<Molar> {
    limit_with_factor(blank_sigma, fit, 3.0)
}

/// 10σ limit of quantification, `LOQ = 10·σ_blank / slope`.
///
/// # Errors
///
/// Returns [`AnalyticsError::NonPositiveSlope`] if the calibration slope
/// is not positive.
pub fn quantification_limit(blank_sigma: Amperes, fit: &LinearFit) -> Result<Molar> {
    limit_with_factor(blank_sigma, fit, 10.0)
}

fn limit_with_factor(blank_sigma: Amperes, fit: &LinearFit, k: f64) -> Result<Molar> {
    if fit.slope() <= 0.0 {
        return Err(AnalyticsError::NonPositiveSlope);
    }
    // slope: µA/mM; sigma in µA → concentration in mM.
    let lod_milli_molar = k * blank_sigma.as_micro_amps() / fit.slope();
    Ok(Molar::from_milli_molar(lod_milli_molar))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fit(slope: f64) -> LinearFit {
        LinearFit::fit(&[0.0, 1.0, 2.0], &[0.0, slope, 2.0 * slope]).unwrap()
    }

    #[test]
    fn lod_scales_with_noise() {
        let f = fit(10.0);
        let a = detection_limit(Amperes::from_nano_amps(5.0), &f).unwrap();
        let b = detection_limit(Amperes::from_nano_amps(10.0), &f).unwrap();
        assert!((b.as_molar() / a.as_molar() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn lod_scales_inverse_with_slope() {
        let sigma = Amperes::from_nano_amps(5.0);
        let a = detection_limit(sigma, &fit(10.0)).unwrap();
        let b = detection_limit(sigma, &fit(20.0)).unwrap();
        assert!((a.as_molar() / b.as_molar() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn loq_is_ten_thirds_of_lod() {
        let sigma = Amperes::from_nano_amps(5.0);
        let f = fit(10.0);
        let lod = detection_limit(sigma, &f).unwrap();
        let loq = quantification_limit(sigma, &f).unwrap();
        assert!((loq.as_molar() / lod.as_molar() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flat_calibration_rejected() {
        let f = LinearFit::fit(&[0.0, 1.0, 2.0], &[1.0, 1.0, 1.0]).unwrap();
        assert!(matches!(
            detection_limit(Amperes::from_nano_amps(1.0), &f),
            Err(AnalyticsError::NonPositiveSlope)
        ));
    }
}

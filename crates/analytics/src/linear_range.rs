//! Data-driven linear-range detection.
//!
//! Table 2 of the paper quotes a *linear range* for every sensor: the
//! concentration window over which current tracks concentration within
//! tolerance. This module finds that window from the calibration data
//! itself — anchored at the low end (where enzyme kinetics are always
//! linear) and extended upward until Michaelis–Menten curvature breaks
//! the fit.

use bios_units::ConcentrationRange;

use crate::calibration::CalibrationCurve;
use crate::error::{AnalyticsError, Result};
use crate::regression::LinearFit;

/// Tuning parameters for the detector.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearRangeOptions {
    /// Number of low-concentration points the initial fit is anchored on.
    pub anchor_points: usize,
    /// Maximum relative deviation of any point from the running fit.
    pub tolerance: f64,
    /// Points whose predicted signal is below this fraction of the
    /// top-of-window prediction are exempt from the relative-deviation
    /// check (they are noise-dominated, not curvature-dominated).
    pub noise_floor_fraction: f64,
}

impl Default for LinearRangeOptions {
    /// Anchor on 4 points, allow 8 % deviation, exempt the bottom 3 %.
    fn default() -> LinearRangeOptions {
        LinearRangeOptions {
            anchor_points: 4,
            tolerance: 0.08,
            noise_floor_fraction: 0.03,
        }
    }
}

/// Detects the linear range of a calibration curve.
///
/// Returns the detected concentration window and the least-squares fit
/// over the points inside it.
///
/// # Errors
///
/// * [`AnalyticsError::TooFewPoints`] with fewer than 3 standards.
/// * Regression errors from degenerate data.
///
/// # Examples
///
/// ```
/// use bios_analytics::{detect_linear_range, LinearRangeOptions,
///                      CalibrationCurve, CalibrationPoint};
/// use bios_units::{Amperes, Molar, SquareCm};
///
/// // Michaelis–Menten data: linear early, saturating late.
/// let points = (0..20).map(|k| {
///     let c = 0.25 * k as f64; // mM
///     let i = 10.0 * c / (1.0 + c / 5.0); // saturates around 5 mM
///     CalibrationPoint::new(
///         Molar::from_milli_molar(c),
///         vec![Amperes::from_micro_amps(i)],
///     )
/// }).collect();
/// let curve = CalibrationCurve::new(
///     points, SquareCm::from_square_cm(1.0), Amperes::from_nano_amps(1.0));
/// let (range, fit) = detect_linear_range(&curve, &LinearRangeOptions::default())?;
/// // Detector cuts off well before saturation.
/// assert!(range.high().as_milli_molar() < 3.0);
/// assert!(fit.r_squared() > 0.99);
/// # Ok::<(), bios_analytics::AnalyticsError>(())
/// ```
pub fn detect_linear_range(
    curve: &CalibrationCurve,
    options: &LinearRangeOptions,
) -> Result<(ConcentrationRange, LinearFit)> {
    let xs = curve.concentrations_milli_molar();
    let ys = curve.mean_currents_micro_amps();
    let n = xs.len();
    if n < 3 {
        return Err(AnalyticsError::TooFewPoints { needed: 3, got: n });
    }

    let anchor = options.anchor_points.clamp(3, n);
    let mut best = anchor - 1;
    let mut best_fit = LinearFit::fit(&xs[..anchor], &ys[..anchor])?;

    // Points whose absolute deviation is within the blank noise cannot
    // be evidence of curvature — exempt them (3σ guard).
    let noise_guard = 3.0 * curve.blank_sigma().as_micro_amps();

    for k in anchor..n {
        let fit = LinearFit::fit(&xs[..=k], &ys[..=k])?;
        let top_pred = fit.predict(xs[k]).abs();
        let floor = options.noise_floor_fraction * top_pred;
        let within = (0..=k).all(|i| {
            let pred = fit.predict(xs[i]);
            if pred.abs() < floor || (ys[i] - pred).abs() <= noise_guard {
                true
            } else {
                fit.relative_deviation(xs[i], ys[i]) <= options.tolerance
            }
        });
        if within {
            best = k;
            best_fit = fit;
        } else {
            break;
        }
    }

    // Points are sorted ascending, so the range cannot invert; map the
    // impossible error instead of panicking on it.
    let range = ConcentrationRange::new(
        curve.points()[0].concentration(),
        curve.points()[best].concentration(),
    )
    .map_err(|_| AnalyticsError::DegenerateAbscissa)?;
    Ok((range, best_fit))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::calibration::CalibrationPoint;
    use bios_units::{Amperes, Molar, SquareCm};

    fn curve_from(f: impl Fn(f64) -> f64, n: usize, max_mm: f64) -> CalibrationCurve {
        let points = (0..n)
            .map(|k| {
                let c = max_mm * k as f64 / (n - 1) as f64;
                CalibrationPoint::new(
                    Molar::from_milli_molar(c),
                    vec![Amperes::from_micro_amps(f(c))],
                )
            })
            .collect();
        CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(1.0),
        )
    }

    #[test]
    fn perfectly_linear_data_uses_everything() {
        let curve = curve_from(|c| 7.0 * c, 15, 2.0);
        let (range, fit) = detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        assert!((range.high().as_milli_molar() - 2.0).abs() < 1e-9);
        assert!((fit.slope() - 7.0).abs() < 1e-9);
    }

    #[test]
    fn saturation_truncates_range() {
        // MM with K_M = 2 mM: 5% deviation at ~0.105 mM… sweep to 10 mM.
        let km = 2.0;
        let curve = curve_from(|c| 50.0 * c / (km + c), 40, 10.0);
        let (range, _) = detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        let high = range.high().as_milli_molar();
        assert!(high < 2.0, "detected {high} mM");
        assert!(high > 0.1, "detected {high} mM");
    }

    #[test]
    fn tighter_tolerance_shrinks_range() {
        let km = 5.0;
        let curve = curve_from(|c| 20.0 * c / (km + c), 60, 10.0);
        let loose = LinearRangeOptions {
            tolerance: 0.15,
            ..LinearRangeOptions::default()
        };
        let tight = LinearRangeOptions {
            tolerance: 0.03,
            ..LinearRangeOptions::default()
        };
        let (r_loose, _) = detect_linear_range(&curve, &loose).unwrap();
        let (r_tight, _) = detect_linear_range(&curve, &tight).unwrap();
        assert!(r_tight.high() <= r_loose.high());
    }

    #[test]
    fn range_never_exceeds_sweep() {
        let curve = curve_from(|c| 3.0 * c, 10, 1.0);
        let (range, _) = detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        assert!(range.high().as_milli_molar() <= 1.0 + 1e-12);
        assert!(range.low().as_milli_molar() >= 0.0);
    }

    #[test]
    fn too_few_points_is_an_error() {
        let curve = curve_from(|c| c, 2, 1.0);
        assert!(matches!(
            detect_linear_range(&curve, &LinearRangeOptions::default()),
            Err(AnalyticsError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn noisy_zero_points_do_not_break_detection() {
        // A tiny offset at C=0 would give infinite relative deviation
        // without the noise floor exemption.
        let points = vec![
            CalibrationPoint::new(Molar::ZERO, vec![Amperes::from_nano_amps(2.0)]),
            CalibrationPoint::new(
                Molar::from_milli_molar(0.2),
                vec![Amperes::from_micro_amps(2.0)],
            ),
            CalibrationPoint::new(
                Molar::from_milli_molar(0.4),
                vec![Amperes::from_micro_amps(4.0)],
            ),
            CalibrationPoint::new(
                Molar::from_milli_molar(0.6),
                vec![Amperes::from_micro_amps(6.0)],
            ),
            CalibrationPoint::new(
                Molar::from_milli_molar(0.8),
                vec![Amperes::from_micro_amps(8.0)],
            ),
        ];
        let curve = CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(1.0),
        );
        let (range, fit) = detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        assert!((range.high().as_milli_molar() - 0.8).abs() < 1e-9);
        assert!((fit.slope() - 10.0).abs() < 0.2);
    }
}

//! Least-squares line fitting with diagnostics.

use crate::error::{AnalyticsError, Result};
use bios_units::nearly_zero;

/// An ordinary-least-squares line `y = slope·x + intercept` with the
/// diagnostics a calibration report needs.
///
/// # Examples
///
/// ```
/// use bios_analytics::LinearFit;
///
/// let xs = [0.0, 0.5, 1.0, 1.5, 2.0];
/// let ys = [0.1, 1.1, 2.0, 3.1, 4.0];
/// let fit = LinearFit::fit(&xs, &ys)?;
/// assert!((fit.slope() - 2.0).abs() < 0.1);
/// assert!(fit.r_squared() > 0.99);
/// # Ok::<(), bios_analytics::AnalyticsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    slope: f64,
    intercept: f64,
    r_squared: f64,
    slope_se: f64,
    intercept_se: f64,
    residual_sd: f64,
    n: usize,
}

impl LinearFit {
    /// Fits a line through `(xs, ys)` by ordinary least squares.
    ///
    /// # Errors
    ///
    /// * [`AnalyticsError::LengthMismatch`] if the slices differ in length.
    /// * [`AnalyticsError::TooFewPoints`] with fewer than 2 points.
    /// * [`AnalyticsError::NonFiniteInput`] on NaN/∞ values.
    /// * [`AnalyticsError::DegenerateAbscissa`] if all x are equal.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<LinearFit> {
        LinearFit::fit_weighted(xs, ys, None)
    }

    /// Weighted least squares; `weights`, when given, must match the data
    /// length and be positive.
    ///
    /// # Errors
    ///
    /// As [`LinearFit::fit`]; additionally [`AnalyticsError::NonFiniteInput`]
    /// for non-positive weights.
    pub fn fit_weighted(xs: &[f64], ys: &[f64], weights: Option<&[f64]>) -> Result<LinearFit> {
        if xs.len() != ys.len() {
            return Err(AnalyticsError::LengthMismatch {
                xs: xs.len(),
                ys: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(AnalyticsError::TooFewPoints {
                needed: 2,
                got: xs.len(),
            });
        }
        if let Some(w) = weights {
            if w.len() != xs.len() {
                return Err(AnalyticsError::LengthMismatch {
                    xs: xs.len(),
                    ys: w.len(),
                });
            }
            if w.iter().any(|&wi| !wi.is_finite() || wi <= 0.0) {
                return Err(AnalyticsError::NonFiniteInput);
            }
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(AnalyticsError::NonFiniteInput);
        }

        let n = xs.len();
        let w_of = |i: usize| weights.map_or(1.0, |w| w[i]);
        let sw: f64 = (0..n).map(w_of).sum();
        let mean_x: f64 = (0..n).map(|i| w_of(i) * xs[i]).sum::<f64>() / sw;
        let mean_y: f64 = (0..n).map(|i| w_of(i) * ys[i]).sum::<f64>() / sw;

        let sxx: f64 = (0..n).map(|i| w_of(i) * (xs[i] - mean_x).powi(2)).sum();
        if nearly_zero(sxx) {
            return Err(AnalyticsError::DegenerateAbscissa);
        }
        let sxy: f64 = (0..n)
            .map(|i| w_of(i) * (xs[i] - mean_x) * (ys[i] - mean_y))
            .sum();
        let slope = sxy / sxx;
        let intercept = mean_y - slope * mean_x;

        let ss_res: f64 = (0..n)
            .map(|i| w_of(i) * (ys[i] - slope * xs[i] - intercept).powi(2))
            .sum();
        let ss_tot: f64 = (0..n).map(|i| w_of(i) * (ys[i] - mean_y).powi(2)).sum();
        let r_squared = if nearly_zero(ss_tot) {
            1.0
        } else {
            1.0 - ss_res / ss_tot
        };

        let dof = (n.saturating_sub(2)).max(1) as f64;
        let residual_var = ss_res / dof;
        let residual_sd = residual_var.sqrt();
        let slope_se = (residual_var / sxx).sqrt();
        let intercept_se = (residual_var * (1.0 / sw + mean_x * mean_x / sxx)).sqrt();

        Ok(LinearFit {
            slope,
            intercept,
            r_squared,
            slope_se,
            intercept_se,
            residual_sd,
            n,
        })
    }

    /// Fitted slope.
    #[must_use]
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept.
    #[must_use]
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Coefficient of determination R².
    #[must_use]
    pub fn r_squared(&self) -> f64 {
        self.r_squared
    }

    /// Standard error of the slope.
    #[must_use]
    pub fn slope_se(&self) -> f64 {
        self.slope_se
    }

    /// Standard error of the intercept.
    #[must_use]
    pub fn intercept_se(&self) -> f64 {
        self.intercept_se
    }

    /// Residual standard deviation.
    #[must_use]
    pub fn residual_sd(&self) -> f64 {
        self.residual_sd
    }

    /// Number of points fitted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the fit is based on no points (never true for a
    /// successfully constructed fit).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Predicted y at `x`.
    #[must_use]
    pub fn predict(&self, x: f64) -> f64 {
        self.slope * x + self.intercept
    }

    /// Relative deviation of an observation from the fitted line,
    /// `|y − ŷ|/|ŷ|`, used by the linear-range detector.
    #[must_use]
    pub fn relative_deviation(&self, x: f64, y: f64) -> f64 {
        let pred = self.predict(x);
        if nearly_zero(pred) {
            if nearly_zero(y) {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (y - pred).abs() / pred.abs()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.5 * x - 2.0).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope() - 3.5).abs() < 1e-12);
        assert!((fit.intercept() + 2.0).abs() < 1e-12);
        assert!((fit.r_squared() - 1.0).abs() < 1e-12);
        assert!(fit.residual_sd() < 1e-10);
    }

    #[test]
    fn noisy_line_diagnostics() {
        // Deterministic pseudo-noise.
        let xs: Vec<f64> = (0..50).map(|i| i as f64 / 10.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 2.0 * x + 1.0 + 0.05 * ((i as f64 * 2.399).sin()))
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope() - 2.0).abs() < 0.02);
        assert!(fit.r_squared() > 0.999);
        assert!(fit.slope_se() > 0.0 && fit.slope_se() < 0.01);
    }

    #[test]
    fn error_cases() {
        assert!(matches!(
            LinearFit::fit(&[1.0], &[1.0]),
            Err(AnalyticsError::TooFewPoints { .. })
        ));
        assert!(matches!(
            LinearFit::fit(&[1.0, 2.0], &[1.0]),
            Err(AnalyticsError::LengthMismatch { .. })
        ));
        assert!(matches!(
            LinearFit::fit(&[1.0, 1.0], &[1.0, 2.0]),
            Err(AnalyticsError::DegenerateAbscissa)
        ));
        assert!(matches!(
            LinearFit::fit(&[1.0, f64::NAN], &[1.0, 2.0]),
            Err(AnalyticsError::NonFiniteInput)
        ));
    }

    #[test]
    fn weights_pull_fit_toward_heavy_points() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 5.0]; // last point is an outlier from y=x
        let unweighted = LinearFit::fit(&xs, &ys).unwrap();
        let w = [100.0, 100.0, 0.01];
        let weighted = LinearFit::fit_weighted(&xs, &ys, Some(&w)).unwrap();
        assert!((weighted.slope() - 1.0).abs() < (unweighted.slope() - 1.0).abs());
    }

    #[test]
    fn bad_weights_rejected() {
        let xs = [0.0, 1.0, 2.0];
        let ys = [0.0, 1.0, 2.0];
        assert!(LinearFit::fit_weighted(&xs, &ys, Some(&[1.0, -1.0, 1.0])).is_err());
        assert!(LinearFit::fit_weighted(&xs, &ys, Some(&[1.0, 1.0])).is_err());
    }

    #[test]
    fn predict_and_relative_deviation() {
        let fit = LinearFit::fit(&[0.0, 1.0], &[0.0, 2.0]).unwrap();
        assert!((fit.predict(3.0) - 6.0).abs() < 1e-12);
        assert!((fit.relative_deviation(1.0, 2.2) - 0.1).abs() < 1e-12);
        assert!((fit.relative_deviation(1.0, 1.8) - 0.1).abs() < 1e-12);
    }
}

//! Plain-text table rendering for the bench harness.
//!
//! The harness prints the same rows the paper's tables report; this is a
//! dependency-free fixed-width formatter with right/left alignment.

use std::fmt::Write as _;

/// A simple text table with a header row.
///
/// # Examples
///
/// ```
/// use bios_analytics::report::TextTable;
///
/// let mut t = TextTable::new(vec!["Sensor", "Sensitivity"]);
/// t.add_row(vec!["MWCNT/Nafion + GOD".into(), "55.5".into()]);
/// let s = t.render();
/// assert!(s.contains("Sensor"));
/// assert!(s.contains("55.5"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> TextTable {
        TextTable {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a data row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn add_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row width must match header width"
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a separator under the header.
    #[must_use]
    pub fn render(&self) -> String {
        let cols = self.headers.len();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        let write_row = |cells: &[String], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                let pad = widths[i] - cell.chars().count();
                let _ = write!(out, "{}{}", cell, " ".repeat(pad));
                if i + 1 < cols {
                    out.push_str("  ");
                }
            }
            out.push('\n');
        };
        write_row(&self.headers, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            write_row(row, &mut out);
        }
        out
    }
}

/// Formats a relative error as a signed percentage, e.g. `-12.3%`.
#[must_use]
pub fn format_percent(fraction: f64) -> String {
    format!("{:+.1}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = TextTable::new(vec!["A", "BBBB"]);
        t.add_row(vec!["xxx".into(), "1".into()]);
        t.add_row(vec!["y".into(), "22".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        // All lines same width.
        assert!(lines[0].trim_end().len() <= lines[1].len());
        assert!(lines[1].chars().all(|c| c == '-'));
    }

    #[test]
    fn unicode_widths_counted_by_chars() {
        let mut t = TextTable::new(vec!["µA·mM⁻¹·cm⁻²"]);
        t.add_row(vec!["55.5".into()]);
        let s = t.render();
        assert!(s.contains("µA·mM⁻¹·cm⁻²"));
    }

    #[test]
    fn empty_and_len() {
        let mut t = TextTable::new(vec!["x"]);
        assert!(t.is_empty());
        t.add_row(vec!["1".into()]);
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_rows_rejected() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.add_row(vec!["only one".into()]);
    }

    #[test]
    fn percent_formatting() {
        assert_eq!(format_percent(0.123), "+12.3%");
        assert_eq!(format_percent(-0.05), "-5.0%");
    }
}

//! The standard-addition method.
//!
//! Quantifying drugs in *serum* (the paper's end goal) faces matrix
//! effects: proteins foul the electrode and depress the slope, so an
//! external calibration over-reads or under-reads. Standard addition
//! sidesteps this by spiking the unknown itself: the signal is measured
//! at the native level and after known additions, and the unknown is the
//! magnitude of the x-intercept of the regression line.

use bios_units::{Amperes, Molar};

use crate::error::{AnalyticsError, Result};
use crate::regression::LinearFit;

/// One spike level: how much standard was added, and the signal read.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Addition {
    /// Concentration added on top of the unknown.
    pub added: Molar,
    /// Measured signal at this total level.
    pub signal: Amperes,
}

/// Estimates the unknown concentration from a standard-addition series.
///
/// The first point is conventionally the unspiked sample
/// (`added = 0`). Requires at least three points, a positive fitted
/// slope, and a non-negative intercept (a negative estimate means the
/// series is inconsistent).
///
/// # Errors
///
/// * [`AnalyticsError::TooFewPoints`] with fewer than 3 additions.
/// * [`AnalyticsError::NonPositiveSlope`] if the spikes do not raise the
///   signal.
/// * Regression errors for degenerate inputs.
///
/// # Examples
///
/// ```
/// use bios_analytics::standard_addition::{estimate_unknown, Addition};
/// use bios_units::{Amperes, Molar};
///
/// // True unknown: 0.4 mM, slope 10 µA/mM (matrix-suppressed — the
/// // method doesn't care).
/// let series = [0.0, 0.2, 0.4, 0.6].map(|spike| Addition {
///     added: Molar::from_milli_molar(spike),
///     signal: Amperes::from_micro_amps(10.0 * (0.4 + spike)),
/// });
/// let unknown = estimate_unknown(&series)?;
/// assert!((unknown.as_milli_molar() - 0.4).abs() < 1e-9);
/// # Ok::<(), bios_analytics::AnalyticsError>(())
/// ```
pub fn estimate_unknown(series: &[Addition]) -> Result<Molar> {
    if series.len() < 3 {
        return Err(AnalyticsError::TooFewPoints {
            needed: 3,
            got: series.len(),
        });
    }
    let xs: Vec<f64> = series.iter().map(|a| a.added.as_milli_molar()).collect();
    let ys: Vec<f64> = series.iter().map(|a| a.signal.as_micro_amps()).collect();
    let fit = LinearFit::fit(&xs, &ys)?;
    if fit.slope() <= 0.0 {
        return Err(AnalyticsError::NonPositiveSlope);
    }
    // x-intercept = −intercept/slope; the unknown is its magnitude.
    let x0 = -fit.intercept() / fit.slope();
    if x0 > 0.0 {
        // Positive x-intercept means the unspiked signal was *below*
        // baseline — the series is inconsistent.
        return Err(AnalyticsError::NonFiniteInput);
    }
    Ok(Molar::from_milli_molar(-x0))
}

/// Spike-recovery check: the fraction of a known added amount that the
/// calibration slope reads back. 1.0 is ideal; departures flag matrix
/// effects.
///
/// # Errors
///
/// * [`AnalyticsError::NonPositiveSlope`] if the spike is not positive
///   or the external slope is not positive.
pub fn spike_recovery(
    unspiked_signal: Amperes,
    spiked_signal: Amperes,
    spike: Molar,
    external_slope_micro_amps_per_milli_molar: f64,
) -> Result<f64> {
    if spike.as_molar() <= 0.0 || external_slope_micro_amps_per_milli_molar <= 0.0 {
        return Err(AnalyticsError::NonPositiveSlope);
    }
    let recovered_milli_molar = (spiked_signal.as_micro_amps() - unspiked_signal.as_micro_amps())
        / external_slope_micro_amps_per_milli_molar;
    Ok(recovered_milli_molar / spike.as_milli_molar())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(true_milli_molar: f64, slope: f64, spikes: &[f64]) -> Vec<Addition> {
        spikes
            .iter()
            .map(|&s| Addition {
                added: Molar::from_milli_molar(s),
                signal: Amperes::from_micro_amps(slope * (true_milli_molar + s)),
            })
            .collect()
    }

    #[test]
    fn recovers_unknown_independent_of_slope() {
        // Matrix suppression halves the slope — estimate unchanged.
        for slope in [10.0, 5.0, 1.3] {
            let s = series(0.75, slope, &[0.0, 0.25, 0.5, 1.0]);
            let est = estimate_unknown(&s).unwrap();
            assert!((est.as_milli_molar() - 0.75).abs() < 1e-9, "slope {slope}");
        }
    }

    #[test]
    fn zero_unknown_estimates_zero() {
        let s = series(0.0, 8.0, &[0.0, 0.2, 0.4]);
        let est = estimate_unknown(&s).unwrap();
        assert!(est.as_milli_molar().abs() < 1e-9);
    }

    #[test]
    fn too_few_points_rejected() {
        let s = series(0.5, 10.0, &[0.0, 0.5]);
        assert!(matches!(
            estimate_unknown(&s),
            Err(AnalyticsError::TooFewPoints { .. })
        ));
    }

    #[test]
    fn flat_series_rejected() {
        let s = [0.0, 0.2, 0.4].map(|spike| Addition {
            added: Molar::from_milli_molar(spike),
            signal: Amperes::from_micro_amps(3.0),
        });
        assert!(matches!(
            estimate_unknown(&s),
            Err(AnalyticsError::NonPositiveSlope)
        ));
    }

    #[test]
    fn noisy_series_estimates_within_tolerance() {
        let s: Vec<Addition> = [0.0f64, 0.25, 0.5, 0.75, 1.0]
            .iter()
            .enumerate()
            .map(|(i, &spike)| Addition {
                added: Molar::from_milli_molar(spike),
                signal: Amperes::from_micro_amps(
                    6.0 * (0.6 + spike) + 0.05 * ((i as f64 * 2.1).sin()),
                ),
            })
            .collect();
        let est = estimate_unknown(&s).unwrap();
        assert!((est.as_milli_molar() - 0.6).abs() < 0.05);
    }

    #[test]
    fn recovery_is_unity_without_matrix_effects() {
        let r = spike_recovery(
            Amperes::from_micro_amps(4.0),
            Amperes::from_micro_amps(9.0),
            Molar::from_milli_molar(0.5),
            10.0,
        )
        .unwrap();
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn suppressed_matrix_reads_low_recovery() {
        // The in-matrix slope is 7 µA/mM but the external calibration
        // says 10 — recovery reads 70 %.
        let r = spike_recovery(
            Amperes::from_micro_amps(4.0),
            Amperes::from_micro_amps(4.0 + 7.0 * 0.5),
            Molar::from_milli_molar(0.5),
            10.0,
        )
        .unwrap();
        assert!((r - 0.7).abs() < 1e-12);
    }
}

//! Property tests for the analytics crate: regression exactness,
//! detector bounds, and limit arithmetic over randomized data.

use proptest::prelude::*;

use bios_analytics::{
    detect_linear_range, detection_limit, quantification_limit, CalibrationCurve,
    CalibrationPoint, LinearFit, LinearRangeOptions,
};
use bios_units::{Amperes, Molar, SquareCm};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// OLS recovers an exact line perfectly for any slope/intercept.
    #[test]
    fn exact_line_recovery(
        slope in -1e3f64..1e3,
        intercept in -1e3f64..1e3,
        n in 3usize..50,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope() - slope).abs() < 1e-6 + slope.abs() * 1e-9);
        prop_assert!((fit.intercept() - intercept).abs() < 1e-6 + intercept.abs() * 1e-9);
        prop_assert!(fit.r_squared() > 1.0 - 1e-9 || slope == 0.0);
    }

    /// R² is invariant under affine rescaling of both axes.
    #[test]
    fn r_squared_scale_invariant(
        seed_pts in prop::collection::vec((-10.0f64..10.0, -10.0f64..10.0), 5..30),
        sx in 0.01f64..100.0,
        sy in 0.01f64..100.0,
    ) {
        let xs: Vec<f64> = seed_pts.iter().enumerate().map(|(i, p)| i as f64 + p.0 / 100.0).collect();
        let ys: Vec<f64> = seed_pts.iter().map(|p| p.0 * 2.0 + p.1).collect();
        let fit1 = LinearFit::fit(&xs, &ys).unwrap();
        let xs2: Vec<f64> = xs.iter().map(|x| x * sx).collect();
        let ys2: Vec<f64> = ys.iter().map(|y| y * sy).collect();
        let fit2 = LinearFit::fit(&xs2, &ys2).unwrap();
        prop_assert!((fit1.r_squared() - fit2.r_squared()).abs() < 1e-9);
        // Slope transforms as sy/sx.
        prop_assert!((fit2.slope() - fit1.slope() * sy / sx).abs()
            < 1e-9 * (1.0 + fit1.slope().abs() * sy / sx));
    }

    /// Fit residual SD of a noisy line is of the order of the injected
    /// noise amplitude.
    #[test]
    fn residual_sd_tracks_noise(amp in 0.01f64..1.0) {
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + amp * ((i as f64 * 2.399).sin()))
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        // sin-noise has RMS amp/√2.
        let expected = amp / 2f64.sqrt();
        prop_assert!(fit.residual_sd() < expected * 1.5);
        prop_assert!(fit.residual_sd() > expected * 0.5);
    }

    /// LOD and LOQ scale exactly with noise and inversely with slope;
    /// LOQ/LOD = 10/3 always.
    #[test]
    fn limit_arithmetic(
        sigma_na in 0.01f64..100.0,
        slope in 0.01f64..1e3,
    ) {
        let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[0.0, slope, 2.0 * slope]).unwrap();
        let sigma = Amperes::from_nano_amps(sigma_na);
        let lod = detection_limit(sigma, &fit).unwrap();
        let loq = quantification_limit(sigma, &fit).unwrap();
        prop_assert!((loq.as_molar() / lod.as_molar() - 10.0 / 3.0).abs() < 1e-9);
        let expected_milli_molar = 3.0 * sigma_na * 1e-3 / slope;
        prop_assert!((lod.as_milli_molar() - expected_milli_molar).abs()
            / expected_milli_molar < 1e-9);
    }

    /// The linear-range detector returns a range inside the sweep, with
    /// a fit whose length matches the included points, for any
    /// saturating curve.
    #[test]
    fn detector_output_is_well_formed(
        km in 0.2f64..50.0,
        vmax in 1.0f64..100.0,
        n in 8usize..60,
        top in 1.0f64..20.0,
    ) {
        let points: Vec<CalibrationPoint> = (0..n)
            .map(|k| {
                let c = top * k as f64 / (n - 1) as f64;
                let i = vmax * c / (km + c);
                CalibrationPoint::new(
                    Molar::from_milli_molar(c),
                    vec![Amperes::from_micro_amps(i)],
                )
            })
            .collect();
        let curve = CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(1.0),
        );
        let (range, fit) =
            detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        prop_assert!(range.low().as_milli_molar() >= -1e-12);
        prop_assert!(range.high().as_milli_molar() <= top + 1e-9);
        prop_assert!(fit.len() >= 3);
        prop_assert!(fit.slope() > 0.0);
    }

    /// A strictly linear calibration is always detected in full.
    #[test]
    fn fully_linear_data_fully_included(
        slope in 0.1f64..100.0,
        n in 6usize..40,
    ) {
        let points: Vec<CalibrationPoint> = (0..n)
            .map(|k| {
                let c = k as f64 * 0.1;
                CalibrationPoint::new(
                    Molar::from_milli_molar(c),
                    vec![Amperes::from_micro_amps(slope * c)],
                )
            })
            .collect();
        let top = (n - 1) as f64 * 0.1;
        let curve = CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(1.0),
        );
        let (range, fit) =
            detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        prop_assert!((range.high().as_milli_molar() - top).abs() < 1e-9);
        prop_assert!((fit.slope() - slope).abs() / slope < 1e-9);
    }

    /// Replicate statistics: the mean lies between min and max and the
    /// SD is zero iff all replicates coincide.
    #[test]
    fn replicate_statistics(reps in prop::collection::vec(0.0f64..100.0, 1..10)) {
        let point = CalibrationPoint::new(
            Molar::from_milli_molar(1.0),
            reps.iter().map(|&r| Amperes::from_micro_amps(r)).collect(),
        );
        let mean = point.mean_current().as_micro_amps();
        let lo = reps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = reps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        let sd = point.current_sd().as_micro_amps();
        let all_same = reps.iter().all(|&r| (r - reps[0]).abs() < 1e-12);
        if all_same {
            prop_assert!(sd < 1e-9);
        } else {
            prop_assert!(sd > 0.0);
        }
    }
}

//! Property tests for the analytics crate: regression exactness,
//! detector bounds, and limit arithmetic over randomized data.
//! Sampled deterministically via `bios_prng::cases`.

use bios_analytics::{
    detect_linear_range, detection_limit, quantification_limit, CalibrationCurve, CalibrationPoint,
    LinearFit, LinearRangeOptions,
};
use bios_prng::cases;
use bios_units::{Amperes, Molar, SquareCm};

/// OLS recovers an exact line perfectly for any slope/intercept.
#[test]
fn exact_line_recovery() {
    cases(0x0501, 64, |rng| {
        let slope = rng.uniform_in(-1e3, 1e3);
        let intercept = rng.uniform_in(-1e3, 1e3);
        let n = rng.index_in(3, 50);
        let xs: Vec<f64> = (0..n).map(|i| i as f64 * 0.37).collect();
        let ys: Vec<f64> = xs.iter().map(|x| slope * x + intercept).collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        assert!((fit.slope() - slope).abs() < 1e-6 + slope.abs() * 1e-9);
        assert!((fit.intercept() - intercept).abs() < 1e-6 + intercept.abs() * 1e-9);
        assert!(fit.r_squared() > 1.0 - 1e-9 || slope == 0.0);
    });
}

/// R² is invariant under affine rescaling of both axes.
#[test]
fn r_squared_scale_invariant() {
    cases(0x0502, 64, |rng| {
        let n = rng.index_in(5, 30);
        let seed_pts: Vec<(f64, f64)> = (0..n)
            .map(|_| (rng.uniform_in(-10.0, 10.0), rng.uniform_in(-10.0, 10.0)))
            .collect();
        let sx = rng.log_uniform_in(0.01, 100.0);
        let sy = rng.log_uniform_in(0.01, 100.0);
        let xs: Vec<f64> = seed_pts
            .iter()
            .enumerate()
            .map(|(i, p)| i as f64 + p.0 / 100.0)
            .collect();
        let ys: Vec<f64> = seed_pts.iter().map(|p| p.0 * 2.0 + p.1).collect();
        let fit1 = LinearFit::fit(&xs, &ys).unwrap();
        let xs2: Vec<f64> = xs.iter().map(|x| x * sx).collect();
        let ys2: Vec<f64> = ys.iter().map(|y| y * sy).collect();
        let fit2 = LinearFit::fit(&xs2, &ys2).unwrap();
        assert!((fit1.r_squared() - fit2.r_squared()).abs() < 1e-9);
        // Slope transforms as sy/sx.
        assert!(
            (fit2.slope() - fit1.slope() * sy / sx).abs()
                < 1e-9 * (1.0 + fit1.slope().abs() * sy / sx)
        );
    });
}

/// Fit residual SD of a noisy line is of the order of the injected
/// noise amplitude.
#[test]
fn residual_sd_tracks_noise() {
    cases(0x0503, 64, |rng| {
        let amp = rng.uniform_in(0.01, 1.0);
        let xs: Vec<f64> = (0..200).map(|i| i as f64 / 20.0).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| 3.0 * x + amp * ((i as f64 * 2.399).sin()))
            .collect();
        let fit = LinearFit::fit(&xs, &ys).unwrap();
        // sin-noise has RMS amp/√2.
        let expected = amp / 2f64.sqrt();
        assert!(fit.residual_sd() < expected * 1.5);
        assert!(fit.residual_sd() > expected * 0.5);
    });
}

/// LOD and LOQ scale exactly with noise and inversely with slope;
/// LOQ/LOD = 10/3 always.
#[test]
fn limit_arithmetic() {
    cases(0x0504, 64, |rng| {
        let sigma_na = rng.log_uniform_in(0.01, 100.0);
        let slope = rng.log_uniform_in(0.01, 1e3);
        let fit = LinearFit::fit(&[0.0, 1.0, 2.0], &[0.0, slope, 2.0 * slope]).unwrap();
        let sigma = Amperes::from_nano_amps(sigma_na);
        let lod = detection_limit(sigma, &fit).unwrap();
        let loq = quantification_limit(sigma, &fit).unwrap();
        assert!((loq.as_molar() / lod.as_molar() - 10.0 / 3.0).abs() < 1e-9);
        let expected_milli_molar = 3.0 * sigma_na * 1e-3 / slope;
        assert!((lod.as_milli_molar() - expected_milli_molar).abs() / expected_milli_molar < 1e-9);
    });
}

/// The linear-range detector returns a range inside the sweep, with
/// a fit whose length matches the included points, for any
/// saturating curve.
#[test]
fn detector_output_is_well_formed() {
    cases(0x0505, 64, |rng| {
        let km = rng.uniform_in(0.2, 50.0);
        let vmax = rng.uniform_in(1.0, 100.0);
        let n = rng.index_in(8, 60);
        let top = rng.uniform_in(1.0, 20.0);
        let points: Vec<CalibrationPoint> = (0..n)
            .map(|k| {
                let c = top * k as f64 / (n - 1) as f64;
                let i = vmax * c / (km + c);
                CalibrationPoint::new(
                    Molar::from_milli_molar(c),
                    vec![Amperes::from_micro_amps(i)],
                )
            })
            .collect();
        let curve = CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(1.0),
        );
        let (range, fit) = detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        assert!(range.low().as_milli_molar() >= -1e-12);
        assert!(range.high().as_milli_molar() <= top + 1e-9);
        assert!(fit.len() >= 3);
        assert!(fit.slope() > 0.0);
    });
}

/// A strictly linear calibration is always detected in full.
#[test]
fn fully_linear_data_fully_included() {
    cases(0x0506, 64, |rng| {
        let slope = rng.log_uniform_in(0.1, 100.0);
        let n = rng.index_in(6, 40);
        let points: Vec<CalibrationPoint> = (0..n)
            .map(|k| {
                let c = k as f64 * 0.1;
                CalibrationPoint::new(
                    Molar::from_milli_molar(c),
                    vec![Amperes::from_micro_amps(slope * c)],
                )
            })
            .collect();
        let top = (n - 1) as f64 * 0.1;
        let curve = CalibrationCurve::new(
            points,
            SquareCm::from_square_cm(1.0),
            Amperes::from_nano_amps(1.0),
        );
        let (range, fit) = detect_linear_range(&curve, &LinearRangeOptions::default()).unwrap();
        assert!((range.high().as_milli_molar() - top).abs() < 1e-9);
        assert!((fit.slope() - slope).abs() / slope < 1e-9);
    });
}

/// Replicate statistics: the mean lies between min and max and the
/// SD is zero iff all replicates coincide.
#[test]
fn replicate_statistics() {
    cases(0x0507, 64, |rng| {
        let n = rng.index_in(1, 10);
        let reps: Vec<f64> = (0..n).map(|_| rng.uniform_in(0.0, 100.0)).collect();
        let point = CalibrationPoint::new(
            Molar::from_milli_molar(1.0),
            reps.iter().map(|&r| Amperes::from_micro_amps(r)).collect(),
        );
        let mean = point.mean_current().as_micro_amps();
        let lo = reps.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = reps.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        assert!(mean >= lo - 1e-9 && mean <= hi + 1e-9);
        let sd = point.current_sd().as_micro_amps();
        let all_same = reps.iter().all(|&r| (r - reps[0]).abs() < 1e-12);
        if all_same {
            assert!(sd < 1e-9);
        } else {
            assert!(sd > 0.0);
        }
    });
}

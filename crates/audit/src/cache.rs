//! FNV-keyed per-file facts cache.
//!
//! [`crate::rules::analyze_file`] is pure in `(path, source, config)`,
//! so its [`FileFacts`] can be reused whenever the source bytes hash
//! the same and neither the tool version nor the rule table changed.
//! The cache is one line-oriented file under `target/` (next to the
//! other build products), keyed by FNV-1a of the source bytes and
//! stamped with [`crate::config::Config::fingerprint`]. A stale stamp
//! discards the whole cache; a corrupt or truncated entry discards
//! just that entry. The cross-file graph passes re-run every time —
//! they are cheap once the per-file facts are hot.

use crate::config::Rule;
use crate::graph::{BannedSite, CallKind, CallSite, FileFacts, FnFact, UseDep};
use crate::rules::{Finding, WaiverRecord};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// Cache hit/miss counters for the run summary and the survey bin.
#[derive(Debug, Clone, Copy, Default)]
pub struct CacheStats {
    /// Files whose facts were served from the cache.
    pub hits: usize,
    /// Files that had to be re-analyzed.
    pub misses: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; 0 for an empty run.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// The on-disk facts cache.
#[derive(Debug, Default)]
pub struct FactsCache {
    entries: BTreeMap<String, FileFacts>,
    /// Fingerprint the loaded file was stamped with.
    stamp: u64,
}

/// Format marker; bump on any serialization change.
const MAGIC: &str = "bios-audit-facts v1";

impl FactsCache {
    /// Canonical cache location for a workspace root.
    pub fn path_for(root: &Path) -> PathBuf {
        root.join("target").join("bios-audit-facts.cache")
    }

    /// Load the cache file, discarding it wholesale when missing,
    /// unreadable, or stamped with a different config fingerprint.
    pub fn load(path: &Path, fingerprint: u64) -> FactsCache {
        let mut cache = FactsCache {
            entries: BTreeMap::new(),
            stamp: fingerprint,
        };
        let Ok(text) = std::fs::read_to_string(path) else {
            return cache;
        };
        let mut lines = text.lines();
        match lines.next() {
            Some(header) if header == format!("{MAGIC} {fingerprint}") => {}
            _ => return cache,
        }
        let mut current: Option<FileFacts> = None;
        for line in lines {
            let fields: Vec<&str> = line.split('\t').collect();
            match fields.first().copied() {
                Some("FILE") => {
                    if let Some(f) = current.take() {
                        cache.entries.insert(f.path.clone(), f);
                    }
                    if let (Some(path), Some(fnv)) = (
                        fields.get(1),
                        fields.get(2).and_then(|s| s.parse::<u64>().ok()),
                    ) {
                        current = Some(FileFacts {
                            path: (*path).to_string(),
                            source_fnv: fnv,
                            ..FileFacts::default()
                        });
                    }
                }
                Some("LF") => {
                    let Some(f) = current.as_mut() else { continue };
                    if let (Some(line), Some(col), Some(rule), Some(msg)) = (
                        fields.get(1).and_then(|s| s.parse().ok()),
                        fields.get(2).and_then(|s| s.parse().ok()),
                        fields.get(3).and_then(|s| Rule::from_id(s)),
                        fields.get(4),
                    ) {
                        f.local_findings.push(Finding {
                            path: f.path.clone(),
                            line,
                            col,
                            rule,
                            message: unescape(msg),
                        });
                    }
                }
                Some("WV") => {
                    let Some(f) = current.as_mut() else { continue };
                    if let (Some(line), Some(rule), Some(reason)) = (
                        fields.get(1).and_then(|s| s.parse().ok()),
                        fields.get(2),
                        fields.get(3),
                    ) {
                        f.waivers.push(WaiverRecord {
                            path: f.path.clone(),
                            line,
                            rule: unescape(rule),
                            reason: unescape(reason),
                            used: false,
                        });
                    }
                }
                Some("FN") => {
                    let Some(f) = current.as_mut() else { continue };
                    if let (
                        Some(qual),
                        Some(name),
                        Some(owner),
                        Some(aliases),
                        Some(line),
                        Some(col),
                    ) = (
                        fields.get(1),
                        fields.get(2),
                        fields.get(3),
                        fields.get(4),
                        fields.get(5).and_then(|s| s.parse().ok()),
                        fields.get(6).and_then(|s| s.parse().ok()),
                    ) {
                        f.fns.push(FnFact {
                            qual: unescape(qual),
                            name: unescape(name),
                            owner: (*owner != "-").then(|| unescape(owner)),
                            module_aliases: aliases
                                .split(',')
                                .filter(|a| !a.is_empty())
                                .map(str::to_string)
                                .collect(),
                            line,
                            col,
                            calls: Vec::new(),
                            banned: Vec::new(),
                        });
                    }
                }
                Some("CALL") => {
                    let Some(last) = current.as_mut().and_then(|f| f.fns.last_mut()) else {
                        continue;
                    };
                    if let (Some(kind), Some(qualifier), Some(name), Some(line), Some(col)) = (
                        fields
                            .get(1)
                            .and_then(|s| s.chars().next())
                            .and_then(CallKind::from_tag),
                        fields.get(2),
                        fields.get(3),
                        fields.get(4).and_then(|s| s.parse().ok()),
                        fields.get(5).and_then(|s| s.parse().ok()),
                    ) {
                        last.calls.push(CallSite {
                            kind,
                            qualifier: (*qualifier != "-").then(|| unescape(qualifier)),
                            name: unescape(name),
                            line,
                            col,
                        });
                    }
                }
                Some("BAN") => {
                    let Some(last) = current.as_mut().and_then(|f| f.fns.last_mut()) else {
                        continue;
                    };
                    if let (Some(api), Some(line), Some(col)) = (
                        fields.get(1),
                        fields.get(2).and_then(|s| s.parse().ok()),
                        fields.get(3).and_then(|s| s.parse().ok()),
                    ) {
                        last.banned.push(BannedSite {
                            api: unescape(api),
                            line,
                            col,
                        });
                    }
                }
                Some("USE") => {
                    let Some(f) = current.as_mut() else { continue };
                    if let (Some(krate), Some(line), Some(col)) = (
                        fields.get(1),
                        fields.get(2).and_then(|s| s.parse().ok()),
                        fields.get(3).and_then(|s| s.parse().ok()),
                    ) {
                        f.use_deps.push(UseDep {
                            krate: unescape(krate),
                            line,
                            col,
                        });
                    }
                }
                _ => {}
            }
        }
        if let Some(f) = current.take() {
            cache.entries.insert(f.path.clone(), f);
        }
        cache
    }

    /// Facts for `path` if cached under the same source hash.
    pub fn get(&self, path: &str, source_fnv: u64) -> Option<&FileFacts> {
        self.entries
            .get(path)
            .filter(|f| f.source_fnv == source_fnv)
    }

    /// Insert (or replace) the facts for a file.
    pub fn put(&mut self, facts: FileFacts) {
        self.entries.insert(facts.path.clone(), facts);
    }

    /// Serialize the cache back to disk. Best-effort: a write failure
    /// only costs the next run its warm start.
    pub fn store(&self, path: &Path) {
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let _ = std::fs::write(path, self.render());
    }

    /// The deterministic on-disk rendering.
    fn render(&self) -> String {
        let mut out = format!("{MAGIC} {}\n", self.stamp);
        for f in self.entries.values() {
            out.push_str(&format!("FILE\t{}\t{}\n", f.path, f.source_fnv));
            for lf in &f.local_findings {
                out.push_str(&format!(
                    "LF\t{}\t{}\t{}\t{}\n",
                    lf.line,
                    lf.col,
                    lf.rule.id(),
                    escape(&lf.message)
                ));
            }
            for w in &f.waivers {
                out.push_str(&format!(
                    "WV\t{}\t{}\t{}\n",
                    w.line,
                    escape(&w.rule),
                    escape(&w.reason)
                ));
            }
            for fun in &f.fns {
                out.push_str(&format!(
                    "FN\t{}\t{}\t{}\t{}\t{}\t{}\n",
                    escape(&fun.qual),
                    escape(&fun.name),
                    fun.owner
                        .as_deref()
                        .map(escape)
                        .unwrap_or_else(|| "-".into()),
                    fun.module_aliases.join(","),
                    fun.line,
                    fun.col
                ));
                for c in &fun.calls {
                    out.push_str(&format!(
                        "CALL\t{}\t{}\t{}\t{}\t{}\n",
                        c.kind.tag(),
                        c.qualifier
                            .as_deref()
                            .map(escape)
                            .unwrap_or_else(|| "-".into()),
                        escape(&c.name),
                        c.line,
                        c.col
                    ));
                }
                for b in &fun.banned {
                    out.push_str(&format!("BAN\t{}\t{}\t{}\n", escape(&b.api), b.line, b.col));
                }
            }
            for u in &f.use_deps {
                out.push_str(&format!(
                    "USE\t{}\t{}\t{}\n",
                    escape(&u.krate),
                    u.line,
                    u.col
                ));
            }
        }
        out
    }
}

/// Escape tabs, newlines, and backslashes for the one-record-per-line
/// format.
fn escape(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('\t', "\\t")
        .replace('\n', "\\n")
}

/// Inverse of [`escape`].
fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('\\') => out.push('\\'),
            Some(other) => out.push(other),
            None => {}
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Config;
    use crate::rules::analyze_file;

    #[test]
    fn facts_round_trip_through_the_cache_format() {
        let config = Config::default();
        let src = "// bios-audit: allow(P-unwrap) — test waiver reason\n\
                   pub fn digest() -> u64 { helper().unwrap() }\n\
                   fn helper() -> Option<u64> { let m = std::collections::HashMap::new(); None }\n";
        let facts = analyze_file("crates/runtime/src/cache.rs", src, &config);
        let mut cache = FactsCache {
            stamp: config.fingerprint(),
            ..FactsCache::default()
        };
        cache.put(facts.clone());
        let dir = std::env::temp_dir().join("bios-audit-cache-test");
        let path = dir.join("roundtrip.cache");
        cache.store(&path);
        let reloaded = FactsCache::load(&path, config.fingerprint());
        let got = reloaded
            .get("crates/runtime/src/cache.rs", facts.source_fnv)
            .expect("entry survives the round trip");
        assert_eq!(got.local_findings, facts.local_findings);
        assert_eq!(got.fns.len(), facts.fns.len());
        assert_eq!(got.fns[0].calls, facts.fns[0].calls);
        assert_eq!(got.fns[1].banned, facts.fns[1].banned);
        assert_eq!(got.waivers.len(), facts.waivers.len());
        assert_eq!(got.waivers[0].reason, facts.waivers[0].reason);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stale_fingerprint_discards_the_cache() {
        let config = Config::default();
        let facts = analyze_file("crates/units/src/lib.rs", "pub fn f() {}", &config);
        let mut cache = FactsCache {
            stamp: 1,
            ..FactsCache::default()
        };
        cache.put(facts.clone());
        let dir = std::env::temp_dir().join("bios-audit-cache-stale-test");
        let path = dir.join("stale.cache");
        cache.store(&path);
        let reloaded = FactsCache::load(&path, 2);
        assert!(reloaded
            .get("crates/units/src/lib.rs", facts.source_fnv)
            .is_none());
        let _ = std::fs::remove_dir_all(&dir);
    }
}

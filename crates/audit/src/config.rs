//! The rule set and its path-scoping table.
//!
//! Each rule belongs to one of six families keyed to this repo's
//! invariants (DESIGN.md §11 and §16):
//!
//! * **D — determinism**: digest/fingerprint/cache/journal/codec
//!   modules must not observe iteration order, wall clocks, or thread
//!   identity.
//! * **P — panic-freedom**: non-test code must not contain
//!   `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`dbg!`;
//!   durability modules additionally must not index slices without
//!   `get`.
//! * **F — float hygiene**: solver and analytics code must not compare
//!   floats with `==`/`!=` or truncate `f64` to `f32` with `as`.
//! * **U — unsafe & API hygiene**: no `unsafe` anywhere; public `fn`s
//!   in the physics crates must carry a doc comment naming physical
//!   units.
//! * **G — graph rules** (semantic, cross-file): `G-taint` proves the
//!   D bans *transitively* over the approximate call graph from the
//!   digest/fingerprint/journal entry points; `G-layer` proves the
//!   crate layering (physics never depends on serving, `prng`/`faults`
//!   stay leaf-reachable, no cycles).
//! * **L — lock & channel discipline**: no `.lock()`/`.recv()`/
//!   `.join()` while a `MutexGuard` binding is live in the same block;
//!   no `send` on a channel endpoint whose pair was explicitly
//!   dropped.
//!
//! Scoping is anchored to `crates/`-relative prefixes (see
//! [`Config::in_scope`]): an entry with a `/` must prefix-match the
//! path relative to `crates/` (with the crate segment optionally
//! skipped, so `src/cache` reads "any crate's cache module"), and an
//! entry without a `/` must appear in the file name itself. A rule
//! with an empty scope list applies everywhere.

/// Identifier of a single audit rule. The waiver grammar accepts
/// either this exact id or the one-letter family prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// D: `HashMap`/`HashSet` in a digest-path module (iteration order
    /// is nondeterministic; use `BTreeMap`/`BTreeSet`).
    DHash,
    /// D: `Instant::now`/`SystemTime::now` in a digest-path module.
    DTime,
    /// D: `thread::current()` (thread identity) in a digest-path module.
    DThread,
    /// P: `.unwrap()` in non-test code.
    PUnwrap,
    /// P: `.expect(…)` in non-test code.
    PExpect,
    /// P: `panic!`/`todo!`/`unimplemented!`/`dbg!` in non-test code.
    PPanic,
    /// P: slice/array indexing without `get` in a durability module.
    PIndex,
    /// F: `==`/`!=` against a float expression in solver/analytics code.
    FEq,
    /// F: `as f32` truncation in solver/analytics code.
    FNarrow,
    /// U: any `unsafe` block or fn.
    UUnsafe,
    /// U: public `fn` without a unit-naming doc comment in a physics
    /// crate.
    UDoc,
    /// G: a D-banned API transitively reachable from a determinism
    /// entry point (`digest`/`fingerprint`/journal `append`/`seal`).
    GTaint,
    /// G: a crate-layering violation — physics depending on serving,
    /// a leaf crate growing dependencies, or a dependency cycle.
    GLayer,
    /// L: `.lock()`/`.recv()`/`.join()` while a `MutexGuard` binding
    /// is live in the same block.
    LLock,
    /// L: `send` on a channel endpoint after an explicit `drop` of its
    /// pair.
    LSend,
    /// W: a waiver comment that is malformed (missing reason) or did
    /// not suppress any finding.
    WWaiver,
}

impl Rule {
    /// The stable id printed in findings and accepted in waivers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DHash => "D-hash",
            Rule::DTime => "D-time",
            Rule::DThread => "D-thread",
            Rule::PUnwrap => "P-unwrap",
            Rule::PExpect => "P-expect",
            Rule::PPanic => "P-panic",
            Rule::PIndex => "P-index",
            Rule::FEq => "F-eq",
            Rule::FNarrow => "F-narrow",
            Rule::UUnsafe => "U-unsafe",
            Rule::UDoc => "U-doc",
            Rule::GTaint => "G-taint",
            Rule::GLayer => "G-layer",
            Rule::LLock => "L-lock",
            Rule::LSend => "L-send",
            Rule::WWaiver => "W-waiver",
        }
    }

    /// One-letter family prefix (`D`, `P`, `F`, `U`, `G`, `L`, `W`).
    pub fn family(self) -> &'static str {
        match self {
            Rule::DHash | Rule::DTime | Rule::DThread => "D",
            Rule::PUnwrap | Rule::PExpect | Rule::PPanic | Rule::PIndex => "P",
            Rule::FEq | Rule::FNarrow => "F",
            Rule::UUnsafe | Rule::UDoc => "U",
            Rule::GTaint | Rule::GLayer => "G",
            Rule::LLock | Rule::LSend => "L",
            Rule::WWaiver => "W",
        }
    }

    /// Every enforceable rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::DHash,
        Rule::DTime,
        Rule::DThread,
        Rule::PUnwrap,
        Rule::PExpect,
        Rule::PPanic,
        Rule::PIndex,
        Rule::FEq,
        Rule::FNarrow,
        Rule::UUnsafe,
        Rule::UDoc,
        Rule::GTaint,
        Rule::GLayer,
        Rule::LLock,
        Rule::LSend,
    ];

    /// Parse a stable rule id (`D-hash`, `G-taint`, …) back to the
    /// rule. Used by `audit --explain <rule-id>`.
    pub fn from_id(id: &str) -> Option<Rule> {
        Rule::ALL
            .iter()
            .chain(std::iter::once(&Rule::WWaiver))
            .copied()
            .find(|r| r.id() == id)
    }

    /// The rationale behind the rule plus an example waiver, printed
    /// by `audit --explain <rule-id>`.
    pub fn explain(self) -> String {
        let rationale = match self {
            Rule::DHash => {
                "HashMap/HashSet iteration order varies per process (SipHash keys are \
                 randomized), so any digest, fingerprint, journal frame, or cached \
                 outcome built from one drifts across runs. Use BTreeMap/BTreeSet in \
                 digest-path modules."
            }
            Rule::DTime => {
                "Instant::now()/SystemTime::now() read the wall clock; bytes derived \
                 from them can never replay identically. Digest-path modules must be \
                 pure in (config, trace, tick)."
            }
            Rule::DThread => {
                "thread::current() exposes scheduler identity. The workspace's core \
                 theorem is that digests are byte-identical at any (shard × worker) \
                 layout — thread identity in a digest path breaks it by construction."
            }
            Rule::PUnwrap => {
                ".unwrap() in non-test code converts recoverable states into aborts. \
                 Propagate the error or handle the None arm."
            }
            Rule::PExpect => {
                ".expect(..) panics exactly like .unwrap() — the message does not \
                 make the abort recoverable. Propagate a typed error instead."
            }
            Rule::PPanic => {
                "panic!/todo!/unimplemented!/dbg! must not ship: the runtime treats \
                 worker panics as faults to contain, not as control flow."
            }
            Rule::PIndex => {
                "Slice indexing in a durability module can panic on a torn frame \
                 mid-write, turning one corrupt record into a lost journal. Use \
                 .get(..) and treat the None as corruption to skip."
            }
            Rule::FEq => {
                "==/!= on floats is almost never the intended comparison after any \
                 arithmetic; use an epsilon comparison (bios_units::approx)."
            }
            Rule::FNarrow => {
                "`as f32` silently drops half the mantissa in solver/analytics code; \
                 keep f64 end-to-end through the numeric path."
            }
            Rule::UUnsafe => {
                "The workspace is 100% safe Rust by policy; there is no performance \
                 or FFI need that justifies unsafe here."
            }
            Rule::UDoc => {
                "Public fns in the physics crates that pass bare floats must name \
                 physical units in their doc comment or signature (the bios-units \
                 newtype is the unit) — an undimensioned float at a crate boundary \
                 is how calibration errors are born."
            }
            Rule::GTaint => {
                "The D bans are proven *transitively*: every function reachable from \
                 a determinism entry point (digest, digest_fnv, summaries_digest, \
                 digest_line, fingerprint, journal append/seal) over the approximate \
                 workspace call graph must be free of HashMap/HashSet/Instant::now/\
                 SystemTime::now/thread::current wherever it lives — per-module \
                 scoping cannot see a nondeterministic helper one call away. The \
                 finding message carries the full call chain from the entry point."
            }
            Rule::GLayer => {
                "Architecture layering, statically proven: physics crates (core, \
                 units, enzyme, electrochem, nanomaterial, labelfree, instrument) \
                 must never depend on serving crates (runtime, gateway, shard, \
                 stream, quorum, recover) — the sensor models stay deployable \
                 without the serving stack; prng and faults stay leaf-reachable so \
                 every crate can use them without import cycles; and any dependency \
                 cycle in the crate graph is a finding."
            }
            Rule::LLock => {
                "Calling .lock()/.recv()/.join() while a MutexGuard binding is live \
                 in the same block is the workspace's only deadlock shape: a second \
                 lock can invert order, and a blocking recv/join under a held lock \
                 starves every other thread contending for it. Drop the guard (or \
                 let it leave scope) before blocking."
            }
            Rule::LSend => {
                "Sending on a channel endpoint after its pair was explicitly dropped \
                 can only return Err — the code is either dead or silently dropping \
                 data."
            }
            Rule::WWaiver => {
                "Waivers are audited too: a waiver with no reason, or one that no \
                 longer suppresses a finding, is itself a finding so the allow-list \
                 can never rot."
            }
        };
        format!(
            "{id} ({family} family)\n\n{rationale}\n\nExample waiver (own line, \
             above or on the offending line):\n  // bios-audit: allow({id}) — <why \
             this specific site is sound>\n",
            id = self.id(),
            family = self.family(),
            rationale = rationale,
        )
    }
}

/// Path scoping plus the semantic-pass tables (layer sets and taint
/// entry points). Scope entries are `crates/`-relative prefixes (see
/// [`Config::in_scope`]); an empty list means every file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Scope of the D family: modules whose bytes feed digests,
    /// fingerprints, cached outcomes, or durable journal frames.
    pub digest_paths: Vec<String>,
    /// Scope of `P-index`: durability modules where an indexing panic
    /// would tear a journal or snapshot mid-write.
    pub index_paths: Vec<String>,
    /// Scope of the F family: solver and analytics code.
    pub float_paths: Vec<String>,
    /// Scope of `U-doc`: crates whose public API quantifies physics.
    pub doc_paths: Vec<String>,
    /// Substrings of words that satisfy the "doc names physical units"
    /// requirement, matched case-sensitively against the doc text.
    pub unit_vocabulary: Vec<String>,
    /// Lowercased fragments that mark an identifier in a `fn`
    /// signature as unit-bearing (`k0_cm_per_s`, `Molar`, `as_volts`).
    /// A signature that names its units this way satisfies `U-doc`
    /// without repeating them in prose — in this workspace the newtype
    /// *is* the unit.
    pub signature_unit_fragments: Vec<String>,
    /// Physics-layer crates (`G-layer`): sensor models and their
    /// supporting math. May never depend on the serving layer.
    pub physics_crates: Vec<String>,
    /// Serving-layer crates (`G-layer`): execution, routing,
    /// durability, redundancy.
    pub serving_crates: Vec<String>,
    /// Leaf-reachable crates (`G-layer`): `(crate, allowed deps)` —
    /// anything else they depend on is a finding.
    pub leaf_crates: Vec<(String, Vec<String>)>,
    /// Function names that start the `G-taint` reachability pass:
    /// digest/fingerprint/journal/codec entry points.
    pub taint_entries: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            digest_paths: vec![
                "src/cache".into(),
                "src/journal".into(),
                "src/codec".into(),
                "digest".into(),
                "fingerprint".into(),
                // The gateway's decision machines: every shed/trip/
                // brownout verdict feeds the overload digest, so wall
                // clocks and unordered maps are banned here too.
                "gateway/src/bucket".into(),
                "gateway/src/breaker".into(),
                // The stream layer's deterministic core: cohort
                // generation, the tick loop, and epoch swaps all feed
                // StreamReport::digest, which check.sh pins across
                // worker counts.
                "stream/src/cohort".into(),
                "stream/src/engine".into(),
                "stream/src/epoch".into(),
                // The sharded layer's placement machinery: routing,
                // quarantine folds, and report merging must stay pure
                // in (config, trace, tick) or the shard_gate digest
                // pin across (shard × worker) layouts breaks.
                "shard/src/route".into(),
                "shard/src/supervisor".into(),
                "shard/src/merge".into(),
                // The redundancy layer's deciding machinery: ballot
                // clustering, the majority vote, and the suspect
                // scoreboard must stay pure in (config, plan, job
                // stream) or quorum verdicts drift across layouts and
                // the quorum_gate digest pin breaks.
                "quorum/src/vote".into(),
                "quorum/src/suspect".into(),
                // The simulated disk: fault decisions and surviving-
                // prefix lengths must be pure in (seed, op-index) or
                // torture schedules stop replaying byte-identically.
                "recover/src/sim".into(),
            ],
            index_paths: vec![
                "recover/src/codec".into(),
                "recover/src/journal".into(),
                "recover/src/sim".into(),
                "runtime/src/cache".into(),
                "runtime/src/journal".into(),
            ],
            float_paths: vec![
                "analytics/src/".into(),
                "electrochem/src/".into(),
                "enzyme/src/".into(),
                "labelfree/src/".into(),
                "nanomaterial/src/".into(),
            ],
            doc_paths: vec![
                "electrochem/src/".into(),
                "enzyme/src/".into(),
                "units/src/".into(),
            ],
            unit_vocabulary: unit_vocabulary(),
            signature_unit_fragments: signature_unit_fragments(),
            physics_crates: [
                "core",
                "units",
                "enzyme",
                "electrochem",
                "nanomaterial",
                "labelfree",
                "instrument",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
            serving_crates: ["runtime", "gateway", "shard", "stream", "quorum", "recover"]
                .iter()
                .map(|s| (*s).to_string())
                .collect(),
            leaf_crates: vec![
                ("prng".to_string(), vec![]),
                (
                    "faults".to_string(),
                    vec!["prng".to_string(), "units".to_string()],
                ),
            ],
            taint_entries: [
                "digest",
                "digest_fnv",
                "summaries_digest",
                "digest_line",
                "fingerprint",
                "append",
                "seal",
            ]
            .iter()
            .map(|s| (*s).to_string())
            .collect(),
        }
    }
}

impl Config {
    /// Is `path` (normalized, forward slashes) in scope for `rule`?
    ///
    /// Scope entries are anchored to the `crates/`-relative path, not
    /// matched as bare substrings (a bare match would let
    /// `tests/shard/src/merge_fixture.rs` satisfy the
    /// `shard/src/merge` scope):
    ///
    /// * an entry containing `/` must prefix the path relative to
    ///   `crates/`, either as written (`shard/src/merge`) or with the
    ///   crate segment skipped (`src/cache` ⇒ any crate's cache
    ///   module); the workspace facade's own `src/` matches directly;
    /// * an entry without `/` (`digest`, `fingerprint`) must appear in
    ///   the file name itself.
    pub fn in_scope(&self, rule: Rule, path: &str) -> bool {
        let scopes: &[String] = match rule {
            Rule::DHash | Rule::DTime | Rule::DThread => &self.digest_paths,
            Rule::PIndex => &self.index_paths,
            Rule::FEq | Rule::FNarrow => &self.float_paths,
            Rule::UDoc => &self.doc_paths,
            Rule::PUnwrap
            | Rule::PExpect
            | Rule::PPanic
            | Rule::UUnsafe
            | Rule::GTaint
            | Rule::GLayer
            | Rule::LLock
            | Rule::LSend
            | Rule::WWaiver => return true,
        };
        scopes.iter().any(|s| scope_matches(s, path))
    }

    /// FNV-1a fingerprint of the whole rule table plus the tool
    /// version. Any change to either invalidates the per-file facts
    /// cache.
    pub fn fingerprint(&self) -> u64 {
        let rendered = format!("v{}|{:?}", env!("CARGO_PKG_VERSION"), self);
        crate::graph::fnv1a(rendered.as_bytes())
    }
}

/// Anchored scope matching (see [`Config::in_scope`]).
fn scope_matches(entry: &str, path: &str) -> bool {
    if entry.contains('/') {
        if let Some(rel) = path.strip_prefix("crates/") {
            return rel.starts_with(entry)
                || rel
                    .split_once('/')
                    .map(|(_, rest)| rest.starts_with(entry))
                    .unwrap_or(false);
        }
        // The facade package's own `src/` tree.
        return path.starts_with(entry);
    }
    let file = path.rsplit('/').next().unwrap_or(path);
    (path.starts_with("crates/") || path.starts_with("src/")) && file.contains(entry)
}

/// Words whose presence in a doc comment counts as "naming physical
/// units". The typed-quantity names count too: in this workspace a doc
/// that says "the applied [`Volts`]" *has* named the unit, because the
/// newtype is the unit.
fn unit_vocabulary() -> Vec<String> {
    [
        // SI spellings and common abbreviations used in the docs.
        "µA",
        "µM",
        "µm",
        "mM",
        "nA",
        "nM",
        "mV",
        "cm",
        "nm",
        "mol",
        "Hz",
        "kHz",
        "ohm",
        "Ω",
        "kelvin",
        "Kelvin",
        "volt",
        "Volt",
        "amp",
        "Amp",
        "second",
        "Second",
        "molar",
        "Molar",
        "M⁻¹",
        "s⁻¹",
        "cm²",
        "cm⁻²",
        "A·",
        "V·",
        "V/s",
        "A/cm",
        // Typed quantities from bios-units: naming the type names the unit.
        "Amperes",
        "Volts",
        "SquareCm",
        "Centimeters",
        "Seconds",
        "Kelvin",
        "Sensitivity",
        "CurrentDensity",
        "SurfaceLoading",
        "DiffusionCoefficient",
        "RateConstant",
        "ScanRate",
        "ConcentrationRange",
        // Spelled-out unit names.
        "Celsius",
        "celsius",
        "radian",
        "farad",
        "Farad",
        "siemens",
        "decade",
        "minute",
        "hour",
        // Dimensionless quantities must say so (either capitalization).
        "unitless",
        "dimensionless",
        "unit",
        "fraction",
        "ratio",
        "factor",
        "multiplier",
        "count",
        "index",
        "percent",
        "%",
        "boolean",
        "flag",
        "identifier",
        "name",
        "label",
        "Unitless",
        "Dimensionless",
        "Unit",
        "Fraction",
        "Ratio",
        "Factor",
        "Multiplier",
        "Count",
        "Index",
        "Percent",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

/// Lowercased substrings that mark a signature identifier as
/// unit-bearing: typed quantities from bios-units and conventional
/// unit-suffixed parameter names.
fn signature_unit_fragments() -> Vec<String> {
    [
        // bios-units typed quantities (lowercased type names).
        "molar",
        "amperes",
        "volts",
        "squarecm",
        "centimeters",
        "seconds",
        "kelvin",
        "sensitivity",
        "currentdensity",
        "surfaceloading",
        "diffusioncoefficient",
        "rateconstant",
        "scanrate",
        "concentrationrange",
        // Unit-suffixed identifier fragments (`k0_cm_per_s`, `f_per_cm2`,
        // `lod_micro_molar`, `as_volts`, `drift_volts`).
        "_per_",
        "per_s",
        "_cm",
        "cm2",
        "cm_",
        "_volt",
        "volt_",
        "_amp",
        "amp_",
        "_sec",
        "_micros",
        "_millis",
        "_nanos",
        "micro_",
        "milli_",
        "nano_",
        "_hz",
        "hz_",
        "_kelvin",
        "_celsius",
        "farads",
        "_ohm",
        "ohm_",
        "radians",
        "_molar",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

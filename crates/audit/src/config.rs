//! The rule set and its path-scoping table.
//!
//! Each rule belongs to one of four families keyed to this repo's
//! invariants (DESIGN.md §11):
//!
//! * **D — determinism**: digest/fingerprint/cache/journal/codec
//!   modules must not observe iteration order, wall clocks, or thread
//!   identity.
//! * **P — panic-freedom**: non-test code must not contain
//!   `unwrap`/`expect`/`panic!`/`todo!`/`unimplemented!`/`dbg!`;
//!   durability modules additionally must not index slices without
//!   `get`.
//! * **F — float hygiene**: solver and analytics code must not compare
//!   floats with `==`/`!=` or truncate `f64` to `f32` with `as`.
//! * **U — unsafe & API hygiene**: no `unsafe` anywhere; public `fn`s
//!   in the physics crates must carry a doc comment naming physical
//!   units.
//!
//! Scoping is by substring match on the repo-relative path, so the
//! table reads like the prose above. A rule with an empty scope list
//! applies everywhere.

/// Identifier of a single audit rule. The waiver grammar accepts
/// either this exact id or the one-letter family prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// D: `HashMap`/`HashSet` in a digest-path module (iteration order
    /// is nondeterministic; use `BTreeMap`/`BTreeSet`).
    DHash,
    /// D: `Instant::now`/`SystemTime::now` in a digest-path module.
    DTime,
    /// D: `thread::current()` (thread identity) in a digest-path module.
    DThread,
    /// P: `.unwrap()` in non-test code.
    PUnwrap,
    /// P: `.expect(…)` in non-test code.
    PExpect,
    /// P: `panic!`/`todo!`/`unimplemented!`/`dbg!` in non-test code.
    PPanic,
    /// P: slice/array indexing without `get` in a durability module.
    PIndex,
    /// F: `==`/`!=` against a float expression in solver/analytics code.
    FEq,
    /// F: `as f32` truncation in solver/analytics code.
    FNarrow,
    /// U: any `unsafe` block or fn.
    UUnsafe,
    /// U: public `fn` without a unit-naming doc comment in a physics
    /// crate.
    UDoc,
    /// W: a waiver comment that is malformed (missing reason) or did
    /// not suppress any finding.
    WWaiver,
}

impl Rule {
    /// The stable id printed in findings and accepted in waivers.
    pub fn id(self) -> &'static str {
        match self {
            Rule::DHash => "D-hash",
            Rule::DTime => "D-time",
            Rule::DThread => "D-thread",
            Rule::PUnwrap => "P-unwrap",
            Rule::PExpect => "P-expect",
            Rule::PPanic => "P-panic",
            Rule::PIndex => "P-index",
            Rule::FEq => "F-eq",
            Rule::FNarrow => "F-narrow",
            Rule::UUnsafe => "U-unsafe",
            Rule::UDoc => "U-doc",
            Rule::WWaiver => "W-waiver",
        }
    }

    /// One-letter family prefix (`D`, `P`, `F`, `U`, `W`).
    pub fn family(self) -> &'static str {
        match self {
            Rule::DHash | Rule::DTime | Rule::DThread => "D",
            Rule::PUnwrap | Rule::PExpect | Rule::PPanic | Rule::PIndex => "P",
            Rule::FEq | Rule::FNarrow => "F",
            Rule::UUnsafe | Rule::UDoc => "U",
            Rule::WWaiver => "W",
        }
    }

    /// Every enforceable rule, in report order.
    pub const ALL: &'static [Rule] = &[
        Rule::DHash,
        Rule::DTime,
        Rule::DThread,
        Rule::PUnwrap,
        Rule::PExpect,
        Rule::PPanic,
        Rule::PIndex,
        Rule::FEq,
        Rule::FNarrow,
        Rule::UUnsafe,
        Rule::UDoc,
    ];
}

/// Path scoping: a file is in scope for a rule family when its
/// normalized (forward-slash) path contains one of the listed
/// substrings. Empty list = every file.
#[derive(Debug, Clone)]
pub struct Config {
    /// Scope of the D family: modules whose bytes feed digests,
    /// fingerprints, cached outcomes, or durable journal frames.
    pub digest_paths: Vec<String>,
    /// Scope of `P-index`: durability modules where an indexing panic
    /// would tear a journal or snapshot mid-write.
    pub index_paths: Vec<String>,
    /// Scope of the F family: solver and analytics code.
    pub float_paths: Vec<String>,
    /// Scope of `U-doc`: crates whose public API quantifies physics.
    pub doc_paths: Vec<String>,
    /// Substrings of words that satisfy the "doc names physical units"
    /// requirement, matched case-sensitively against the doc text.
    pub unit_vocabulary: Vec<String>,
    /// Lowercased fragments that mark an identifier in a `fn`
    /// signature as unit-bearing (`k0_cm_per_s`, `Molar`, `as_volts`).
    /// A signature that names its units this way satisfies `U-doc`
    /// without repeating them in prose — in this workspace the newtype
    /// *is* the unit.
    pub signature_unit_fragments: Vec<String>,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            digest_paths: vec![
                "src/cache".into(),
                "src/journal".into(),
                "src/codec".into(),
                "digest".into(),
                "fingerprint".into(),
                // The gateway's decision machines: every shed/trip/
                // brownout verdict feeds the overload digest, so wall
                // clocks and unordered maps are banned here too.
                "gateway/src/bucket".into(),
                "gateway/src/breaker".into(),
                // The stream layer's deterministic core: cohort
                // generation, the tick loop, and epoch swaps all feed
                // StreamReport::digest, which check.sh pins across
                // worker counts.
                "stream/src/cohort".into(),
                "stream/src/engine".into(),
                "stream/src/epoch".into(),
                // The sharded layer's placement machinery: routing,
                // quarantine folds, and report merging must stay pure
                // in (config, trace, tick) or the shard_gate digest
                // pin across (shard × worker) layouts breaks.
                "shard/src/route".into(),
                "shard/src/supervisor".into(),
                "shard/src/merge".into(),
                // The redundancy layer's deciding machinery: ballot
                // clustering, the majority vote, and the suspect
                // scoreboard must stay pure in (config, plan, job
                // stream) or quorum verdicts drift across layouts and
                // the quorum_gate digest pin breaks.
                "quorum/src/vote".into(),
                "quorum/src/suspect".into(),
            ],
            index_paths: vec![
                "recover/src/codec".into(),
                "recover/src/journal".into(),
                "runtime/src/cache".into(),
                "runtime/src/journal".into(),
            ],
            float_paths: vec![
                "analytics/src/".into(),
                "electrochem/src/".into(),
                "enzyme/src/".into(),
                "labelfree/src/".into(),
                "nanomaterial/src/".into(),
            ],
            doc_paths: vec![
                "electrochem/src/".into(),
                "enzyme/src/".into(),
                "units/src/".into(),
            ],
            unit_vocabulary: unit_vocabulary(),
            signature_unit_fragments: signature_unit_fragments(),
        }
    }
}

impl Config {
    /// Is `path` (normalized, forward slashes) in scope for `rule`?
    pub fn in_scope(&self, rule: Rule, path: &str) -> bool {
        let scopes: &[String] = match rule {
            Rule::DHash | Rule::DTime | Rule::DThread => &self.digest_paths,
            Rule::PIndex => &self.index_paths,
            Rule::FEq | Rule::FNarrow => &self.float_paths,
            Rule::UDoc => &self.doc_paths,
            Rule::PUnwrap | Rule::PExpect | Rule::PPanic | Rule::UUnsafe | Rule::WWaiver => {
                return true
            }
        };
        scopes.iter().any(|s| path.contains(s.as_str()))
    }
}

/// Words whose presence in a doc comment counts as "naming physical
/// units". The typed-quantity names count too: in this workspace a doc
/// that says "the applied [`Volts`]" *has* named the unit, because the
/// newtype is the unit.
fn unit_vocabulary() -> Vec<String> {
    [
        // SI spellings and common abbreviations used in the docs.
        "µA",
        "µM",
        "µm",
        "mM",
        "nA",
        "nM",
        "mV",
        "cm",
        "nm",
        "mol",
        "Hz",
        "kHz",
        "ohm",
        "Ω",
        "kelvin",
        "Kelvin",
        "volt",
        "Volt",
        "amp",
        "Amp",
        "second",
        "Second",
        "molar",
        "Molar",
        "M⁻¹",
        "s⁻¹",
        "cm²",
        "cm⁻²",
        "A·",
        "V·",
        "V/s",
        "A/cm",
        // Typed quantities from bios-units: naming the type names the unit.
        "Amperes",
        "Volts",
        "SquareCm",
        "Centimeters",
        "Seconds",
        "Kelvin",
        "Sensitivity",
        "CurrentDensity",
        "SurfaceLoading",
        "DiffusionCoefficient",
        "RateConstant",
        "ScanRate",
        "ConcentrationRange",
        // Spelled-out unit names.
        "Celsius",
        "celsius",
        "radian",
        "farad",
        "Farad",
        "siemens",
        "decade",
        "minute",
        "hour",
        // Dimensionless quantities must say so (either capitalization).
        "unitless",
        "dimensionless",
        "unit",
        "fraction",
        "ratio",
        "factor",
        "multiplier",
        "count",
        "index",
        "percent",
        "%",
        "boolean",
        "flag",
        "identifier",
        "name",
        "label",
        "Unitless",
        "Dimensionless",
        "Unit",
        "Fraction",
        "Ratio",
        "Factor",
        "Multiplier",
        "Count",
        "Index",
        "Percent",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

/// Lowercased substrings that mark a signature identifier as
/// unit-bearing: typed quantities from bios-units and conventional
/// unit-suffixed parameter names.
fn signature_unit_fragments() -> Vec<String> {
    [
        // bios-units typed quantities (lowercased type names).
        "molar",
        "amperes",
        "volts",
        "squarecm",
        "centimeters",
        "seconds",
        "kelvin",
        "sensitivity",
        "currentdensity",
        "surfaceloading",
        "diffusioncoefficient",
        "rateconstant",
        "scanrate",
        "concentrationrange",
        // Unit-suffixed identifier fragments (`k0_cm_per_s`, `f_per_cm2`,
        // `lod_micro_molar`, `as_volts`, `drift_volts`).
        "_per_",
        "per_s",
        "_cm",
        "cm2",
        "cm_",
        "_volt",
        "volt_",
        "_amp",
        "amp_",
        "_sec",
        "_micros",
        "_millis",
        "_nanos",
        "micro_",
        "milli_",
        "nano_",
        "_hz",
        "hz_",
        "_kelvin",
        "_celsius",
        "farads",
        "_ohm",
        "ohm_",
        "radians",
        "_molar",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect()
}

//! Workspace graphs: the crate dependency graph and the approximate
//! intra-workspace call graph, plus the G-family rules that run on
//! them (DESIGN.md §16).
//!
//! * **G-taint** — every function transitively reachable from a
//!   determinism entry point (`digest`, `digest_fnv`,
//!   `summaries_digest`, `digest_line`, `fingerprint`, journal
//!   `append`/`seal`) must be free of the D-banned APIs *wherever it
//!   lives*, not just inside the D-scoped modules. Findings carry the
//!   full call chain from the entry point to the offending token.
//! * **G-layer** — architecture layering: physics crates must never
//!   depend on serving crates, `prng`/`faults` must stay
//!   leaf-reachable, and any dependency cycle is a finding.
//!
//! Call resolution is deliberately approximate (no type inference):
//! `recv.method()` resolves to every workspace `impl` method of that
//! name, `Qual::f()` to functions owned by a type or module named
//! `Qual`, and bare `f()` to same-file functions first, then free
//! functions anywhere. The soundness caveats are documented in
//! DESIGN.md §16 — over-approximation can demand a waiver, but a
//! nondeterministic call on a real digest path cannot hide in an
//! unscoped helper.

use crate::config::{Config, Rule};
use crate::items::{Item, ItemKind};
use crate::lexer::{Token, TokenKind};
use crate::rules::Finding;
use std::collections::{BTreeMap, BTreeSet};

/// A D-banned API occurrence inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BannedSite {
    /// Which API was named (`HashMap`, `Instant::now`, …).
    pub api: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
}

/// How a call site names its callee.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CallKind {
    /// `f(..)` — a bare call.
    Free,
    /// `Qual::f(..)` — qualified by a type or module segment.
    Path,
    /// `recv.f(..)` — a method call.
    Method,
}

impl CallKind {
    /// Single-letter tag for the cache serialization.
    pub fn tag(self) -> char {
        match self {
            CallKind::Free => 'F',
            CallKind::Path => 'P',
            CallKind::Method => 'M',
        }
    }

    /// Inverse of [`CallKind::tag`].
    pub fn from_tag(c: char) -> Option<CallKind> {
        match c {
            'F' => Some(CallKind::Free),
            'P' => Some(CallKind::Path),
            'M' => Some(CallKind::Method),
            _ => None,
        }
    }
}

/// One call site inside a function body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallSite {
    /// Resolution mode.
    pub kind: CallKind,
    /// The `Qual` of a [`CallKind::Path`] call.
    pub qualifier: Option<String>,
    /// The callee's bare name.
    pub name: String,
    /// 1-based line of the callee token.
    pub line: u32,
    /// 1-based column of the callee token.
    pub col: u32,
}

/// Everything the graph passes need to know about one function.
#[derive(Debug, Clone)]
pub struct FnFact {
    /// Display-qualified name (`runtime::WorkerPool::heal`).
    pub qual: String,
    /// Bare function name.
    pub name: String,
    /// The `impl`/`trait` type owning this method, if any.
    pub owner: Option<String>,
    /// Names under which a `Qual::f` path call can reach this
    /// function's module: enclosing mod names, the file stem, and the
    /// crate's `bios_*` aliases.
    pub module_aliases: Vec<String>,
    /// 1-based line of the `fn` item.
    pub line: u32,
    /// 1-based column of the `fn` item.
    pub col: u32,
    /// Call sites inside the body.
    pub calls: Vec<CallSite>,
    /// D-banned API occurrences inside the body.
    pub banned: Vec<BannedSite>,
}

/// A reference to another workspace crate found in a source file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseDep {
    /// The referenced crate's short name (`runtime`, not
    /// `bios_runtime`).
    pub krate: String,
    /// 1-based line of the reference.
    pub line: u32,
    /// 1-based column of the reference.
    pub col: u32,
}

/// The per-file facts feeding the cross-file passes. Produced by
/// [`crate::rules::analyze_file`], cacheable by source-byte FNV.
#[derive(Debug, Clone, Default)]
pub struct FileFacts {
    /// Repo-relative path with forward slashes.
    pub path: String,
    /// FNV-1a of the source bytes, the cache key.
    pub source_fnv: u64,
    /// Local (single-file) findings, *before* waiver application.
    pub local_findings: Vec<Finding>,
    /// Waivers declared in the file.
    pub waivers: Vec<crate::rules::WaiverRecord>,
    /// Non-test functions with their call sites and banned sites.
    pub fns: Vec<FnFact>,
    /// Workspace crates this file references outside test code.
    pub use_deps: Vec<UseDep>,
}

/// FNV-1a over arbitrary bytes — the same hash discipline as the rest
/// of the workspace (`bios-faults`, `bios-recover`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The crate short name a repo-relative path belongs to:
/// `crates/runtime/src/…` → `runtime`, the facade `src/…` → `biosim`.
pub fn crate_of_path(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        return rest.split('/').next().map(str::to_string);
    }
    if path.starts_with("src/") {
        return Some("biosim".to_string());
    }
    None
}

/// Keywords that can precede `(` without the identifier being a call.
const CALL_KEYWORDS: &[&str] = &[
    "if", "while", "for", "match", "return", "loop", "move", "in", "as", "else", "let", "mut",
    "ref", "fn", "impl", "where", "dyn", "box", "break", "continue", "unsafe", "async", "await",
];

/// Extract [`FnFact`]s and [`UseDep`]s from a parsed file.
///
/// `masked` marks test-gated tokens (same mask the local rules use);
/// masked tokens contribute neither call edges nor use-dependencies.
pub fn extract_facts(
    path: &str,
    tokens: &[Token],
    masked: &[bool],
    items: &[Item],
) -> (Vec<FnFact>, Vec<UseDep>) {
    let krate = crate_of_path(path);
    let stem = path
        .rsplit('/')
        .next()
        .and_then(|f| f.strip_suffix(".rs"))
        .unwrap_or("");
    let mut base_aliases: Vec<String> = Vec::new();
    if !matches!(stem, "lib" | "main" | "mod" | "") {
        base_aliases.push(stem.to_string());
    }
    if let Some(k) = &krate {
        base_aliases.push(k.clone());
        base_aliases.push(format!("bios_{k}"));
    }

    let mut fns = Vec::new();
    collect_fns(
        tokens,
        items,
        krate.as_deref().unwrap_or("?"),
        &base_aliases,
        &[],
        None,
        &mut fns,
    );

    // Workspace-crate references anywhere in non-test code: both
    // `use bios_x::…` items and inline `bios_x::…` paths.
    let mut use_deps: Vec<UseDep> = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for (i, t) in tokens.iter().enumerate() {
        if masked.get(i).copied().unwrap_or(false) || t.kind != TokenKind::Ident {
            continue;
        }
        let Some(name) = t.text.strip_prefix("bios_") else {
            continue;
        };
        if name.is_empty() || Some(name) == krate.as_deref() {
            continue;
        }
        if seen.insert(name.to_string()) {
            use_deps.push(UseDep {
                krate: name.to_string(),
                line: t.line,
                col: t.col,
            });
        }
    }
    (fns, use_deps)
}

/// Walk the item tree collecting non-test functions with their body
/// facts.
fn collect_fns(
    tokens: &[Token],
    items: &[Item],
    krate: &str,
    base_aliases: &[String],
    mod_path: &[String],
    owner: Option<&str>,
    out: &mut Vec<FnFact>,
) {
    for item in items {
        if item.test_only {
            continue;
        }
        match item.kind {
            ItemKind::Fn => {
                let mut qual = String::from(krate);
                for m in mod_path {
                    qual.push_str("::");
                    qual.push_str(m);
                }
                if let Some(o) = owner {
                    qual.push_str("::");
                    qual.push_str(o);
                }
                qual.push_str("::");
                qual.push_str(&item.name);
                let mut aliases: Vec<String> = base_aliases.to_vec();
                if let Some(last) = mod_path.last() {
                    aliases.push(last.clone());
                }
                aliases.push("self".to_string());
                aliases.push("crate".to_string());
                aliases.push("Self".to_string());
                let (calls, banned) = match item.body {
                    Some((start, end)) => scan_body(tokens, start, end),
                    None => (Vec::new(), Vec::new()),
                };
                out.push(FnFact {
                    qual,
                    name: item.name.clone(),
                    owner: owner.map(str::to_string),
                    module_aliases: aliases,
                    line: item.line,
                    col: item.col,
                    calls,
                    banned,
                });
            }
            ItemKind::Impl | ItemKind::Trait => {
                collect_fns(
                    tokens,
                    &item.children,
                    krate,
                    base_aliases,
                    mod_path,
                    Some(&item.name),
                    out,
                );
            }
            ItemKind::Mod => {
                let mut nested = mod_path.to_vec();
                nested.push(item.name.clone());
                collect_fns(
                    tokens,
                    &item.children,
                    krate,
                    base_aliases,
                    &nested,
                    owner,
                    out,
                );
            }
            ItemKind::Use => {}
        }
    }
}

/// Scan a function body (raw-token range) for call sites and D-banned
/// API occurrences.
fn scan_body(tokens: &[Token], start: usize, end: usize) -> (Vec<CallSite>, Vec<BannedSite>) {
    let code: Vec<usize> = (start..end.min(tokens.len()))
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut calls = Vec::new();
    let mut banned = Vec::new();
    for (k, &i) in code.iter().enumerate() {
        let t = &tokens[i];
        if t.kind != TokenKind::Ident {
            continue;
        }
        let prev = k.checked_sub(1).map(|p| tokens[code[p]].text.as_str());
        let prev2 = k.checked_sub(2).map(|p| tokens[code[p]].text.as_str());
        let next = code.get(k + 1).map(|&j| tokens[j].text.as_str());
        let next2 = code.get(k + 2).map(|&j| tokens[j].text.as_str());

        match t.text.as_str() {
            "HashMap" | "HashSet" => banned.push(BannedSite {
                api: t.text.clone(),
                line: t.line,
                col: t.col,
            }),
            "Instant" | "SystemTime" if next == Some("::") && next2 == Some("now") => {
                banned.push(BannedSite {
                    api: format!("{}::now", t.text),
                    line: t.line,
                    col: t.col,
                });
            }
            "thread" if next == Some("::") && next2 == Some("current") => {
                banned.push(BannedSite {
                    api: "thread::current".to_string(),
                    line: t.line,
                    col: t.col,
                });
            }
            _ => {}
        }

        // A call: ident immediately followed by `(` — but not a macro
        // (`name!(…)`), not a keyword, and not a definition (`fn name(`).
        if next != Some("(") {
            continue;
        }
        if CALL_KEYWORDS.contains(&t.text.as_str()) || prev == Some("fn") {
            continue;
        }
        let (kind, qualifier) = match prev {
            Some(".") => (CallKind::Method, None),
            Some("::") => {
                let q = prev2.filter(|q| {
                    q.chars()
                        .next()
                        .map(|c| c.is_alphanumeric() || c == '_')
                        .unwrap_or(false)
                });
                (CallKind::Path, q.map(str::to_string))
            }
            _ => (CallKind::Free, None),
        };
        calls.push(CallSite {
            kind,
            qualifier,
            name: t.text.clone(),
            line: t.line,
            col: t.col,
        });
    }
    (calls, banned)
}

// ---------------------------------------------------------------------------
// Crate dependency graph (G-layer)
// ---------------------------------------------------------------------------

/// One crate-to-crate dependency edge with the site that created it.
#[derive(Debug, Clone)]
pub struct DepEdge {
    /// Depending crate (short name).
    pub from: String,
    /// Depended-on crate (short name).
    pub to: String,
    /// File the edge was found in (a manifest or a source file).
    pub file: String,
    /// 1-based line of the dependency declaration or path reference.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// Parse a crate manifest for its `bios-*` entries under
/// `[dependencies]` (dev- and build-dependencies are exempt: tests may
/// cross layers).
pub fn parse_manifest(manifest_path: &str, content: &str) -> Vec<DepEdge> {
    let Some(from) = crate_of_path(manifest_path) else {
        return Vec::new();
    };
    let mut edges = Vec::new();
    let mut in_dependencies = false;
    for (idx, line) in content.lines().enumerate() {
        let trimmed = line.trim();
        if trimmed.starts_with('[') {
            in_dependencies = trimmed == "[dependencies]";
            continue;
        }
        if !in_dependencies {
            continue;
        }
        let Some(key) = trimmed.split(['=', ' ', '\t']).next() else {
            continue;
        };
        if let Some(to) = key.strip_prefix("bios-") {
            if !to.is_empty() {
                let col = line.find(key).map(|c| c + 1).unwrap_or(1) as u32;
                edges.push(DepEdge {
                    from: from.clone(),
                    to: to.to_string(),
                    file: manifest_path.to_string(),
                    line: (idx + 1) as u32,
                    col,
                });
            }
        }
    }
    edges
}

/// Build the full crate dependency edge list from manifests plus
/// per-file use-references.
pub fn dep_edges(manifest_edges: &[DepEdge], files: &[FileFacts]) -> Vec<DepEdge> {
    let mut edges: Vec<DepEdge> = manifest_edges.to_vec();
    let mut seen: BTreeSet<(String, String)> = manifest_edges
        .iter()
        .map(|e| (e.from.clone(), e.to.clone()))
        .collect();
    for f in files {
        let Some(from) = crate_of_path(&f.path) else {
            continue;
        };
        for dep in &f.use_deps {
            if seen.insert((from.clone(), dep.krate.clone())) {
                edges.push(DepEdge {
                    from: from.clone(),
                    to: dep.krate.clone(),
                    file: f.path.clone(),
                    line: dep.line,
                    col: dep.col,
                });
            }
        }
    }
    edges
}

/// Run the G-layer checks over the dependency edges: layering,
/// leaf-reachability, and cycles.
pub fn layer_findings(config: &Config, edges: &[DepEdge]) -> Vec<Finding> {
    let mut findings = Vec::new();
    let physics: BTreeSet<&str> = config.physics_crates.iter().map(String::as_str).collect();
    let serving: BTreeSet<&str> = config.serving_crates.iter().map(String::as_str).collect();

    for e in edges {
        if physics.contains(e.from.as_str()) && serving.contains(e.to.as_str()) {
            findings.push(Finding {
                path: e.file.clone(),
                line: e.line,
                col: e.col,
                rule: Rule::GLayer,
                message: format!(
                    "physics crate `{}` must not depend on serving crate `{}` — \
                     the physics layer stays deployable without the serving stack",
                    e.from, e.to
                ),
            });
        }
        if let Some((_, allowed)) = config.leaf_crates.iter().find(|(name, _)| name == &e.from) {
            if !allowed.iter().any(|a| a == &e.to) {
                let allowed_list = if allowed.is_empty() {
                    "none".to_string()
                } else {
                    allowed.join(", ")
                };
                findings.push(Finding {
                    path: e.file.clone(),
                    line: e.line,
                    col: e.col,
                    rule: Rule::GLayer,
                    message: format!(
                        "`{}` must stay leaf-reachable but depends on `{}` \
                         (allowed dependencies: {allowed_list})",
                        e.from, e.to
                    ),
                });
            }
        }
    }

    // Cycle detection over the crate graph (iterative DFS with
    // colors). Any back edge is reported once, anchored at the edge
    // that closes the cycle.
    let mut adj: BTreeMap<&str, Vec<&DepEdge>> = BTreeMap::new();
    for e in edges {
        adj.entry(e.from.as_str()).or_default().push(e);
    }
    let mut color: BTreeMap<&str, u8> = BTreeMap::new(); // 0 white, 1 grey, 2 black
    let nodes: BTreeSet<&str> = edges
        .iter()
        .flat_map(|e| [e.from.as_str(), e.to.as_str()])
        .collect();
    for &start in &nodes {
        if color.get(start).copied().unwrap_or(0) != 0 {
            continue;
        }
        // Stack of (node, next-edge-index), plus the grey path for
        // cycle rendering.
        let mut stack: Vec<(&str, usize)> = vec![(start, 0)];
        let mut path: Vec<&str> = vec![start];
        color.insert(start, 1);
        while let Some((node, idx)) = stack.last_mut() {
            let out = adj.get(node).map(Vec::as_slice).unwrap_or(&[]);
            if *idx >= out.len() {
                color.insert(node, 2);
                stack.pop();
                path.pop();
                continue;
            }
            let edge = out[*idx];
            *idx += 1;
            match color.get(edge.to.as_str()).copied().unwrap_or(0) {
                0 => {
                    color.insert(edge.to.as_str(), 1);
                    stack.push((edge.to.as_str(), 0));
                    path.push(edge.to.as_str());
                }
                1 => {
                    let cycle_start = path
                        .iter()
                        .position(|&n| n == edge.to.as_str())
                        .unwrap_or(0);
                    let mut cycle: Vec<&str> = path[cycle_start..].to_vec();
                    cycle.push(edge.to.as_str());
                    findings.push(Finding {
                        path: edge.file.clone(),
                        line: edge.line,
                        col: edge.col,
                        rule: Rule::GLayer,
                        message: format!(
                            "dependency cycle: {} — the crate graph must stay acyclic",
                            cycle.join(" → ")
                        ),
                    });
                }
                _ => {}
            }
        }
    }
    findings
}

// ---------------------------------------------------------------------------
// Call graph + taint (G-taint)
// ---------------------------------------------------------------------------

/// One G-taint finding's provenance, surfaced in `AUDIT_report.json`.
#[derive(Debug, Clone)]
pub struct TaintChain {
    /// File of the offending (banned-API) token.
    pub file: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// The banned API named at the site.
    pub api: String,
    /// Qualified function names from the entry point to the offender.
    pub chain: Vec<String>,
}

/// The approximate workspace call graph.
#[derive(Debug)]
pub struct CallGraph {
    /// `(file index, fn index)` per node, indexing into the input.
    nodes: Vec<(usize, usize)>,
    /// Adjacency: callee node indices per node.
    edges: Vec<Vec<usize>>,
}

impl CallGraph {
    /// Build the graph: one node per non-test function, edges by the
    /// approximate resolution rules described in the module docs.
    pub fn build(files: &[FileFacts]) -> CallGraph {
        let mut nodes = Vec::new();
        let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let node = nodes.len();
                nodes.push((fi, gi));
                by_name.entry(f.name.as_str()).or_default().push(node);
            }
        }
        let fact = |n: usize, nodes: &[(usize, usize)]| -> &FnFact {
            let (fi, gi) = nodes[n];
            &files[fi].fns[gi]
        };
        let mut edges: Vec<Vec<usize>> = vec![Vec::new(); nodes.len()];
        for n in 0..nodes.len() {
            let (fi, _) = nodes[n];
            let caller = fact(n, &nodes);
            let mut out: BTreeSet<usize> = BTreeSet::new();
            for call in &caller.calls {
                let Some(candidates) = by_name.get(call.name.as_str()) else {
                    continue;
                };
                match call.kind {
                    CallKind::Method => {
                        // `x.m()` must be a method: any workspace impl
                        // method of that name.
                        for &c in candidates {
                            if fact(c, &nodes).owner.is_some() {
                                out.insert(c);
                            }
                        }
                    }
                    CallKind::Path => {
                        let q = call.qualifier.as_deref();
                        for &c in candidates {
                            let cf = fact(c, &nodes);
                            let matches = match q {
                                None => false,
                                Some(q) => {
                                    cf.owner.as_deref() == Some(q)
                                        || cf.module_aliases.iter().any(|a| a == q)
                                }
                            };
                            if matches {
                                out.insert(c);
                            }
                        }
                    }
                    CallKind::Free => {
                        // Same-file candidates win; otherwise free
                        // functions anywhere.
                        let same_file: Vec<usize> = candidates
                            .iter()
                            .copied()
                            .filter(|&c| nodes[c].0 == fi)
                            .collect();
                        if same_file.is_empty() {
                            for &c in candidates {
                                if fact(c, &nodes).owner.is_none() {
                                    out.insert(c);
                                }
                            }
                        } else {
                            out.extend(same_file);
                        }
                    }
                }
            }
            out.remove(&n); // self-recursion adds nothing to taint
            edges[n] = out.into_iter().collect();
        }
        CallGraph { nodes, edges }
    }

    /// Run the taint pass: BFS from every entry-named function,
    /// reporting each banned site reachable from an entry exactly once
    /// (shortest chain wins). Returns findings plus the chains for the
    /// report.
    pub fn taint(&self, files: &[FileFacts], config: &Config) -> (Vec<Finding>, Vec<TaintChain>) {
        let fact = |n: usize| -> (&FileFacts, &FnFact) {
            let (fi, gi) = self.nodes[n];
            (&files[fi], &files[fi].fns[gi])
        };
        let mut queue: std::collections::VecDeque<usize> = std::collections::VecDeque::new();
        let mut parent: Vec<Option<usize>> = vec![None; self.nodes.len()];
        let mut visited: Vec<bool> = vec![false; self.nodes.len()];
        let mut entry_of: Vec<Option<usize>> = vec![None; self.nodes.len()];
        // Entries in deterministic order: nodes are already ordered by
        // (file, fn) position.
        for n in 0..self.nodes.len() {
            let (_, f) = fact(n);
            if config.taint_entries.iter().any(|e| e == &f.name) {
                visited[n] = true;
                entry_of[n] = Some(n);
                queue.push_back(n);
            }
        }
        while let Some(n) = queue.pop_front() {
            for &m in &self.edges[n] {
                if !visited[m] {
                    visited[m] = true;
                    parent[m] = Some(n);
                    entry_of[m] = entry_of[n];
                    queue.push_back(m);
                }
            }
        }

        let mut findings = Vec::new();
        let mut chains = Vec::new();
        let mut reported: BTreeSet<(String, u32, u32)> = BTreeSet::new();
        for n in 0..self.nodes.len() {
            if !visited[n] {
                continue;
            }
            let (file, f) = fact(n);
            if f.banned.is_empty() {
                continue;
            }
            // Reconstruct entry → … → offender.
            let mut chain: Vec<String> = Vec::new();
            let mut cur = Some(n);
            while let Some(c) = cur {
                chain.push(fact(c).1.qual.clone());
                cur = parent[c];
            }
            chain.reverse();
            let entry_name = entry_of[n]
                .map(|e| fact(e).1.qual.clone())
                .unwrap_or_default();
            for site in &f.banned {
                if !reported.insert((file.path.clone(), site.line, site.col)) {
                    continue;
                }
                findings.push(Finding {
                    path: file.path.clone(),
                    line: site.line,
                    col: site.col,
                    rule: Rule::GTaint,
                    message: format!(
                        "`{}` is reachable from determinism entry `{}` via {} — \
                         banned APIs must not feed digested bytes wherever they live",
                        site.api,
                        entry_name,
                        chain.join(" → ")
                    ),
                });
                chains.push(TaintChain {
                    file: file.path.clone(),
                    line: site.line,
                    col: site.col,
                    api: site.api.clone(),
                    chain: chain.clone(),
                });
            }
        }
        (findings, chains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items::parse_items;
    use crate::lexer::tokenize;

    fn facts_for(path: &str, src: &str) -> FileFacts {
        let tokens = tokenize(src);
        let masked = vec![false; tokens.len()];
        let items = parse_items(&tokens);
        let (fns, use_deps) = extract_facts(path, &tokens, &masked, &items);
        FileFacts {
            path: path.to_string(),
            source_fnv: fnv1a(src.as_bytes()),
            fns,
            use_deps,
            ..FileFacts::default()
        }
    }

    #[test]
    fn crate_of_path_handles_crates_and_facade() {
        assert_eq!(
            crate_of_path("crates/runtime/src/pool.rs").as_deref(),
            Some("runtime")
        );
        assert_eq!(crate_of_path("src/lib.rs").as_deref(), Some("biosim"));
        assert_eq!(crate_of_path("tests/integration.rs"), None);
    }

    #[test]
    fn call_sites_classify_free_path_method() {
        let f = facts_for(
            "crates/runtime/src/lib.rs",
            "fn caller() { helper(); Type::assoc(); value.method(); mac!(ignored()); }",
        );
        let calls = &f.fns[0].calls;
        let kinds: Vec<(CallKind, &str)> =
            calls.iter().map(|c| (c.kind, c.name.as_str())).collect();
        assert!(kinds.contains(&(CallKind::Free, "helper")), "{kinds:?}");
        assert!(kinds.contains(&(CallKind::Path, "assoc")), "{kinds:?}");
        assert!(kinds.contains(&(CallKind::Method, "method")), "{kinds:?}");
        // `ignored()` inside the macro args still counts (approximate),
        // but `mac` itself must not: it is a macro, not a call.
        assert!(!kinds.iter().any(|(_, n)| *n == "mac"), "{kinds:?}");
    }

    #[test]
    fn banned_sites_are_recorded_with_positions() {
        let f = facts_for(
            "crates/runtime/src/lib.rs",
            "fn t() { let m = HashMap::new(); let i = Instant::now(); }",
        );
        let apis: Vec<&str> = f.fns[0].banned.iter().map(|b| b.api.as_str()).collect();
        assert_eq!(apis, vec!["HashMap", "Instant::now"]);
    }

    #[test]
    fn taint_follows_two_hops_and_reports_the_chain() {
        let f = facts_for(
            "crates/faults/src/plan.rs",
            "pub fn digest() -> u64 { render() }\n\
             fn render() -> u64 { salt() }\n\
             fn salt() -> u64 { let t = std::time::Instant::now(); 0 }",
        );
        let files = vec![f];
        let graph = CallGraph::build(&files);
        let (findings, chains) = graph.taint(&files, &Config::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].rule, Rule::GTaint);
        assert!(
            findings[0]
                .message
                .contains("digest → faults::render → faults::salt"),
            "{}",
            findings[0].message
        );
        assert_eq!(chains[0].api, "Instant::now");
    }

    #[test]
    fn taint_ignores_unreachable_banned_sites() {
        let f = facts_for(
            "crates/faults/src/plan.rs",
            "pub fn digest() -> u64 { 0 }\n\
             fn lonely() -> u64 { let t = std::time::Instant::now(); 0 }",
        );
        let files = vec![f];
        let graph = CallGraph::build(&files);
        let (findings, _) = graph.taint(&files, &Config::default());
        assert!(findings.is_empty(), "{findings:?}");
    }

    #[test]
    fn taint_crosses_files_via_method_calls() {
        let a = facts_for(
            "crates/gateway/src/lib.rs",
            "impl Report { pub fn digest(&self) -> u64 { self.helper.salted() } }",
        );
        let b = facts_for(
            "crates/faults/src/plan.rs",
            "impl Helper { pub fn salted(&self) -> u64 { let t = Instant::now(); 1 } }",
        );
        let files = vec![a, b];
        let graph = CallGraph::build(&files);
        let (findings, _) = graph.taint(&files, &Config::default());
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].path, "crates/faults/src/plan.rs");
    }

    #[test]
    fn manifest_parsing_finds_bios_deps_with_lines() {
        let edges = parse_manifest(
            "crates/enzyme/Cargo.toml",
            "[package]\nname = \"bios-enzyme\"\n\n[dependencies]\n\
             bios-units = { workspace = true }\nbios-runtime = { workspace = true }\n\n\
             [dev-dependencies]\nbios-prng = { workspace = true }\n",
        );
        let tos: Vec<&str> = edges.iter().map(|e| e.to.as_str()).collect();
        assert_eq!(tos, vec!["units", "runtime"], "dev-deps are exempt");
        assert_eq!(edges[1].line, 6);
    }

    #[test]
    fn layering_and_leaf_violations_fire() {
        let config = Config::default();
        let edges = vec![
            DepEdge {
                from: "enzyme".into(),
                to: "runtime".into(),
                file: "crates/enzyme/Cargo.toml".into(),
                line: 5,
                col: 1,
            },
            DepEdge {
                from: "prng".into(),
                to: "units".into(),
                file: "crates/prng/Cargo.toml".into(),
                line: 7,
                col: 1,
            },
        ];
        let findings = layer_findings(&config, &edges);
        assert_eq!(findings.len(), 2, "{findings:?}");
        assert!(findings[0].message.contains("physics crate `enzyme`"));
        assert!(findings[1].message.contains("leaf-reachable"));
    }

    #[test]
    fn dependency_cycles_are_findings() {
        let config = Config::default();
        let mk = |from: &str, to: &str| DepEdge {
            from: from.into(),
            to: to.into(),
            file: format!("crates/{from}/Cargo.toml"),
            line: 5,
            col: 1,
        };
        let findings = layer_findings(&config, &[mk("gateway", "shard"), mk("shard", "gateway")]);
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert!(
            findings[0].message.contains("dependency cycle"),
            "{findings:?}"
        );
    }
}

//! A lightweight item-tree parser over the audit lexer's token stream.
//!
//! The semantic rules (DESIGN.md §16) need more structure than a flat
//! token stream: which function a call site lives in, which `impl`
//! owns a method, whether an item is `#[cfg(test)]`-gated, and where
//! each item's body starts and ends. This module folds the token
//! stream into exactly that — a per-file tree of `fn`/`impl`/`mod`/
//! `use` items with raw-token spans — without attempting to be a real
//! Rust parser. Items it does not understand (structs, enums, consts,
//! `macro_rules!` bodies) are skipped structurally, never guessed at.
//!
//! Two hard guarantees, property-tested by
//! `crates/audit/tests/items_properties.rs`:
//!
//! 1. the parser never panics, whatever token soup it is fed;
//! 2. spans round-trip — every item's span lies inside the token
//!    stream, children nest strictly inside their parents, and an
//!    item's `line:col` is the position of its span's first token.

use crate::lexer::{Token, TokenKind};

/// What kind of item a tree node is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemKind {
    /// A `fn` item; `body` holds its brace-delimited block, if any.
    Fn,
    /// An `impl` block; `name` is the implementing type (after `for`,
    /// when present).
    Impl,
    /// A `mod` item (inline or declaration).
    Mod,
    /// A `use` declaration; `name` is the full path text.
    Use,
    /// A `trait` definition; default method bodies are real code and
    /// parse as `Fn` children.
    Trait,
}

/// One node of the item tree.
#[derive(Debug, Clone)]
pub struct Item {
    /// Classification of this item.
    pub kind: ItemKind,
    /// The item's name: fn name, impl target type, mod name, use path.
    pub name: String,
    /// 1-based line of the item's first token (attributes included).
    pub line: u32,
    /// 1-based column of the item's first token.
    pub col: u32,
    /// Raw-token index range `[start, end)` covering the whole item,
    /// attributes through closing brace or semicolon.
    pub span: (usize, usize),
    /// For `Fn`: the raw-token range strictly inside the body braces.
    pub body: Option<(usize, usize)>,
    /// True when the item (or an ancestor) is `#[cfg(test)]`-gated or
    /// `#[test]`-marked — the semantic rules skip such items entirely.
    pub test_only: bool,
    /// Nested items (an impl's methods, a mod's contents).
    pub children: Vec<Item>,
}

/// Parse `tokens` into a tree of items. Never panics; unrecognized
/// constructs are skipped.
pub fn parse_items(tokens: &[Token]) -> Vec<Item> {
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut parser = Parser {
        tokens,
        code: &code,
    };
    let (items, _) = parser.parse_level(0, code.len(), false, 0);
    items
}

/// Maximum `mod`/`impl`/`trait` nesting the parser recurses into;
/// deeper bodies are treated as opaque. Real code never gets close.
const MAX_DEPTH: usize = 64;

struct Parser<'t> {
    tokens: &'t [Token],
    /// Indices of non-comment tokens, the stream the grammar reads.
    code: &'t [usize],
}

impl Parser<'_> {
    /// Text of the code token at logical position `k`.
    fn text(&self, k: usize) -> Option<&str> {
        self.code.get(k).map(|&i| self.tokens[i].text.as_str())
    }

    /// The raw-token index of logical position `k`, saturating to the
    /// token-stream length at end-of-input.
    fn raw(&self, k: usize) -> usize {
        self.code.get(k).copied().unwrap_or(self.tokens.len())
    }

    /// One past the raw index of logical position `k` (for exclusive
    /// span ends).
    fn raw_end(&self, k: usize) -> usize {
        self.code
            .get(k)
            .map(|&i| i + 1)
            .unwrap_or(self.tokens.len())
    }

    /// Parse items in the logical range `[k, end)`. Returns the items
    /// and the logical position where parsing stopped.
    fn parse_level(
        &mut self,
        mut k: usize,
        end: usize,
        inherited_test: bool,
        depth: usize,
    ) -> (Vec<Item>, usize) {
        let mut items = Vec::new();
        while k < end {
            // Collect leading attributes, remembering where they start
            // so the item span includes them.
            let item_start = k;
            let mut test_only = inherited_test;
            let mut progressed = false;
            while self.text(k) == Some("#") {
                let inner = self.text(k + 1) == Some("!");
                let bracket_at = if inner { k + 2 } else { k + 1 };
                if self.text(bracket_at) != Some("[") {
                    break;
                }
                let Some(close) = self.matching(bracket_at, "[", "]", end) else {
                    // Unterminated attribute: nothing more to parse.
                    return (items, end);
                };
                if attr_is_test(self.tokens, self.code, bracket_at + 1, close) {
                    if inner {
                        // `#![cfg(test)]` gates everything that follows
                        // at this level.
                        let (mut rest, stop) = self.parse_level(close + 1, end, true, depth);
                        items.append(&mut rest);
                        return (items, stop);
                    }
                    test_only = true;
                }
                k = close + 1;
                progressed = true;
            }

            let Some(text) = self.text(k).map(str::to_string) else {
                break;
            };
            if text == "pub" {
                // Skip visibility, including `pub(crate)` etc., then
                // re-enter the keyword dispatch with the original
                // `item_start` so attributes stay attached.
                k += 1;
                if self.text(k) == Some("(") {
                    k = self
                        .matching(k, "(", ")", end)
                        .map(|c| c + 1)
                        .unwrap_or(end);
                }
                if let Some((item, next)) =
                    self.parse_keyword_item(item_start, k, end, test_only, depth)
                {
                    items.push(item);
                    k = next;
                } else if k > item_start {
                    // `pub` before something we don't model
                    // (struct/const/…): skip the whole item.
                    k = self.skip_item(k, end);
                }
                continue;
            }
            if let Some((item, next)) =
                self.parse_keyword_item(item_start, k, end, test_only, depth)
            {
                items.push(item);
                k = next;
                continue;
            }
            if text == "macro_rules" {
                // `macro_rules! name { … }` — skip the whole body.
                let mut j = k + 1;
                while j < end && self.text(j) != Some("{") {
                    j += 1;
                }
                k = self
                    .matching(j, "{", "}", end)
                    .map(|c| c + 1)
                    .unwrap_or(end);
                continue;
            }
            if text == "struct"
                || text == "enum"
                || text == "union"
                || text == "static"
                || text == "const"
                || text == "type"
                || text == "extern"
            {
                k = self.skip_item(k, end);
                continue;
            }
            if !progressed {
                k += 1;
            }
        }
        (items, end)
    }

    /// Try to parse a `fn`/`impl`/`mod`/`use`/`trait` item whose
    /// keyword sits at logical `k` (attributes began at `item_start`).
    /// Also accepts the `unsafe`/`async`/`const`/`extern "…"` prefixes
    /// before `fn`. Returns the item and the position after it.
    fn parse_keyword_item(
        &mut self,
        item_start: usize,
        mut k: usize,
        end: usize,
        test_only: bool,
        depth: usize,
    ) -> Option<(Item, usize)> {
        // Qualifier run before `fn`.
        let mut q = k;
        while matches!(self.text(q), Some("unsafe") | Some("async") | Some("const"))
            || (self.text(q) == Some("extern")
                && self
                    .code
                    .get(q + 1)
                    .map(|&i| self.tokens[i].kind == TokenKind::Str)
                    .unwrap_or(false))
        {
            q += if self.text(q) == Some("extern") { 2 } else { 1 };
        }
        if self.text(q) == Some("fn") {
            k = q;
            return self.parse_fn(item_start, k, end, test_only);
        }
        match self.text(k)? {
            "impl" => {
                self.parse_impl_or_trait(item_start, k, end, test_only, depth, ItemKind::Impl)
            }
            "trait" => {
                self.parse_impl_or_trait(item_start, k, end, test_only, depth, ItemKind::Trait)
            }
            "mod" => self.parse_mod(item_start, k, end, test_only, depth),
            "use" => self.parse_use(item_start, k, end, test_only),
            _ => None,
        }
    }

    /// `fn name …(…) … { body }` or `fn name …;` (trait declaration).
    fn parse_fn(
        &mut self,
        item_start: usize,
        k: usize,
        end: usize,
        test_only: bool,
    ) -> Option<(Item, usize)> {
        let name = self.text(k + 1).unwrap_or("?").to_string();
        let start_tok = self.raw(item_start);
        let anchor = &self.tokens[self.raw(item_start).min(self.tokens.len() - 1)];
        let (line, col) = (anchor.line, anchor.col);
        // Find the body `{` (angle-bracket-aware) or the `;`.
        let mut j = k + 1;
        let mut angle = 0isize;
        while j < end {
            match self.text(j) {
                Some("{") => {
                    let close = self
                        .matching(j, "{", "}", end)
                        .unwrap_or(end.saturating_sub(1));
                    let body_start = self.raw_end(j);
                    let body = (body_start, self.raw(close).max(body_start));
                    let item = Item {
                        kind: ItemKind::Fn,
                        name,
                        line,
                        col,
                        span: (start_tok, self.raw_end(close)),
                        body: Some(body),
                        test_only,
                        children: Vec::new(),
                    };
                    return Some((item, close + 1));
                }
                Some(";") if angle <= 0 => {
                    let item = Item {
                        kind: ItemKind::Fn,
                        name,
                        line,
                        col,
                        span: (start_tok, self.raw_end(j)),
                        body: None,
                        test_only,
                        children: Vec::new(),
                    };
                    return Some((item, j + 1));
                }
                Some("<") => angle += 1,
                Some(">") => angle -= 1,
                Some("[") => {
                    j = self.matching(j, "[", "]", end).unwrap_or(end);
                }
                None => break,
                _ => {}
            }
            j += 1;
        }
        // Unterminated fn: consume to end.
        let item = Item {
            kind: ItemKind::Fn,
            name,
            line,
            col,
            span: (start_tok, self.tokens.len()),
            body: None,
            test_only,
            children: Vec::new(),
        };
        Some((item, end))
    }

    /// `impl … Type { … }` / `impl Trait for Type { … }` /
    /// `trait Name { … }` — children parse recursively.
    fn parse_impl_or_trait(
        &mut self,
        item_start: usize,
        k: usize,
        end: usize,
        test_only: bool,
        depth: usize,
        kind: ItemKind,
    ) -> Option<(Item, usize)> {
        let start_tok = self.raw(item_start);
        let anchor = &self.tokens[self.raw(item_start).min(self.tokens.len() - 1)];
        let (line, col) = (anchor.line, anchor.col);
        // Find the opening brace; track the header tokens as we go.
        let mut j = k + 1;
        let mut angle = 0isize;
        let mut header: Vec<(usize, String)> = Vec::new();
        while j < end {
            match self.text(j) {
                Some("{") if angle <= 0 => break,
                Some(";") if angle <= 0 => {
                    // `impl Foo;`-ish degenerate input: treat as opaque.
                    return Some((
                        Item {
                            kind,
                            name: String::new(),
                            line,
                            col,
                            span: (start_tok, self.raw_end(j)),
                            body: None,
                            test_only,
                            children: Vec::new(),
                        },
                        j + 1,
                    ));
                }
                Some("<") => angle += 1,
                Some(">") => angle -= 1,
                Some(t) => {
                    if angle <= 0 {
                        header.push((j, t.to_string()));
                    }
                }
                None => return None,
            }
            j += 1;
        }
        if j >= end {
            return Some((
                Item {
                    kind,
                    name: String::new(),
                    line,
                    col,
                    span: (start_tok, self.tokens.len()),
                    body: None,
                    test_only,
                    children: Vec::new(),
                },
                end,
            ));
        }
        // The implementing type: the identifier after `for` when
        // present, else the first identifier in the header (skipping
        // `where`-clause noise by taking the first, which precedes any
        // `where`).
        let name = {
            let after_for = header
                .iter()
                .position(|(_, t)| t == "for")
                .and_then(|p| header.get(p + 1));
            let picked = after_for.or_else(|| {
                header.iter().find(|(q, t)| {
                    self.code
                        .get(*q)
                        .map(|&i| self.tokens[i].kind == TokenKind::Ident)
                        .unwrap_or(false)
                        && t != "where"
                })
            });
            picked.map(|(_, t)| t.clone()).unwrap_or_default()
        };
        let close = self.matching(j, "{", "}", end)?;
        let children = if depth < MAX_DEPTH {
            let (c, _) = self.parse_level(j + 1, close, test_only, depth + 1);
            c
        } else {
            Vec::new()
        };
        Some((
            Item {
                kind,
                name,
                line,
                col,
                span: (start_tok, self.raw_end(close)),
                body: None,
                test_only,
                children,
            },
            close + 1,
        ))
    }

    /// `mod name { … }` or `mod name;`.
    fn parse_mod(
        &mut self,
        item_start: usize,
        k: usize,
        end: usize,
        test_only: bool,
        depth: usize,
    ) -> Option<(Item, usize)> {
        let start_tok = self.raw(item_start);
        let anchor = &self.tokens[self.raw(item_start).min(self.tokens.len() - 1)];
        let (line, col) = (anchor.line, anchor.col);
        let name = self.text(k + 1).unwrap_or("?").to_string();
        match self.text(k + 2) {
            Some("{") => {
                let close = self.matching(k + 2, "{", "}", end)?;
                let children = if depth < MAX_DEPTH {
                    let (c, _) = self.parse_level(k + 3, close, test_only, depth + 1);
                    c
                } else {
                    Vec::new()
                };
                Some((
                    Item {
                        kind: ItemKind::Mod,
                        name,
                        line,
                        col,
                        span: (start_tok, self.raw_end(close)),
                        body: None,
                        test_only,
                        children,
                    },
                    close + 1,
                ))
            }
            Some(";") => Some((
                Item {
                    kind: ItemKind::Mod,
                    name,
                    line,
                    col,
                    span: (start_tok, self.raw_end(k + 2)),
                    body: None,
                    test_only,
                    children: Vec::new(),
                },
                k + 3,
            )),
            _ => None,
        }
    }

    /// `use path::to::thing;` — the name is the joined path text.
    fn parse_use(
        &mut self,
        item_start: usize,
        k: usize,
        end: usize,
        test_only: bool,
    ) -> Option<(Item, usize)> {
        let start_tok = self.raw(item_start);
        let anchor = &self.tokens[self.raw(item_start).min(self.tokens.len() - 1)];
        let (line, col) = (anchor.line, anchor.col);
        let mut j = k + 1;
        let mut path = String::new();
        while j < end {
            match self.text(j) {
                Some(";") | None => break,
                Some(t) => path.push_str(t),
            }
            j += 1;
        }
        let span_end = if j < end {
            self.raw_end(j)
        } else {
            self.tokens.len()
        };
        Some((
            Item {
                kind: ItemKind::Use,
                name: path,
                line,
                col,
                span: (start_tok, span_end),
                body: None,
                test_only,
                children: Vec::new(),
            },
            j + 1,
        ))
    }

    /// Skip one item we don't model: to past its first brace block or
    /// terminating `;` (angle-bracket-aware, like `item_end_after`).
    fn skip_item(&mut self, k: usize, end: usize) -> usize {
        let mut j = k;
        let mut angle = 0isize;
        while j < end {
            match self.text(j) {
                Some("{") => {
                    return self
                        .matching(j, "{", "}", end)
                        .map(|c| c + 1)
                        .unwrap_or(end);
                }
                Some(";") if angle <= 0 => return j + 1,
                Some("<") => angle += 1,
                Some(">") => angle -= 1,
                Some("[") => {
                    j = self.matching(j, "[", "]", end).unwrap_or(end);
                }
                None => break,
                _ => {}
            }
            j += 1;
        }
        end
    }

    /// Logical index of the close matching the open at logical
    /// `open_k`, searching no further than `end`.
    fn matching(&self, open_k: usize, open: &str, close: &str, end: usize) -> Option<usize> {
        let mut depth = 0usize;
        let mut k = open_k;
        while k < end {
            match self.text(k) {
                Some(t) if t == open => depth += 1,
                Some(t) if t == close => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        return Some(k);
                    }
                }
                None => return None,
                _ => {}
            }
            k += 1;
        }
        None
    }
}

/// Does the attribute body `code[start..end]` mark its item as
/// test-only? True for `test`, `cfg(test)`, `cfg(all(test, …))`;
/// false for `cfg(not(test))` and for `cfg_attr(…)` (which gates an
/// attribute, not the item).
pub(crate) fn attr_is_test(tokens: &[Token], code: &[usize], start: usize, end: usize) -> bool {
    let texts: Vec<&str> = code
        .get(start..end)
        .unwrap_or(&[])
        .iter()
        .map(|&i| tokens[i].text.as_str())
        .collect();
    match texts.first() {
        Some(&"test") => true,
        Some(&"cfg") => {
            let mut depth_not = 0usize;
            let mut not_depth_stack: Vec<usize> = Vec::new();
            let mut paren_depth = 0usize;
            for w in texts.windows(1).skip(1) {
                let t = w[0];
                match t {
                    "(" => paren_depth += 1,
                    ")" => {
                        paren_depth = paren_depth.saturating_sub(1);
                        if not_depth_stack.last() == Some(&paren_depth) {
                            not_depth_stack.pop();
                            depth_not -= 1;
                        }
                    }
                    "not" => {
                        not_depth_stack.push(paren_depth);
                        depth_not += 1;
                    }
                    "test" if depth_not == 0 => return true,
                    _ => {}
                }
            }
            false
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::tokenize;

    fn parse(src: &str) -> Vec<Item> {
        parse_items(&tokenize(src))
    }

    #[test]
    fn free_fn_with_body() {
        let items = parse("fn alpha(x: u64) -> u64 { x + 1 }\nfn beta() {}");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].name, "alpha");
        assert_eq!(items[0].kind, ItemKind::Fn);
        assert!(items[0].body.is_some());
        assert_eq!(items[1].name, "beta");
    }

    #[test]
    fn impl_methods_are_children_with_owner_type() {
        let items = parse(
            "impl Widget { pub fn new() -> Widget { Widget } fn helper(&self) {} }\n\
             impl Display for Gadget { fn fmt(&self) {} }",
        );
        assert_eq!(items[0].kind, ItemKind::Impl);
        assert_eq!(items[0].name, "Widget");
        assert_eq!(items[0].children.len(), 2);
        assert_eq!(items[0].children[0].name, "new");
        assert_eq!(items[1].name, "Gadget", "impl Trait for Type names Type");
        assert_eq!(items[1].children[0].name, "fmt");
    }

    #[test]
    fn generic_impl_header_names_the_type() {
        let items = parse("impl<T: Clone> Holder<T> { fn get(&self) {} }");
        assert_eq!(items[0].name, "Holder");
    }

    #[test]
    fn cfg_test_marks_subtree() {
        let items =
            parse("fn live() {}\n#[cfg(test)]\nmod tests { fn helper() {} #[test] fn t() {} }");
        assert!(!items[0].test_only);
        assert!(items[1].test_only);
        assert!(items[1].children.iter().all(|c| c.test_only));
    }

    #[test]
    fn test_attr_marks_single_fn() {
        let items = parse("#[test]\nfn t() {}\nfn live() {}");
        assert!(items[0].test_only);
        assert!(!items[1].test_only);
    }

    #[test]
    fn use_paths_round_trip() {
        let items = parse("use std::collections::BTreeMap;\nuse bios_runtime::Runtime;");
        assert_eq!(items[0].kind, ItemKind::Use);
        assert_eq!(items[0].name, "std::collections::BTreeMap");
        assert_eq!(items[1].name, "bios_runtime::Runtime");
    }

    #[test]
    fn mods_nest() {
        let items = parse("mod outer { mod inner { fn deep() {} } }");
        assert_eq!(items[0].name, "outer");
        assert_eq!(items[0].children[0].name, "inner");
        assert_eq!(items[0].children[0].children[0].name, "deep");
    }

    #[test]
    fn fn_with_generic_return_finds_its_body() {
        let items = parse("fn make() -> Result<Vec<u64>, String> { Ok(Vec::new()) }");
        assert_eq!(items[0].name, "make");
        assert!(items[0].body.is_some());
    }

    #[test]
    fn macro_rules_bodies_are_opaque() {
        let items = parse("macro_rules! m { ($x:expr) => { fn fake() {} }; }\nfn real() {}");
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].name, "real");
    }

    #[test]
    fn trait_default_methods_parse() {
        let items = parse("trait Sensor { fn id(&self) -> u64; fn label(&self) -> u64 { 0 } }");
        assert_eq!(items[0].kind, ItemKind::Trait);
        assert_eq!(items[0].name, "Sensor");
        assert_eq!(items[0].children.len(), 2);
        assert!(items[0].children[0].body.is_none());
        assert!(items[0].children[1].body.is_some());
    }

    #[test]
    fn inner_cfg_test_gates_the_rest_of_the_level() {
        let items = parse("#![cfg(test)]\nfn helper() {}");
        assert!(items[0].test_only);
    }

    #[test]
    fn adversarial_inputs_do_not_panic() {
        for src in [
            "fn",
            "fn (",
            "impl",
            "impl {",
            "mod",
            "use",
            "#[cfg(test)",
            "fn f() {",
            "impl X { fn g(",
            "{{{{",
            "}}}}",
            "fn f<T<U<V() {}",
        ] {
            let _ = parse(src);
        }
    }
}

//! A line/column-tracking tokenizer over raw Rust source.
//!
//! This is deliberately *not* a full Rust lexer: it recognizes exactly
//! the token shapes the audit rules need to be sound — identifiers,
//! numeric literals (with a float/int distinction), string/char
//! literals in all their raw/byte spellings, lifetimes, comments
//! (with the doc/non-doc distinction), and multi-character operators.
//! Everything the rules match on (`unwrap`, `HashMap`, `==`, `unsafe`,
//! …) must never be confused with the same characters inside a string
//! literal or a comment, and every token must carry an exact
//! `line:col` so findings are clickable; those two properties are the
//! whole point of hand-rolling this instead of substring search.
//!
//! The lexer never panics on malformed input: an unterminated string
//! or comment simply ends at end-of-file, and any byte it does not
//! recognize becomes a one-character [`TokenKind::Punct`] token.

/// What a token is, as far as the audit rules care.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `pub`, `fn`, `r#async`, …).
    Ident,
    /// An integer literal (`42`, `0xFF`, `1_000u64`).
    Int,
    /// A floating-point literal (`0.0`, `1e-9`, `2.5f32`).
    Float,
    /// A string literal of any spelling (`"…"`, `r#"…"#`, `b"…"`, `c"…"`).
    Str,
    /// A character or byte literal (`'a'`, `b'\n'`).
    Char,
    /// A lifetime (`'a`, `'static`).
    Lifetime,
    /// A line comment; `doc` is true for `///` and `//!`.
    LineComment {
        /// Whether this is a doc comment (`///` or `//!`).
        doc: bool,
    },
    /// A block comment; `doc` is true for `/** */` and `/*! */`.
    BlockComment {
        /// Whether this is a doc comment (`/** */` or `/*! */`).
        doc: bool,
    },
    /// Punctuation — multi-character operators (`::`, `==`, `..=`, `->`)
    /// are a single token.
    Punct,
}

/// One token with its exact source location and text.
#[derive(Debug, Clone)]
pub struct Token {
    /// Classification of this token.
    pub kind: TokenKind,
    /// The exact source text of the token.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column (in characters) of the token's first character.
    pub col: u32,
}

impl Token {
    /// True when this token is any kind of comment.
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True when this token is a doc comment (`///`, `//!`, `/** */`, `/*! */`).
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }
}

/// Multi-character operators, longest first so maximal munch works.
const OPERATORS: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>", "+=", "-=",
    "*=", "/=", "%=", "^=", "&=", "|=", "->", "=>", "..",
];

/// Tokenize `source`, returning every token including comments.
///
/// The returned stream is lossless enough for the rule engine: only
/// whitespace is dropped, and positions are exact. This function never
/// panics, whatever bytes it is fed.
pub fn tokenize(source: &str) -> Vec<Token> {
    Lexer::new(source).run()
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
    out: Vec<Token>,
}

impl Lexer {
    fn new(source: &str) -> Self {
        Lexer {
            chars: source.chars().collect(),
            pos: 0,
            line: 1,
            col: 1,
            out: Vec::new(),
        }
    }

    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consume one character, keeping line/col in sync.
    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }

    fn run(mut self) -> Vec<Token> {
        while let Some(c) = self.peek(0) {
            let (line, col) = (self.line, self.col);
            if c.is_whitespace() {
                self.bump();
            } else if c == '/' && self.peek(1) == Some('/') {
                self.line_comment(line, col);
            } else if c == '/' && self.peek(1) == Some('*') {
                self.block_comment(line, col);
            } else if is_ident_start(c) {
                self.ident_or_prefixed_literal(line, col);
            } else if c.is_ascii_digit() {
                self.number(line, col);
            } else if c == '"' {
                self.string_literal(line, col);
            } else if c == '\'' {
                self.char_or_lifetime(line, col);
            } else {
                self.operator(line, col);
            }
        }
        self.out
    }

    fn push(&mut self, kind: TokenKind, start: usize, line: u32, col: u32) {
        let text: String = self.chars[start..self.pos].iter().collect();
        self.out.push(Token {
            kind,
            text,
            line,
            col,
        });
    }

    fn line_comment(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        // `///` (but not `////`) and `//!` are doc comments.
        let doc = match self.peek(0) {
            Some('/') => self.peek(1) != Some('/'),
            Some('!') => true,
            _ => false,
        };
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
        self.push(TokenKind::LineComment { doc }, start, line, col);
    }

    fn block_comment(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.bump();
        self.bump();
        let doc = match self.peek(0) {
            // `/**/` is an empty non-doc comment; `/**x` is doc.
            Some('*') => self.peek(1) != Some('/'),
            Some('!') => true,
            _ => false,
        };
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    depth += 1;
                    self.bump();
                    self.bump();
                }
                (Some('*'), Some('/')) => {
                    depth -= 1;
                    self.bump();
                    self.bump();
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => break,
            }
        }
        self.push(TokenKind::BlockComment { doc }, start, line, col);
    }

    /// An identifier — or one of the identifier-prefixed literal forms
    /// (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`, `b'x'`, `c"…"`, `r#ident`).
    fn ident_or_prefixed_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        let first = self.peek(0).unwrap_or(' ');

        // Raw strings and raw identifiers: r"…", r#"…"#, br"…", r#keyword.
        if (first == 'r' || first == 'b' || first == 'c') && self.raw_or_prefixed(start, line, col)
        {
            return;
        }

        while let Some(c) = self.peek(0) {
            if is_ident_continue(c) {
                self.bump();
            } else {
                break;
            }
        }
        self.push(TokenKind::Ident, start, line, col);
    }

    /// Try to lex a prefixed literal starting at the current position.
    /// Returns true if one was consumed.
    fn raw_or_prefixed(&mut self, start: usize, line: u32, col: u32) -> bool {
        let first = self.peek(0).unwrap_or(' ');
        // b'x' byte char
        if first == 'b' && self.peek(1) == Some('\'') {
            self.bump();
            self.char_body();
            self.push(TokenKind::Char, start, line, col);
            return true;
        }
        // b"…" / c"…" byte & C strings
        if (first == 'b' || first == 'c') && self.peek(1) == Some('"') {
            self.bump();
            self.cooked_string_body();
            self.push(TokenKind::Str, start, line, col);
            return true;
        }
        // br"…", br#"…"#
        if first == 'b' && self.peek(1) == Some('r') {
            let mut hashes = 0usize;
            while self.peek(2 + hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(2 + hashes) == Some('"') {
                self.bump();
                self.bump();
                self.raw_string_body(hashes);
                self.push(TokenKind::Str, start, line, col);
                return true;
            }
            return false;
        }
        if first == 'r' {
            let mut hashes = 0usize;
            while self.peek(1 + hashes) == Some('#') {
                hashes += 1;
            }
            match self.peek(1 + hashes) {
                // r"…" / r#"…"#
                Some('"') => {
                    self.bump();
                    self.raw_string_body(hashes);
                    self.push(TokenKind::Str, start, line, col);
                    true
                }
                // r#ident — a raw identifier; lex it as a plain ident.
                Some(c) if hashes == 1 && is_ident_start(c) => {
                    self.bump();
                    self.bump();
                    while let Some(c) = self.peek(0) {
                        if is_ident_continue(c) {
                            self.bump();
                        } else {
                            break;
                        }
                    }
                    self.push(TokenKind::Ident, start, line, col);
                    true
                }
                _ => false,
            }
        } else {
            false
        }
    }

    /// Body of a raw string after the `r`/`br` prefix: consumes the
    /// `#…"` opener and everything through the matching `"#…`.
    fn raw_string_body(&mut self, hashes: usize) {
        for _ in 0..hashes {
            self.bump();
        }
        self.bump(); // opening quote
        'scan: while let Some(c) = self.bump() {
            if c == '"' {
                for i in 0..hashes {
                    if self.peek(i) != Some('#') {
                        continue 'scan;
                    }
                }
                for _ in 0..hashes {
                    self.bump();
                }
                break;
            }
        }
    }

    /// Body of a cooked string starting at the opening quote.
    fn cooked_string_body(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '"' {
                break;
            }
        }
    }

    fn string_literal(&mut self, line: u32, col: u32) {
        let start = self.pos;
        self.cooked_string_body();
        self.push(TokenKind::Str, start, line, col);
    }

    /// Body of a char literal starting at the opening quote.
    fn char_body(&mut self) {
        self.bump(); // opening quote
        while let Some(c) = self.bump() {
            if c == '\\' {
                self.bump();
            } else if c == '\'' {
                break;
            }
        }
    }

    /// `'a'` is a char literal, `'a` (no closing quote) is a lifetime.
    fn char_or_lifetime(&mut self, line: u32, col: u32) {
        let start = self.pos;
        // Lifetime: 'ident not followed by a closing quote.
        if self
            .peek(1)
            .map(|c| is_ident_start(c) && c != '\\')
            .unwrap_or(false)
        {
            // Find where the ident run ends; if the next char is ', it
            // was a char literal like 'a'.
            let mut i = 2;
            while self.peek(i).map(is_ident_continue).unwrap_or(false) {
                i += 1;
            }
            if self.peek(i) != Some('\'') {
                self.bump(); // '
                for _ in 1..i {
                    self.bump();
                }
                self.push(TokenKind::Lifetime, start, line, col);
                return;
            }
        }
        self.char_body();
        self.push(TokenKind::Char, start, line, col);
    }

    fn number(&mut self, line: u32, col: u32) {
        let start = self.pos;
        let mut float = false;
        // Integer part (also covers 0x/0b/0o digits and `_`).
        while let Some(c) = self.peek(0) {
            if c.is_ascii_alphanumeric() || c == '_' {
                // An exponent inside a decimal number marks a float:
                // 1e9, 2.5e-3. Hex digits also include 'e', so only
                // treat it as an exponent when followed by a digit or
                // sign and the literal is not hex.
                if (c == 'e' || c == 'E') && !starts_with_radix_prefix(&self.chars[start..]) {
                    let next = self.peek(1);
                    if matches!(next, Some('+') | Some('-'))
                        && self.peek(2).map(|d| d.is_ascii_digit()).unwrap_or(false)
                    {
                        float = true;
                        self.bump(); // e
                        self.bump(); // sign
                        continue;
                    }
                    if next.map(|d| d.is_ascii_digit()).unwrap_or(false) {
                        float = true;
                    }
                }
                self.bump();
            } else if c == '.' {
                // `1..10` is int + range; `1.max()` is int + method
                // call; `1.5` and trailing `1.` are floats.
                match self.peek(1) {
                    Some('.') => break,
                    Some(d) if is_ident_start(d) => break,
                    _ => {
                        float = true;
                        self.bump();
                    }
                }
            } else {
                break;
            }
        }
        let text: String = self.chars[start..self.pos].iter().collect();
        let kind = if float || text.ends_with("f32") || text.ends_with("f64") {
            TokenKind::Float
        } else {
            TokenKind::Int
        };
        self.push(kind, start, line, col);
    }

    fn operator(&mut self, line: u32, col: u32) {
        let start = self.pos;
        let remaining: String = self.chars.iter().skip(self.pos).take(3).collect();
        for op in OPERATORS {
            if remaining.starts_with(op) {
                for _ in 0..op.chars().count() {
                    self.bump();
                }
                self.push(TokenKind::Punct, start, line, col);
                return;
            }
        }
        self.bump();
        self.push(TokenKind::Punct, start, line, col);
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

fn starts_with_radix_prefix(chars: &[char]) -> bool {
    chars.first() == Some(&'0')
        && matches!(
            chars.get(1),
            Some('x') | Some('X') | Some('b') | Some('B') | Some('o') | Some('O')
        )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        tokenize(src)
            .into_iter()
            .map(|t| (t.kind, t.text))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("foo.unwrap()");
        assert_eq!(toks[0], (TokenKind::Ident, "foo".into()));
        assert_eq!(toks[1], (TokenKind::Punct, ".".into()));
        assert_eq!(toks[2], (TokenKind::Ident, "unwrap".into()));
    }

    #[test]
    fn multichar_operators_are_single_tokens() {
        let toks = kinds("a == b != c ..= d :: e");
        let ops: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Punct)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ops, vec!["==", "!=", "..=", "::"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"let s = "x.unwrap() == 0.0";"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
    }

    #[test]
    fn raw_strings_with_hashes() {
        let toks = kinds(r###"let s = r#"embedded "quote" here"#; x"###);
        assert_eq!(toks.iter().filter(|(k, _)| *k == TokenKind::Str).count(), 1);
        assert_eq!(toks.last().map(|(_, t)| t.as_str()), Some("x"));
    }

    #[test]
    fn char_vs_lifetime() {
        let toks = kinds("let c: char = 'a'; fn f<'a>(x: &'a str) {}");
        assert_eq!(
            toks.iter().filter(|(k, _)| *k == TokenKind::Char).count(),
            1
        );
        assert_eq!(
            toks.iter()
                .filter(|(k, _)| *k == TokenKind::Lifetime)
                .count(),
            2
        );
    }

    #[test]
    fn float_vs_int_vs_range() {
        let toks = kinds("0.0 1e-9 2.5f32 42 0..n 0xFF");
        let floats: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Float)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(floats, vec!["0.0", "1e-9", "2.5f32"]);
        let ints: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Int)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(ints, vec!["42", "0", "0xFF"]);
    }

    #[test]
    fn doc_comments_are_distinguished() {
        let toks = tokenize("/// doc\n// plain\n//! inner\n/** block doc */\n/* plain */");
        let docs: Vec<bool> = toks.iter().map(Token::is_doc_comment).collect();
        assert_eq!(docs, vec![true, false, true, true, false]);
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ after");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "after".into()));
    }

    #[test]
    fn positions_are_one_based_and_exact() {
        let toks = tokenize("ab\n  cd");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* open", "r#\"open", "'x", "b\"", "1."] {
            let _ = tokenize(src);
        }
    }
}

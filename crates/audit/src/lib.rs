//! # bios-audit
//!
//! A zero-dependency, std-only static-analysis pass that proves the
//! workspace's determinism and panic-freedom invariants at the source
//! level (DESIGN.md §11).
//!
//! The runtime's figures of merit are only reproducible because fleet
//! digests are byte-identical at any worker count, across
//! crash-resume, and under armed fault plans. Those invariants are
//! pinned by tests — but one stray `HashMap` iteration or `unwrap()`
//! in a digest path silently breaks them long before a test notices.
//! This crate rejects such code at the source level:
//!
//! * **D — determinism** in digest/fingerprint/cache/journal modules,
//! * **P — panic-freedom** in all non-test code,
//! * **F — float hygiene** in solver and analytics code,
//! * **U — unsafe & API hygiene** everywhere,
//! * **G — graph rules** (DESIGN.md §16): transitive determinism
//!   taint over the approximate workspace call graph, and crate-layer
//!   proofs (physics never depends on serving; `prng`/`faults` stay
//!   leaf-reachable; no cycles),
//! * **L — lock & channel discipline**: no blocking call under a live
//!   `MutexGuard`, no send on an endpoint whose pair was dropped.
//!
//! Findings print as `file:line:col rule message`; a JSON summary is
//! written to `AUDIT_report.json`; any finding makes the process exit
//! non-zero, which `scripts/check.sh` treats as a hard gate.
//!
//! Intentional exceptions carry an inline waiver with a mandatory
//! reason:
//!
//! ```text
//! // bios-audit: allow(D-hash) — membership test only, never iterated
//! ```
//!
//! The tool is itself subject to every rule it enforces.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cache;
pub mod config;
pub mod graph;
pub mod items;
pub mod lexer;
pub mod report;
pub mod rules;
pub mod walk;
pub mod workspace;

pub use cache::CacheStats;
pub use config::{Config, Rule};
pub use graph::{FileFacts, TaintChain};
pub use items::{parse_items, Item, ItemKind};
pub use rules::{analyze_file, audit_source, AuditOutcome, Finding, WaiverRecord};
pub use workspace::{audit_workspace, WorkspaceOutcome};

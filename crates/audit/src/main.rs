//! The `bios-audit` command-line gate.
//!
//! ```text
//! cargo run -q -p bios-audit                # audit the workspace
//! cargo run -q -p bios-audit -- --json out.json --root /path/to/repo
//! cargo run -q -p bios-audit -- file.rs …   # audit specific files
//! ```
//!
//! Exit status: 0 when the tree is clean (waivers are fine), 1 when
//! any finding survives, 2 on usage or I/O errors.

// CLI output is the product of this binary.
#![allow(clippy::print_stdout)]

use bios_audit::{audit_source, config::Config, report, walk};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bios-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut json_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut explicit_files: Vec<PathBuf> = Vec::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let v = args.next().ok_or("--json needs a path")?;
                json_path = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                root_arg = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                println!(
                    "bios-audit — workspace static-analysis gate\n\
                     usage: bios-audit [--root DIR] [--json FILE] [FILES…]"
                );
                return Ok(0);
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}")),
            _ => explicit_files.push(PathBuf::from(arg)),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match root_arg {
        Some(r) => r,
        None => walk::find_root(&cwd).ok_or("cannot locate workspace root (no Cargo.toml)")?,
    };

    let files = if explicit_files.is_empty() {
        walk::collect_sources(&root).map_err(|e| e.to_string())?
    } else {
        explicit_files
    };

    let config = Config::default();
    let mut findings = Vec::new();
    let mut waivers = Vec::new();
    for file in &files {
        let source =
            fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let label = walk::display_path(&root, file);
        let outcome = audit_source(&label, &source, &config);
        findings.extend(outcome.findings);
        waivers.extend(outcome.waivers);
    }

    for f in &findings {
        println!("{}", f.render());
    }
    let used = waivers.iter().filter(|w| w.used).count();
    println!(
        "bios-audit: {} file(s), {} finding(s), {} waiver(s) ({} used)",
        files.len(),
        findings.len(),
        waivers.len(),
        used
    );

    let json = report::render_json(files.len(), &findings, &waivers);
    let json_out = json_path.unwrap_or_else(|| root.join("AUDIT_report.json"));
    fs::write(&json_out, json).map_err(|e| format!("write {}: {e}", json_out.display()))?;

    Ok(findings.len())
}

//! The `bios-audit` command-line gate.
//!
//! ```text
//! cargo run -q -p bios-audit                  # audit the workspace
//! cargo run -q -p bios-audit -- --json out.json --root /path/to/repo
//! cargo run -q -p bios-audit -- file.rs …     # audit specific files
//! cargo run -q -p bios-audit -- --explain G-taint
//! cargo run -q -p bios-audit -- --no-cache    # cold semantic pass
//! ```
//!
//! Whole-workspace runs include the semantic pass (G-taint layering,
//! call-graph taint, L-family discipline) with the per-file facts
//! cache under `target/`; explicit-file runs stay single-file (the
//! cross-file rules need the whole tree).
//!
//! Exit status: 0 when the tree is clean (waivers are fine), 1 when
//! any finding survives, 2 on usage or I/O errors.

// CLI output is the product of this binary.
#![allow(clippy::print_stdout)]

use bios_audit::{audit_source, config::Config, report, walk, Rule};
use std::fs;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    match run() {
        Ok(0) => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("bios-audit: {e}");
            ExitCode::from(2)
        }
    }
}

fn run() -> Result<usize, String> {
    let mut json_path: Option<PathBuf> = None;
    let mut root_arg: Option<PathBuf> = None;
    let mut explicit_files: Vec<PathBuf> = Vec::new();
    let mut use_cache = true;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => {
                let v = args.next().ok_or("--json needs a path")?;
                json_path = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = args.next().ok_or("--root needs a path")?;
                root_arg = Some(PathBuf::from(v));
            }
            "--explain" => {
                let id = args.next().ok_or("--explain needs a rule id")?;
                let rule = Rule::from_id(&id).ok_or_else(|| {
                    let known = Rule::ALL
                        .iter()
                        .map(|r| r.id())
                        .collect::<Vec<_>>()
                        .join(", ");
                    format!("unknown rule id `{id}` (known: {known}, W-waiver)")
                })?;
                println!("{}", rule.explain());
                return Ok(0);
            }
            "--no-cache" => use_cache = false,
            "--cache" => use_cache = true,
            "--help" | "-h" => {
                println!(
                    "bios-audit — workspace static-analysis gate\n\
                     usage: bios-audit [--root DIR] [--json FILE] [--no-cache] [FILES…]\n\
                     \x20      bios-audit --explain <rule-id>"
                );
                return Ok(0);
            }
            _ if arg.starts_with('-') => return Err(format!("unknown flag {arg}")),
            _ => explicit_files.push(PathBuf::from(arg)),
        }
    }

    let cwd = std::env::current_dir().map_err(|e| e.to_string())?;
    let root = match root_arg {
        Some(r) => r,
        None => walk::find_root(&cwd).ok_or("cannot locate workspace root (no Cargo.toml)")?,
    };

    let started = std::time::Instant::now();
    let config = Config::default();

    // Explicit files: single-file rules only (the semantic pass needs
    // the whole tree). Workspace runs go through the full pipeline.
    let (findings, waivers, chains, cache_stats, files_scanned);
    if explicit_files.is_empty() {
        let outcome = bios_audit::audit_workspace(&root, &config, use_cache)?;
        findings = outcome.findings;
        waivers = outcome.waivers;
        chains = outcome.chains;
        cache_stats = outcome.cache;
        files_scanned = outcome.files_scanned;
    } else {
        let mut fs_acc = Vec::new();
        let mut ws_acc = Vec::new();
        for file in &explicit_files {
            let source =
                fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
            let label = walk::display_path(&root, file);
            let outcome = audit_source(&label, &source, &config);
            fs_acc.extend(outcome.findings);
            ws_acc.extend(outcome.waivers);
        }
        findings = fs_acc;
        waivers = ws_acc;
        chains = Vec::new();
        cache_stats = bios_audit::CacheStats::default();
        files_scanned = explicit_files.len();
    }

    for f in &findings {
        println!("{}", f.render());
    }
    let used = waivers.iter().filter(|w| w.used).count();
    let elapsed_ms = started.elapsed().as_millis();
    println!(
        "bios-audit: {} file(s), {} finding(s), {} waiver(s) ({} used), \
         cache {}/{} hit, {} ms",
        files_scanned,
        findings.len(),
        waivers.len(),
        used,
        cache_stats.hits,
        cache_stats.hits + cache_stats.misses,
        elapsed_ms
    );

    let json = report::render_json(&report::ReportInput {
        files_scanned,
        findings: &findings,
        waivers: &waivers,
        chains: &chains,
        cache: cache_stats,
        elapsed_ms,
    });
    let json_out = json_path.unwrap_or_else(|| root.join("AUDIT_report.json"));
    fs::write(&json_out, json).map_err(|e| format!("write {}: {e}", json_out.display()))?;

    Ok(findings.len())
}

//! The machine-readable summary: `AUDIT_report.json`.
//!
//! Hand-rolled JSON in the same discipline as `BENCH_runtime.json`
//! (no serde in the offline workspace): line-stable output, a
//! `schema_version` field so future PRs can track finding/waiver
//! counts over time, and **no timestamps** — the report must be a pure
//! function of the tree so two runs over the same bytes diff empty.

use crate::config::Rule;
use crate::rules::{Finding, WaiverRecord};
use std::collections::BTreeMap;

/// Bump when the report shape changes.
pub const SCHEMA_VERSION: u32 = 1;

/// Render the full report as a JSON string.
pub fn render_json(files_scanned: usize, findings: &[Finding], waivers: &[WaiverRecord]) -> String {
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        by_rule.insert(rule.id(), 0);
    }
    for f in findings {
        *by_rule.entry(f.rule.id()).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"tool\": \"bios-audit\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str(&format!("  \"waiver_count\": {},\n", waivers.len()));

    out.push_str("  \"findings_by_rule\": {");
    let mut first = true;
    for (rule, count) in &by_rule {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{rule}\": {count}"));
    }
    out.push_str("},\n");

    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            escape(&f.path),
            f.line,
            f.col,
            f.rule.id(),
            escape(&f.message),
            comma
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"waivers\": [\n");
    for (i, w) in waivers.iter().enumerate() {
        let comma = if i + 1 < waivers.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"used\": {}, \
             \"reason\": \"{}\"}}{}\n",
            escape(&w.path),
            w.line,
            escape(&w.rule),
            w.used,
            escape(&w.reason),
            comma
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping: backslash, quote, and control chars.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_valid_shape_and_stable() {
        let findings = vec![Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: Rule::PUnwrap,
            message: "`.unwrap()` with \"quotes\"".into(),
        }];
        let waivers = vec![WaiverRecord {
            path: "crates/x/src/lib.rs".into(),
            line: 9,
            rule: "D-hash".into(),
            reason: "membership only".into(),
            used: true,
        }];
        let a = render_json(5, &findings, &waivers);
        let b = render_json(5, &findings, &waivers);
        assert_eq!(a, b, "report must be a pure function of its inputs");
        assert!(a.contains("\"schema_version\": 1"));
        assert!(a.contains("\\\"quotes\\\""));
        assert!(a.contains("\"P-unwrap\": 1"));
        assert!(a.ends_with("}\n"));
    }
}

//! The machine-readable summary: `AUDIT_report.json`.
//!
//! Hand-rolled JSON in the same discipline as `BENCH_runtime.json`
//! (no serde in the offline workspace): line-stable output and a
//! `schema_version` field so future PRs can track finding/waiver
//! counts over time. Schema 2 adds the semantic-pass fields:
//! per-family counts, the G-taint call chains, the facts-cache
//! counters, and `elapsed_ms`. The elapsed time is the report's *only*
//! impure field — everything else is a pure function of the tree, so
//! `scripts/check.sh` can grep the schema and counts stably while the
//! timing stays observable.

use crate::cache::CacheStats;
use crate::config::Rule;
use crate::graph::TaintChain;
use crate::rules::{Finding, WaiverRecord};
use std::collections::BTreeMap;

/// Bump when the report shape changes. `scripts/check.sh` refuses
/// reports with a schema it does not know.
pub const SCHEMA_VERSION: u32 = 2;

/// Everything the report renders, gathered by the caller.
#[derive(Debug, Default)]
pub struct ReportInput<'a> {
    /// Number of `.rs` files audited.
    pub files_scanned: usize,
    /// Findings surviving waiver application.
    pub findings: &'a [Finding],
    /// Every waiver encountered.
    pub waivers: &'a [WaiverRecord],
    /// Call chains backing the G-taint findings.
    pub chains: &'a [TaintChain],
    /// Facts-cache counters for this run.
    pub cache: CacheStats,
    /// Wall-clock duration of the run in milliseconds.
    pub elapsed_ms: u128,
}

/// Render the full report as a JSON string.
pub fn render_json(input: &ReportInput<'_>) -> String {
    let ReportInput {
        files_scanned,
        findings,
        waivers,
        chains,
        cache,
        elapsed_ms,
    } = input;
    let mut by_rule: BTreeMap<&str, usize> = BTreeMap::new();
    for rule in Rule::ALL {
        by_rule.insert(rule.id(), 0);
    }
    let mut by_family: BTreeMap<&str, usize> = BTreeMap::new();
    for family in ["D", "P", "F", "U", "G", "L", "W"] {
        by_family.insert(family, 0);
    }
    for f in findings.iter() {
        *by_rule.entry(f.rule.id()).or_insert(0) += 1;
        *by_family.entry(f.rule.family()).or_insert(0) += 1;
    }

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str(&format!("  \"schema_version\": {SCHEMA_VERSION},\n"));
    out.push_str("  \"tool\": \"bios-audit\",\n");
    out.push_str(&format!("  \"files_scanned\": {files_scanned},\n"));
    out.push_str(&format!("  \"elapsed_ms\": {elapsed_ms},\n"));
    out.push_str(&format!("  \"finding_count\": {},\n", findings.len()));
    out.push_str(&format!("  \"waiver_count\": {},\n", waivers.len()));
    out.push_str(&format!(
        "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.3}}},\n",
        cache.hits,
        cache.misses,
        cache.hit_rate()
    ));

    out.push_str("  \"findings_by_family\": {");
    let mut first = true;
    for (family, count) in &by_family {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{family}\": {count}"));
    }
    out.push_str("},\n");

    out.push_str("  \"findings_by_rule\": {");
    let mut first = true;
    for (rule, count) in &by_rule {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{rule}\": {count}"));
    }
    out.push_str("},\n");

    out.push_str("  \"findings\": [\n");
    for (i, f) in findings.iter().enumerate() {
        let comma = if i + 1 < findings.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"rule\": \"{}\", \
             \"message\": \"{}\"}}{}\n",
            escape(&f.path),
            f.line,
            f.col,
            f.rule.id(),
            escape(&f.message),
            comma
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"taint_chains\": [\n");
    for (i, c) in chains.iter().enumerate() {
        let comma = if i + 1 < chains.len() { "," } else { "" };
        let chain = c
            .chain
            .iter()
            .map(|q| format!("\"{}\"", escape(q)))
            .collect::<Vec<_>>()
            .join(", ");
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"col\": {}, \"api\": \"{}\", \
             \"chain\": [{}]}}{}\n",
            escape(&c.file),
            c.line,
            c.col,
            escape(&c.api),
            chain,
            comma
        ));
    }
    out.push_str("  ],\n");

    out.push_str("  \"waivers\": [\n");
    for (i, w) in waivers.iter().enumerate() {
        let comma = if i + 1 < waivers.len() { "," } else { "" };
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"used\": {}, \
             \"reason\": \"{}\"}}{}\n",
            escape(&w.path),
            w.line,
            escape(&w.rule),
            w.used,
            escape(&w.reason),
            comma
        ));
    }
    out.push_str("  ]\n");
    out.push_str("}\n");
    out
}

/// Minimal JSON string escaping: backslash, quote, and control chars.
fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_is_valid_shape_and_stable() {
        let findings = vec![Finding {
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            rule: Rule::PUnwrap,
            message: "`.unwrap()` with \"quotes\"".into(),
        }];
        let waivers = vec![WaiverRecord {
            path: "crates/x/src/lib.rs".into(),
            line: 9,
            rule: "D-hash".into(),
            reason: "membership only".into(),
            used: true,
        }];
        let chains = vec![TaintChain {
            file: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            api: "Instant::now".into(),
            chain: vec!["x::digest".into(), "x::helper".into()],
        }];
        let input = ReportInput {
            files_scanned: 5,
            findings: &findings,
            waivers: &waivers,
            chains: &chains,
            cache: CacheStats { hits: 4, misses: 1 },
            elapsed_ms: 12,
        };
        let a = render_json(&input);
        let b = render_json(&input);
        assert_eq!(a, b, "report must be a pure function of its inputs");
        assert!(a.contains("\"schema_version\": 2"));
        assert!(a.contains("\"elapsed_ms\": 12"));
        assert!(a.contains("\\\"quotes\\\""));
        assert!(a.contains("\"P-unwrap\": 1"));
        assert!(a.contains("\"findings_by_family\""));
        assert!(a.contains("\"hit_rate\": 0.800"));
        assert!(a.contains("\"chain\": [\"x::digest\", \"x::helper\"]"));
        assert!(a.ends_with("}\n"));
    }
}

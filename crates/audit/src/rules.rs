//! The rule engine: walks a token stream and produces findings.
//!
//! The engine works in layers:
//!
//! 1. a *mask* pass marks token ranges that the rules must ignore —
//!    `#[cfg(test)]` items, `#[test]` functions, and `macro_rules!`
//!    bodies (whose `$(#[$doc])*` metavariables would otherwise look
//!    like undocumented `pub fn`s);
//! 2. a *waiver* pass collects `bios-audit` allow-comments from the
//!    comment channel;
//! 3. the *rule* pass matches lexical patterns over the unmasked code
//!    tokens, scoped by path (see [`Config`]) — including the
//!    L-family lock/channel discipline, which walks the
//!    [`crate::items`] tree to confine its guard automaton to one
//!    function body at a time;
//! 4. waivers are applied — each suppresses exactly one finding on its
//!    own line or the line below — and waivers that are malformed or
//!    suppressed nothing become findings themselves.
//!
//! For the whole-workspace semantic pass, [`analyze_file`] returns the
//! *pre-waiver* [`crate::graph::FileFacts`] instead, so the pipeline
//! in [`crate::workspace`] can run the cross-file G rules first and
//! apply waivers to the combined finding set.
//!
//! Everything here is pure: same source bytes in, same findings out,
//! in a deterministic order.

use crate::config::{Config, Rule};
use crate::graph::{extract_facts, fnv1a, FileFacts};
use crate::items::{parse_items, Item, ItemKind};
use crate::lexer::{tokenize, Token, TokenKind};

/// One audit finding, printable as `file:line:col rule message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Repo-relative path of the offending file.
    pub path: String,
    /// 1-based line of the offending token.
    pub line: u32,
    /// 1-based column of the offending token.
    pub col: u32,
    /// Which rule fired.
    pub rule: Rule,
    /// Human-readable explanation with the suggested fix.
    pub message: String,
}

impl Finding {
    /// Render in the canonical `file:line:col rule message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} {} {}",
            self.path,
            self.line,
            self.col,
            self.rule.id(),
            self.message
        )
    }
}

/// A parsed waiver comment and whether it ended up suppressing a
/// finding.
#[derive(Debug, Clone)]
pub struct WaiverRecord {
    /// Repo-relative path of the file carrying the waiver.
    pub path: String,
    /// 1-based line of the waiver comment.
    pub line: u32,
    /// The rule id or family letter named in `allow(…)`.
    pub rule: String,
    /// The mandatory justification after the dash.
    pub reason: String,
    /// Whether the waiver suppressed a finding.
    pub used: bool,
}

/// The result of auditing one file.
#[derive(Debug, Default)]
pub struct AuditOutcome {
    /// Findings that survived waiver application, sorted.
    pub findings: Vec<Finding>,
    /// Every syntactically valid waiver encountered, used or not.
    pub waivers: Vec<WaiverRecord>,
}

/// Keywords that can directly precede `[` without it being an index
/// expression (e.g. `return [0; 4]`, `in [a, b]`).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "return", "in", "as", "if", "else", "match", "move", "mut", "ref", "break", "box", "dyn",
    "impl", "where", "let", "const", "static", "use", "mod", "fn", "type", "loop", "while", "for",
];

/// Audit a single file's source text.
///
/// `path` should be repo-relative with forward slashes; it is used for
/// rule scoping and is echoed into the findings. This runs every
/// single-file rule (D/P/F/U/L) and applies the file's waivers; the
/// cross-file G rules need the whole workspace and live in
/// [`crate::workspace`].
pub fn audit_source(path: &str, source: &str, config: &Config) -> AuditOutcome {
    let facts = analyze_file(path, source, config);
    let mut findings = facts.local_findings;
    let mut waivers = facts.waivers;
    finalize(&mut findings, &mut waivers);
    AuditOutcome { findings, waivers }
}

/// Analyze one file into its pre-waiver [`FileFacts`]: local findings
/// (D/P/F/U/L), declared waivers, and the call/dependency facts the
/// graph passes consume. Pure in `(path, source, config)` — the unit
/// the FNV cache stores.
pub fn analyze_file(path: &str, source: &str, config: &Config) -> FileFacts {
    let tokens = tokenize(source);
    let masked = mask_ignored_regions(&tokens);
    // Indices of code (non-comment) tokens, the stream rules match on.
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let mut findings = Vec::new();
    let waivers = collect_waivers(path, &tokens, &mut findings);

    run_token_rules(path, &tokens, &code, &masked, config, &mut findings);
    run_doc_rule(path, &tokens, &code, &masked, config, &mut findings);

    let items = parse_items(&tokens);
    run_lock_rules(path, &tokens, &items, &mut findings);
    let (fns, use_deps) = extract_facts(path, &tokens, &masked, &items);

    FileFacts {
        path: path.to_string(),
        source_fnv: fnv1a(source.as_bytes()),
        local_findings: findings,
        waivers,
        fns,
        use_deps,
    }
}

/// Apply waivers to a finding set, convert unused waivers into
/// `W-waiver` findings, and sort into report order.
pub fn finalize(findings: &mut Vec<Finding>, waivers: &mut [WaiverRecord]) {
    apply_waivers(findings, waivers);
    for w in waivers.iter() {
        if !w.used {
            findings.push(Finding {
                path: w.path.clone(),
                line: w.line,
                col: 1,
                rule: Rule::WWaiver,
                message: format!("waiver allow({}) did not suppress any finding", w.rule),
            });
        }
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule.id()).cmp(&(
            b.path.as_str(),
            b.line,
            b.col,
            b.rule.id(),
        ))
    });
}

/// Mark every token inside a `#[cfg(test)]` item, `#[test]` fn, or
/// `macro_rules!` body. Returns a mask aligned with `tokens`.
fn mask_ignored_regions(tokens: &[Token]) -> Vec<bool> {
    let mut masked = vec![false; tokens.len()];
    let code: Vec<usize> = (0..tokens.len())
        .filter(|&i| !tokens[i].is_comment())
        .collect();

    let mut k = 0usize;
    while k < code.len() {
        let i = code[k];
        let t = &tokens[i];
        if t.kind == TokenKind::Punct && t.text == "#" {
            // Inner attribute `#![…]` — if it gates the whole file on
            // test, mask everything that follows.
            let inner = next_code_text(tokens, &code, k + 1) == Some("!");
            let bracket_at = if inner { k + 2 } else { k + 1 };
            if next_code_text(tokens, &code, bracket_at) == Some("[") {
                let close = match matching_close(tokens, &code, bracket_at, "[", "]") {
                    Some(c) => c,
                    None => break,
                };
                let attr_marks_test = attr_is_test(tokens, &code, bracket_at + 1, close);
                if attr_marks_test {
                    if inner {
                        for m in masked.iter_mut().skip(i) {
                            *m = true;
                        }
                        return masked;
                    }
                    // Mask from the attribute through the end of the
                    // item it annotates.
                    let item_end = item_end_after(tokens, &code, close + 1);
                    for &ci in code.iter().take(item_end.min(code.len())).skip(k) {
                        masked[ci] = true;
                    }
                    // Also mask any comments physically inside the span.
                    mask_comment_span(tokens, &mut masked, i, code.get(item_end.saturating_sub(1)));
                    k = item_end;
                    continue;
                }
                k = close + 1;
                continue;
            }
        }
        if t.kind == TokenKind::Ident && t.text == "macro_rules" {
            // macro_rules! name { … } — mask the whole definition.
            let mut j = k + 1;
            while j < code.len() && tokens[code[j]].text != "{" {
                j += 1;
            }
            if let Some(close) = matching_close(tokens, &code, j, "{", "}") {
                for &ci in code.iter().take(close + 1).skip(k) {
                    masked[ci] = true;
                }
                mask_comment_span(tokens, &mut masked, i, code.get(close));
                k = close + 1;
                continue;
            }
            break;
        }
        k += 1;
    }
    masked
}

/// Mask comment tokens lying between code token `start_tok` and the
/// code token index `end` (inclusive), so doc-rule lookbacks inside
/// masked items stay consistent.
fn mask_comment_span(tokens: &[Token], masked: &mut [bool], start_tok: usize, end: Option<&usize>) {
    if let Some(&end_tok) = end {
        for (m, _) in masked
            .iter_mut()
            .zip(tokens.iter())
            .take(end_tok + 1)
            .skip(start_tok)
        {
            *m = true;
        }
    }
}

/// Text of the code token at logical position `k`, if any.
fn next_code_text<'t>(tokens: &'t [Token], code: &[usize], k: usize) -> Option<&'t str> {
    code.get(k).map(|&i| tokens[i].text.as_str())
}

/// Given `code[open_k]` == the opening delimiter, find the logical
/// index of its matching close, honoring nesting of the same pair.
fn matching_close(
    tokens: &[Token],
    code: &[usize],
    open_k: usize,
    open: &str,
    close: &str,
) -> Option<usize> {
    let mut depth = 0usize;
    for (k, &i) in code.iter().enumerate().skip(open_k) {
        let text = tokens[i].text.as_str();
        if text == open {
            depth += 1;
        } else if text == close {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Does the attribute body `code[start..end]` mark its item as
/// test-only? True for `test`, `cfg(test)`, `cfg(all(test, …))`;
/// false for `cfg(not(test))` and for `cfg_attr(…)` (which gates an
/// attribute, not the item).
fn attr_is_test(tokens: &[Token], code: &[usize], start: usize, end: usize) -> bool {
    let texts: Vec<&str> = code[start..end]
        .iter()
        .map(|&i| tokens[i].text.as_str())
        .collect();
    match texts.first() {
        Some(&"test") => true,
        Some(&"cfg") => {
            let mut depth_not = 0usize;
            let mut not_depth_stack: Vec<usize> = Vec::new();
            let mut paren_depth = 0usize;
            for w in texts.windows(1).skip(1) {
                let t = w[0];
                match t {
                    "(" => paren_depth += 1,
                    ")" => {
                        paren_depth = paren_depth.saturating_sub(1);
                        if not_depth_stack.last() == Some(&paren_depth) {
                            not_depth_stack.pop();
                            depth_not -= 1;
                        }
                    }
                    "not" => {
                        not_depth_stack.push(paren_depth);
                        depth_not += 1;
                    }
                    "test" if depth_not == 0 => return true,
                    _ => {}
                }
            }
            false
        }
        _ => false,
    }
}

/// Find the logical index one past the end of the item starting at
/// `code[k]`: either past the matching `}` of its first body brace, or
/// past the terminating `;` for braceless items.
fn item_end_after(tokens: &[Token], code: &[usize], k: usize) -> usize {
    let mut j = k;
    let mut angle = 0isize;
    while j < code.len() {
        let text = tokens[code[j]].text.as_str();
        match text {
            "{" => {
                return match matching_close(tokens, code, j, "{", "}") {
                    Some(close) => close + 1,
                    None => code.len(),
                };
            }
            ";" if angle <= 0 => return j + 1,
            "<" => angle += 1,
            ">" => angle -= 1,
            // A nested attribute on the item itself (e.g. `#[cfg(test)]
            // #[derive(..)] struct S;`) — skip its brackets.
            "[" => {
                j = matching_close(tokens, code, j, "[", "]").unwrap_or(code.len());
            }
            _ => {}
        }
        j += 1;
    }
    code.len()
}

/// Collect `bios-audit` allow-comments. Malformed waivers (missing
/// reason) are reported as findings immediately and not honored.
fn collect_waivers(path: &str, tokens: &[Token], findings: &mut Vec<Finding>) -> Vec<WaiverRecord> {
    let mut waivers = Vec::new();
    for t in tokens {
        if !matches!(t.kind, TokenKind::LineComment { doc: false }) {
            continue;
        }
        let Some(at) = t.text.find("bios-audit:") else {
            continue;
        };
        let rest = &t.text[at + "bios-audit:".len()..];
        let Some(open) = rest.find("allow(") else {
            continue;
        };
        let after = &rest[open + "allow(".len()..];
        let Some(close) = after.find(')') else {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::WWaiver,
                message: "malformed waiver: unclosed allow(".to_string(),
            });
            continue;
        };
        let rule = after[..close].trim().to_string();
        let tail = &after[close + 1..];
        // The reason follows an em-dash, double-hyphen, or hyphen.
        let reason = ["—", "--", "-"]
            .iter()
            .find_map(|sep| tail.split_once(sep).map(|(_, r)| r.trim().to_string()))
            .unwrap_or_default();
        if reason.is_empty() {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::WWaiver,
                message: format!(
                    "waiver allow({rule}) is missing its reason — write \
                     `bios-audit: allow({rule}) — <why this is sound>`"
                ),
            });
            continue;
        }
        waivers.push(WaiverRecord {
            path: path.to_string(),
            line: t.line,
            rule,
            reason,
            used: false,
        });
    }
    waivers
}

/// The lexical pattern rules (families D, P, F and `U-unsafe`).
fn run_token_rules(
    path: &str,
    tokens: &[Token],
    code: &[usize],
    masked: &[bool],
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    let push = |rule: Rule, tok: &Token, message: String, findings: &mut Vec<Finding>| {
        if config.in_scope(rule, path) {
            findings.push(Finding {
                path: path.to_string(),
                line: tok.line,
                col: tok.col,
                rule,
                message,
            });
        }
    };

    for (k, &i) in code.iter().enumerate() {
        if masked[i] {
            continue;
        }
        let t = &tokens[i];
        let prev = k
            .checked_sub(1)
            .and_then(|p| code.get(p))
            .map(|&j| &tokens[j]);
        let next = code.get(k + 1).map(|&j| &tokens[j]);
        let next2 = code.get(k + 2).map(|&j| &tokens[j]);

        match t.kind {
            TokenKind::Ident => match t.text.as_str() {
                "unwrap" | "expect"
                    if prev.map(|p| p.text == ".").unwrap_or(false)
                        && next.map(|n| n.text == "(").unwrap_or(false) =>
                {
                    let (rule, msg) = if t.text == "unwrap" {
                        (
                            Rule::PUnwrap,
                            "`.unwrap()` in non-test code — propagate the error or \
                             handle the None case"
                                .to_string(),
                        )
                    } else {
                        (
                            Rule::PExpect,
                            "`.expect(..)` in non-test code — propagate the error \
                             instead of panicking"
                                .to_string(),
                        )
                    };
                    push(rule, t, msg, findings);
                }
                "panic" | "todo" | "unimplemented" | "dbg"
                    if next.map(|n| n.text == "!").unwrap_or(false)
                        // `core::panic::…` paths and `panic` idents in
                        // use-statements don't have a following `!`.
                        && prev.map(|p| p.text != "::").unwrap_or(true) =>
                {
                    push(
                        Rule::PPanic,
                        t,
                        format!(
                            "`{}!` in non-test code — return a typed error instead",
                            t.text
                        ),
                        findings,
                    );
                }
                "HashMap" | "HashSet" => {
                    push(
                        Rule::DHash,
                        t,
                        format!(
                            "`{}` in a digest-path module — iteration order is \
                             nondeterministic; use `BTree{}`",
                            t.text,
                            &t.text[4..]
                        ),
                        findings,
                    );
                }
                "Instant" | "SystemTime"
                    if next.map(|n| n.text == "::").unwrap_or(false)
                        && next2.map(|n| n.text == "now").unwrap_or(false) =>
                {
                    push(
                        Rule::DTime,
                        t,
                        format!(
                            "`{}::now()` in a digest-path module — wall-clock reads \
                             make replay nondeterministic",
                            t.text
                        ),
                        findings,
                    );
                }
                "thread"
                    if next.map(|n| n.text == "::").unwrap_or(false)
                        && next2.map(|n| n.text == "current").unwrap_or(false) =>
                {
                    push(
                        Rule::DThread,
                        t,
                        "`thread::current()` in a digest-path module — thread \
                         identity must not reach digested bytes"
                            .to_string(),
                        findings,
                    );
                }
                "as" if next.map(|n| n.text == "f32").unwrap_or(false) => {
                    push(
                        Rule::FNarrow,
                        t,
                        "`as f32` narrowing in solver/analytics code — keep f64 \
                         through the numeric path"
                            .to_string(),
                        findings,
                    );
                }
                "unsafe" => {
                    push(
                        Rule::UUnsafe,
                        t,
                        "`unsafe` is not permitted anywhere in this workspace".to_string(),
                        findings,
                    );
                }
                _ => {}
            },
            TokenKind::Punct if t.text == "==" || t.text == "!=" => {
                let is_float =
                    |tok: Option<&Token>| tok.map(|t| t.kind == TokenKind::Float).unwrap_or(false);
                // `x == 0.0`, `0.0 == x`, and `x == -1.0`.
                let neg_float = next.map(|n| n.text == "-").unwrap_or(false)
                    && next2.map(|n| n.kind == TokenKind::Float).unwrap_or(false);
                if is_float(prev) || is_float(next) || neg_float {
                    push(
                        Rule::FEq,
                        t,
                        format!(
                            "`{}` against a float literal — use an epsilon \
                             comparison (bios_units::approx)",
                            t.text
                        ),
                        findings,
                    );
                }
            }
            TokenKind::Punct if t.text == "[" => {
                let indexes = match prev {
                    Some(p) => {
                        (p.kind == TokenKind::Ident
                            && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                            || p.text == ")"
                            || p.text == "]"
                    }
                    None => false,
                };
                if indexes {
                    push(
                        Rule::PIndex,
                        t,
                        "slice indexing in a durability module — use `.get(..)` so a \
                         torn frame cannot panic mid-write"
                            .to_string(),
                        findings,
                    );
                }
            }
            _ => {}
        }
    }
}

/// `U-doc`: every `pub fn` in a physics crate must have a doc comment
/// that names physical units (or says the value is dimensionless).
fn run_doc_rule(
    path: &str,
    tokens: &[Token],
    code: &[usize],
    masked: &[bool],
    config: &Config,
    findings: &mut Vec<Finding>,
) {
    if !config.in_scope(Rule::UDoc, path) {
        return;
    }
    for (k, &i) in code.iter().enumerate() {
        if masked[i] {
            continue;
        }
        let t = &tokens[i];
        // Bare `pub fn` only: `pub(crate) fn` is not public API.
        if !(t.kind == TokenKind::Ident && t.text == "pub") {
            continue;
        }
        if next_code_text(tokens, code, k + 1) != Some("fn") {
            continue;
        }
        let fn_name = next_code_text(tokens, code, k + 2).unwrap_or("?");
        let doc = doc_text_above(tokens, i);
        let Some(text) = doc else {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::UDoc,
                message: format!("public fn `{fn_name}` has no doc comment"),
            });
            continue;
        };
        // Unit naming is only demanded when the signature passes bare
        // floats around; typed-quantity signatures carry their units.
        let (has_bare_float, sig_names_units) = signature_profile(tokens, code, k, config);
        if !has_bare_float || sig_names_units {
            continue;
        }
        let doc_names_units = config
            .unit_vocabulary
            .iter()
            .any(|w| text.contains(w.as_str()));
        if !doc_names_units {
            findings.push(Finding {
                path: path.to_string(),
                line: t.line,
                col: t.col,
                rule: Rule::UDoc,
                message: format!(
                    "public fn `{fn_name}` passes bare floats but neither its doc \
                     comment nor its signature names physical units (or says the \
                     value is dimensionless)"
                ),
            });
        }
    }
}

/// Scan the signature tokens of the `fn` starting at logical index `k`
/// (the `pub` token) up to the body `{` or terminating `;`. Returns
/// `(has_bare_float, names_units)`.
fn signature_profile(tokens: &[Token], code: &[usize], k: usize, config: &Config) -> (bool, bool) {
    let mut has_float = false;
    let mut names_units = false;
    let mut depth = 0usize;
    for &i in code.iter().skip(k) {
        let t = &tokens[i];
        match t.text.as_str() {
            "{" | ";" if depth == 0 => break,
            "(" | "[" => depth += 1,
            ")" | "]" => depth = depth.saturating_sub(1),
            _ => {}
        }
        if t.kind != TokenKind::Ident {
            continue;
        }
        if t.text == "f64" || t.text == "f32" {
            has_float = true;
            continue;
        }
        let lower = t.text.to_lowercase();
        if config
            .signature_unit_fragments
            .iter()
            .any(|f| lower.contains(f.as_str()))
        {
            names_units = true;
        }
    }
    (has_float, names_units)
}

/// Concatenated text of the doc comments immediately above token `i`,
/// skipping interleaved attributes. `None` when there is no doc.
fn doc_text_above(tokens: &[Token], i: usize) -> Option<String> {
    let mut docs: Vec<&str> = Vec::new();
    let mut j = i;
    while j > 0 {
        j -= 1;
        let t = &tokens[j];
        if t.is_doc_comment() {
            docs.push(t.text.as_str());
            continue;
        }
        if t.is_comment() {
            // A plain comment between doc and item is fine; keep looking.
            continue;
        }
        if t.text == "]" {
            // Walk back over an attribute `#[…]`.
            let mut depth = 1usize;
            while j > 0 && depth > 0 {
                j -= 1;
                match tokens[j].text.as_str() {
                    "]" => depth += 1,
                    "[" => depth -= 1,
                    _ => {}
                }
            }
            // Consume the leading `#` (and `!` for inner attributes).
            if j > 0 && tokens[j - 1].text == "#" {
                j -= 1;
            } else if j > 1 && tokens[j - 1].text == "!" && tokens[j - 2].text == "#" {
                j -= 2;
            }
            continue;
        }
        break;
    }
    if docs.is_empty() {
        None
    } else {
        Some(docs.join("\n"))
    }
}

/// Apply waivers: each unused waiver suppresses the first finding of a
/// matching rule in the same file, on its own line or the line
/// directly below it.
fn apply_waivers(findings: &mut Vec<Finding>, waivers: &mut [WaiverRecord]) {
    for w in waivers.iter_mut() {
        let matches_rule = |f: &Finding| {
            f.rule != Rule::WWaiver
                && f.path == w.path
                && (w.rule == f.rule.id() || w.rule == f.rule.family())
        };
        let on_waived_line = |f: &Finding| f.line == w.line || f.line == w.line.saturating_add(1);
        if let Some(pos) = findings
            .iter()
            .position(|f| matches_rule(f) && on_waived_line(f))
        {
            findings.remove(pos);
            w.used = true;
        }
    }
}

// ---------------------------------------------------------------------------
// L family: lock & channel discipline
// ---------------------------------------------------------------------------

/// Run the L-family rules over every non-test function body.
///
/// * `L-lock`: no `.lock()`/`.recv()`/`.join()` call while a
///   `MutexGuard` binding is live in the same block. Guards are
///   tracked by a brace-depth automaton: a binding created by
///   `let g = ….lock()…`, `let Ok(g) = ….lock() else`, or a
///   `match ….lock() { Ok(g) => …` arm is live until `drop(g)`, the
///   end of its block, or (for match arms) the end of its arm.
/// * `L-send`: no `send` on a channel endpoint after an explicit
///   `drop` of its pair (`let (tx, rx) = …channel…`, `drop(rx)`,
///   `tx.send(…)` can only fail).
fn run_lock_rules(path: &str, tokens: &[Token], items: &[Item], findings: &mut Vec<Finding>) {
    for item in items {
        if item.test_only {
            continue;
        }
        match item.kind {
            ItemKind::Fn => {
                if let Some((start, end)) = item.body {
                    lock_scan_body(path, tokens, start, end, findings);
                }
            }
            ItemKind::Impl | ItemKind::Trait | ItemKind::Mod => {
                run_lock_rules(path, tokens, &item.children, findings);
            }
            ItemKind::Use => {}
        }
    }
}

/// A live `MutexGuard` binding inside the automaton.
struct LiveGuard {
    name: String,
    /// Brace depth the binding lives at; it dies when depth drops
    /// below this.
    depth: usize,
    /// Match-arm bindings additionally die at a `,` on their own depth.
    arm: bool,
}

/// The blocking calls `L-lock` bans under a live guard.
const BLOCKING_CALLS: &[&str] = &["lock", "recv", "recv_timeout", "join"];

/// The guard automaton over one function body (raw-token range).
fn lock_scan_body(
    path: &str,
    tokens: &[Token],
    start: usize,
    end: usize,
    findings: &mut Vec<Finding>,
) {
    let code: Vec<usize> = (start..end.min(tokens.len()))
        .filter(|&i| !tokens[i].is_comment())
        .collect();
    let mut guards: Vec<LiveGuard> = Vec::new();
    let mut depth: usize = 0;
    let mut paren: usize = 0;
    // Channel endpoint pairs (`tx` → `rx` and back) and explicitly
    // dropped endpoints, for L-send.
    let mut pairs: std::collections::BTreeMap<String, String> = std::collections::BTreeMap::new();
    let mut dropped: std::collections::BTreeSet<String> = std::collections::BTreeSet::new();

    let text = |k: usize| -> Option<&str> { code.get(k).map(|&i| tokens[i].text.as_str()) };

    for k in 0..code.len() {
        let i = code[k];
        let t = &tokens[i];
        match t.text.as_str() {
            "{" => {
                depth += 1;
                continue;
            }
            "}" => {
                depth = depth.saturating_sub(1);
                guards.retain(|g| g.depth <= depth);
                continue;
            }
            "(" => {
                paren += 1;
                continue;
            }
            ")" => {
                paren = paren.saturating_sub(1);
                continue;
            }
            "," if paren == 0 => {
                // End of a match arm: arm-scoped guards at this depth die.
                guards.retain(|g| !(g.arm && g.depth == depth));
                continue;
            }
            _ => {}
        }
        if t.kind != TokenKind::Ident {
            continue;
        }

        // `let (tx, rx) = …channel…;` — record the endpoint pair.
        if t.text == "let" && text(k + 1) == Some("(") {
            if let Some((a, b, after)) = channel_pair(tokens, &code, k + 2) {
                if statement_mentions_channel(tokens, &code, after) {
                    pairs.insert(a.clone(), b.clone());
                    pairs.insert(b, a);
                }
            }
            continue;
        }

        // `drop(x)` — kill a guard or mark a channel endpoint dropped.
        if t.text == "drop" && text(k + 1) == Some("(") {
            if let (Some(arg), Some(")")) = (text(k + 2).map(str::to_string), text(k + 3)) {
                guards.retain(|g| g.name != arg);
                if pairs.contains_key(&arg) {
                    dropped.insert(arg);
                }
            }
            continue;
        }

        // `x.send(…)` after `drop` of x's pair.
        if t.text == "send" && text(k + 1) == Some("(") && k >= 2 && text(k - 1) == Some(".") {
            if let Some(endpoint) = code
                .get(k - 2)
                .map(|&j| &tokens[j])
                .filter(|e| e.kind == TokenKind::Ident)
            {
                if let Some(pair) = pairs.get(&endpoint.text) {
                    if dropped.contains(pair) {
                        findings.push(Finding {
                            path: path.to_string(),
                            line: t.line,
                            col: t.col,
                            rule: Rule::LSend,
                            message: format!(
                                "`{}.send(..)` after its paired endpoint `{pair}` was \
                                 dropped — the send can only fail",
                                endpoint.text
                            ),
                        });
                    }
                }
            }
        }

        // Blocking calls under a live guard, and new guard bindings.
        if BLOCKING_CALLS.contains(&t.text.as_str())
            && text(k + 1) == Some("(")
            && k >= 1
            && text(k - 1) == Some(".")
        {
            if let Some(g) = guards.first() {
                findings.push(Finding {
                    path: path.to_string(),
                    line: t.line,
                    col: t.col,
                    rule: Rule::LLock,
                    message: format!(
                        "`.{}()` while MutexGuard `{}` is live in this block — \
                         release the guard (drop({})) before blocking",
                        t.text, g.name, g.name
                    ),
                });
            }
            if t.text == "lock" {
                if let Some(g) = lock_binding(tokens, &code, k, depth) {
                    guards.push(g);
                }
            }
        }
    }
}

/// Parse `a , b )` starting at logical index `k` (just past `let (`).
/// Returns the two idents and the index past the `)`.
fn channel_pair(tokens: &[Token], code: &[usize], k: usize) -> Option<(String, String, usize)> {
    let ident = |k: usize| -> Option<&Token> {
        code.get(k)
            .map(|&i| &tokens[i])
            .filter(|t| t.kind == TokenKind::Ident)
    };
    let text = |k: usize| -> Option<&str> { code.get(k).map(|&i| tokens[i].text.as_str()) };
    // Skip `mut` on either binding.
    let mut pos = k;
    if text(pos) == Some("mut") {
        pos += 1;
    }
    let a = ident(pos)?.text.clone();
    if text(pos + 1) != Some(",") {
        return None;
    }
    pos += 2;
    if text(pos) == Some("mut") {
        pos += 1;
    }
    let b = ident(pos)?.text.clone();
    if text(pos + 1) != Some(")") {
        return None;
    }
    Some((a, b, pos + 2))
}

/// Does the statement starting at logical index `k` (just past the
/// destructuring pattern) mention a channel constructor before its
/// terminating `;`?
fn statement_mentions_channel(tokens: &[Token], code: &[usize], k: usize) -> bool {
    for &i in code.iter().skip(k) {
        let t = &tokens[i];
        if t.text == ";" {
            return false;
        }
        if t.kind == TokenKind::Ident && (t.text == "channel" || t.text == "sync_channel") {
            return true;
        }
    }
    false
}

/// Find the binding a `.lock()` call at logical index `k` creates, if
/// any: first look *backward* for the `let` of the enclosing
/// statement, then (for `match ….lock() { Ok(g) => …`) *forward* into
/// the first match arm.
fn lock_binding(tokens: &[Token], code: &[usize], k: usize, depth: usize) -> Option<LiveGuard> {
    const PATTERN_NOISE: &[&str] = &["Ok", "Some", "Err", "(", ")", "mut", "&", "ref"];
    let text = |k: usize| -> Option<&str> { code.get(k).map(|&i| tokens[i].text.as_str()) };

    // Backward: stop at statement/block boundaries; a `match` or `=>`
    // before the `let` means the lock result is consumed by a match,
    // so the binding (if any) is in an arm pattern instead.
    let mut j = k;
    let mut backward_let: Option<usize> = None;
    while j > 0 {
        j -= 1;
        match text(j) {
            Some(";") | Some("{") | Some("}") | Some("=>") | Some("match") => break,
            Some("let") => {
                backward_let = Some(j);
                break;
            }
            _ => {}
        }
    }
    if let Some(l) = backward_let {
        // `if let` / `while let` scope the binding to the block that
        // follows, one brace deeper than the statement itself.
        let conditional = l > 0 && matches!(text(l - 1), Some("if") | Some("while"));
        let bind_depth = if conditional { depth + 1 } else { depth };
        // First pattern ident after `let`, skipping `Ok(`/`Some(`/`mut`.
        let mut p = l + 1;
        while let Some(tx) = text(p) {
            if PATTERN_NOISE.contains(&tx) {
                p += 1;
                continue;
            }
            let tok = &tokens[code[p]];
            if tok.kind == TokenKind::Ident {
                return Some(LiveGuard {
                    name: tok.text.clone(),
                    depth: bind_depth,
                    arm: false,
                });
            }
            return None;
        }
        return None;
    }

    // Forward: `….lock() { Ok(g) => …` — skip to the `)` closing the
    // lock call, then look for a brace-opened match with an Ok/Err arm
    // binding within the next few tokens.
    let close = k + 2; // `lock ( )` — the call has no arguments.
    if text(close) != Some(")") {
        return None;
    }
    if text(close + 1) != Some("{") {
        return None;
    }
    let mut p = close + 2;
    let limit = close + 10;
    while p < limit {
        match text(p) {
            Some("Ok") | Some("Some") if text(p + 1) == Some("(") => {
                let mut q = p + 2;
                if text(q) == Some("mut") {
                    q += 1;
                }
                let tok = code.get(q).map(|&i| &tokens[i])?;
                if tok.kind == TokenKind::Ident && text(q + 1) == Some(")") {
                    return Some(LiveGuard {
                        name: tok.text.clone(),
                        depth: depth + 1,
                        arm: true,
                    });
                }
                return None;
            }
            Some("=>") | None => return None,
            _ => p += 1,
        }
    }
    None
}

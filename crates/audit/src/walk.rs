//! Workspace traversal: find every Rust source file the audit covers.
//!
//! The audit walks `crates/*/src` (every crate, including the bench
//! bin layer) plus the facade's own `src/`. Integration tests under
//! `crates/*/tests` are deliberately out of scope — tests may unwrap —
//! and so are fixtures and `target/`.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Collect every `.rs` file under the audit's scope, sorted so the
/// scan order (and therefore the report) is deterministic.
pub fn collect_sources(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let src = entry?.path().join("src");
            if src.is_dir() {
                collect_rs(&src, &mut files)?;
            }
        }
    }
    let facade_src = root.join("src");
    if facade_src.is_dir() {
        collect_rs(&facade_src, &mut files)?;
    }
    files.sort();
    Ok(files)
}

/// Recursively gather `.rs` files under `dir`.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().map(|e| e == "rs").unwrap_or(false) {
            out.push(path);
        }
    }
    Ok(())
}

/// Collect every crate manifest (`crates/*/Cargo.toml`), sorted, for
/// the G-layer dependency checks. The workspace root manifest is not
/// included — it declares the member list, not dependency edges.
pub fn collect_manifests(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut manifests = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        for entry in fs::read_dir(&crates_dir)? {
            let manifest = entry?.path().join("Cargo.toml");
            if manifest.is_file() {
                manifests.push(manifest);
            }
        }
    }
    manifests.sort();
    Ok(manifests)
}

/// Normalize a path for scoping and reporting: repo-relative with
/// forward slashes.
pub fn display_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Locate the workspace root by walking up from `start` until a
/// directory containing both `Cargo.toml` and `crates/` appears.
pub fn find_root(start: &Path) -> Option<PathBuf> {
    let mut dir = Some(start.to_path_buf());
    while let Some(d) = dir {
        if d.join("Cargo.toml").is_file() && d.join("crates").is_dir() {
            return Some(d);
        }
        dir = d.parent().map(Path::to_path_buf);
    }
    None
}

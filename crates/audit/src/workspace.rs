//! The whole-workspace semantic pipeline.
//!
//! Single files are still auditable in isolation
//! ([`crate::rules::audit_source`]), but the G-family rules need every
//! file at once: the taint pass follows calls across crates and the
//! layer pass reads every manifest. This module runs the full
//! pipeline:
//!
//! 1. walk the tree ([`crate::walk`]);
//! 2. per file, fetch [`crate::graph::FileFacts`] from the FNV cache
//!    or re-analyze ([`crate::rules::analyze_file`]);
//! 3. parse every crate manifest and run the G-layer checks;
//! 4. build the approximate call graph and run the G-taint pass;
//! 5. apply waivers to the *combined* finding set — a waiver next to a
//!    banned token suppresses the G-taint finding anchored there just
//!    like a local D finding — and sort into report order.

use crate::cache::{CacheStats, FactsCache};
use crate::config::Config;
use crate::graph::{self, FileFacts, TaintChain};
use crate::rules::{self, Finding, WaiverRecord};
use crate::walk;
use std::path::Path;

/// Everything one workspace audit run produced.
#[derive(Debug, Default)]
pub struct WorkspaceOutcome {
    /// Findings surviving waiver application, in report order.
    pub findings: Vec<Finding>,
    /// Every waiver encountered, used or not.
    pub waivers: Vec<WaiverRecord>,
    /// Call chains backing the G-taint findings, for the report.
    pub chains: Vec<TaintChain>,
    /// Number of `.rs` files audited.
    pub files_scanned: usize,
    /// Facts-cache hit/miss counters.
    pub cache: CacheStats,
}

/// Run the full semantic audit over the workspace at `root`.
///
/// `use_cache` governs the per-file facts cache under `target/`; the
/// findings are byte-identical either way — the cache only changes how
/// much work a warm run repeats.
pub fn audit_workspace(
    root: &Path,
    config: &Config,
    use_cache: bool,
) -> Result<WorkspaceOutcome, String> {
    let files = walk::collect_sources(root).map_err(|e| e.to_string())?;
    let cache_path = FactsCache::path_for(root);
    let fingerprint = config.fingerprint();
    let mut cache = if use_cache {
        FactsCache::load(&cache_path, fingerprint)
    } else {
        FactsCache::load(Path::new("/nonexistent"), fingerprint)
    };
    let mut stats = CacheStats::default();

    let mut facts: Vec<FileFacts> = Vec::with_capacity(files.len());
    for file in &files {
        let source =
            std::fs::read_to_string(file).map_err(|e| format!("read {}: {e}", file.display()))?;
        let label = walk::display_path(root, file);
        let fnv = graph::fnv1a(source.as_bytes());
        if let Some(hit) = cache.get(&label, fnv) {
            stats.hits += 1;
            facts.push(hit.clone());
        } else {
            stats.misses += 1;
            let f = rules::analyze_file(&label, &source, config);
            cache.put(f.clone());
            facts.push(f);
        }
    }

    // G-layer: manifests + in-source crate references.
    let mut manifest_edges = Vec::new();
    for manifest in walk::collect_manifests(root).map_err(|e| e.to_string())? {
        let content = std::fs::read_to_string(&manifest)
            .map_err(|e| format!("read {}: {e}", manifest.display()))?;
        let label = walk::display_path(root, &manifest);
        manifest_edges.extend(graph::parse_manifest(&label, &content));
    }
    let edges = graph::dep_edges(&manifest_edges, &facts);
    let mut findings: Vec<Finding> = graph::layer_findings(config, &edges);

    // G-taint: approximate call graph, BFS from the entry points.
    let call_graph = graph::CallGraph::build(&facts);
    let (taint_findings, chains) = call_graph.taint(&facts, config);
    findings.extend(taint_findings);

    // Local findings + global waiver application.
    let mut waivers: Vec<WaiverRecord> = Vec::new();
    for f in &facts {
        findings.extend(f.local_findings.iter().cloned());
        waivers.extend(f.waivers.iter().cloned());
    }
    rules::finalize(&mut findings, &mut waivers);

    // Chains whose finding was waived away stay out of the report.
    let survived: std::collections::BTreeSet<(String, u32, u32)> = findings
        .iter()
        .filter(|f| f.rule == crate::config::Rule::GTaint)
        .map(|f| (f.path.clone(), f.line, f.col))
        .collect();
    let chains: Vec<TaintChain> = chains
        .into_iter()
        .filter(|c| survived.contains(&(c.file.clone(), c.line, c.col)))
        .collect();

    if use_cache {
        cache.store(&cache_path);
    }

    Ok(WorkspaceOutcome {
        findings,
        waivers,
        chains,
        files_scanned: files.len(),
        cache: stats,
    })
}

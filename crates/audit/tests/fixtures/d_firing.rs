//! D-family firing fixture: audited under a digest-scoped path
//! (`crates/runtime/src/cache.rs`), every line below is a violation.

use std::collections::HashMap;
use std::collections::HashSet;

fn fingerprint_inputs() -> u64 {
    let map: HashMap<String, u64> = HashMap::new();
    let set: HashSet<u64> = HashSet::new();
    let started = std::time::Instant::now();
    let wall = std::time::SystemTime::now();
    let worker = std::thread::current();
    let _ = (map.len(), set.len(), started, wall, worker);
    0
}

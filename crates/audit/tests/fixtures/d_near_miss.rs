//! D-family near-miss fixture: every line is legal even in a
//! digest-scoped module.

use std::collections::BTreeMap;

// A comment may mention HashMap and Instant::now freely.
fn digest(lines: &BTreeMap<u64, String>) -> String {
    // Strings hide their contents from the lexer.
    let label = "HashMap/Instant::now in a string is not a use";
    format!("{label}: {}", lines.len())
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_may_use_wall_clocks_and_hash_maps() {
        let m: HashMap<u32, u32> = HashMap::new();
        let t = std::time::Instant::now();
        assert!(m.is_empty());
        let _ = t;
    }
}

//! F-family firing fixture: audited under a float-scoped path
//! (`crates/analytics/src/fixture.rs`).

fn float_sins(slope: f64, intercept: f64) -> f32 {
    if slope == 0.0 {
        return 0.0 as f32;
    }
    if intercept != 1.5 {
        return 1.0 as f32;
    }
    slope as f32
}

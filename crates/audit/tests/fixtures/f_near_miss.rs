//! F-family near-miss fixture: legal float handling in a float-scoped
//! path.

fn float_virtue(slope: f64, count: usize) -> f64 {
    // Ordering comparisons on floats are fine; equality is the trap.
    if slope < 0.0 || slope > 1.0 {
        return 0.0;
    }
    // Integer equality is fine.
    if count == 0 {
        return slope;
    }
    // Widening to f64 is fine; only `as f32` narrows.
    slope * count as f64
}

#[cfg(test)]
mod tests {
    use super::float_virtue;

    #[test]
    fn tests_may_compare_floats_exactly() {
        assert!(float_virtue(0.5, 0) == 0.5);
    }
}

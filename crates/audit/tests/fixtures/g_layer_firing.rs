//! G-layer firing fixture: a physics crate reaching into the serving
//! layer. Staged (by the golden test and check.sh) as
//! `crates/enzyme/src/lib.rs`.

use bios_runtime::FleetReport;

/// Physics leaning on the serving layer: banned.
pub fn peek(report: &FleetReport) -> usize {
    report.summaries.len()
}

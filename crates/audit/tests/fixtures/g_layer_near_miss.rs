//! G-layer near-miss fixture: the same reference shape in the legal
//! direction — serving depending on physics. Staged as
//! `crates/runtime/src/lib.rs`.

use bios_units::Volts;

/// Serving consuming physics types: allowed.
pub fn bias(v: Volts) -> f64 {
    v.0
}

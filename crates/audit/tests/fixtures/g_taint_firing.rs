//! G-taint firing fixture: the banned call hides two hops from the
//! digest entry point, outside every D-scoped module.

/// Entry point: named `digest`, so the taint pass starts here.
pub fn digest() -> u64 {
    fold()
}

fn fold() -> u64 {
    stamp()
}

fn stamp() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos() as u64
}

//! G-taint near-miss fixture: the banned API exists in the file but
//! no determinism entry point can reach it.

/// Entry point: calls only clean helpers.
pub fn digest() -> u64 {
    fold()
}

fn fold() -> u64 {
    7
}

/// Unreachable from `digest`: the wall clock stays untainted.
pub fn profile() -> u64 {
    let t = std::time::Instant::now();
    t.elapsed().subsec_nanos() as u64
}

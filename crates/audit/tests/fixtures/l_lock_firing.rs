//! L-lock / L-send firing fixture: blocking calls under a live
//! MutexGuard, and a send whose paired receiver is already gone.

use std::sync::{mpsc, Mutex};

/// Nested lock: deadlock shape #1.
pub fn relock(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = a.lock().unwrap_or_else(|e| e.into_inner());
    let second = b.lock().unwrap_or_else(|e| e.into_inner());
    *first + *second
}

/// Join under a held guard: deadlock shape #2.
pub fn join_under_guard(handles: &Mutex<Vec<std::thread::JoinHandle<()>>>) {
    if let Ok(mut held) = handles.lock() {
        for h in held.drain(..) {
            let _ = h.join();
        }
    }
}

/// Send after the receiver is dropped: the send can only fail.
pub fn send_after_drop() {
    let (tx, rx) = mpsc::channel::<u32>();
    drop(rx);
    let _ = tx.send(1);
}

//! L-lock near-miss fixture: the same shapes with the guard released
//! in time.

use std::sync::{mpsc, Mutex};

/// The first guard lives only inside its match arm.
pub fn relock_released(a: &Mutex<u32>, b: &Mutex<u32>) -> u32 {
    let first = match a.lock() {
        Ok(guard) => *guard,
        Err(_) => 0,
    };
    let second = b.lock().map(|g| *g).unwrap_or_default();
    first + second
}

/// The handles leave the lock scope before being joined.
pub fn drain_then_join(handles: &Mutex<Vec<std::thread::JoinHandle<()>>>) {
    let mut retired = Vec::new();
    if let Ok(mut held) = handles.lock() {
        retired.append(&mut held);
    }
    for h in retired {
        let _ = h.join();
    }
}

/// The receiver outlives the send.
pub fn send_alive() -> u32 {
    let (tx, rx) = mpsc::channel::<u32>();
    let _ = tx.send(7);
    rx.recv().unwrap_or_default()
}

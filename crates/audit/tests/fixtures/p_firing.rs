//! P-family firing fixture: audited under
//! `crates/runtime/src/cache.rs`, so the index rule is in scope too.

fn panicky(xs: &[u64], flag: Option<u64>) -> u64 {
    let a = flag.unwrap();
    let b = flag.expect("flag must be set");
    if xs.is_empty() {
        panic!("no data");
    }
    if a > b {
        todo!();
    }
    xs[0]
}

//! P-family near-miss fixture: nothing here may fire even under a
//! P-index-scoped path.

fn checked(xs: &[u64], flag: Option<u64>) -> u64 {
    // `unwrap_or` / `map_or` are the checked cousins, not `unwrap`.
    let a = flag.unwrap_or(0);
    // An array literal's `[` is not an index expression.
    let arr = [a; 4];
    // `.get()` is the checked indexing path.
    let first = xs.first().copied().unwrap_or_default();
    // A tuple-struct-ish call named like the macro is not the macro.
    first + arr.len() as u64
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_index_and_panic() {
        let xs = vec![1u64, 2];
        let head = xs.first().copied().unwrap();
        assert_eq!(xs[0], head);
        if head == 7 {
            panic!("sevens are impossible here");
        }
    }
}

//! U-family firing fixture: audited under a doc-scoped path
//! (`crates/electrochem/src/fixture.rs`).

pub fn undocumented_bare_float(current: f64) -> f64 {
    current * 2.0
}

/// Doubles the signal. (The doc never says what the bare floats
/// measure, so the doc rule still fires.)
pub fn documented_but_vague(signal: f64) -> f64 {
    signal * 2.0
}

fn later(x: u64) -> u64 {
    let y = unsafe { std::mem::transmute::<u64, i64>(x) };
    y.unsigned_abs()
}

//! U-family near-miss fixture: documented public API in a doc-scoped
//! path, with units named in docs or signatures.

/// Faradaic current in µA at the given overpotential in mV.
pub fn documented_with_units(overpotential_mv: f64) -> f64 {
    overpotential_mv * 0.1
}

/// Scales a signal by a dimensionless gain factor.
pub fn documented_dimensionless(gain: f64) -> f64 {
    gain * 2.0
}

/// Unit-suffixed parameter names count as naming the unit.
pub fn unit_named_in_signature(rate_cm_per_s: f64) -> f64 {
    rate_cm_per_s * 60.0
}

// `pub(crate)` is not public API; no doc comment required.
pub(crate) fn internal_helper(x: f64) -> f64 {
    x + 1.0
}

//! Waiver fixture: two identical violations, one waived. The waiver
//! must suppress exactly the finding on the next line, leave the
//! second finding standing, and an unused or reasonless waiver must
//! itself be reported.

fn waived(flag: Option<u64>) -> u64 {
    // bios-audit: allow(P-expect) — fixture: this one is justified
    let a = flag.expect("waived occurrence");
    let b = flag.expect("unwaived occurrence");
    a + b
}

// bios-audit: allow(D-hash) — names a rule that never fires here
fn unused_waiver_target() -> u64 {
    7
}

//! Golden-file tests: one firing and one near-miss fixture per rule
//! family, plus the waiver semantics (suppresses exactly one finding;
//! unused or reasonless waivers are themselves findings).

use bios_audit::{audit_source, Config, Rule};

/// A path inside the digest scope, so D and P-index rules apply.
const DIGEST_PATH: &str = "crates/runtime/src/cache.rs";
/// A path inside the float scope.
const FLOAT_PATH: &str = "crates/analytics/src/fixture.rs";
/// A path inside the doc scope (also float-scoped, like the real crate).
const DOC_PATH: &str = "crates/electrochem/src/fixture.rs";
/// A path no scoped rule family applies to.
const UNSCOPED_PATH: &str = "crates/faults/src/plan.rs";

fn rule_ids(path: &str, source: &str) -> Vec<&'static str> {
    let outcome = audit_source(path, source, &Config::default());
    outcome.findings.iter().map(|f| f.rule.id()).collect()
}

fn count(ids: &[&str], id: &str) -> usize {
    ids.iter().filter(|r| **r == id).count()
}

#[test]
fn d_fixture_fires_all_three_determinism_rules() {
    let ids = rule_ids(DIGEST_PATH, include_str!("fixtures/d_firing.rs"));
    // Two type ascriptions + two constructor calls per collection.
    assert!(count(&ids, "D-hash") >= 2, "{ids:?}");
    assert_eq!(count(&ids, "D-time"), 2, "{ids:?}");
    assert_eq!(count(&ids, "D-thread"), 1, "{ids:?}");
}

#[test]
fn d_rules_are_path_scoped() {
    // The identical source outside the digest scope: D rules are
    // silent; only the universally scoped P rules may still fire.
    let ids = rule_ids(UNSCOPED_PATH, include_str!("fixtures/d_firing.rs"));
    assert_eq!(count(&ids, "D-hash"), 0, "{ids:?}");
    assert_eq!(count(&ids, "D-time"), 0, "{ids:?}");
    assert_eq!(count(&ids, "D-thread"), 0, "{ids:?}");
}

#[test]
fn d_near_miss_is_clean() {
    let ids = rule_ids(DIGEST_PATH, include_str!("fixtures/d_near_miss.rs"));
    assert!(ids.is_empty(), "{ids:?}");
}

#[test]
fn p_fixture_fires_every_panic_rule() {
    let ids = rule_ids(DIGEST_PATH, include_str!("fixtures/p_firing.rs"));
    assert_eq!(count(&ids, "P-unwrap"), 1, "{ids:?}");
    assert_eq!(count(&ids, "P-expect"), 1, "{ids:?}");
    // `panic!` and `todo!` both land on the macro rule.
    assert_eq!(count(&ids, "P-panic"), 2, "{ids:?}");
    assert_eq!(count(&ids, "P-index"), 1, "{ids:?}");
}

#[test]
fn p_index_is_path_scoped_but_unwrap_is_not() {
    let ids = rule_ids(UNSCOPED_PATH, include_str!("fixtures/p_firing.rs"));
    assert_eq!(count(&ids, "P-index"), 0, "{ids:?}");
    // Panic-freedom applies everywhere.
    assert_eq!(count(&ids, "P-unwrap"), 1, "{ids:?}");
}

#[test]
fn p_near_miss_is_clean() {
    let ids = rule_ids(DIGEST_PATH, include_str!("fixtures/p_near_miss.rs"));
    assert!(ids.is_empty(), "{ids:?}");
}

#[test]
fn f_fixture_fires_equality_and_narrowing() {
    let ids = rule_ids(FLOAT_PATH, include_str!("fixtures/f_firing.rs"));
    assert_eq!(count(&ids, "F-eq"), 2, "{ids:?}");
    assert_eq!(count(&ids, "F-narrow"), 3, "{ids:?}");
}

#[test]
fn f_rules_are_path_scoped() {
    let ids = rule_ids(UNSCOPED_PATH, include_str!("fixtures/f_firing.rs"));
    assert!(ids.is_empty(), "{ids:?}");
}

#[test]
fn f_near_miss_is_clean() {
    let ids = rule_ids(FLOAT_PATH, include_str!("fixtures/f_near_miss.rs"));
    assert!(ids.is_empty(), "{ids:?}");
}

#[test]
fn u_fixture_fires_doc_and_unsafe_rules() {
    let ids = rule_ids(DOC_PATH, include_str!("fixtures/u_firing.rs"));
    assert_eq!(count(&ids, "U-doc"), 2, "{ids:?}");
    assert_eq!(count(&ids, "U-unsafe"), 1, "{ids:?}");
}

#[test]
fn u_unsafe_applies_everywhere_but_u_doc_is_scoped() {
    let ids = rule_ids(UNSCOPED_PATH, include_str!("fixtures/u_firing.rs"));
    assert_eq!(count(&ids, "U-doc"), 0, "{ids:?}");
    assert_eq!(count(&ids, "U-unsafe"), 1, "{ids:?}");
}

#[test]
fn u_near_miss_is_clean() {
    let ids = rule_ids(DOC_PATH, include_str!("fixtures/u_near_miss.rs"));
    assert!(ids.is_empty(), "{ids:?}");
}

#[test]
fn waiver_suppresses_exactly_one_finding() {
    let outcome = audit_source(
        UNSCOPED_PATH,
        include_str!("fixtures/waivers.rs"),
        &Config::default(),
    );
    // The waived `.expect` is silent; the second one still fires.
    let expects: Vec<_> = outcome
        .findings
        .iter()
        .filter(|f| f.rule == Rule::PExpect)
        .collect();
    assert_eq!(expects.len(), 1, "{:?}", outcome.findings);
    assert_eq!(expects[0].line, 9, "{:?}", expects[0]);
    // The used waiver is recorded as used; the decoy D-hash one is not,
    // and surfaces as a W-waiver finding.
    let used: Vec<_> = outcome.waivers.iter().filter(|w| w.used).collect();
    assert_eq!(used.len(), 1, "{:?}", outcome.waivers);
    assert_eq!(used[0].rule, "P-expect");
    assert_eq!(
        outcome
            .findings
            .iter()
            .filter(|f| f.rule == Rule::WWaiver)
            .count(),
        1,
        "{:?}",
        outcome.findings
    );
}

#[test]
fn waiver_without_reason_is_reported() {
    let source = "// bios-audit: allow(P-unwrap)\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let outcome = audit_source(UNSCOPED_PATH, source, &Config::default());
    assert!(
        outcome.findings.iter().any(|f| f.rule == Rule::WWaiver),
        "{:?}",
        outcome.findings
    );
}

#[test]
fn family_letter_waives_any_rule_in_the_family() {
    let source =
        "// bios-audit: allow(P) — family-wide waiver\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
    let outcome = audit_source(UNSCOPED_PATH, source, &Config::default());
    assert!(
        outcome.findings.iter().all(|f| f.rule != Rule::PUnwrap),
        "{:?}",
        outcome.findings
    );
}

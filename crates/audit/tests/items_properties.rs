//! Property suite for the item-tree parser (DESIGN.md §16),
//! mirroring `crates/recover/tests/journal_robustness.rs`: the parser
//! must never panic, whatever token soup it is fed, and its spans must
//! round-trip — every span lies inside the token stream, bodies lie
//! inside their item, children nest inside their parents, and each
//! item's `line:col` is the position of its span's first token.

use bios_audit::lexer::tokenize;
use bios_audit::{parse_items, Item};
use bios_prng::Rng;

/// Fragments the generator splices together: item skeletons,
/// attributes, raw strings with hashes, nested comments, deep
/// generics, stray delimiters — everything the lexer and parser must
/// survive in any order.
const FRAGMENTS: &[&str] = &[
    "fn f() { 1 }",
    "pub fn g<T: Into<Vec<u8>>>(x: T) -> u64 { x.into().len() as u64 }",
    "impl Foo { fn m(&self) {} }",
    "impl<T> Trait for Foo<T> where T: Clone { fn m(&self) {} }",
    "mod inner { fn h() {} }",
    "mod decl;",
    "use std::collections::BTreeMap;",
    "trait T { fn d(&self) -> u32 { 0 } }",
    "#[cfg(test)]",
    "#[test]",
    "#[cfg(not(test))]",
    "#![cfg(test)]",
    "#[derive(Debug, Clone)]",
    "struct S { a: u32 }",
    "enum E { A, B(u32) }",
    "macro_rules! m { ($x:expr) => { $x + 1 }; }",
    "const C: u32 = 3;",
    "static ST: &str = \"s\";",
    "let r = r#\"raw \" string\"#;",
    "let r2 = r##\"nested \"# inside\"##;",
    "/* block /* nested */ comment */",
    "// line comment with fn impl mod keywords",
    "/// doc comment\n",
    "let v: Vec<Vec<Vec<Vec<u64>>>> = Vec::new();",
    "x < y >> z",
    "'a",
    "'x'",
    "\"string with { braces } and fn\"",
    "{",
    "}",
    "(",
    ")",
    "<",
    ">",
    ";",
    "fn",
    "impl",
    "mod",
    "use",
    "pub",
    "unsafe",
    "async fn af() {}",
    "extern \"C\" fn ef() {}",
    "const fn cf() -> u32 { 1 }",
    "pub(crate) fn pc() {}",
    "for x in 0..10 {",
    "match x {",
    "=> {},",
];

/// Build one adversarial source string from the rng.
fn gen_source(rng: &mut Rng) -> String {
    let pieces = rng.index(40) + 1;
    let mut src = String::new();
    for _ in 0..pieces {
        src.push_str(FRAGMENTS[rng.index(FRAGMENTS.len())]);
        src.push(if rng.index(4) == 0 { ' ' } else { '\n' });
    }
    // Occasionally truncate mid-token to exercise unterminated input.
    if rng.index(5) == 0 && !src.is_empty() {
        let mut cut = rng.index(src.len()) + 1;
        while cut < src.len() && !src.is_char_boundary(cut) {
            cut += 1;
        }
        src.truncate(cut.min(src.len()));
    }
    src
}

/// Recursively assert the span invariants over the item tree.
fn check_items(items: &[Item], parent: (usize, usize), tokens_len: usize, src: &str) {
    for item in items {
        let (start, end) = item.span;
        assert!(start <= end, "inverted span {:?} in {src:?}", item.span);
        assert!(
            end <= tokens_len,
            "span {:?} beyond stream in {src:?}",
            item.span
        );
        assert!(
            start >= parent.0 && end <= parent.1,
            "child span {:?} escapes parent {parent:?} in {src:?}",
            item.span
        );
        if let Some((bs, be)) = item.body {
            assert!(bs <= be, "inverted body {:?} in {src:?}", item.body);
            assert!(
                bs >= start && be <= end,
                "body {:?} escapes item span {:?} in {src:?}",
                item.body,
                item.span
            );
        }
        check_items(&item.children, item.span, tokens_len, src);
    }
}

#[test]
fn parser_never_panics_and_spans_round_trip_on_adversarial_streams() {
    bios_prng::cases(0xA0D1_7B07, 512, |rng| {
        let src = gen_source(rng);
        let tokens = tokenize(&src);
        let items = parse_items(&tokens);
        check_items(&items, (0, tokens.len()), tokens.len(), &src);
        // line/col must be the position of the span's first token.
        for item in &items {
            if item.span.0 < tokens.len() {
                let anchor = &tokens[item.span.0];
                assert_eq!(
                    (item.line, item.col),
                    (anchor.line, anchor.col),
                    "item anchor drifted in {src:?}"
                );
            }
        }
    });
}

#[test]
fn parser_survives_pathological_depth_and_raw_strings() {
    // Deep nesting beyond MAX_DEPTH must degrade to opaque, not crash.
    let deep = "mod m { ".repeat(200) + &"}".repeat(200);
    let _ = parse_items(&tokenize(&deep));

    let unbalanced = "fn f() { { { ( [ < ".repeat(50);
    let _ = parse_items(&tokenize(&unbalanced));

    let raw = "fn g() { let x = r###\"fn fake() { } \"## still raw \"###; }";
    let items = parse_items(&tokenize(raw));
    assert_eq!(items.len(), 1, "raw string must stay opaque: {items:?}");
    assert_eq!(items[0].name, "g");
}

#[test]
fn parse_is_deterministic() {
    bios_prng::cases(0xD37E_2817, 64, |rng| {
        let src = gen_source(rng);
        let tokens = tokenize(&src);
        let a = format!("{:?}", parse_items(&tokens));
        let b = format!("{:?}", parse_items(&tokens));
        assert_eq!(a, b);
    });
}

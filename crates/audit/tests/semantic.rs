//! Golden tests for the semantic pass (DESIGN.md §16): one firing and
//! one near-miss fixture per new family (G-taint, G-layer, L-lock),
//! pinning the exact `file:line:col rule` output, plus the anchored
//! path-scoping regression.

use bios_audit::graph::{dep_edges, layer_findings, CallGraph};
use bios_audit::{analyze_file, audit_source, Config, Rule};

/// A path no scoped rule family applies to, so only the semantic
/// rules can fire on the fixtures.
const TAINT_PATH: &str = "crates/faults/src/plan.rs";

fn taint_findings(path: &str, source: &str) -> Vec<String> {
    let config = Config::default();
    let facts = vec![analyze_file(path, source, &config)];
    let graph = CallGraph::build(&facts);
    let (findings, _) = graph.taint(&facts, &config);
    findings.iter().map(|f| f.render()).collect()
}

fn layer_findings_for(path: &str, source: &str) -> Vec<String> {
    let config = Config::default();
    let facts = vec![analyze_file(path, source, &config)];
    let edges = dep_edges(&[], &facts);
    layer_findings(&config, &edges)
        .iter()
        .map(|f| f.render())
        .collect()
}

#[test]
fn g_taint_fixture_fires_with_the_full_call_chain() {
    let rendered = taint_findings(TAINT_PATH, include_str!("fixtures/g_taint_firing.rs"));
    assert_eq!(rendered.len(), 1, "{rendered:?}");
    assert_eq!(
        rendered[0],
        "crates/faults/src/plan.rs:14:24 G-taint `Instant::now` is reachable from \
         determinism entry `faults::digest` via faults::digest → faults::fold → \
         faults::stamp — banned APIs must not feed digested bytes wherever they live"
    );
}

#[test]
fn g_taint_near_miss_is_clean() {
    let rendered = taint_findings(TAINT_PATH, include_str!("fixtures/g_taint_near_miss.rs"));
    assert!(rendered.is_empty(), "{rendered:?}");
}

#[test]
fn g_layer_fixture_fires_at_the_use_site() {
    let rendered = layer_findings_for(
        "crates/enzyme/src/lib.rs",
        include_str!("fixtures/g_layer_firing.rs"),
    );
    assert_eq!(rendered.len(), 1, "{rendered:?}");
    assert_eq!(
        rendered[0],
        "crates/enzyme/src/lib.rs:5:5 G-layer physics crate `enzyme` must not depend \
         on serving crate `runtime` — the physics layer stays deployable without the \
         serving stack"
    );
}

#[test]
fn g_layer_near_miss_is_clean() {
    let rendered = layer_findings_for(
        "crates/runtime/src/lib.rs",
        include_str!("fixtures/g_layer_near_miss.rs"),
    );
    assert!(rendered.is_empty(), "{rendered:?}");
}

#[test]
fn l_lock_fixture_fires_all_three_sites() {
    let outcome = audit_source(
        TAINT_PATH,
        include_str!("fixtures/l_lock_firing.rs"),
        &Config::default(),
    );
    let rendered: Vec<String> = outcome.findings.iter().map(|f| f.render()).collect();
    assert_eq!(rendered.len(), 3, "{rendered:?}");
    assert_eq!(
        rendered[0],
        "crates/faults/src/plan.rs:9:20 L-lock `.lock()` while MutexGuard `first` is \
         live in this block — release the guard (drop(first)) before blocking"
    );
    assert_eq!(
        rendered[1],
        "crates/faults/src/plan.rs:17:23 L-lock `.join()` while MutexGuard `held` is \
         live in this block — release the guard (drop(held)) before blocking"
    );
    assert_eq!(
        rendered[2],
        "crates/faults/src/plan.rs:26:16 L-send `tx.send(..)` after its paired \
         endpoint `rx` was dropped — the send can only fail"
    );
}

#[test]
fn l_lock_near_miss_is_clean() {
    let outcome = audit_source(
        TAINT_PATH,
        include_str!("fixtures/l_lock_near_miss.rs"),
        &Config::default(),
    );
    assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
}

#[test]
fn l_lock_waiver_flows_through_the_existing_machinery() {
    let src = "pub fn handoff(m: &std::sync::Mutex<std::sync::mpsc::Receiver<u32>>) -> u32 {\n\
               let guard = m.lock().unwrap_or_else(|e| e.into_inner());\n\
               // bios-audit: allow(L-lock) — handoff: the guard must span the recv\n\
               guard.recv().unwrap_or_default()\n\
               }\n";
    let outcome = audit_source(TAINT_PATH, src, &Config::default());
    assert!(outcome.findings.is_empty(), "{:?}", outcome.findings);
    assert_eq!(outcome.waivers.len(), 1);
    assert!(outcome.waivers[0].used);
}

#[test]
fn scope_matching_is_anchored_to_crates_relative_prefixes() {
    let config = Config::default();
    // The real digest-scope module matches…
    assert!(config.in_scope(Rule::DHash, "crates/shard/src/merge.rs"));
    assert!(config.in_scope(Rule::DHash, "crates/runtime/src/cache.rs"));
    // …but a path that merely *contains* the scope substring does not:
    // before anchoring, this fixture path matched `shard/src/merge`.
    assert!(!config.in_scope(Rule::DHash, "tests/shard/src/merge_fixture.rs"));
    assert!(!config.in_scope(Rule::FEq, "crates/bench/src/analytics/src/gen.rs"));
    // Entries without a `/` (digest, fingerprint) match file names only.
    assert!(config.in_scope(Rule::DTime, "crates/recover/src/digest.rs"));
    assert!(!config.in_scope(Rule::DTime, "crates/digestive/src/lib.rs"));
}

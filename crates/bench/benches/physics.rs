//! Wall-clock benchmarks of the physics kernels: diffusion stepping,
//! voltammetry digital simulation, and enzyme-kinetics evaluation.

// A benchmark aborts on setup failure like a test does.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::hint::black_box;

use bios_bench::timing::BenchGroup;
use bios_electrochem::diffusion::{DiffusionGrid, SurfaceBoundary};
use bios_electrochem::voltammetry::CvSimulator;
use bios_electrochem::{CyclicSweep, RedoxCouple};
use bios_enzyme::{MichaelisMenten, Oxidase, OxidaseKind};
use bios_units::{DiffusionCoefficient, Molar, RateConstant, ScanRate, Seconds, SquareCm, Volts};

fn bench_diffusion() {
    let group = BenchGroup::new("diffusion");
    for &nodes in &[101usize, 401] {
        let mut grid = DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(1e-5),
            Molar::from_milli_molar(1.0),
            100e-4,
            nodes,
        )
        .expect("valid grid");
        grid.set_surface(SurfaceBoundary::Concentration(0.0));
        let dt = grid.max_stable_dt() * 0.9;
        group.bench(&format!("explicit_step_{nodes}"), || {
            grid.step_explicit(black_box(dt)).expect("stable step");
            black_box(grid.flux_mol_per_cm2_s())
        });

        let mut grid = DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(1e-5),
            Molar::from_milli_molar(1.0),
            100e-4,
            nodes,
        )
        .expect("valid grid");
        grid.set_surface(SurfaceBoundary::Concentration(0.0));
        let dt = Seconds::from_millis(1.0);
        group.bench(&format!("crank_nicolson_step_{nodes}"), || {
            grid.step_crank_nicolson(black_box(dt));
            black_box(grid.flux_mol_per_cm2_s())
        });
    }
}

fn bench_voltammetry() {
    let group = BenchGroup::new("voltammetry");
    let sweep = CyclicSweep::new(
        Volts::from_milli_volts(-170.0),
        Volts::from_milli_volts(630.0),
        ScanRate::from_milli_volts_per_second(100.0),
        1,
    );
    group.bench("full_cv_simulation", || {
        let sim = CvSimulator::new(
            RedoxCouple::ferrocyanide_probe(),
            SquareCm::from_square_cm(0.1),
        )
        .with_reduced_bulk(Molar::from_milli_molar(1.0));
        black_box(sim.run(&sweep))
    });
}

fn bench_enzyme_kinetics() {
    let group = BenchGroup::new("enzyme");
    let mm = MichaelisMenten::new(
        RateConstant::from_per_second(700.0),
        Molar::from_milli_molar(25.0),
    );
    group.bench("michaelis_menten_rate", || {
        black_box(mm.turnover_rate(black_box(Molar::from_milli_molar(5.0))))
    });
    let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
    group.bench("oxidase_peroxide_rate", || {
        black_box(god.peroxide_generation_rate(black_box(Molar::from_milli_molar(5.0))))
    });
}

fn main() {
    bench_diffusion();
    bench_voltammetry();
    bench_enzyme_kinetics();
}

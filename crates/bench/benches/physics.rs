//! Criterion benchmarks of the physics kernels: diffusion stepping,
//! voltammetry digital simulation, and enzyme-kinetics evaluation.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

use bios_electrochem::diffusion::{DiffusionGrid, SurfaceBoundary};
use bios_electrochem::voltammetry::CvSimulator;
use bios_electrochem::{CyclicSweep, RedoxCouple};
use bios_enzyme::{MichaelisMenten, Oxidase, OxidaseKind};
use bios_units::{
    DiffusionCoefficient, Molar, RateConstant, ScanRate, Seconds, SquareCm, Volts,
};

fn bench_diffusion(c: &mut Criterion) {
    let mut group = c.benchmark_group("diffusion");
    for &nodes in &[101usize, 401] {
        group.bench_function(format!("explicit_step_{nodes}"), |b| {
            let mut grid = DiffusionGrid::new(
                DiffusionCoefficient::from_square_cm_per_second(1e-5),
                Molar::from_milli_molar(1.0),
                100e-4,
                nodes,
            );
            grid.set_surface(SurfaceBoundary::Concentration(0.0));
            let dt = grid.max_stable_dt() * 0.9;
            b.iter(|| {
                grid.step_explicit(black_box(dt));
                black_box(grid.flux_mol_per_cm2_s())
            });
        });
        group.bench_function(format!("crank_nicolson_step_{nodes}"), |b| {
            let mut grid = DiffusionGrid::new(
                DiffusionCoefficient::from_square_cm_per_second(1e-5),
                Molar::from_milli_molar(1.0),
                100e-4,
                nodes,
            );
            grid.set_surface(SurfaceBoundary::Concentration(0.0));
            let dt = Seconds::from_millis(1.0);
            b.iter(|| {
                grid.step_crank_nicolson(black_box(dt));
                black_box(grid.flux_mol_per_cm2_s())
            });
        });
    }
    group.finish();
}

fn bench_voltammetry(c: &mut Criterion) {
    let mut group = c.benchmark_group("voltammetry");
    group.sample_size(20);
    let sweep = CyclicSweep::new(
        Volts::from_milli_volts(-170.0),
        Volts::from_milli_volts(630.0),
        ScanRate::from_milli_volts_per_second(100.0),
        1,
    );
    group.bench_function("full_cv_simulation", |b| {
        b.iter_batched(
            || {
                CvSimulator::new(
                    RedoxCouple::ferrocyanide_probe(),
                    SquareCm::from_square_cm(0.1),
                )
                .with_reduced_bulk(Molar::from_milli_molar(1.0))
            },
            |sim| black_box(sim.run(&sweep)),
            BatchSize::SmallInput,
        );
    });
    group.finish();
}

fn bench_enzyme_kinetics(c: &mut Criterion) {
    let mut group = c.benchmark_group("enzyme");
    let mm = MichaelisMenten::new(
        RateConstant::from_per_second(700.0),
        Molar::from_milli_molar(25.0),
    );
    group.bench_function("michaelis_menten_rate", |b| {
        b.iter(|| black_box(mm.turnover_rate(black_box(Molar::from_milli_molar(5.0)))));
    });
    let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
    group.bench_function("oxidase_peroxide_rate", |b| {
        b.iter(|| {
            black_box(god.peroxide_generation_rate(black_box(Molar::from_milli_molar(5.0))))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_diffusion, bench_voltammetry, bench_enzyme_kinetics);
criterion_main!(benches);

//! Criterion benchmarks of the calibration protocols and platform
//! multiplexing.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bios_core::catalog;
use bios_core::platform::SensingPlatform;
use bios_core::protocol::{CalibrationProtocol, Chronoamperometry};
use bios_core::Sample;

fn bench_calibration(c: &mut Criterion) {
    let mut group = c.benchmark_group("calibration");
    group.sample_size(30);
    let entry = catalog::our_glucose_sensor();
    let sensor = entry.build_sensor();
    let standards = entry.sweep().linspace(entry.sweep_points());
    group.bench_function("chronoamperometric_sweep_25pts", |b| {
        b.iter(|| {
            let mut chain = entry.build_readout(7);
            black_box(Chronoamperometry::default().calibrate(
                &sensor,
                &mut chain,
                &standards,
            ))
        });
    });
    group.bench_function("full_entry_run_with_analysis", |b| {
        b.iter(|| black_box(entry.run_calibration(7).expect("calibration runs")));
    });
    group.finish();
}

fn bench_platform(c: &mut Criterion) {
    let mut group = c.benchmark_group("platform");
    let mut platform = SensingPlatform::epfl_chip(3);
    platform
        .mount(0, catalog::our_glucose_sensor().build_sensor())
        .expect("mount");
    platform
        .mount(1, catalog::our_lactate_sensor().build_sensor())
        .expect("mount");
    platform
        .mount(2, catalog::our_glutamate_sensor().build_sensor())
        .expect("mount");
    let sample = Sample::cell_culture_medium();
    group.bench_function("measure_all_3_channels", |b| {
        b.iter(|| black_box(platform.measure_all(black_box(&sample))));
    });
    group.finish();
}

criterion_group!(benches, bench_calibration, bench_platform);
criterion_main!(benches);

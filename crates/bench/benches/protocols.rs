//! Wall-clock benchmarks of the calibration protocols and platform
//! multiplexing.

// A benchmark aborts on setup failure like a test does.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::hint::black_box;

use bios_bench::timing::BenchGroup;
use bios_core::catalog;
use bios_core::platform::SensingPlatform;
use bios_core::protocol::{CalibrationProtocol, Chronoamperometry};
use bios_core::Sample;

fn bench_calibration() {
    let group = BenchGroup::new("calibration");
    let entry = catalog::our_glucose_sensor();
    let sensor = entry.build_sensor();
    let standards = entry.sweep().linspace(entry.sweep_points());
    group.bench("chronoamperometric_sweep_25pts", || {
        let mut chain = entry.build_readout(7);
        black_box(Chronoamperometry::default().calibrate(&sensor, &mut chain, &standards))
    });
    group.bench("full_entry_run_with_analysis", || {
        black_box(entry.run_calibration(7).expect("calibration runs"))
    });
}

fn bench_platform() {
    let group = BenchGroup::new("platform");
    let mut platform = SensingPlatform::epfl_chip(3);
    platform
        .mount(0, catalog::our_glucose_sensor().build_sensor())
        .expect("mount");
    platform
        .mount(1, catalog::our_lactate_sensor().build_sensor())
        .expect("mount");
    platform
        .mount(2, catalog::our_glutamate_sensor().build_sensor())
        .expect("mount");
    let sample = Sample::cell_culture_medium();
    group.bench("measure_all_3_channels", || {
        black_box(platform.measure_all(black_box(&sample)))
    });
}

fn main() {
    bench_calibration();
    bench_platform();
}

//! Wall-clock benchmark of full table regeneration — the cost of
//! reproducing the paper's entire evaluation, sequentially and through
//! the fleet runtime.

// A benchmark aborts on setup failure like a test does.
#![allow(clippy::expect_used, clippy::unwrap_used)]

use std::hint::black_box;

use bios_bench::timing::BenchGroup;
use bios_bench::{run_table2, BlockReport};
use bios_core::catalog;
use bios_runtime::{Fleet, Runtime, RuntimeConfig};

fn bench_tables() {
    let group = BenchGroup::new("tables");
    group.bench("table2_glucose_block", || {
        black_box(BlockReport::run("GLUCOSE", catalog::glucose_sensors(), 42).expect("block runs"))
    });
    group.bench("table2_all_blocks", || {
        black_box(run_table2(42).expect("table runs"))
    });
    group.bench("table1_render", || black_box(bios_bench::render_table1()));
}

fn bench_fleet() {
    let group = BenchGroup::new("fleet");
    let fleet = Fleet::builder("bench")
        .sensors(catalog::all_table2())
        .seeds(0..8)
        .build();
    group.bench("catalog_x8_seeds_sequential", || {
        let rt = Runtime::new(RuntimeConfig::default().with_workers(1).with_cache(false));
        black_box(rt.run_sequential(&fleet))
    });
    group.bench("catalog_x8_seeds_8_workers", || {
        let rt = Runtime::new(RuntimeConfig::default().with_workers(8).with_cache(false));
        black_box(rt.run(&fleet))
    });
}

fn main() {
    bench_tables();
    bench_fleet();
}

//! Criterion benchmark of full table regeneration — the wall-clock cost
//! of reproducing the paper's entire evaluation.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

use bios_bench::{run_table2, BlockReport};
use bios_core::catalog;

fn bench_tables(c: &mut Criterion) {
    let mut group = c.benchmark_group("tables");
    group.sample_size(10);
    group.bench_function("table2_glucose_block", |b| {
        b.iter(|| {
            black_box(
                BlockReport::run("GLUCOSE", catalog::glucose_sensors(), 42)
                    .expect("block runs"),
            )
        });
    });
    group.bench_function("table2_all_blocks", |b| {
        b.iter(|| black_box(run_table2(42).expect("table runs")));
    });
    group.bench_function("table1_render", |b| {
        b.iter(|| black_box(bios_bench::render_table1()));
    });
    group.finish();
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);

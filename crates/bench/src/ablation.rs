//! Ablation studies: decompose the design choices DESIGN.md calls out —
//! surface modification, readout electronics, and post-filtering — into
//! their individual contributions to the figures of merit.

use bios_analytics::report::TextTable;
use bios_analytics::LinearRangeOptions;
use bios_core::protocol::{CalibrationProtocol, Chronoamperometry};
use bios_core::sensor::{Biosensor, Technique};
use bios_core::Analyte;
use bios_enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
use bios_instrument::filter::FilterSpec;
use bios_instrument::ReadoutChain;
use bios_nanomaterial::{ElectrodeStock, SurfaceModification};
use bios_units::{ConcentrationRange, SurfaceLoading};

/// A fixed reference film so that only the studied factor varies.
fn reference_film() -> EnzymeFilm {
    EnzymeFilm::builder()
        .loading(SurfaceLoading::from_pico_mol_per_square_cm(8.0))
        .retained_activity(1.0)
        .km_shift(1.4)
        .build()
}

fn sensor_with(modification: SurfaceModification) -> Biosensor {
    Biosensor::builder("ablation glucose sensor", Analyte::Glucose)
        .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
        .modification(modification)
        .oxidase(
            Oxidase::stock(OxidaseKind::GlucoseOxidase),
            reference_film(),
        )
        .technique(Technique::paper_chronoamperometry())
        .build()
}

/// Ablation 1 — surface modification: same enzyme film and electrode,
/// different nanostructuring. Shows how much of the paper's sensitivity
/// comes from the CNT film's collection efficiency alone.
#[must_use]
pub fn render_modification_ablation() -> String {
    let mut t = TextTable::new(vec![
        "Modification",
        "collection η",
        "ET gain",
        "model sensitivity",
    ]);
    for modification in [
        SurfaceModification::bare(),
        SurfaceModification::cnt_paste(),
        SurfaceModification::titanate_nanotube(),
        SurfaceModification::mwcnt_sol_gel(),
        SurfaceModification::cnt_mat(),
        SurfaceModification::mwcnt_au_film(),
        SurfaceModification::mwcnt_butyric_acid(),
        SurfaceModification::mwcnt_chloroform(),
        SurfaceModification::mwcnt_nafion(),
        SurfaceModification::n_doped_cnt_nafion(),
    ] {
        let sensor = sensor_with(modification.clone());
        t.add_row(vec![
            modification.name().to_owned(),
            format!("{:.2}", modification.collection_efficiency()),
            format!("{:.0}×", modification.electron_transfer_gain()),
            sensor.model_sensitivity().to_string(),
        ]);
    }
    format!(
        "Ablation 1 — surface modification (fixed film, fixed electrode)\n{}",
        t.render()
    )
}

/// Ablation 2 — readout electronics: same sensor, three readout chains.
/// Quantifies the §2.5 integration argument as a detection-limit ratio.
///
/// # Errors
///
/// Propagates sweep-construction and calibration-analysis failures.
pub fn render_readout_ablation(seed: u64) -> Result<String, bios_core::CoreError> {
    let sensor = sensor_with(SurfaceModification::mwcnt_nafion());
    let sweep = ConcentrationRange::from_milli_molar(0.0, 1.0)?;
    let chains: [(&str, ReadoutChain); 3] = [
        ("benchtop", ReadoutChain::benchtop(seed)),
        ("integrated CMOS", ReadoutChain::integrated_cmos(seed)),
        ("low-cost reader", ReadoutChain::low_cost(seed)),
    ];
    let mut t = TextTable::new(vec!["Readout", "noise RMS", "LOD", "R²"]);
    for (name, chain) in chains {
        let mut chain = chain.auto_ranged_for(sensor.faradaic_current(sweep.high()) * 1.3);
        let noise = chain.noise_rms();
        let curve = Chronoamperometry::default().calibrate_over(&sensor, &mut chain, &sweep, 15);
        let summary = curve.summary(&LinearRangeOptions::default())?;
        t.add_row(vec![
            name.to_owned(),
            noise.to_string(),
            format!("{:.3} µM", summary.detection_limit.as_micro_molar()),
            format!("{:.5}", summary.r_squared),
        ]);
    }
    Ok(format!(
        "Ablation 2 — readout electronics (fixed MWCNT/Nafion sensor)\n{}",
        t.render()
    ))
}

/// Ablation 3 — digital post-filter: blank noise after each filter,
/// i.e. how much LOD the DSP stage buys.
#[must_use]
pub fn render_filter_ablation(seed: u64) -> String {
    let mut t = TextTable::new(vec!["Filter", "blank σ"]);
    for (name, filter) in [
        ("none", FilterSpec::None),
        ("moving average (5)", FilterSpec::MovingAverage(5)),
        ("moving average (9)", FilterSpec::MovingAverage(9)),
        ("Savitzky-Golay (7)", FilterSpec::SavitzkyGolay(7)),
        ("exponential (α=0.2)", FilterSpec::Exponential(0.2)),
    ] {
        let mut chain = ReadoutChain::benchtop(seed).with_filter(filter);
        let trace = vec![bios_units::Amperes::ZERO; 400];
        let filtered = chain.digitize_trace(&trace);
        let mean: f64 = filtered.iter().map(|i| i.as_amps()).sum::<f64>() / filtered.len() as f64;
        let var: f64 = filtered
            .iter()
            .map(|i| (i.as_amps() - mean).powi(2))
            .sum::<f64>()
            / (filtered.len() - 1) as f64;
        t.add_row(vec![
            name.to_owned(),
            format!("{:.1} pA", var.sqrt() * 1e12),
        ]);
    }
    format!(
        "Ablation 3 — digital post-filter (benchtop chain blanks)\n{}",
        t.render()
    )
}

/// Ablation 4 — linear-range detector tolerance: how the detected range
/// of the paper's glucose sensor responds to the linearity criterion,
/// relative to the published 0–1 mM.
#[must_use]
pub fn render_tolerance_ablation(seed: u64) -> String {
    use bios_core::catalog;

    let entry = catalog::our_glucose_sensor();
    let sensor = entry.build_sensor();
    let mut chain = entry.build_readout(seed);
    let standards = entry.sweep().linspace(entry.sweep_points());
    let curve = Chronoamperometry::default().calibrate(&sensor, &mut chain, &standards);

    let mut t = TextTable::new(vec!["tolerance", "detected range", "S (µA·mM⁻¹·cm⁻²)"]);
    for tol in [0.02, 0.05, 0.08, 0.12, 0.20] {
        let options = LinearRangeOptions {
            tolerance: tol,
            ..LinearRangeOptions::default()
        };
        match curve.linear_range(&options) {
            Ok((range, fit)) => t.add_row(vec![
                format!("{:.0}%", tol * 100.0),
                range.to_string(),
                format!(
                    "{:.2}",
                    fit.slope() / sensor.electrode().area().as_square_cm()
                ),
            ]),
            Err(e) => t.add_row(vec![
                format!("{:.0}%", tol * 100.0),
                e.to_string(),
                "–".into(),
            ]),
        }
    }
    format!(
        "Ablation 4 — linearity tolerance (our glucose sensor, paper range 0–1 mM)\n{}",
        t.render()
    )
}

/// Ablation 5 — seed stability: the paper's glucose sensor calibrated
/// across many noise seeds through the fleet runtime, exposing the
/// Monte-Carlo spread hiding behind every single-seed table row.
#[must_use]
pub fn render_seed_ablation(seed0: u64, replicates: usize) -> String {
    use bios_core::catalog;
    use bios_runtime::{Fleet, Runtime, RuntimeConfig};

    let runtime = Runtime::new(RuntimeConfig::from_env());
    let fleet = Fleet::builder("seed-stability")
        .sensor(catalog::our_glucose_sensor())
        .seeds(seed0..seed0 + replicates as u64)
        .build();
    let report = runtime.run(&fleet);

    let stats = |values: &[f64]| -> (f64, f64) {
        let mean = values.iter().sum::<f64>() / values.len() as f64;
        let var = values.iter().map(|v| (v - mean).powi(2)).sum::<f64>()
            / (values.len().max(2) - 1) as f64;
        (mean, var.sqrt())
    };
    let sensitivities: Vec<f64> = report
        .successes()
        .map(|(_, o)| {
            o.summary
                .sensitivity
                .as_micro_amps_per_milli_molar_square_cm()
        })
        .collect();
    let lods: Vec<f64> = report
        .successes()
        .map(|(_, o)| o.summary.detection_limit.as_micro_molar())
        .collect();
    let r2s: Vec<f64> = report
        .successes()
        .map(|(_, o)| o.summary.r_squared)
        .collect();

    let mut t = TextTable::new(vec!["figure of merit", "mean", "SD"]);
    let (m, s) = stats(&sensitivities);
    t.add_row(vec![
        "sensitivity (µA·mM⁻¹·cm⁻²)".into(),
        format!("{m:.2}"),
        format!("{s:.3}"),
    ]);
    let (m, s) = stats(&lods);
    t.add_row(vec![
        "LOD (µM)".into(),
        format!("{m:.2}"),
        format!("{s:.3}"),
    ]);
    let (m, s) = stats(&r2s);
    t.add_row(vec!["R²".into(), format!("{m:.5}"), format!("{s:.6}")]);
    format!(
        "Ablation 5 — seed stability (our glucose sensor, {} seeds on {} workers, \
         {} failures)\n{}",
        replicates,
        report.workers,
        report.failures().count(),
        t.render()
    )
}

/// Ablation 6 — chaos: the glucose family calibrated under
/// [`bios_faults::FaultPlan::chaos`] plans of increasing intensity.
/// For each ramp step the table reports how many faults were injected,
/// how the fleet triaged (completed/degraded/failed), how many of the
/// surviving faulted channels the rolling-residual drift detector
/// flags against the healthy reference, and how far sensitivity and
/// LOD degrade. Intensity 0 is the armed-but-harmless overhead
/// baseline: it must match the healthy row exactly.
#[must_use]
pub fn render_chaos_ablation(seed: u64) -> String {
    use bios_analytics::DriftDetector;
    use bios_core::catalog;
    use bios_faults::FaultPlan;
    use bios_runtime::{Fleet, Runtime, RuntimeConfig};

    let seeds = seed..seed + 4;
    let sensors = catalog::glucose_sensors;
    let runtime = Runtime::new(RuntimeConfig::from_env().with_cache(false));
    let healthy = runtime.run(
        &Fleet::builder("chaos-reference")
            .sensors(sensors())
            .seeds(seeds.clone())
            .build(),
    );
    let reference_mean = |f: &dyn Fn(&bios_core::catalog::CalibrationOutcome) -> f64| -> f64 {
        let values: Vec<f64> = healthy.successes().map(|(_, o)| f(o)).collect();
        values.iter().sum::<f64>() / values.len().max(1) as f64
    };
    let sens_of = |o: &bios_core::catalog::CalibrationOutcome| {
        o.summary
            .sensitivity
            .as_micro_amps_per_milli_molar_square_cm()
    };
    let lod_of =
        |o: &bios_core::catalog::CalibrationOutcome| o.summary.detection_limit.as_micro_molar();
    let healthy_sens = reference_mean(&sens_of);
    let healthy_lod = reference_mean(&lod_of);

    let detector = DriftDetector::default();
    let mut t = TextTable::new(vec![
        "intensity",
        "injected",
        "triage (ok/deg/fail)",
        "drift detected",
        "S ratio",
        "LOD ratio",
    ]);
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let report = runtime.run(
            &Fleet::builder("chaos-ramp")
                .sensors(sensors())
                .seeds(seeds.clone())
                .fault_plan(FaultPlan::chaos(seed, intensity))
                .build(),
        );
        let injected: u32 = report.results.iter().map(|r| r.injected.total()).sum();
        let outcome = report.outcome_summary();
        // Drift check: each surviving faulted channel against its own
        // healthy calibration (same sensor, same seed).
        let mut faulted_survivors = 0usize;
        let mut detected = 0usize;
        for (result, observed) in report.successes() {
            if result.injected.total() == 0 {
                continue;
            }
            faulted_survivors += 1;
            if let Some(reference) = healthy.outcome(&result.sensor, result.seed) {
                if let Ok(assessment) = detector.assess(&reference.curve, &observed.curve) {
                    if assessment.drifted {
                        detected += 1;
                    }
                }
            }
        }
        let ratio =
            |f: &dyn Fn(&bios_core::catalog::CalibrationOutcome) -> f64, baseline: f64| -> String {
                let values: Vec<f64> = report.successes().map(|(_, o)| f(o)).collect();
                if values.is_empty() || baseline == 0.0 {
                    "–".into()
                } else {
                    format!(
                        "{:.2}",
                        values.iter().sum::<f64>() / values.len() as f64 / baseline
                    )
                }
            };
        t.add_row(vec![
            format!("{intensity:.2}"),
            format!("{injected}"),
            format!(
                "{}/{}/{}",
                outcome.completed, outcome.degraded, outcome.failed
            ),
            format!("{detected}/{faulted_survivors}"),
            ratio(&sens_of, healthy_sens),
            ratio(&lod_of, healthy_lod),
        ]);
    }
    format!(
        "Ablation 6 — chaos ramp (glucose family × 4 seeds, seeded fault plans; \
         drift detector window {}, threshold {}σ)\n{}",
        detector.window(),
        detector.threshold(),
        t.render()
    )
}

/// Ablation 7: ramp `FaultKind::WorkerStall` probability and show the
/// watchdog converting silent livelocks into the deterministic
/// `JobError::Deadline` while the fleet completes. The armed runtime
/// (real stalls, cancelled cooperatively) must render the byte-identical
/// digest of the unarmed one (stalls short-circuited synchronously).
pub fn render_stall_ablation(seed: u64) -> String {
    use std::time::Duration;

    use bios_core::catalog;
    use bios_faults::{FaultKind, FaultPlan};
    use bios_runtime::{Fleet, JobError, Runtime, RuntimeConfig};

    let base = RuntimeConfig::from_env()
        .with_cache(false)
        .with_retry_backoff(Duration::from_micros(10));
    let mut t = TextTable::new(vec![
        "p(stall)",
        "deadline kills",
        "workers retired",
        "triage (ok/deg/fail)",
        "armed == unarmed",
    ]);
    for probability in [0.0, 0.25, 0.5, 1.0] {
        let plan = FaultPlan::builder("stall-ramp", seed)
            .spec(FaultKind::WorkerStall, probability, 1.0)
            .build();
        let fleet = Fleet::builder("stall-ramp")
            .sensors(catalog::glucose_sensors())
            .seeds(seed..seed + 2)
            .fault_plan(plan)
            .build();
        let unarmed = Runtime::new(base);
        let reference = unarmed.run_sequential(&fleet);
        let armed = Runtime::new(base.with_job_deadline(Duration::from_millis(20)));
        let report = armed.run(&fleet);
        let outcome = report.outcome_summary();
        let kills = armed.metrics().deadline_kills;
        let retired = armed.metrics().stalled_workers;
        debug_assert_eq!(
            report
                .failures()
                .filter(|(_, e)| matches!(e, JobError::Deadline))
                .count() as u64,
            kills
        );
        t.add_row(vec![
            format!("{probability:.2}"),
            format!("{kills}"),
            format!("{retired}"),
            format!(
                "{}/{}/{}",
                outcome.completed, outcome.degraded, outcome.failed
            ),
            if report.summaries_digest() == reference.summaries_digest() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    format!(
        "Ablation 7 — worker-stall ramp (glucose family × 2 seeds, 20 ms soft \
         deadline; armed watchdog cancels livelocked solvers cooperatively)\n{}",
        t.render()
    )
}

/// Ablation 8: ramp `FaultKind::TrafficBurst` intensity and show the
/// gateway's overload posture shifting from "everything executes at
/// full quality" through rate limiting and brownouts to explicit queue
/// rejections. Every row is a pure function of (seed, intensity) —
/// logical ticks, no wall clock — so the table is byte-stable across
/// machines and worker counts.
#[must_use]
pub fn render_overload_ablation(seed: u64) -> String {
    use bios_core::catalog;
    use bios_faults::{FaultKind, FaultPlan};
    use bios_gateway::{Gateway, GatewayConfig, TokenBucket};
    use bios_runtime::{Runtime, RuntimeConfig};

    let config = GatewayConfig {
        queue_capacity: 8,
        service_slots: 2,
        bucket_capacity_milli: 5 * TokenBucket::WHOLE_TOKEN,
        bucket_refill_milli_per_tick: TokenBucket::WHOLE_TOKEN,
        ..GatewayConfig::default()
    };
    let mut t = TextTable::new(vec![
        "burst intensity",
        "span (ticks)",
        "executed",
        "degraded",
        "rate limited",
        "queue full",
        "shed",
    ]);
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let runtime = Runtime::new(RuntimeConfig::from_env().with_cache(false));
        let gateway = Gateway::new(config.clone(), runtime);
        let plan = FaultPlan::builder("overload-ramp", seed)
            .spec(FaultKind::TrafficBurst, 0.3 * intensity, intensity)
            .build();
        let pairs: Vec<(bios_core::catalog::CatalogEntry, u64)> = (0..32)
            .map(|i| (catalog::our_glucose_sensor(), seed + i))
            .collect();
        let trace = gateway.trace_from_plan(&plan, &pairs, "ramp", 3);
        let span = trace.iter().map(|r| r.arrival_tick).max().unwrap_or(0);
        let report = gateway.run(&trace);
        let c = report.counters;
        t.add_row(vec![
            format!("{intensity:.2}"),
            format!("{span}"),
            format!("{}", report.executed_ids().len()),
            format!("{}", c.browned_out),
            format!("{}", c.rate_limited),
            format!("{}", c.admission_rejected),
            format!("{}", c.deadline_shed),
        ]);
    }
    format!(
        "Ablation 8 — traffic-burst ramp (glucose × 32 requests through the \
         gateway; bounded queue of 8, 2 service slots, 1 token/tick buckets)\n{}",
        t.render()
    )
}

/// Ablation 9: ramp film-aging intensity through the longitudinal
/// stream engine and show the closed monitoring loop engaging — drift
/// injected into more patients, the per-patient monitors detecting it,
/// recalibrations admitted through the gateway, and epochs swapping to
/// restore tracking accuracy (MARD). Every row is a pure function of
/// (seed, intensity): logical ticks, seeded cohorts, no wall clock.
#[must_use]
pub fn render_stream_ablation(seed: u64) -> String {
    use bios_faults::{FaultKind, FaultPlan};
    use bios_gateway::{Gateway, GatewayConfig};
    use bios_runtime::{Runtime, RuntimeConfig};
    use bios_stream::{StreamConfig, StreamEngine};

    let mut t = TextTable::new(vec![
        "aging intensity",
        "drifted",
        "detected",
        "mean latency",
        "recals",
        "swaps",
        "MARD",
    ]);
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let aging = FaultPlan::builder("stream-ramp", seed)
            .spec(FaultKind::FilmDenaturation, 0.6 * intensity, intensity)
            .build();
        let config = StreamConfig::new(48, 144, seed).with_aging(aging);
        let runtime = Runtime::new(RuntimeConfig::from_env().with_cache(false));
        let engine = StreamEngine::new(config, Gateway::new(GatewayConfig::default(), runtime));
        let report = engine.run();
        t.add_row(vec![
            format!("{intensity:.2}"),
            format!("{}", report.drift_injected),
            format!("{}", report.drift_detected),
            format!("{:.1}", report.mean_detection_latency()),
            format!("{}", report.recal_enqueued),
            format!("{}", report.epoch_swaps),
            format!("{:.4}", report.mean_mard),
        ]);
    }
    format!(
        "Ablation 9 — film-aging ramp (48-patient cohort × 144 ticks through the \
         stream engine; online drift monitors, gateway-admitted recalibrations)\n{}",
        t.render()
    )
}

/// Ablation 10: shard count × tenant-hotspot skew vs isolation. A
/// seeded hotspot plan inflates some wards' request volume; the same
/// merged trace then runs (a) **without bulkheads** — every tenant
/// multiplexed through one shared gateway batch, where the hot wards
/// drain the shared token bucket and queue — and (b) **with
/// bulkheads** — through [`bios_shard::ShardedGateway`], where every
/// tenant has its own admission state on its home shard. The column to
/// read is the victim: a never-hot ward whose p99 logical latency
/// inflates with skew in the shared run and stays flat under
/// bulkheads, byte-identically at any shard count.
#[must_use]
pub fn render_shard_ablation(seed: u64) -> String {
    use bios_faults::{FaultKind, FaultPlan};
    use bios_gateway::{Disposition, Gateway, GatewayConfig, TokenBucket};
    use bios_runtime::{Runtime, RuntimeConfig};
    use bios_shard::{tenant_trace, ShardConfig, ShardedGateway};

    // Queueing contention is the effect under study: two service
    // slots and a deep queue (so hot-tenant load shows up as waiting
    // time, not rejections), with tokens plentiful enough that the
    // rate limiter stays out of the picture.
    let gateway_config = GatewayConfig {
        queue_capacity: 256,
        service_slots: 2,
        bucket_capacity_milli: 256 * TokenBucket::WHOLE_TOKEN,
        bucket_refill_milli_per_tick: 16 * TokenBucket::WHOLE_TOKEN,
        ..GatewayConfig::default()
    };
    let tenants = 6;
    // Nearest-rank p99 of one tenant's logical latencies in a shared
    // gateway report (the sharded side gets this from TenantStats).
    let victim_p99 = |outcomes: &[bios_gateway::RequestOutcome], tenant: &str| -> u64 {
        let mut lat: Vec<u64> = outcomes
            .iter()
            .filter(|o| o.tenant == tenant)
            .filter_map(|o| match &o.disposition {
                Disposition::Executed { done_tick, .. } => {
                    Some(done_tick.saturating_sub(o.arrival_tick))
                }
                Disposition::Rejected(_) => None,
            })
            .collect();
        lat.sort_unstable();
        if lat.is_empty() {
            return 0;
        }
        let rank = ((0.99 * lat.len() as f64).ceil() as usize).clamp(1, lat.len());
        lat[rank - 1]
    };

    let mut t = TextTable::new(vec![
        "skew intensity",
        "requests",
        "hot wards",
        "victim",
        "shared p99",
        "bulkhead p99 (4 shards)",
        "bulkhead p99 (8 shards)",
        "digest 4=8",
    ]);
    for intensity in [0.0, 0.5, 1.0] {
        let skew = FaultPlan::builder("shard-skew", seed)
            .spec(FaultKind::TenantHotspot, 0.5, intensity)
            .build();
        let trace = tenant_trace(tenants, 8, 6, 96, Some(&skew));
        // Hot-set membership is intensity-independent (same seed,
        // same probability), so picking the victim against the
        // full-intensity plan keeps it stable across rows.
        let membership = FaultPlan::builder("shard-skew", seed)
            .spec(FaultKind::TenantHotspot, 0.5, 1.0)
            .build();
        let wards: Vec<String> = (0..tenants).map(|i| format!("ward-{i:02}")).collect();
        let hot = wards.iter().filter(|w| skew.hotspot_factor(w) > 1).count();
        let victim = wards
            .iter()
            .find(|w| membership.hotspot_factor(w) == 1)
            .cloned()
            .unwrap_or_else(|| "ward-00".to_string());

        // (a) No bulkheads: one shared session multiplexes everyone.
        let mut merged = trace.clone();
        merged.sort_by_key(|r| (r.arrival_tick, r.id));
        let runtime = Runtime::new(RuntimeConfig::from_env().with_cache(false));
        let shared = Gateway::new(gateway_config.clone(), runtime).run(&merged);

        // (b) Bulkheads: per-tenant sessions on per-shard runtimes.
        let sharded = |shards: usize| {
            let config = ShardConfig {
                shards,
                gateway: gateway_config.clone(),
                runtime: RuntimeConfig::from_env().with_cache(false),
                ..ShardConfig::default()
            };
            ShardedGateway::new(config).run(&trace)
        };
        let four = sharded(4);
        let eight = sharded(8);
        let p99_of =
            |report: &bios_shard::ShardedReport| report.tenant(&victim).map_or(0, |s| s.p99());
        t.add_row(vec![
            format!("{intensity:.2}"),
            format!("{}", trace.len()),
            format!("{hot}"),
            victim.clone(),
            format!("{}", victim_p99(&shared.outcomes, &victim)),
            format!("{}", p99_of(&four)),
            format!("{}", p99_of(&eight)),
            if four.digest() == eight.digest() {
                "yes".to_string()
            } else {
                "NO".to_string()
            },
        ]);
    }
    format!(
        "Ablation 10 — tenant-hotspot skew vs isolation ({tenants} wards, 8 requests \
         each before skew; 2 service slots behind a deep queue, so contention shows \
         up as waiting time). Shared = one multiplexed gateway, bulkhead = \
         bios-shard per-tenant sessions\n{}",
        t.render()
    )
}

/// Ablation 11: ramp silent-corruption intensity through the
/// redundancy screen. A `FaultKind::SilentCorruption` plan armed on
/// every ward perturbs what offender replica lanes *observe* (the
/// committed physics never changes); the triple-replica vote at full
/// sampling must out-vote every realized corruption. The columns to
/// read together are caught vs escaped — the catch rate — and the
/// digest column: because the vote validates the committed value
/// instead of replacing it, the armed digest is byte-equal to the
/// healthy baseline on every row, no matter how hard the ramp fires.
#[must_use]
pub fn render_quorum_ablation(seed: u64) -> String {
    use bios_faults::{FaultKind, FaultPlan};
    use bios_quorum::QuorumConfig;
    use bios_shard::{tenant_trace, ShardChaos, ShardConfig, ShardedGateway};

    let tenants = 6;
    let trace = tenant_trace(tenants, 8, 2, 96, None);
    let run = |chaos: &ShardChaos| {
        ShardedGateway::new(
            ShardConfig::default()
                .with_shards(4)
                .with_workers_per_shard(2),
        )
        .run_with(&trace, chaos)
    };
    let baseline = run(&ShardChaos::none());

    // The offender gate is a pure coin per (plan seed, lane): with 3
    // replica lanes roughly one seed in eight arms a plan whose whole
    // roster happens to be honest, which would render an all-zero
    // table. Advance deterministically to the first plan seed whose
    // roster contains an offender so the ramp always has something to
    // catch (pure in `seed`, usually zero or one probe).
    let roster_has_offender = |s: u64| {
        let probe = FaultPlan::builder("quorum-ramp", s)
            .spec(FaultKind::SilentCorruption, 1.0, 1.0)
            .build();
        (0..3u64).any(|lane| probe.silent_corruption("probe", 0, lane).is_some())
    };
    let plan_seed = (seed..seed.saturating_add(64))
        .find(|s| roster_has_offender(*s))
        .unwrap_or(seed);

    let mut t = TextTable::new(vec![
        "intensity",
        "votes",
        "injected",
        "caught",
        "escaped",
        "disagreements",
        "false suspects",
        "quarantined",
        "digest unchanged",
    ]);
    for intensity in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let plan = FaultPlan::builder("quorum-ramp", plan_seed)
            .spec(FaultKind::SilentCorruption, 0.6 * intensity, intensity)
            .build();
        let mut chaos = ShardChaos::none().with_quorum(QuorumConfig {
            sampling: 1.0,
            ..QuorumConfig::default()
        });
        for ward in 0..tenants {
            chaos = chaos.with_tenant_plan(&format!("ward-{ward:02}"), plan.clone());
        }
        let report = run(&chaos);
        let q = report.quorum.unwrap_or_default();
        t.add_row(vec![
            format!("{intensity:.2}"),
            format!("{}", q.votes),
            format!("{}", q.injected),
            format!("{}", q.caught),
            format!("{}", q.escaped),
            format!("{}", q.disagreements),
            format!("{}", q.false_suspects),
            format!("{}", q.quarantined),
            if report.digest() == baseline.digest() {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    format!(
        "Ablation 11 — silent-corruption ramp ({tenants} wards × 8 requests through \
         the 4-shard × 2-worker gateway; triple-replica vote, full sampling). A \
         caught corruption loses its vote and strikes its lane; the committed value \
         never moves, so the armed digest stays byte-equal to the healthy baseline\n{}",
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn modification_ablation_orders_bare_last() {
        let s = render_modification_ablation();
        // Bare must appear and MWCNT/Nafion must produce a higher model
        // sensitivity than bare (structural check on the rendering).
        assert!(s.contains("bare"));
        assert!(s.contains("MWCNT/Nafion"));
        let bare = sensor_with(SurfaceModification::bare()).model_sensitivity();
        let cnt = sensor_with(SurfaceModification::mwcnt_nafion()).model_sensitivity();
        assert!(
            cnt.as_micro_amps_per_milli_molar_square_cm()
                > 3.0 * bare.as_micro_amps_per_milli_molar_square_cm()
        );
    }

    #[test]
    fn readout_ablation_shows_integration_benefit() {
        let s = render_readout_ablation(3).expect("readout ablation renders");
        assert!(s.contains("integrated CMOS"));
        assert!(s.contains("low-cost"));
    }

    #[test]
    fn tolerance_ablation_widens_range_monotonically() {
        let s = render_tolerance_ablation(5);
        assert!(s.contains("2%"));
        assert!(s.contains("20%"));
    }

    #[test]
    fn filter_ablation_reduces_sigma() {
        let s = render_filter_ablation(3);
        assert!(s.contains("none"));
        assert!(s.contains("moving average (9)"));
    }

    #[test]
    fn seed_ablation_reports_spread() {
        let s = render_seed_ablation(0, 8);
        assert!(s.contains("8 seeds"));
        assert!(s.contains("0 failures"));
        assert!(s.contains("sensitivity"));
    }

    #[test]
    fn stall_ablation_kills_deadlines_and_stays_deterministic() {
        let s = render_stall_ablation(11);
        let row = |prefix: &str| -> Vec<String> {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in:\n{s}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        let zero = row("0.00");
        assert_eq!(zero[1], "0", "no kills without stalls: {zero:?}");
        let full = row("1.00");
        assert_ne!(full[1], "0", "p=1 must kill deadlines: {full:?}");
        assert!(
            !s.contains("NO"),
            "armed and unarmed digests must agree:\n{s}"
        );
    }

    #[test]
    fn chaos_ablation_ramps_and_detects() {
        let s = render_chaos_ablation(42);
        let fields = |prefix: &str| -> Vec<String> {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in:\n{s}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        // The zero-intensity row is the harmless baseline: nothing
        // injected, everything completed, unit ratios.
        let zero = fields("0.00");
        assert_eq!(zero[1], "0", "no faults at i=0: {zero:?}");
        assert_eq!(zero[4], "1.00", "unit S ratio at i=0: {zero:?}");
        assert_eq!(zero[5], "1.00", "unit LOD ratio at i=0: {zero:?}");
        // The full-intensity row must inject faults into the fleet.
        let full = fields("1.00");
        assert_ne!(full[1], "0", "i=1 must inject faults: {full:?}");
    }

    #[test]
    fn overload_ablation_ramps_from_calm_to_shedding() {
        let s = render_overload_ablation(7);
        let fields = |prefix: &str| -> Vec<String> {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in:\n{s}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        // Zero intensity is a smooth trickle: everything executes,
        // nothing is limited, degraded, or dropped.
        let zero = fields("0.00");
        assert_eq!(zero[2], "32", "calm traffic all executes: {zero:?}");
        assert_eq!(zero[3], "0", "no brownouts when calm: {zero:?}");
        assert_eq!(zero[4], "0", "no rate limiting when calm: {zero:?}");
        assert_eq!(zero[5], "0", "no queue overflow when calm: {zero:?}");
        // Full intensity compresses the trace; the span shrinks and at
        // least one shedding mechanism must engage.
        let full = fields("1.00");
        let span_zero: u64 = zero[1].parse().unwrap_or(0);
        let span_full: u64 = full[1].parse().unwrap_or(u64::MAX);
        assert!(
            span_full < span_zero,
            "bursts must compress the trace: {span_full} vs {span_zero}"
        );
        let pressure: u64 = full[3..7]
            .iter()
            .filter_map(|f| f.parse::<u64>().ok())
            .sum();
        assert_ne!(pressure, 0, "full bursts must trigger overload: {full:?}");
        // Determinism: the table is a pure function of the seed.
        assert_eq!(s, render_overload_ablation(7));
    }

    #[test]
    fn stream_ablation_ramps_from_stable_to_recalibrating() {
        let s = render_stream_ablation(7);
        let fields = |prefix: &str| -> Vec<String> {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in:\n{s}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        // Zero intensity is a healthy cohort: nothing drifts, no monitor
        // trips, no recalibrations are ever enqueued.
        let zero = fields("0.00");
        assert_eq!(zero[1], "0", "no drift at i=0: {zero:?}");
        assert_eq!(zero[2], "0", "no detections at i=0: {zero:?}");
        assert_eq!(zero[4], "0", "no recals at i=0: {zero:?}");
        assert_eq!(zero[5], "0", "no swaps at i=0: {zero:?}");
        // Full intensity must close the whole loop: drift in, detections
        // out, recalibrations through the gateway, epochs swapped.
        let full = fields("1.00");
        assert_ne!(full[1], "0", "i=1 must inject drift: {full:?}");
        assert_ne!(full[2], "0", "i=1 must detect drift: {full:?}");
        assert_ne!(full[5], "0", "i=1 must swap epochs: {full:?}");
        // Determinism: the table is a pure function of the seed.
        assert_eq!(s, render_stream_ablation(7));
    }

    #[test]
    fn shard_ablation_isolates_the_victim_from_hotspot_skew() {
        let s = render_shard_ablation(21);
        let fields = |prefix: &str| -> Vec<String> {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in:\n{s}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        let zero = fields("0.00");
        let full = fields("1.00");
        // Full skew must actually inflate the hot wards' volume.
        let req_zero: u64 = zero[1].parse().unwrap_or(0);
        let req_full: u64 = full[1].parse().unwrap_or(0);
        assert!(
            req_full > req_zero,
            "skew must inflate the trace: {req_full} vs {req_zero}"
        );
        // The bulkhead column is flat: the victim's p99 is identical
        // whether its neighbors are calm or white-hot, and identical
        // at 4 and 8 shards.
        assert_eq!(zero[5], full[5], "bulkhead p99 moved under skew:\n{s}");
        assert_eq!(
            full[5], full[6],
            "bulkhead p99 depends on shard count:\n{s}"
        );
        assert!(
            !s.contains("NO"),
            "4-shard and 8-shard digests must agree:\n{s}"
        );
        // Determinism: the table is a pure function of the seed.
        assert_eq!(s, render_shard_ablation(21));
    }

    #[test]
    fn quorum_ablation_catches_everything_without_moving_the_digest() {
        let s = render_quorum_ablation(0xC0DE);
        let fields = |prefix: &str| -> Vec<String> {
            s.lines()
                .find(|l| l.starts_with(prefix))
                .unwrap_or_else(|| panic!("missing {prefix} row in:\n{s}"))
                .split_whitespace()
                .map(str::to_owned)
                .collect()
        };
        // Zero intensity is the armed-but-harmless baseline: the screen
        // votes on every job yet nothing fires, nothing is struck.
        let zero = fields("0.00");
        assert_ne!(zero[1], "0", "the screen must vote at i=0: {zero:?}");
        assert_eq!(zero[2], "0", "no corruption at i=0: {zero:?}");
        assert_eq!(zero[6], "0", "no false suspects at i=0: {zero:?}");
        assert_eq!(zero[7], "0", "no quarantines at i=0: {zero:?}");
        // Full intensity must fire and every realized corruption must
        // lose its vote — caught == injected, zero escapes.
        let full = fields("1.00");
        assert_ne!(full[2], "0", "i=1 must inject corruption: {full:?}");
        assert_eq!(full[2], full[3], "caught must equal injected: {full:?}");
        assert_eq!(full[4], "0", "nothing may escape the vote: {full:?}");
        assert!(
            !s.contains("NO"),
            "arming the screen may never move the digest:\n{s}"
        );
        // Determinism: the table is a pure function of the seed.
        assert_eq!(s, render_quorum_ablation(0xC0DE));
    }
}

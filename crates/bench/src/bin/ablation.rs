//! Runs the ablation studies: surface modification, readout
//! electronics, digital post-filtering, linearity tolerance, and the
//! fleet-runtime seed-stability sweep.
//!
//! Usage: `cargo run -p bios-bench --bin ablation [-- --seed N]`

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

fn main() {
    bios_bench::silence_injected_panics();
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42u64);
    println!("{}", bios_bench::ablation::render_modification_ablation());
    match bios_bench::ablation::render_readout_ablation(seed) {
        Ok(report) => println!("{report}"),
        Err(e) => {
            eprintln!("readout ablation failed: {e}");
            std::process::exit(1);
        }
    }
    println!("{}", bios_bench::ablation::render_filter_ablation(seed));
    println!("{}", bios_bench::ablation::render_tolerance_ablation(seed));
    println!("{}", bios_bench::ablation::render_seed_ablation(seed, 32));
    println!("{}", bios_bench::ablation::render_chaos_ablation(seed));
    println!("{}", bios_bench::ablation::render_stall_ablation(seed));
    println!("{}", bios_bench::ablation::render_overload_ablation(seed));
    println!("{}", bios_bench::ablation::render_stream_ablation(seed));
    println!("{}", bios_bench::ablation::render_shard_ablation(seed));
    println!("{}", bios_bench::ablation::render_quorum_ablation(seed));
}

//! Crash-resume gate for CI: runs a fixed journaled fleet, optionally
//! dying mid-run exactly as `kill -9` would, and resumes a journal left
//! behind by an earlier (crashed) invocation. `scripts/check.sh` uses
//! the three modes to prove that a killed fleet resumes to the
//! byte-identical digest of an uninterrupted run:
//!
//! ```text
//! crash_gate --journal ref.journal                      # reference run
//! crash_gate --journal crash.journal --crash-after 5    # aborts (non-zero exit)
//! crash_gate --journal crash.journal --resume           # finishes the rest
//! ```
//!
//! Every mode prints a `digest_fnv=0x…` line; the gate compares them.

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;
use std::time::Duration;

use bios_core::catalog;
use bios_faults::{FaultKind, FaultPlan};
use bios_recover::fnv1a;
use bios_runtime::{Fleet, JournalOptions, Runtime, RuntimeConfig};

/// The gate fleet is fixed: the digest must be reproducible across
/// invocations, worker counts, and a crash/resume boundary.
fn gate_fleet() -> Fleet {
    let plan = FaultPlan::builder("crash-gate", 0x9A7E)
        .spec(FaultKind::TransientGlitch, 0.6, 0.4)
        .spec(FaultKind::WorkerPanic, 0.2, 1.0)
        .spec(FaultKind::FilmDenaturation, 0.5, 0.6)
        .build();
    Fleet::builder("crash-gate")
        .sensors(catalog::all_table2())
        .seeds(0..3)
        .fault_plan(plan)
        .build()
}

fn main() -> ExitCode {
    bios_bench::silence_injected_panics();
    let mut journal: Option<String> = None;
    let mut crash_after: Option<u64> = None;
    let mut resume = false;
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--journal" => journal = args.next(),
            "--crash-after" => crash_after = args.next().and_then(|s| s.parse().ok()),
            "--resume" => resume = true,
            "--workers" => {
                if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                    workers = n;
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }
    let Some(path) = journal else {
        eprintln!("usage: crash_gate --journal PATH [--crash-after N | --resume] [--workers N]");
        return ExitCode::FAILURE;
    };

    let fleet = gate_fleet();
    let runtime = Runtime::new(
        RuntimeConfig::default()
            .with_workers(workers)
            .with_cache(false)
            .with_retry_backoff(Duration::from_micros(10)),
    );

    if resume {
        match runtime.resume(&fleet, &path) {
            Ok(report) => {
                println!(
                    "resumed {} of {} jobs, executed {} fresh ({})",
                    report.resumed_jobs, report.total_jobs, report.executed_jobs, report.outcome
                );
                println!("digest_fnv=0x{:016x}", report.digest_fnv());
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("resume failed: {e}");
                ExitCode::FAILURE
            }
        }
    } else {
        let options = JournalOptions {
            crash_after_jobs: crash_after,
        };
        // With crash_after set this call aborts the process mid-fleet
        // and never returns; the journal keeps the completed prefix.
        match runtime.run_journaled_with(&fleet, &path, options) {
            Ok(report) => {
                println!(
                    "ran {} jobs uninterrupted ({})",
                    fleet.len(),
                    report.outcome_summary()
                );
                println!(
                    "digest_fnv=0x{:016x}",
                    fnv1a(report.summaries_digest().as_bytes())
                );
                ExitCode::SUCCESS
            }
            Err(e) => {
                eprintln!("journaled run failed: {e}");
                ExitCode::FAILURE
            }
        }
    }
}

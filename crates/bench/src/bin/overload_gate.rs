//! Overload gate for CI: drives a fixed bursty trace through the
//! gateway and proves the robustness layer behaves — some work is
//! shed or browned out (the trace genuinely overloads the gateway),
//! the damage is bounded (most requests still execute), every request
//! reaches a terminal outcome, and the whole decision trace is
//! byte-identical at any worker count. `scripts/check.sh` runs it at
//! two worker counts and compares the `digest_fnv=0x…` lines.
//!
//! ```text
//! overload_gate --workers 1
//! overload_gate --workers 8
//! ```

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use bios_core::catalog;
use bios_core::catalog::CatalogEntry;
use bios_faults::{FaultKind, FaultPlan};
use bios_gateway::{BreakerConfig, Gateway, GatewayConfig, TokenBucket};
use bios_recover::fnv1a;
use bios_runtime::{Runtime, RuntimeConfig};

/// The gate trace is fixed: two tenants, a healthy glucose family, a
/// poisoned lactate family (two sweep points are below the analytics
/// three-standard minimum ⇒ deterministic calibration failure),
/// arrivals compressed by a TrafficBurst spec.
fn gate_trace(gateway: &Gateway) -> Vec<bios_gateway::Request> {
    let plan = FaultPlan::builder("overload-gate", 0x6A7E)
        .spec(FaultKind::TrafficBurst, 0.12, 0.9)
        .build();
    let poisoned = catalog::our_lactate_sensor().with_sweep_points(2);
    let pairs: Vec<(CatalogEntry, u64)> = (0..48)
        .map(|i| {
            if i % 4 == 3 {
                (poisoned.clone(), i)
            } else {
                (catalog::our_glucose_sensor(), i)
            }
        })
        .collect();
    let mut trace = gateway.trace_from_plan(&plan, &pairs, "ward-a", 3);
    for (i, req) in trace.iter_mut().enumerate() {
        if i % 3 == 0 {
            req.tenant = "ward-b".to_string();
        }
    }
    trace
}

fn gate_config() -> GatewayConfig {
    GatewayConfig {
        queue_capacity: 6,
        service_slots: 3,
        default_deadline_ticks: 48,
        bucket_capacity_milli: 5 * TokenBucket::WHOLE_TOKEN,
        bucket_refill_milli_per_tick: TokenBucket::WHOLE_TOKEN,
        breaker: BreakerConfig {
            trip_after: 2,
            cooldown_ticks: 6,
            probe_quota: 1,
        },
        ..GatewayConfig::default()
    }
}

fn main() -> ExitCode {
    bios_bench::silence_injected_panics();
    let mut workers = 4usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers =
                    bios_bench::parse_flag_or_exit(args.next(), "--workers", "a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let runtime = Runtime::new(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    });
    let gateway = Gateway::new(gate_config(), runtime);
    let trace = gate_trace(&gateway);
    let total = trace.len() as u64;
    let report = gateway.run(&trace);
    let c = report.counters;
    let executed = report.executed_ids().len() as u64;

    println!(
        "overload gate: {total} requests, {executed} executed, drained at tick {}",
        report.drained_tick
    );
    println!("  {c}");
    println!("digest_fnv=0x{:016x}", fnv1a(report.digest().as_bytes()));

    // The gate must actually overload: every shedding mechanism fires.
    let mut ok = true;
    if c.rate_limited == 0 {
        eprintln!("FAIL: rate limiter never fired on the bursty trace");
        ok = false;
    }
    if c.admission_rejected == 0 {
        eprintln!("FAIL: the bounded queue never overflowed");
        ok = false;
    }
    if c.browned_out == 0 {
        eprintln!("FAIL: brownout never engaged under queue pressure");
        ok = false;
    }
    if c.breaker_trips == 0 {
        eprintln!("FAIL: the poisoned family never tripped its breaker");
        ok = false;
    }
    // …but the damage stays bounded: overload must not starve the
    // healthy majority.
    if executed * 2 < total {
        eprintln!("FAIL: fewer than half the requests executed ({executed}/{total})");
        ok = false;
    }
    if c.total_rejected() >= total {
        eprintln!("FAIL: everything was rejected — admission control collapsed");
        ok = false;
    }
    if !report.clean_drain() {
        eprintln!("FAIL: some requests never reached a terminal outcome");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

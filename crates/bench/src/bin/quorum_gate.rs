//! Quorum gate for CI: drives the shard gate's fixed multi-tenant
//! trace with silent corruption armed on every tenant and the
//! redundancy screen voting on every completion, and proves two
//! things at once:
//!
//! 1. **Detection** — every realized corruption loses its vote
//!    (catch rate ≥ 99% is the acceptance floor; the deterministic
//!    drill actually achieves 100%), nothing escapes into a committed
//!    value, and repeat offenders are quarantined.
//! 2. **Invariance** — the armed `digest_fnv` is byte-identical at any
//!    (shard count × worker count) *and* byte-identical to the
//!    unarmed healthy run, because the vote validates the committed
//!    value rather than replacing it.
//!
//! `scripts/check.sh` runs the armed gate at (1×1), (4×2), and (8×8),
//! compares the `digest_fnv=0x…` lines among themselves and against
//! the unarmed run, and pins the unarmed digest to the shard gate's
//! golden value.
//!
//! ```text
//! quorum_gate --shards 4 --workers 2 --armed
//! quorum_gate --shards 4 --workers 2
//! ```

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use bios_faults::{FaultKind, FaultPlan};
use bios_quorum::QuorumConfig;
use bios_recover::fnv1a;
use bios_shard::{tenant_trace, ShardChaos, ShardConfig, ShardedGateway};

fn main() -> ExitCode {
    bios_bench::silence_injected_panics();
    let mut shards = 4usize;
    let mut workers = 2usize;
    let mut armed = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards =
                    bios_bench::parse_flag_or_exit(args.next(), "--shards", "a positive integer");
            }
            "--workers" => {
                workers =
                    bios_bench::parse_flag_or_exit(args.next(), "--workers", "a positive integer");
            }
            "--armed" => armed = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The same fixed trace as shard_gate: 8 wards × 6 requests, tight
    // arrivals — the unarmed digest must reproduce its golden pin.
    let trace = tenant_trace(8, 6, 2, 96, None);
    let total = trace.len() as u64;
    let sharded = ShardedGateway::new(
        ShardConfig::default()
            .with_shards(shards)
            .with_workers_per_shard(workers),
    );
    let chaos = if armed {
        let plan = FaultPlan::builder("quorum drill", 0xC0DE)
            .spec(FaultKind::SilentCorruption, 0.45, 0.8)
            .build();
        let mut chaos = ShardChaos::none().with_quorum(QuorumConfig {
            sampling: 1.0,
            ..QuorumConfig::default()
        });
        for ward in 0..8 {
            chaos = chaos.with_tenant_plan(&format!("ward-{ward:02}"), plan.clone());
        }
        chaos
    } else {
        ShardChaos::none()
    };
    let report = sharded.run_with(&trace, &chaos);
    let executed = report.executed();

    println!(
        "quorum gate: {shards} shards x {workers} workers{}: {total} requests, \
         {executed} executed, drained at tick {}",
        if armed { " (armed)" } else { " (unarmed)" },
        report.drained_tick
    );
    if let Some(q) = &report.quorum {
        println!(
            "  quorum: {} covered, {} votes, {} escalations, {} disagreements, \
             {}/{} caught ({:.1}%), {} escaped, {} lanes quarantined",
            q.covered,
            q.votes,
            q.escalations,
            q.disagreements,
            q.caught,
            q.injected,
            q.catch_rate() * 100.0,
            q.escaped,
            q.quarantined
        );
    }
    println!("digest_fnv=0x{:016x}", fnv1a(report.digest().as_bytes()));

    let mut ok = true;
    if executed == 0 {
        eprintln!("FAIL: nothing executed");
        ok = false;
    }
    if report.outcomes.len() as u64 != total {
        eprintln!(
            "FAIL: {} outcomes for {total} requests — some never reached a terminal state",
            report.outcomes.len()
        );
        ok = false;
    }
    if armed {
        match &report.quorum {
            None => {
                eprintln!("FAIL: --armed but the report carries no quorum summary");
                ok = false;
            }
            Some(q) => {
                if q.votes == 0 {
                    eprintln!("FAIL: the screen never voted");
                    ok = false;
                }
                if q.injected == 0 {
                    eprintln!("FAIL: the corruption drill never fired");
                    ok = false;
                }
                if q.disagreements == 0 {
                    eprintln!("FAIL: corruption realized but no vote disagreed");
                    ok = false;
                }
                if q.catch_rate() < 0.99 {
                    eprintln!(
                        "FAIL: catch rate {:.3} below the 0.99 floor ({} of {} caught)",
                        q.catch_rate(),
                        q.caught,
                        q.injected
                    );
                    ok = false;
                }
                if q.escaped > 0 {
                    eprintln!(
                        "FAIL: {} corrupt ballots escaped into a winning cluster",
                        q.escaped
                    );
                    ok = false;
                }
            }
        }
    } else if report.quorum.is_some() {
        eprintln!("FAIL: unarmed run unexpectedly carries a quorum summary");
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Shard gate for CI: drives a fixed multi-tenant trace through the
//! tenant-sharded fleet-of-fleets and proves the placement layer is
//! invisible to results — `ShardedReport::digest_fnv` must be
//! byte-identical at any (shard count × worker count), including a run
//! where one shard is lost and quarantined mid-trace and its tenants
//! redistributed. `scripts/check.sh` runs it at (1×1), (4×2), and
//! (8×8), plus one quarantined (4×2) run, and compares the
//! `digest_fnv=0x…` lines.
//!
//! ```text
//! shard_gate --shards 1 --workers 1
//! shard_gate --shards 4 --workers 2 --quarantine
//! shard_gate --shards 8 --workers 8
//! ```

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use bios_recover::fnv1a;
use bios_shard::{tenant_trace, ShardChaos, ShardConfig, ShardedGateway};

fn main() -> ExitCode {
    bios_bench::silence_injected_panics();
    let mut shards = 4usize;
    let mut workers = 2usize;
    let mut quarantine = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--shards" => {
                shards =
                    bios_bench::parse_flag_or_exit(args.next(), "--shards", "a positive integer");
            }
            "--workers" => {
                workers =
                    bios_bench::parse_flag_or_exit(args.next(), "--workers", "a positive integer");
            }
            "--quarantine" => quarantine = true,
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    // The gate trace is fixed: 8 wards × 6 requests, tight arrivals.
    let trace = tenant_trace(8, 6, 2, 96, None);
    let total = trace.len() as u64;
    let sharded = ShardedGateway::new(
        ShardConfig::default()
            .with_shards(shards)
            .with_workers_per_shard(workers),
    );
    // The quarantined run loses ward-00's home shard at tick 1: its
    // tenants must redistribute and the digest must not move. With one
    // shard there is nowhere to redistribute to; the loop then falls
    // back to the (lost) home shard, which still computes correctly —
    // placement never changes outcomes.
    let chaos = if quarantine {
        ShardChaos::none().with_shard_loss_at(bios_shard::home_shard("ward-00", shards.max(1)), 1)
    } else {
        ShardChaos::none()
    };
    let report = sharded.run_with(&trace, &chaos);
    let executed = report.executed();

    println!(
        "shard gate: {shards} shards x {workers} workers{}: {total} requests, \
         {executed} executed, {} steals, drained at tick {}",
        if quarantine { " (quarantined)" } else { "" },
        report.steals(),
        report.drained_tick
    );
    for p in &report.placement {
        println!(
            "  shard {}: {} tenants homed, {} completions, {} steals in, \
             {} redistributions in, {:?}",
            p.shard, p.tenants_homed, p.completions, p.steals_in, p.redistributions_in, p.health
        );
    }
    println!("digest_fnv=0x{:016x}", fnv1a(report.digest().as_bytes()));

    let mut ok = true;
    if executed == 0 {
        eprintln!("FAIL: nothing executed");
        ok = false;
    }
    if report.outcomes.len() as u64 != total {
        eprintln!(
            "FAIL: {} outcomes for {total} requests — some never reached a terminal state",
            report.outcomes.len()
        );
        ok = false;
    }
    if quarantine {
        if report.quarantined_shards().is_empty() {
            eprintln!("FAIL: --quarantine armed but no shard ended quarantined");
            ok = false;
        }
        let redistributed: u64 = report.placement.iter().map(|p| p.redistributions_in).sum();
        if shards > 1 && redistributed == 0 {
            eprintln!("FAIL: a quarantined shard's tenants never redistributed");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

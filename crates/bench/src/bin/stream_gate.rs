//! Stream gate for CI: runs a seeded longitudinal cohort — aging
//! films armed — through the full drift-detect/recalibrate loop and
//! proves the stream layer behaves: drift is injected and detected,
//! completed recalibrations swap epochs, no monitor false-trips, no
//! recalibration is ever browned out, and the whole stream digest is
//! byte-identical at any worker count. `scripts/check.sh` runs it at
//! two worker counts and compares the `digest_fnv=0x…` lines.
//!
//! ```text
//! stream_gate --workers 1 --patients 1000 --ticks 288
//! stream_gate --workers 8 --patients 1000 --ticks 288
//! ```

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use bios_gateway::{Gateway, GatewayConfig};
use bios_recover::fnv1a;
use bios_runtime::{Runtime, RuntimeConfig};
use bios_stream::{StreamConfig, StreamEngine};

/// Wider intake than the default front door: a thousand patients can
/// trip monitors in bursts when a shared aging cohort degrades
/// together, and the gate measures the stream loop, not queue
/// starvation.
fn gate_config() -> GatewayConfig {
    GatewayConfig {
        queue_capacity: 64,
        service_slots: 8,
        ..GatewayConfig::default()
    }
}

fn main() -> ExitCode {
    bios_bench::silence_injected_panics();
    let mut workers = 4usize;
    let mut patients = 1000usize;
    let mut ticks = 288u64;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--workers" => {
                workers =
                    bios_bench::parse_flag_or_exit(args.next(), "--workers", "a positive integer");
            }
            "--patients" => {
                patients =
                    bios_bench::parse_flag_or_exit(args.next(), "--patients", "a positive integer");
            }
            "--ticks" => {
                ticks =
                    bios_bench::parse_flag_or_exit(args.next(), "--ticks", "a positive integer");
            }
            other => {
                eprintln!("unknown argument: {other}");
                return ExitCode::FAILURE;
            }
        }
    }

    let runtime = Runtime::new(RuntimeConfig {
        workers,
        ..RuntimeConfig::default()
    });
    let engine = StreamEngine::new(
        StreamConfig::new(patients, ticks, 0x57AE_A11E),
        Gateway::new(gate_config(), runtime),
    );
    let report = engine.run();

    println!(
        "stream gate: {} patients x {} ticks, {} drifted, {} detected, {} swapped, drained at tick {}",
        report.patients,
        report.horizon_ticks,
        report.drift_injected,
        report.drift_detected,
        report.epoch_swaps,
        report.drained_tick
    );
    println!(
        "  false_trips={} enqueued={} completed={} failed={} rejected={} degraded={} latency_mean={:.1} latency_max={} mard={:.4}",
        report.false_trips,
        report.recal_enqueued,
        report.recal_completed,
        report.recal_failed,
        report.recal_rejected,
        report.recal_degraded,
        report.mean_detection_latency(),
        report.max_detection_latency(),
        report.mean_mard
    );
    println!("  gateway: {}", report.gateway);
    println!("digest_fnv=0x{:016x}", fnv1a(report.digest().as_bytes()));

    // The gate must actually exercise the loop end to end…
    let mut ok = true;
    if report.bootstrap_failed > 0 {
        eprintln!(
            "FAIL: {} bootstrap calibrations failed on the healthy catalog",
            report.bootstrap_failed
        );
        ok = false;
    }
    if report.drift_injected == 0 {
        eprintln!("FAIL: the aging plan injected no drift");
        ok = false;
    }
    if report.drift_detected == 0 {
        eprintln!("FAIL: no injected drift was detected");
        ok = false;
    }
    if report.epoch_swaps == 0 {
        eprintln!("FAIL: no recalibration ever swapped an epoch");
        ok = false;
    }
    // …and hold the stream layer's invariants.
    if report.drift_detected > report.drift_injected {
        eprintln!(
            "FAIL: detected {} exceeds injected {}",
            report.drift_detected, report.drift_injected
        );
        ok = false;
    }
    if report.false_trips > 0 {
        eprintln!(
            "FAIL: {} monitor trips without injected drift",
            report.false_trips
        );
        ok = false;
    }
    if report.recal_degraded > 0 {
        eprintln!(
            "FAIL: {} recalibrations were browned out — the recal class must never degrade",
            report.recal_degraded
        );
        ok = false;
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

//! Prints the §2 classification-survey statistics from the literature
//! registry.
//!
//! Usage: `cargo run -p bios-bench --bin survey`

fn main() {
    print!("{}", bios_bench::render_survey());
}

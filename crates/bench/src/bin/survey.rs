//! Prints the §2 classification-survey statistics from the literature
//! registry, then benchmarks the fleet runtime (full catalog × several
//! seeds, sequential vs pooled) and writes the measurements to
//! `BENCH_runtime.json`.
//!
//! Usage: `cargo run -p bios-bench --release --bin survey [-- --workers N]`

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::io::Write;

use bios_core::catalog;
use bios_core::catalog::CatalogEntry;
use bios_faults::{FaultKind, FaultPlan};
use bios_gateway::{Gateway, GatewayConfig};
use bios_quorum::QuorumConfig;
use bios_runtime::{Fleet, Runtime, RuntimeConfig};
use bios_shard::{tenant_trace, ShardChaos, ShardConfig, ShardedGateway};
use bios_stream::{StreamConfig, StreamEngine};

fn main() {
    bios_bench::silence_injected_panics();
    print!("{}", bios_bench::render_survey());

    let mut config = RuntimeConfig::from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--workers" {
            config = config.with_workers(bios_bench::parse_flag_or_exit(
                args.next(),
                "--workers",
                "a positive integer",
            ));
        }
    }

    // The benchmark fleet: every catalog sensor (Table 2 rows plus the
    // multi-panel entries) across several replicate seeds.
    let mut sensors = catalog::all_table2();
    sensors.extend(catalog::multi_panel_sensors());
    let fleet = Fleet::builder("survey-bench")
        .sensors(sensors)
        .seeds(0..6)
        .build();

    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let physical_cores = bios_bench::physical_cores();
    // The oversubscription caveat is printed at most once per run —
    // several blocks below (cold speedup, the shard sweep) can each
    // exceed the machine, and repeating the same warning per
    // configuration buries the signal.
    let mut oversubscription_warned = false;
    let warn_oversubscribed = |total_workers: usize, warned: &mut bool| {
        if !*warned {
            println!(
                "  warning: speedup_valid: false — {total_workers} workers on {cores} \
                 available cores ({physical_cores} physical); wall-clock ratios measure \
                 oversubscription, not the runtime"
            );
            *warned = true;
        }
    };
    let sequential = Runtime::new(RuntimeConfig::default().with_workers(1).with_cache(false))
        .run_sequential(&fleet);
    let runtime = Runtime::new(config);
    let concurrent = runtime.run(&fleet);
    assert_eq!(
        sequential.summaries_digest(),
        concurrent.summaries_digest(),
        "fleet results must not depend on the worker count"
    );
    // Second pass over the same fleet: the steady state of repeated
    // catalog/bench runs, served from the memo cache.
    let cached = runtime.run(&fleet);

    // Robustness overhead: the same fleet uncached, healthy vs armed
    // with a zero-intensity chaos plan (the fault path exists but
    // realizes nothing — its cost must be noise-level) vs a full
    // chaos run that actually injects, retries, and panics.
    let mut sensors = catalog::all_table2();
    sensors.extend(catalog::multi_panel_sensors());
    let overhead_runtime = Runtime::new(config.with_cache(false));
    let unarmed_fleet = Fleet::builder("overhead-unarmed")
        .sensors(sensors.clone())
        .seeds(100..103)
        .build();
    let armed_zero_fleet = Fleet::builder("overhead-armed-zero")
        .sensors(sensors.clone())
        .seeds(100..103)
        .fault_plan(FaultPlan::chaos(7, 0.0))
        .build();
    let chaos_fleet = Fleet::builder("chaos")
        .sensors(sensors)
        .seeds(100..103)
        .fault_plan(FaultPlan::chaos(7, 0.75))
        .build();
    let unarmed = overhead_runtime.run(&unarmed_fleet);
    let armed_zero = overhead_runtime.run(&armed_zero_fleet);
    assert_eq!(
        unarmed.summaries_digest(),
        armed_zero.summaries_digest(),
        "a zero-intensity plan must not perturb the physics"
    );
    // Best-of-N wall times: these fleets finish in milliseconds, where a
    // single scheduler hiccup dwarfs the effect being measured.
    let mut unarmed_secs = unarmed.elapsed.as_secs_f64();
    let mut armed_secs = armed_zero.elapsed.as_secs_f64();
    for _ in 0..4 {
        unarmed_secs = unarmed_secs.min(overhead_runtime.run(&unarmed_fleet).elapsed.as_secs_f64());
        armed_secs = armed_secs.min(
            overhead_runtime
                .run(&armed_zero_fleet)
                .elapsed
                .as_secs_f64(),
        );
    }
    let chaos_runtime = Runtime::new(config.with_cache(false));
    let chaos = chaos_runtime.run(&chaos_fleet);
    let armed_overhead = armed_secs / unarmed_secs.max(1e-12) - 1.0;

    let speedup = sequential.elapsed.as_secs_f64() / concurrent.elapsed.as_secs_f64();
    let warm_speedup = sequential.elapsed.as_secs_f64() / cached.elapsed.as_secs_f64();
    // A pool wider than the machine cannot speed anything up: the
    // sequential/concurrent ratio then measures oversubscription, not
    // the runtime. Mark the measurement instead of publishing a bare
    // sub-1.0 "speedup" that reads like a regression.
    let speedup_valid = cores >= concurrent.workers;
    let metrics = runtime.metrics();
    println!(
        "\nFleet runtime benchmark ({} jobs, {} cores, {} physical):",
        fleet.len(),
        cores,
        physical_cores
    );
    println!(
        "  sequential: {:?} ({:.1} jobs/s)",
        sequential.elapsed,
        sequential.throughput_jobs_per_sec()
    );
    println!(
        "  {} workers, cold: {:?} ({:.1} jobs/s, {:.2}x)",
        concurrent.workers,
        concurrent.elapsed,
        concurrent.throughput_jobs_per_sec(),
        speedup
    );
    if !speedup_valid {
        warn_oversubscribed(concurrent.workers, &mut oversubscription_warned);
    }
    println!(
        "  {} workers, warm cache: {:?} ({:.1} jobs/s, {:.2}x, {} of {} jobs from cache)",
        cached.workers,
        cached.elapsed,
        cached.throughput_jobs_per_sec(),
        warm_speedup,
        cached.cache_hits(),
        fleet.len()
    );
    let chaos_outcome = chaos.outcome_summary();
    let chaos_metrics = chaos_runtime.metrics();
    println!(
        "  armed-but-harmless plan overhead: {:+.1}% (digest-identical to unarmed)",
        armed_overhead * 100.0
    );
    println!(
        "  chaos fleet (intensity 0.75): {chaos_outcome}, {} faults injected, {} retries",
        chaos_metrics.faults_injected, chaos_metrics.retries
    );

    // Overload robustness: a bursty trace through the gateway. The
    // shed/trip/brownout counts are deterministic (logical ticks, not
    // wall clock), so this block is byte-stable across runs and
    // machines.
    let gateway_runtime = Runtime::new(config.with_cache(false));
    let gateway = Gateway::new(GatewayConfig::default(), gateway_runtime);
    let burst_plan = FaultPlan::builder("survey-overload", 0xB10C)
        .spec(FaultKind::TrafficBurst, 0.6, 1.0)
        .build();
    let pairs: Vec<(CatalogEntry, u64)> = (0..48)
        .map(|i| (catalog::our_glucose_sensor(), i))
        .collect();
    let trace = gateway.trace_from_plan(&burst_plan, &pairs, "survey", 1);
    let overload = gateway.run(&trace);
    let gc = overload.counters;
    println!(
        "  overload gateway ({} requests, bursty): {} executed ({} degraded), {}",
        trace.len(),
        overload.executed_ids().len(),
        gc.browned_out,
        gc
    );

    // Continuous-monitoring stream: a seeded longitudinal cohort with
    // aging films, online drift detection, and gateway-admitted
    // recalibrations. Counts and latencies are deterministic (logical
    // ticks, seeded streams), so this block is byte-stable too.
    let stream_seed = 0x57AE_A11E;
    let stream_runtime = Runtime::new(config.with_cache(false));
    let stream_engine = StreamEngine::new(
        StreamConfig::new(64, 96, stream_seed),
        Gateway::new(GatewayConfig::default(), stream_runtime),
    );
    let stream = stream_engine.run();
    println!(
        "  stream cohort ({} patients x {} ticks): {} drifted, {} detected (mean latency {:.1} ticks), {} epochs swapped, MARD {:.4}",
        stream.patients,
        stream.horizon_ticks,
        stream.drift_injected,
        stream.drift_detected,
        stream.mean_detection_latency(),
        stream.epoch_swaps,
        stream.mean_mard
    );

    // Sharded fleet-of-fleets: the same multi-tenant trace at several
    // (shard count × workers per shard) layouts. The digest is pinned
    // byte-identical across layouts (the shard_gate contract); the
    // per-layout wall times and steal counts land in the JSON below.
    let shard_trace = tenant_trace(8, 6, 2, 96, None);
    let shard_layouts = [(1usize, 1usize), (4, 2), (8, 2)];
    let mut shard_rows = Vec::new();
    let mut shard_digest = None;
    let mut shard_digests_agree = true;
    println!(
        "  sharded gateway ({} tenants, {} requests):",
        8,
        shard_trace.len()
    );
    for (shards, workers_per_shard) in shard_layouts {
        if shards * workers_per_shard > cores {
            warn_oversubscribed(shards * workers_per_shard, &mut oversubscription_warned);
        }
        let sharded = ShardedGateway::new(
            ShardConfig::default()
                .with_shards(shards)
                .with_workers_per_shard(workers_per_shard),
        );
        let started = std::time::Instant::now();
        let report = sharded.run(&shard_trace);
        let secs = started.elapsed().as_secs_f64();
        let fnv = report.digest_fnv();
        let stable = *shard_digest.get_or_insert(fnv) == fnv;
        shard_digests_agree &= stable;
        println!(
            "    {shards} shards x {workers_per_shard} workers: {} executed, {} steals, \
             drained t{}, {:.3}s, digest_fnv=0x{fnv:016x}{}",
            report.executed(),
            report.steals(),
            report.drained_tick,
            secs,
            if stable { "" } else { " (DIGEST DIVERGED)" }
        );
        shard_rows.push(format!(
            "{{\"shards\": {shards}, \"workers_per_shard\": {workers_per_shard}, \
             \"executed\": {}, \"steals\": {}, \"drained_tick\": {}, \
             \"secs\": {secs:.6}, \"digest_fnv\": \"0x{fnv:016x}\"}}",
            report.executed(),
            report.steals(),
            report.drained_tick,
        ));
    }

    // Redundancy screen: the same trace with silent corruption armed
    // on every tenant and the quorum screen voting on every
    // completion. Verdicts, catches, and quarantines are deterministic
    // (logical lanes, seeded deltas); the wall-clock delta against the
    // unarmed run on the same (4×2) layout prices the vote itself.
    let quorum_plan = FaultPlan::builder("survey-quorum", 0xC0DE)
        .spec(FaultKind::SilentCorruption, 0.45, 0.8)
        .build();
    let mut quorum_chaos = ShardChaos::none().with_quorum(QuorumConfig {
        sampling: 1.0,
        ..QuorumConfig::default()
    });
    for ward in 0..8 {
        quorum_chaos =
            quorum_chaos.with_tenant_plan(&format!("ward-{ward:02}"), quorum_plan.clone());
    }
    let quorum_gateway = ShardedGateway::new(
        ShardConfig::default()
            .with_shards(4)
            .with_workers_per_shard(2),
    );
    let mut quorum_unarmed_secs = f64::INFINITY;
    let mut quorum_armed_secs = f64::INFINITY;
    let mut quorum_summary = None;
    for _ in 0..3 {
        let started = std::time::Instant::now();
        let plain = quorum_gateway.run(&shard_trace);
        quorum_unarmed_secs = quorum_unarmed_secs.min(started.elapsed().as_secs_f64());
        let started = std::time::Instant::now();
        let screened = quorum_gateway.run_with(&shard_trace, &quorum_chaos);
        quorum_armed_secs = quorum_armed_secs.min(started.elapsed().as_secs_f64());
        assert_eq!(
            plain.digest(),
            screened.digest(),
            "arming the redundancy screen must never move the digest"
        );
        quorum_summary = screened.quorum;
    }
    let quorum = quorum_summary.unwrap_or_default();
    let vote_overhead_us =
        (quorum_armed_secs - quorum_unarmed_secs).max(0.0) * 1.0e6 / quorum.votes.max(1) as f64;
    println!(
        "  quorum screen (4 shards x 2 workers, corruption armed): {} votes, \
         {} disagreements, {}/{} caught ({:.1}%), {} lanes quarantined, \
         {:.1}µs vote overhead/job, digest unchanged",
        quorum.votes,
        quorum.disagreements,
        quorum.caught,
        quorum.injected,
        quorum.catch_rate() * 100.0,
        quorum.quarantined,
        vote_overhead_us
    );

    // Static-analysis timing: the semantic audit (DESIGN.md §16) over
    // the whole tree, first pass populating the per-file facts cache
    // and a second pass riding it, so the report carries both the cold
    // cost and the warm hit rate check.sh depends on.
    let mut audit_files = 0usize;
    let mut audit_findings = 0usize;
    let mut audit_waivers = 0usize;
    let mut audit_by_family = String::from("{}");
    let mut audit_pass_secs = 0.0f64;
    let mut audit_warm_secs = 0.0f64;
    let mut audit_hit_rate = 0.0f64;
    let audit_root = std::env::current_dir()
        .ok()
        .and_then(|d| bios_audit::walk::find_root(&d));
    if let Some(root) = audit_root {
        let audit_config = bios_audit::Config::default();
        let started = std::time::Instant::now();
        let first = bios_audit::audit_workspace(&root, &audit_config, true);
        audit_pass_secs = started.elapsed().as_secs_f64();
        let started = std::time::Instant::now();
        let second = bios_audit::audit_workspace(&root, &audit_config, true);
        audit_warm_secs = started.elapsed().as_secs_f64();
        if let (Ok(first), Ok(second)) = (first, second) {
            audit_files = second.files_scanned;
            audit_findings = second.findings.len();
            audit_waivers = second.waivers.len();
            audit_hit_rate = second.cache.hit_rate();
            let mut counts = std::collections::BTreeMap::new();
            for f in &first.findings {
                *counts.entry(f.rule.family()).or_insert(0usize) += 1;
            }
            audit_by_family = format!(
                "{{{}}}",
                ["D", "P", "F", "U", "G", "L", "W"]
                    .iter()
                    .map(|fam| format!("\"{fam}\": {}", counts.get(fam).copied().unwrap_or(0)))
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            println!(
                "  semantic audit: {} files, {} findings, {} waivers, \
                 {:.3}s first pass, {:.3}s warm pass ({:.0}% facts-cache hits)",
                audit_files,
                audit_findings,
                audit_waivers,
                audit_pass_secs,
                audit_warm_secs,
                audit_hit_rate * 100.0
            );
        }
    }

    // Storage torture (DESIGN.md §17): a compact campaign — both
    // crash sweeps (every op index of the monolithic and sharded
    // reference runs) plus a reduced mixed block — so the JSON
    // carries the trichotomy counts; `torture_gate` runs the full
    // campaign under scripts/check.sh.
    let torture = bios_bench::torture::run_torture(40).unwrap_or_else(|e| {
        eprintln!("warning: storage torture reference run failed ({e}); reporting zeros");
        bios_bench::torture::TortureReport::default()
    });
    println!(
        "  storage torture: {} schedules ({} crash points): {} recovered, \
         {} degraded, {} typed errors, {} panics, {} divergences",
        torture.schedules,
        torture.crash_points,
        torture.recoveries,
        torture.degradations,
        torture.typed_errors,
        torture.panics,
        torture.divergences
    );

    // The JSON is emitted with a fixed, documented key order (schema
    // first, then sizing, timing, derived ratios, nested blocks) so
    // diffs between runs are line-stable; bump `schema_version` whenever
    // a key is added, removed, or reordered.
    let json = format!(
        "{{\n  \"schema_version\": 8,\n  \
         \"workers\": {},\n  \"available_cores\": {},\n  \"physical_cores\": {},\n  \
         \"jobs\": {},\n  \
         \"sequential_secs\": {:.6},\n  \"concurrent_secs\": {:.6},\n  \
         \"warm_cache_secs\": {:.6},\n  \"speedup\": {:.3},\n  \
         \"speedup_valid\": {},\n  \
         \"warm_cache_speedup\": {:.3},\n  \
         \"throughput_jobs_per_sec\": {:.3},\n  \"cache_hit_rate\": {:.4},\n  \
         \"armed_harmless_overhead\": {:.4},\n  \
         \"chaos\": {{\"intensity\": 0.75, \"completed\": {}, \"degraded\": {}, \
         \"failed\": {}, \"metrics\": {}}},\n  \
         \"gateway\": {{\"requests\": {}, \"executed\": {}, \"drained_tick\": {}, \
         \"admission_rejected\": {}, \"rate_limited\": {}, \"breaker_trips\": {}, \
         \"breaker_half_open_probes\": {}, \"browned_out\": {}, \"deadline_shed\": {}}},\n  \
         \"stream\": {{\"patients\": {}, \"horizon_ticks\": {}, \"drift_injected\": {}, \
         \"drift_detected\": {}, \"false_trips\": {}, \"detection_latency_mean_ticks\": {:.3}, \
         \"detection_latency_max_ticks\": {}, \"recal_enqueued\": {}, \"recal_completed\": {}, \
         \"recal_rejected\": {}, \"recal_degraded\": {}, \"epoch_swaps\": {}, \
         \"mean_mard\": {:.6}, \"drained_tick\": {}}},\n  \
         \"shard\": {{\"tenants\": 8, \"requests\": {}, \"digests_agree\": {}, \
         \"layouts\": [{}]}},\n  \
         \"quorum\": {{\"replicas\": 3, \"sampling\": 1.0, \"covered\": {}, \
         \"votes\": {}, \"escalations\": {}, \"disagreements\": {}, \"injected\": {}, \
         \"caught\": {}, \"catch_rate\": {:.4}, \"escaped\": {}, \
         \"lanes_quarantined\": {}, \"unarmed_secs\": {:.6}, \"armed_secs\": {:.6}, \
         \"vote_overhead_us_per_job\": {:.3}}},\n  \
         \"audit\": {{\"files\": {}, \"findings\": {}, \"waivers\": {}, \
         \"findings_by_family\": {}, \"first_pass_secs\": {:.6}, \
         \"warm_pass_secs\": {:.6}, \"cache_hit_rate\": {:.4}}},\n  \
         \"torture\": {{\"schedules\": {}, \"crash_points\": {}, \
         \"recoveries\": {}, \"degradations\": {}, \"typed_errors\": {}, \
         \"panics\": {}, \"divergences\": {}}},\n  \
         \"metrics\": {}\n}}\n",
        concurrent.workers,
        cores,
        physical_cores,
        fleet.len(),
        sequential.elapsed.as_secs_f64(),
        concurrent.elapsed.as_secs_f64(),
        cached.elapsed.as_secs_f64(),
        speedup,
        speedup_valid,
        warm_speedup,
        cached.throughput_jobs_per_sec(),
        metrics.cache_hit_rate(),
        armed_overhead,
        chaos_outcome.completed,
        chaos_outcome.degraded,
        chaos_outcome.failed,
        chaos_metrics.to_json(),
        trace.len(),
        overload.executed_ids().len(),
        overload.drained_tick,
        gc.admission_rejected,
        gc.rate_limited,
        gc.breaker_trips,
        gc.breaker_half_open_probes,
        gc.browned_out,
        gc.deadline_shed,
        stream.patients,
        stream.horizon_ticks,
        stream.drift_injected,
        stream.drift_detected,
        stream.false_trips,
        stream.mean_detection_latency(),
        stream.max_detection_latency(),
        stream.recal_enqueued,
        stream.recal_completed,
        stream.recal_rejected,
        stream.recal_degraded,
        stream.epoch_swaps,
        stream.mean_mard,
        stream.drained_tick,
        shard_trace.len(),
        shard_digests_agree,
        shard_rows.join(", "),
        quorum.covered,
        quorum.votes,
        quorum.escalations,
        quorum.disagreements,
        quorum.injected,
        quorum.caught,
        quorum.catch_rate(),
        quorum.escaped,
        quorum.quarantined,
        quorum_unarmed_secs,
        quorum_armed_secs,
        vote_overhead_us,
        audit_files,
        audit_findings,
        audit_waivers,
        audit_by_family,
        audit_pass_secs,
        audit_warm_secs,
        audit_hit_rate,
        torture.schedules,
        torture.crash_points,
        torture.recoveries,
        torture.degradations,
        torture.typed_errors,
        torture.panics,
        torture.divergences,
        metrics.to_json(),
    );
    let path = "BENCH_runtime.json";
    match std::fs::File::create(path).and_then(|mut f| f.write_all(json.as_bytes())) {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => eprintln!("\nfailed to write {path}: {e}"),
    }
}

//! Regenerates Table 1 of the paper: the features (target, probe,
//! technique) of the seven developed biosensors.
//!
//! Usage: `cargo run -p bios-bench --bin table1`

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

fn main() {
    print!("{}", bios_bench::render_table1());
}

//! Regenerates Table 1 of the paper: the features (target, probe,
//! technique) of the seven developed biosensors.
//!
//! Usage: `cargo run -p bios-bench --bin table1`

fn main() {
    print!("{}", bios_bench::render_table1());
}

//! Regenerates Table 2 of the paper: sensitivity, linear range, and
//! detection limit for all 18 sensor configurations, comparing the
//! simulated figures of merit against the published ones.
//!
//! Calibrations fan out across the fleet runtime's worker pool; pass
//! `--sequential` for the single-threaded parity path.
//!
//! Usage:
//!   cargo run -p bios-bench --bin table2                 # all blocks
//!   cargo run -p bios-bench --bin table2 -- glucose      # one block
//!   cargo run -p bios-bench --bin table2 -- --seed 7     # change the seed
//!   cargo run -p bios-bench --bin table2 -- --workers 8  # pool size
//!   cargo run -p bios-bench --bin table2 -- --sequential # parity path

// A CLI binary reports on stdout by design.
#![allow(clippy::print_stdout)]

use bios_bench::{table2_blocks, BlockReport};
use bios_core::catalog;
use bios_runtime::{Runtime, RuntimeConfig};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut block: Option<String> = None;
    let mut config = RuntimeConfig::from_env();
    let mut sequential = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                seed = bios_bench::parse_flag_or_exit(iter.next().cloned(), "--seed", "an integer");
            }
            "--workers" => {
                config = config.with_workers(bios_bench::parse_flag_or_exit(
                    iter.next().cloned(),
                    "--workers",
                    "a positive integer",
                ));
            }
            "--sequential" => sequential = true,
            name => block = Some(name.to_lowercase()),
        }
    }

    let blocks: Vec<(&str, Vec<catalog::CatalogEntry>)> = match block.as_deref() {
        Some("glucose") => vec![("GLUCOSE", catalog::glucose_sensors())],
        Some("lactate") => vec![("LACTATE", catalog::lactate_sensors())],
        Some("glutamate") => vec![("GLUTAMATE", catalog::glutamate_sensors())],
        Some("cyp") => vec![("CYP450 DRUG SENSORS", catalog::cyp_sensors())],
        Some(other) => {
            eprintln!("unknown block '{other}'; use glucose|lactate|glutamate|cyp");
            std::process::exit(2);
        }
        None => table2_blocks(),
    };

    let runtime = Runtime::new(config);
    println!("Table 2: Comparison of electrochemical enzyme-based biosensors");
    println!(
        "(simulated calibration, seed {seed}, {} path)\n",
        if sequential {
            "sequential".to_owned()
        } else {
            format!("{} workers", runtime.workers())
        }
    );
    let mut all_ok = true;
    for (title, entries) in blocks {
        let report = if sequential {
            BlockReport::run(title, entries, seed).map_err(|e| e.to_string())
        } else {
            BlockReport::run_on(&runtime, title, entries, seed).map_err(|e| e.to_string())
        };
        match report {
            Ok(report) => {
                println!("{}", report.render());
                all_ok &= report.ordering_preserved();
            }
            Err(e) => {
                eprintln!("{title}: calibration failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if !all_ok {
        eprintln!("WARNING: at least one block's sensitivity ordering diverged from the paper");
        std::process::exit(1);
    }
}

//! Regenerates Table 2 of the paper: sensitivity, linear range, and
//! detection limit for all 18 sensor configurations, comparing the
//! simulated figures of merit against the published ones.
//!
//! Usage:
//!   cargo run -p bios-bench --bin table2              # all blocks
//!   cargo run -p bios-bench --bin table2 -- glucose   # one block
//!   cargo run -p bios-bench --bin table2 -- --seed 7  # change the seed

use bios_bench::BlockReport;
use bios_core::catalog;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut seed = 42u64;
    let mut block: Option<String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .expect("--seed needs an integer");
            }
            name => block = Some(name.to_lowercase()),
        }
    }

    let blocks: Vec<(&str, Vec<catalog::CatalogEntry>)> = match block.as_deref() {
        Some("glucose") => vec![("GLUCOSE", catalog::glucose_sensors())],
        Some("lactate") => vec![("LACTATE", catalog::lactate_sensors())],
        Some("glutamate") => vec![("GLUTAMATE", catalog::glutamate_sensors())],
        Some("cyp") => vec![("CYP450 DRUG SENSORS", catalog::cyp_sensors())],
        Some(other) => {
            eprintln!("unknown block '{other}'; use glucose|lactate|glutamate|cyp");
            std::process::exit(2);
        }
        None => vec![
            ("GLUCOSE", catalog::glucose_sensors()),
            ("LACTATE", catalog::lactate_sensors()),
            ("GLUTAMATE", catalog::glutamate_sensors()),
            ("CYP450 DRUG SENSORS", catalog::cyp_sensors()),
        ],
    };

    println!("Table 2: Comparison of electrochemical enzyme-based biosensors");
    println!("(simulated calibration, seed {seed})\n");
    let mut all_ok = true;
    for (title, entries) in blocks {
        match BlockReport::run(title, entries, seed) {
            Ok(report) => {
                println!("{}", report.render());
                all_ok &= report.ordering_preserved();
            }
            Err(e) => {
                eprintln!("{title}: calibration failed: {e}");
                std::process::exit(1);
            }
        }
    }
    if !all_ok {
        eprintln!("WARNING: at least one block's sensitivity ordering diverged from the paper");
        std::process::exit(1);
    }
}

//! Storage-torture gate for CI: enumerates hundreds of seeded
//! `SimIo` fault schedules — crash at **every** op index of the
//! monolithic and sharded reference runs, plus randomized fault
//! mixes (short writes, `ENOSPC`, failed syncs, crashes) — and
//! asserts the trichotomy: every schedule ends in a byte-identical
//! recovery, a typed error, or a metered degradation. Never a panic,
//! never a silent divergence, never a half-written snapshot served.
//!
//! ```text
//! torture_gate                      # default mixed-schedule count
//! torture_gate --schedules 500     # more mixed schedules
//! BIOS_TORTURE_SCHEDULES=500 torture_gate
//! ```
//!
//! Exit status is non-zero when any schedule panics, diverges, or a
//! crash-sweep schedule fails to recover. `scripts/check.sh` greps
//! the `panics=0` / `divergences=0` summary line.

// A CLI gate reports on stdout by design.
#![allow(clippy::print_stdout)]

use std::process::ExitCode;

use bios_bench::torture::{
    crash_sweep, golden_digest, mixed_campaign, reference_op_count, sharded_crash_sweep,
    torture_fleet,
};
use bios_runtime::parse_env_value;

/// Default mixed-schedule count; with the two crash sweeps on top the
/// campaign comfortably clears the 200-schedule floor.
const DEFAULT_SCHEDULES: u64 = 240;

/// Mixed-schedule count: `--schedules N` wins, then
/// `BIOS_TORTURE_SCHEDULES`, then the default. A malformed or zero
/// value keeps the default with one deterministic stderr warning —
/// zero schedules would quietly gut the gate, so it is rejected the
/// same way `BIOS_CACHE_CAP=0` is.
fn schedules_from_env() -> u64 {
    let Ok(raw) = std::env::var("BIOS_TORTURE_SCHEDULES") else {
        return DEFAULT_SCHEDULES;
    };
    match parse_env_value::<u64>("BIOS_TORTURE_SCHEDULES", &raw, "a positive schedule count") {
        Some(0) => {
            eprintln!(
                "warning: ignoring BIOS_TORTURE_SCHEDULES=\"0\" (the gate needs at least one \
                 mixed schedule; keeping the default of {DEFAULT_SCHEDULES})"
            );
            DEFAULT_SCHEDULES
        }
        Some(n) => n,
        None => DEFAULT_SCHEDULES,
    }
}

fn main() -> ExitCode {
    let mut schedules = schedules_from_env();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--schedules" => {
                schedules = bios_bench::parse_flag_or_exit(
                    args.next(),
                    "--schedules",
                    "a positive schedule count",
                );
                if schedules == 0 {
                    eprintln!("--schedules needs a positive schedule count");
                    return ExitCode::from(2);
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: torture_gate [--schedules N]");
                return ExitCode::from(2);
            }
        }
    }

    let fleet = torture_fleet();
    let golden = golden_digest(&fleet);
    let ops = match reference_op_count(&fleet, &golden) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };

    println!(
        "torture_gate: fleet={} jobs, reference_ops={ops}",
        fleet.len()
    );

    let sweep = crash_sweep(&fleet, &golden, ops);
    println!(
        "crash sweep (monolithic): {} crash points, {} recovered",
        sweep.crash_points, sweep.recoveries
    );
    let sharded = match sharded_crash_sweep(&fleet, &golden) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("FAIL: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "crash sweep (sharded):    {} crash points, {} recovered",
        sharded.crash_points, sharded.recoveries
    );
    let mixed = mixed_campaign(&fleet, &golden, schedules, 0x70B7);
    println!(
        "mixed campaign:           {} schedules: {} recovered, {} degraded, {} typed errors",
        mixed.schedules, mixed.recoveries, mixed.degradations, mixed.typed_errors
    );

    let mut total = sweep;
    total.merge(&sharded);
    total.merge(&mixed);
    println!(
        "total: schedules={} crash_points={} recoveries={} degradations={} typed_errors={} \
         panics={} divergences={}",
        total.schedules,
        total.crash_points,
        total.recoveries,
        total.degradations,
        total.typed_errors,
        total.panics,
        total.divergences
    );

    let sweeps_recovered =
        sweep.recoveries == sweep.schedules && sharded.recoveries == sharded.schedules;
    if !sweeps_recovered {
        eprintln!("FAIL: a crash-sweep schedule did not recover to the golden digest");
        return ExitCode::FAILURE;
    }
    if !total.clean() {
        eprintln!("FAIL: panics or silent divergences detected");
        return ExitCode::FAILURE;
    }
    println!("torture gate clean: every schedule landed in the trichotomy");
    ExitCode::SUCCESS
}

//! # bios-bench
//!
//! The experiment harness: regenerates every table of the paper's
//! evaluation from end-to-end simulation and scores the result against
//! the published numbers.
//!
//! Binaries:
//!
//! * `table1` — Table 1, features of the seven developed biosensors.
//! * `table2` — Table 2, the full sensitivity / linear-range / LOD
//!   comparison (optionally one block: `glucose`, `lactate`,
//!   `glutamate`, `cyp`).
//! * `survey` — the §2 classification registry statistics.
//!
//! Wall-clock benches (`cargo bench -p bios-bench`) measure simulation
//! throughput of the physics kernels, the calibration protocols, and the
//! full table regeneration via the std-only [`timing`] harness.

#![warn(missing_docs)]

pub mod ablation;
pub mod timing;
pub mod torture;

/// Installs a panic hook that swallows the backtrace spam from
/// injected `WorkerPanic` faults (they unwind inside `catch_unwind`
/// and are part of normal chaos-run output) while leaving every other
/// panic's report intact. Call once at the top of a binary that runs
/// armed fleets.
pub fn silence_injected_panics() {
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let message = info
            .payload()
            .downcast_ref::<&str>()
            .copied()
            .map(str::to_owned)
            .or_else(|| info.payload().downcast_ref::<String>().cloned());
        if !message.is_some_and(|m| m.contains("injected worker panic")) {
            default_hook(info);
        }
    }));
}

/// Parses the value of a required CLI flag, printing a usage message to
/// stderr and exiting with status 2 when it is missing or malformed.
/// Binaries use this instead of `.expect()` so bad arguments produce a
/// one-line diagnostic rather than a panic backtrace.
pub fn parse_flag_or_exit<T: std::str::FromStr>(
    value: Option<String>,
    flag: &str,
    what: &str,
) -> T {
    match value.as_deref().map(str::parse) {
        Some(Ok(v)) => v,
        _ => {
            eprintln!("{flag} needs {what}");
            std::process::exit(2);
        }
    }
}

/// Best-effort physical core count: on Linux, the number of distinct
/// `(physical id, core id)` pairs in `/proc/cpuinfo` (which collapses
/// SMT siblings); elsewhere — or when the file is unreadable or
/// carries no topology — the logical
/// [`std::thread::available_parallelism`]. Benchmarks record this next
/// to the logical count so shard-scaling numbers stay interpretable on
/// a 1-core container where no speedup is physically possible.
#[must_use]
pub fn physical_cores() -> usize {
    let logical = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let Ok(cpuinfo) = std::fs::read_to_string("/proc/cpuinfo") else {
        return logical;
    };
    let mut cores = std::collections::BTreeSet::new();
    let (mut physical_id, mut core_id) = (None::<u64>, None::<u64>);
    for line in cpuinfo.lines() {
        let mut parts = line.splitn(2, ':');
        let key = parts.next().unwrap_or("").trim();
        let value = parts.next().unwrap_or("").trim();
        match key {
            "physical id" => physical_id = value.parse().ok(),
            "core id" => core_id = value.parse().ok(),
            // A blank line ends one processor stanza.
            "" => {
                if let (Some(p), Some(c)) = (physical_id.take(), core_id.take()) {
                    cores.insert((p, c));
                }
            }
            _ => {}
        }
    }
    if let (Some(p), Some(c)) = (physical_id, core_id) {
        cores.insert((p, c));
    }
    if cores.is_empty() {
        logical
    } else {
        cores.len().min(logical)
    }
}

use bios_analytics::report::{format_percent, TextTable};
use bios_analytics::CalibrationSummary;
use bios_core::catalog::{self, CatalogEntry};
use bios_core::classification::{SensorRegistry, Transduction};
use bios_core::CoreError;
use bios_runtime::{Fleet, JobError, Runtime};

/// One Table 2 row compared paper-vs-simulation.
#[derive(Debug, Clone)]
pub struct RowComparison {
    /// The catalog entry.
    pub entry: CatalogEntry,
    /// Measured figures of merit from the simulated calibration.
    pub measured: CalibrationSummary,
}

impl RowComparison {
    /// Relative sensitivity error vs the paper.
    #[must_use]
    pub fn sensitivity_error(&self) -> f64 {
        let paper = self.entry.paper().sensitivity;
        (self
            .measured
            .sensitivity
            .as_micro_amps_per_milli_molar_square_cm()
            - paper.as_micro_amps_per_milli_molar_square_cm())
            / paper.as_micro_amps_per_milli_molar_square_cm()
    }

    /// Overlap score (Jaccard) of measured vs paper linear range.
    #[must_use]
    pub fn range_overlap(&self) -> f64 {
        self.measured
            .linear_range
            .overlap_score(&self.entry.paper().linear_range)
    }

    /// Relative LOD error vs the paper (None when the paper reports no
    /// LOD).
    #[must_use]
    pub fn lod_error(&self) -> Option<f64> {
        let paper = self.entry.paper().detection_limit?;
        Some((self.measured.detection_limit.as_molar() - paper.as_molar()) / paper.as_molar())
    }
}

/// A calibrated block of Table 2 (one analyte).
#[derive(Debug, Clone)]
pub struct BlockReport {
    /// Block title ("GLUCOSE", …).
    pub title: String,
    /// Rows in paper order.
    pub rows: Vec<RowComparison>,
}

impl BlockReport {
    /// Runs every sensor of `entries` through its calibration protocol.
    ///
    /// # Errors
    ///
    /// Propagates the first calibration failure.
    pub fn run(
        title: &str,
        entries: Vec<CatalogEntry>,
        seed: u64,
    ) -> Result<BlockReport, CoreError> {
        let rows = entries
            .into_iter()
            .map(|entry| {
                let outcome = entry.run_calibration(seed)?;
                Ok(RowComparison {
                    entry,
                    measured: outcome.summary,
                })
            })
            .collect::<Result<Vec<_>, CoreError>>()?;
        Ok(BlockReport {
            title: title.to_owned(),
            rows,
        })
    }

    /// Runs the block through the fleet runtime: jobs fan out across
    /// the runtime's workers and repeat runs hit its memo cache. Keeps
    /// the [`BlockReport::run`] contract by failing on the first job
    /// error; drive [`Runtime::run`] directly when per-job error
    /// aggregation is wanted.
    ///
    /// # Errors
    ///
    /// Returns the first per-job error (calibration failure or worker
    /// panic).
    pub fn run_on(
        runtime: &Runtime,
        title: &str,
        entries: Vec<CatalogEntry>,
        seed: u64,
    ) -> Result<BlockReport, JobError> {
        let fleet = Fleet::builder(title)
            .sensors(entries.iter().cloned())
            .seed(seed)
            .build();
        let report = runtime.run(&fleet);
        let rows = entries
            .into_iter()
            .zip(report.results)
            .map(|(entry, result)| {
                result.outcome.map(|outcome| RowComparison {
                    entry,
                    measured: outcome.summary,
                })
            })
            .collect::<Result<Vec<_>, JobError>>()?;
        Ok(BlockReport {
            title: title.to_owned(),
            rows,
        })
    }

    /// Whether the simulated sensitivity ordering matches the paper's
    /// ordering within the block — the comparative claim that matters.
    #[must_use]
    pub fn ordering_preserved(&self) -> bool {
        let mut paper: Vec<(usize, f64)> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    i,
                    r.entry
                        .paper()
                        .sensitivity
                        .as_micro_amps_per_milli_molar_square_cm(),
                )
            })
            .collect();
        let mut measured: Vec<(usize, f64)> = self
            .rows
            .iter()
            .enumerate()
            .map(|(i, r)| {
                (
                    i,
                    r.measured
                        .sensitivity
                        .as_micro_amps_per_milli_molar_square_cm(),
                )
            })
            .collect();
        paper.sort_by(|a, b| a.1.total_cmp(&b.1));
        measured.sort_by(|a, b| a.1.total_cmp(&b.1));
        paper
            .iter()
            .zip(&measured)
            .all(|((pi, _), (mi, _))| pi == mi)
    }

    /// Renders the block as a paper-style text table with error columns.
    #[must_use]
    pub fn render(&self) -> String {
        let mut t = TextTable::new(vec![
            "Modification",
            "S paper",
            "S sim",
            "ΔS",
            "Range paper",
            "Range sim",
            "LOD paper",
            "LOD sim",
        ]);
        for row in &self.rows {
            let paper = row.entry.paper();
            t.add_row(vec![
                format!(
                    "{}{}",
                    row.entry.label(),
                    row.entry
                        .citation()
                        .map(|c| format!(" {c}"))
                        .unwrap_or_default()
                ),
                format!(
                    "{:.2}",
                    paper.sensitivity.as_micro_amps_per_milli_molar_square_cm()
                ),
                format!(
                    "{:.2}",
                    row.measured
                        .sensitivity
                        .as_micro_amps_per_milli_molar_square_cm()
                ),
                format_percent(row.sensitivity_error()),
                paper.linear_range.to_string(),
                row.measured.linear_range.to_string(),
                paper.detection_limit.map_or("–".to_owned(), |l| {
                    format!("{:.2} µM", l.as_micro_molar())
                }),
                format!("{:.2} µM", row.measured.detection_limit.as_micro_molar()),
            ]);
        }
        format!(
            "{}\n{}ordering preserved: {}\n",
            self.title,
            t.render(),
            if self.ordering_preserved() {
                "yes"
            } else {
                "NO"
            }
        )
    }
}

/// The four Table 2 blocks in paper order.
#[must_use]
pub fn table2_blocks() -> Vec<(&'static str, Vec<CatalogEntry>)> {
    vec![
        ("GLUCOSE", catalog::glucose_sensors()),
        ("LACTATE", catalog::lactate_sensors()),
        ("GLUTAMATE", catalog::glutamate_sensors()),
        ("CYP450 DRUG SENSORS", catalog::cyp_sensors()),
    ]
}

/// Runs all four Table 2 blocks sequentially on the calling thread —
/// the parity reference for [`run_table2_on`].
///
/// # Errors
///
/// Propagates the first calibration failure.
pub fn run_table2(seed: u64) -> Result<Vec<BlockReport>, CoreError> {
    table2_blocks()
        .into_iter()
        .map(|(title, entries)| BlockReport::run(title, entries, seed))
        .collect()
}

/// Runs all four Table 2 blocks through the fleet runtime.
///
/// # Errors
///
/// Returns the first per-job error.
pub fn run_table2_on(runtime: &Runtime, seed: u64) -> Result<Vec<BlockReport>, JobError> {
    table2_blocks()
        .into_iter()
        .map(|(title, entries)| BlockReport::run_on(runtime, title, entries, seed))
        .collect()
}

/// Renders Table 1 (targets, probes, techniques of the seven developed
/// sensors).
#[must_use]
pub fn render_table1() -> String {
    let mut t = TextTable::new(vec!["Target", "Probe", "Technique"]);
    for entry in catalog::table1() {
        let sensor = entry.build_sensor();
        t.add_row(vec![
            entry.analyte().name().to_uppercase(),
            sensor.chemistry().probe_name(),
            sensor.technique().label().to_owned(),
        ]);
    }
    format!(
        "Table 1: Features of different metabolite biosensors.\n{}",
        t.render()
    )
}

/// Renders the §2 survey statistics from the classification registry,
/// including the paper's own seven devices classified into their own
/// taxonomy.
#[must_use]
pub fn render_survey() -> String {
    let reg = SensorRegistry::with_paper_platform();
    let mut t = TextTable::new(vec!["Transduction", "Devices"]);
    for tx in [
        Transduction::Amperometric,
        Transduction::Potentiometric,
        Transduction::FieldEffect,
        Transduction::ImpedimetricCapacitive,
        Transduction::ImpedimetricFaradic,
        Transduction::Optical,
        Transduction::SurfacePlasmonResonance,
        Transduction::Piezoelectric,
    ] {
        t.add_row(vec![
            tx.to_string(),
            reg.by_transduction(tx).len().to_string(),
        ]);
    }
    format!(
        "Section 2 survey registry: {} devices, {:.0}% nanomaterial-enhanced,\n{} electrochemical.\n\n{}",
        reg.len(),
        reg.nanotech_fraction() * 100.0,
        reg.electrochemical().len(),
        t.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_lists_all_seven_targets() {
        let s = render_table1();
        for target in [
            "GLUCOSE",
            "LACTATE",
            "GLUTAMATE",
            "ARACHIDONIC ACID",
            "FTORAFUR",
            "CYCLOPHOSPHAMIDE",
            "IFOSFAMIDE",
        ] {
            assert!(s.contains(target), "missing {target} in:\n{s}");
        }
        assert!(s.contains("Chronoamperometry"));
        assert!(s.contains("Cyclic voltammetry"));
        assert!(s.contains("CYP2B6"));
    }

    #[test]
    fn glucose_block_reproduces_ordering() {
        let block = BlockReport::run("GLUCOSE", catalog::glucose_sensors(), 42).unwrap();
        assert_eq!(block.rows.len(), 5);
        assert!(block.ordering_preserved(), "{}", block.render());
        // Our sensor wins the block, as the paper claims.
        let ours = block.rows.last().unwrap();
        assert!(ours.entry.is_ours());
        for other in &block.rows[..4] {
            assert!(ours.measured.sensitivity > other.measured.sensitivity);
        }
    }

    #[test]
    fn sensitivity_errors_are_small() {
        let block = BlockReport::run("GLUCOSE", catalog::glucose_sensors(), 7).unwrap();
        for row in &block.rows {
            assert!(
                row.sensitivity_error().abs() < 0.25,
                "{}: {}",
                row.entry.id(),
                row.sensitivity_error()
            );
        }
    }

    #[test]
    fn survey_renders() {
        let s = render_survey();
        assert!(s.contains("amperometric"));
        assert!(s.contains("devices"));
    }

    #[test]
    fn fleet_block_matches_sequential_block() {
        let runtime = Runtime::with_workers(4);
        let fleet = BlockReport::run_on(&runtime, "GLUCOSE", catalog::glucose_sensors(), 42)
            .expect("fleet block runs");
        let sequential =
            BlockReport::run("GLUCOSE", catalog::glucose_sensors(), 42).expect("block runs");
        assert_eq!(fleet.render(), sequential.render());
    }

    #[test]
    fn table2_on_runtime_matches_sequential() {
        let runtime = Runtime::with_workers(4);
        let fleet: Vec<String> = run_table2_on(&runtime, 42)
            .expect("table runs")
            .iter()
            .map(BlockReport::render)
            .collect();
        let sequential: Vec<String> = run_table2(42)
            .expect("table runs")
            .iter()
            .map(BlockReport::render)
            .collect();
        assert_eq!(fleet, sequential);
    }
}

//! A minimal wall-clock micro-benchmark harness.
//!
//! The build environment is offline, so the Criterion benches were
//! replaced by this std-only timer: each benchmark warms up, then runs
//! enough iterations to accumulate a stable measurement window, and
//! reports mean / best iteration time. Invoke via
//! `cargo bench -p bios-bench` exactly as before — the `[[bench]]`
//! targets keep `harness = false` and drive this module from `main`.

// Reporting measurements on stdout is this harness's entire job.
#![allow(clippy::print_stdout)]

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Minimum measurement window per benchmark.
const TARGET_WINDOW: Duration = Duration::from_millis(300);

/// Warm-up window before measurement starts.
const WARMUP_WINDOW: Duration = Duration::from_millis(100);

/// A named group of benchmarks, mirroring Criterion's group output
/// shape so the bench logs stay familiar.
pub struct BenchGroup {
    name: String,
}

impl BenchGroup {
    /// Starts a group and prints its header.
    #[must_use]
    pub fn new(name: &str) -> BenchGroup {
        println!("group: {name}");
        BenchGroup { name: name.into() }
    }

    /// Times `f`, printing mean and best per-iteration wall time.
    pub fn bench<T>(&self, name: &str, mut f: impl FnMut() -> T) {
        // Warm up until the window elapses (at least one call).
        let warm_start = Instant::now();
        while warm_start.elapsed() < WARMUP_WINDOW {
            black_box(f());
        }

        // Measure in batches until the target window is filled.
        let mut iters: u64 = 0;
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        while total < TARGET_WINDOW {
            let t0 = Instant::now();
            black_box(f());
            let dt = t0.elapsed();
            total += dt;
            best = best.min(dt);
            iters += 1;
        }

        let mean = total / u32::try_from(iters).unwrap_or(u32::MAX);
        println!(
            "  {group}/{name}: mean {mean:?}, best {best:?} ({iters} iters)",
            group = self.name
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_counts() {
        let g = BenchGroup::new("smoke");
        let mut calls = 0u64;
        g.bench("noop", || {
            calls += 1;
            calls
        });
        assert!(calls > 0);
    }
}

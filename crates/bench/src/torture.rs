//! Deterministic storage-torture harness.
//!
//! Enumerates seeded [`SimIo`] fault schedules against a fixed
//! journaled fleet and classifies every schedule into the trichotomy
//! the storage layer promises:
//!
//! 1. **Recovered** — the run (or the post-reboot resume) merged to
//!    the byte-identical digest of an uninterrupted run;
//! 2. **Typed error** — a [`JournalError`] / `io::Error` surfaced to
//!    the caller; nothing lied, nothing half-happened;
//! 3. **Degraded (metered)** — an append failure retired the journal
//!    mid-run, `journal_lost` incremented, and the fleet still
//!    completed with the correct digest.
//!
//! Anything else — a panic or a digest divergence — is a bug, counted
//! separately so the `torture_gate` binary can assert both stay zero.
//! Every schedule is a pure function of its seed: the same campaign
//! re-runs byte-identically on any machine.
//!
//! Three phases, shared by `torture_gate` and the `survey` JSON block:
//!
//! * [`crash_sweep`] — crash at **every** op index of a reference
//!   monolithic run (create, write, sync, rename, read — each
//!   boundary), reboot, resume; must recover every time.
//! * [`sharded_crash_sweep`] — the same sweep over a
//!   [`ShardedRuntime`] run with per-shard segments, exercising the
//!   merged resume (missing and torn-header segments included).
//! * [`mixed_campaign`] — seeded schedules mixing short writes,
//!   `ENOSPC`, failed syncs, and crashes at scripted rates.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::time::Duration;

use bios_core::catalog;
use bios_recover::{is_sim_crash, IoFaultScript, SimIo, StorageIo};
use bios_runtime::journal::JournalError;
use bios_runtime::{Fleet, JournalOptions, Runtime, RuntimeConfig};
use bios_shard::{ShardConfig, ShardedRuntime};

/// How one fault schedule terminated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScheduleOutcome {
    /// Digest byte-identical to the uninterrupted run (possibly via a
    /// post-reboot resume).
    Recovered,
    /// Journal retired mid-run; `journal_lost` metered; digest still
    /// correct.
    Degraded,
    /// A typed `JournalError` surfaced to the caller.
    TypedError,
    /// The run or resume panicked — always a bug.
    Panicked,
    /// A run "succeeded" with the wrong digest — always a bug.
    Diverged,
}

/// Aggregate counts over a torture campaign.
#[derive(Debug, Default, Clone, Copy)]
pub struct TortureReport {
    /// Crash points enumerated by the sweep phases.
    pub crash_points: u64,
    /// Total schedules executed (sweeps + mixed).
    pub schedules: u64,
    /// Schedules that ended in [`ScheduleOutcome::Recovered`].
    pub recoveries: u64,
    /// Schedules that ended in [`ScheduleOutcome::Degraded`].
    pub degradations: u64,
    /// Schedules that ended in [`ScheduleOutcome::TypedError`].
    pub typed_errors: u64,
    /// Schedules that panicked (must stay 0).
    pub panics: u64,
    /// Schedules that silently diverged (must stay 0).
    pub divergences: u64,
}

impl TortureReport {
    fn record(&mut self, outcome: ScheduleOutcome) {
        self.schedules += 1;
        match outcome {
            ScheduleOutcome::Recovered => self.recoveries += 1,
            ScheduleOutcome::Degraded => self.degradations += 1,
            ScheduleOutcome::TypedError => self.typed_errors += 1,
            ScheduleOutcome::Panicked => self.panics += 1,
            ScheduleOutcome::Diverged => self.divergences += 1,
        }
    }

    /// Folds another phase's counts into this one.
    pub fn merge(&mut self, other: &TortureReport) {
        self.crash_points += other.crash_points;
        self.schedules += other.schedules;
        self.recoveries += other.recoveries;
        self.degradations += other.degradations;
        self.typed_errors += other.typed_errors;
        self.panics += other.panics;
        self.divergences += other.divergences;
    }

    /// Every schedule landed in the trichotomy: no panic, no silent
    /// divergence.
    #[must_use]
    pub fn clean(&self) -> bool {
        self.panics == 0 && self.divergences == 0
    }
}

/// The fixed torture fleet. No physics chaos — the storage layer is
/// the thing under test — and the digest must be reproducible across
/// every schedule.
#[must_use]
pub fn torture_fleet() -> Fleet {
    Fleet::builder("torture")
        .sensors(catalog::all_table2())
        .seeds(0..2)
        .build()
}

/// A fresh runtime per schedule: metrics (`journal_lost`) must belong
/// to exactly one run, and the memo cache must not leak digests across
/// schedules.
fn torture_runtime() -> Runtime {
    Runtime::new(
        RuntimeConfig::default()
            .with_workers(2)
            .with_cache(false)
            .with_retry_backoff(Duration::from_micros(10)),
    )
}

/// The golden digest: an uninterrupted, un-journaled run.
#[must_use]
pub fn golden_digest(fleet: &Fleet) -> String {
    torture_runtime().run(fleet).summaries_digest()
}

/// Runs the fleet journaled on a healthy simulated disk and returns
/// the op count of the reference schedule — the number of crash
/// points the sweep will enumerate.
///
/// # Errors
///
/// A human-readable message when even the healthy simulated run fails
/// or does not match `golden` — the harness itself is then broken and
/// the gate must fail before sweeping.
pub fn reference_op_count(fleet: &Fleet, golden: &str) -> Result<u64, String> {
    let io = SimIo::perfect(0x7041);
    let report = torture_runtime()
        .run_journaled_on(&io, fleet, sim_path(), JournalOptions::default())
        .map_err(|e| format!("healthy simulated run failed: {e}"))?;
    if report.summaries_digest() != golden {
        return Err("healthy SimIo run does not match the golden digest".to_owned());
    }
    Ok(io.op_count())
}

fn sim_path() -> PathBuf {
    PathBuf::from("/sim/torture.journal")
}

fn sim_dir() -> PathBuf {
    PathBuf::from("/sim/torture-shards")
}

/// Is this a simulated-crash `JournalError`?
fn is_crash_error(e: &JournalError) -> bool {
    matches!(e, JournalError::Io(io_err) if is_sim_crash(io_err))
}

/// The documented post-crash recovery protocol: resume the surviving
/// journal; when the crash predated the durable header (`NotFound`,
/// `BadMagic`, `HeaderMissing` — nothing trustworthy on disk), run
/// fresh. Any other error is the typed-error arm.
fn resume_or_fresh(io: &dyn StorageIo, fleet: &Fleet, path: &Path) -> Result<String, JournalError> {
    let runtime = torture_runtime();
    match runtime.resume_on(io, fleet, path) {
        Ok(report) => Ok(report.summaries_digest().to_string()),
        Err(JournalError::BadMagic | JournalError::HeaderMissing) => runtime
            .run_journaled_on(io, fleet, path, JournalOptions::default())
            .map(|r| r.summaries_digest()),
        Err(JournalError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => runtime
            .run_journaled_on(io, fleet, path, JournalOptions::default())
            .map(|r| r.summaries_digest()),
        Err(e) => Err(e),
    }
}

/// Classifies one monolithic schedule end to end.
fn run_one_schedule(fleet: &Fleet, golden: &str, script: IoFaultScript) -> ScheduleOutcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let io = SimIo::new(script);
        let path = sim_path();
        let runtime = torture_runtime();
        match runtime.run_journaled_on(&io, fleet, &path, JournalOptions::default()) {
            Ok(report) => {
                if report.summaries_digest() != golden {
                    return ScheduleOutcome::Diverged;
                }
                if runtime.metrics().journal_lost > 0 {
                    ScheduleOutcome::Degraded
                } else {
                    ScheduleOutcome::Recovered
                }
            }
            Err(e) if is_crash_error(&e) => {
                // The process "died"; reboot the disk (same seed,
                // faults disarmed) and recover from what survived.
                io.reboot();
                match resume_or_fresh(&io, fleet, &path) {
                    Ok(digest) if digest == golden => ScheduleOutcome::Recovered,
                    Ok(_) => ScheduleOutcome::Diverged,
                    Err(_) => ScheduleOutcome::TypedError,
                }
            }
            Err(_) => ScheduleOutcome::TypedError,
        }
    }));
    outcome.unwrap_or(ScheduleOutcome::Panicked)
}

/// Phase A: crash at **every** op index `0..reference_ops` of the
/// monolithic journaled run. Every one of these schedules must end in
/// [`ScheduleOutcome::Recovered`]; the gate asserts
/// `recoveries == crash_points` for this phase.
#[must_use]
pub fn crash_sweep(fleet: &Fleet, golden: &str, reference_ops: u64) -> TortureReport {
    let mut report = TortureReport {
        crash_points: reference_ops,
        ..TortureReport::default()
    };
    for op in 0..reference_ops {
        report.record(run_one_schedule(
            fleet,
            golden,
            IoFaultScript::crash_at(op, op),
        ));
    }
    report
}

/// One sharded schedule: run per-shard segments on the scripted disk,
/// reboot on crash, merged-resume to the golden digest.
fn run_one_sharded_schedule(
    fleet: &Fleet,
    golden: &str,
    config: &ShardConfig,
    script: IoFaultScript,
) -> ScheduleOutcome {
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        let io = SimIo::new(script);
        let dir = sim_dir();
        let sharded = ShardedRuntime::new(config);
        match sharded.run_journaled_on(&io, fleet, &dir) {
            Ok(report) => {
                if report.summaries_digest() != golden {
                    return ScheduleOutcome::Diverged;
                }
                let lost: u64 = (0..sharded.shards())
                    .filter_map(|i| sharded.shard(i))
                    .map(|rt| rt.metrics().journal_lost)
                    .sum();
                if lost > 0 {
                    ScheduleOutcome::Degraded
                } else {
                    ScheduleOutcome::Recovered
                }
            }
            Err(e) if is_crash_error(&e) => {
                io.reboot();
                match ShardedRuntime::new(config).resume_on(&io, fleet, &dir) {
                    Ok(report) if report.summaries_digest() == golden => ScheduleOutcome::Recovered,
                    Ok(_) => ScheduleOutcome::Diverged,
                    Err(_) => ScheduleOutcome::TypedError,
                }
            }
            Err(_) => ScheduleOutcome::TypedError,
        }
    }));
    outcome.unwrap_or(ScheduleOutcome::Panicked)
}

/// The fixed shard layout for the sharded sweep.
fn torture_shard_config() -> ShardConfig {
    ShardConfig::default()
        .with_shards(3)
        .with_workers_per_shard(2)
}

/// Phase B: the crash sweep over a [`ShardedRuntime`] — one journal
/// segment per shard, crash at every op index of the sharded
/// reference run, merged resume (missing and torn-header segments
/// tolerated) back to the golden digest.
///
/// # Errors
///
/// A human-readable message when the healthy sharded reference run
/// fails or does not match `golden` (broken harness, not a schedule
/// outcome).
pub fn sharded_crash_sweep(fleet: &Fleet, golden: &str) -> Result<TortureReport, String> {
    let config = torture_shard_config();
    // Sharded reference run: op count and digest parity.
    let io = SimIo::perfect(0x7042);
    let reference = ShardedRuntime::new(&config)
        .run_journaled_on(&io, fleet, sim_dir())
        .map_err(|e| format!("healthy sharded run failed: {e}"))?;
    if reference.summaries_digest() != golden {
        return Err("healthy sharded SimIo run does not match the golden digest".to_owned());
    }
    let ops = io.op_count();
    let mut report = TortureReport {
        crash_points: ops,
        ..TortureReport::default()
    };
    for op in 0..ops {
        report.record(run_one_sharded_schedule(
            fleet,
            golden,
            &config,
            IoFaultScript::crash_at(op, op),
        ));
    }
    Ok(report)
}

/// Phase C: `schedules` randomized-but-seeded fault mixes
/// ([`IoFaultScript::mixed`]: short writes, `ENOSPC`, failed syncs,
/// and crashes at scripted per-mille rates) over the monolithic run.
/// Every schedule must land in the trichotomy.
#[must_use]
pub fn mixed_campaign(
    fleet: &Fleet,
    golden: &str,
    schedules: u64,
    base_seed: u64,
) -> TortureReport {
    let mut report = TortureReport::default();
    for i in 0..schedules {
        report.record(run_one_schedule(
            fleet,
            golden,
            IoFaultScript::mixed(base_seed.wrapping_add(i)),
        ));
    }
    report
}

/// The full campaign: monolithic crash sweep + sharded crash sweep +
/// `mixed_schedules` mixed-fault schedules, merged into one report.
///
/// # Errors
///
/// As [`reference_op_count`] / [`sharded_crash_sweep`]: the harness's
/// own healthy reference runs failed, so no campaign ran.
pub fn run_torture(mixed_schedules: u64) -> Result<TortureReport, String> {
    let fleet = torture_fleet();
    let golden = golden_digest(&fleet);
    let ops = reference_op_count(&fleet, &golden)?;
    let mut report = crash_sweep(&fleet, &golden, ops);
    report.merge(&sharded_crash_sweep(&fleet, &golden)?);
    report.merge(&mixed_campaign(&fleet, &golden, mixed_schedules, 0x70B7));
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_small_campaign_lands_entirely_in_the_trichotomy() {
        let fleet = torture_fleet();
        let golden = golden_digest(&fleet);
        let ops = match reference_op_count(&fleet, &golden) {
            Ok(n) => n,
            Err(e) => panic!("{e}"),
        };
        assert!(ops > 10, "reference run should cross many syscalls");
        let sweep = crash_sweep(&fleet, &golden, ops.min(6));
        assert!(sweep.clean(), "sweep must not panic or diverge: {sweep:?}");
        assert_eq!(
            sweep.recoveries, sweep.schedules,
            "every crash must recover"
        );
        let mixed = mixed_campaign(&fleet, &golden, 8, 0xA5);
        assert!(mixed.clean(), "mixed must not panic or diverge: {mixed:?}");
        assert_eq!(
            mixed.recoveries + mixed.degradations + mixed.typed_errors,
            mixed.schedules
        );
    }
}

//! The analytes the platform detects, and common interferents.

use bios_units::Molar;

/// Every species the paper's platform measures (Table 1) plus the
/// endogenous interferents that plague amperometric sensing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Analyte {
    /// Blood sugar — the most-studied metabolite of the last fifty years.
    Glucose,
    /// L-lactate — exercise physiology, sepsis, cell-culture monitoring.
    Lactate,
    /// L-glutamate — neurotransmitter.
    Glutamate,
    /// Arachidonic acid — fatty acid abundant in liver, brain, muscle.
    ArachidonicAcid,
    /// Cyclophosphamide — alkylating anticancer agent.
    Cyclophosphamide,
    /// Ifosfamide — alkylating anticancer agent.
    Ifosfamide,
    /// Ftorafur® (tegafur) — chemotherapeutic prodrug.
    Ftorafur,
    /// Benzphetamine — anti-obesity agent (multi-panel of \[9\]).
    Benzphetamine,
    /// Dextromethorphan — cough suppressant (multi-panel of \[9\]).
    Dextromethorphan,
    /// Naproxen — anti-inflammatory (multi-panel of \[9\]).
    Naproxen,
    /// Flurbiprofen — anti-inflammatory (multi-panel of \[9\]).
    Flurbiprofen,
    /// Ascorbic acid (vitamin C) — classic anodic interferent.
    AscorbicAcid,
    /// Uric acid — classic anodic interferent.
    UricAcid,
    /// Paracetamol — drug interferent at oxidizing potentials.
    Paracetamol,
}

impl Analyte {
    /// Display name matching the paper's usage.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Analyte::Glucose => "glucose",
            Analyte::Lactate => "lactate",
            Analyte::Glutamate => "glutamate",
            Analyte::ArachidonicAcid => "arachidonic acid",
            Analyte::Cyclophosphamide => "cyclophosphamide",
            Analyte::Ifosfamide => "ifosfamide",
            Analyte::Ftorafur => "Ftorafur",
            Analyte::Benzphetamine => "benzphetamine",
            Analyte::Dextromethorphan => "dextromethorphan",
            Analyte::Naproxen => "naproxen",
            Analyte::Flurbiprofen => "flurbiprofen",
            Analyte::AscorbicAcid => "ascorbic acid",
            Analyte::UricAcid => "uric acid",
            Analyte::Paracetamol => "paracetamol",
        }
    }

    /// Whether this is one of the paper's seven target analytes (vs an
    /// interferent).
    #[must_use]
    pub fn is_platform_target(&self) -> bool {
        matches!(
            self,
            Analyte::Glucose
                | Analyte::Lactate
                | Analyte::Glutamate
                | Analyte::ArachidonicAcid
                | Analyte::Cyclophosphamide
                | Analyte::Ifosfamide
                | Analyte::Ftorafur
        )
    }

    /// Whether this analyte is a drug (exogenous) rather than a
    /// metabolite (endogenous) — the paper's two detection families.
    #[must_use]
    pub fn is_drug(&self) -> bool {
        matches!(
            self,
            Analyte::Cyclophosphamide
                | Analyte::Ifosfamide
                | Analyte::Ftorafur
                | Analyte::Benzphetamine
                | Analyte::Dextromethorphan
                | Analyte::Naproxen
                | Analyte::Flurbiprofen
                | Analyte::Paracetamol
        )
    }

    /// Typical physiological (serum) concentration, where meaningful.
    #[must_use]
    pub fn physiological_level(&self) -> Option<Molar> {
        match self {
            Analyte::Glucose => Some(Molar::from_milli_molar(5.0)),
            Analyte::Lactate => Some(Molar::from_milli_molar(1.0)),
            Analyte::Glutamate => Some(Molar::from_micro_molar(50.0)),
            Analyte::AscorbicAcid => Some(Molar::from_micro_molar(60.0)),
            Analyte::UricAcid => Some(Molar::from_micro_molar(300.0)),
            // Drugs have no endogenous level.
            _ => None,
        }
    }

    /// All seven platform targets in Table 1 order.
    #[must_use]
    pub fn platform_targets() -> [Analyte; 7] {
        [
            Analyte::Glucose,
            Analyte::Lactate,
            Analyte::Glutamate,
            Analyte::ArachidonicAcid,
            Analyte::Ftorafur,
            Analyte::Cyclophosphamide,
            Analyte::Ifosfamide,
        ]
    }
}

impl std::fmt::Display for Analyte {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_platform_targets() {
        let targets = Analyte::platform_targets();
        assert_eq!(targets.len(), 7);
        assert!(targets.iter().all(Analyte::is_platform_target));
    }

    #[test]
    fn interferents_are_not_targets() {
        for a in [
            Analyte::AscorbicAcid,
            Analyte::UricAcid,
            Analyte::Paracetamol,
        ] {
            assert!(!a.is_platform_target());
        }
    }

    #[test]
    fn drug_vs_metabolite_split() {
        assert!(Analyte::Cyclophosphamide.is_drug());
        assert!(Analyte::Ftorafur.is_drug());
        assert!(!Analyte::Glucose.is_drug());
        assert!(!Analyte::ArachidonicAcid.is_drug());
    }

    #[test]
    fn physiological_levels_sane() {
        let glucose = Analyte::Glucose.physiological_level().unwrap();
        assert!((glucose.as_milli_molar() - 5.0).abs() < 1e-12);
        assert!(Analyte::Cyclophosphamide.physiological_level().is_none());
    }

    #[test]
    fn display_names() {
        assert_eq!(Analyte::Glucose.to_string(), "glucose");
        assert_eq!(Analyte::ArachidonicAcid.to_string(), "arachidonic acid");
    }
}

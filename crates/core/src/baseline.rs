//! The DNA-based cyclophosphamide baseline of Palaska et al. \[32\].
//!
//! §3.2.4 notes that before the paper's CYP2B6 sensor, the only
//! electrochemical CP detectors were DNA-modified electrodes read out by
//! differential pulse voltammetry: CP alkylates the immobilized strands
//! and the guanine-oxidation DPV peak *drops* in proportion to drug
//! exposure (a signal-off assay). This module implements that baseline
//! so the paper's "first enzyme-based CP sensor" claim can be compared
//! against the incumbent head-to-head.

use bios_analytics::{CalibrationCurve, CalibrationPoint};
use bios_electrochem::waveform::DifferentialPulse;
use bios_instrument::ReadoutChain;
use bios_nanomaterial::{Electrode, ElectrodeStock};
use bios_units::{Amperes, Molar, Seconds, Volts};

/// A DNA-modified electrode for cyclophosphamide, DPV readout.
///
/// The sensor's observable is the *suppression* of the guanine oxidation
/// peak: `i(c) = i₀·(1 − ε·c/(K_d + c))`, with `ε` the maximum
/// suppression fraction and `K_d` the apparent DNA-drug affinity.
///
/// # Examples
///
/// ```
/// use bios_core::baseline::DnaCpSensor;
/// use bios_units::Molar;
///
/// let sensor = DnaCpSensor::palaska2007();
/// let blank = sensor.guanine_peak(Molar::ZERO);
/// let dosed = sensor.guanine_peak(Molar::from_micro_molar(50.0));
/// assert!(dosed < blank); // signal-off assay
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DnaCpSensor {
    electrode: Electrode,
    /// Undamaged guanine peak current.
    baseline_peak: Amperes,
    /// Maximum fractional suppression at saturating drug.
    max_suppression: f64,
    /// Apparent affinity of the drug-DNA interaction.
    affinity: Molar,
    /// Incubation time per standard (DNA damage is slow).
    incubation: Seconds,
    /// Relative run-to-run scatter of the guanine peak (DNA-coverage
    /// reproducibility — the assay's real noise floor, far above the
    /// electronics).
    peak_rsd: f64,
}

impl DnaCpSensor {
    /// The carbon-paste configuration of \[32\]: ~2 µA guanine peak,
    /// 60 % maximum suppression, K_d ≈ 400 µM, 5 min incubation.
    #[must_use]
    pub fn palaska2007() -> DnaCpSensor {
        DnaCpSensor {
            electrode: ElectrodeStock::DropSensSpe.working_electrode(),
            baseline_peak: Amperes::from_micro_amps(2.0),
            max_suppression: 0.6,
            affinity: Molar::from_micro_molar(400.0),
            incubation: Seconds::from_minutes(5.0),
            peak_rsd: 0.02,
        }
    }

    /// The working electrode.
    #[must_use]
    pub fn electrode(&self) -> &Electrode {
        &self.electrode
    }

    /// Incubation time required per measurement — the throughput cost
    /// the enzyme sensor avoids.
    #[must_use]
    pub fn incubation(&self) -> Seconds {
        self.incubation
    }

    /// The DPV program of the guanine-oxidation scan.
    #[must_use]
    pub fn waveform(&self) -> DifferentialPulse {
        DifferentialPulse::new(
            Volts::from_milli_volts(200.0),
            Volts::from_milli_volts(1200.0),
            Volts::from_milli_volts(10.0),
            Volts::from_milli_volts(50.0),
            Seconds::from_millis(50.0),
            Seconds::from_millis(200.0),
        )
    }

    /// The guanine DPV peak after incubation with `cp` cyclophosphamide.
    #[must_use]
    pub fn guanine_peak(&self, cp: Molar) -> Amperes {
        let c = cp.as_molar().max(0.0);
        let suppression = self.max_suppression * c / (self.affinity.as_molar() + c);
        self.baseline_peak * (1.0 - suppression)
    }

    /// The calibration observable: peak *loss* relative to the blank,
    /// which grows with concentration like an ordinary calibration
    /// signal.
    #[must_use]
    pub fn peak_suppression(&self, cp: Molar) -> Amperes {
        self.baseline_peak - self.guanine_peak(cp)
    }

    /// Runs a suppression calibration over `standards` through a readout
    /// chain, producing a curve comparable to the enzyme sensor's.
    ///
    /// Each replicate draws a fresh guanine-peak realization (DNA
    /// coverage varies run to run) before the electronic chain ever sees
    /// it — the dominant noise source of the assay. Deterministic under
    /// `seed`.
    pub fn calibrate(
        &self,
        chain: &mut ReadoutChain,
        standards: &[Molar],
        replicates: usize,
        seed: u64,
    ) -> CalibrationCurve {
        use bios_prng::Rng;
        let mut rng = Rng::seed_from_u64(seed);
        let draw_peak =
            |nominal: Amperes, rng: &mut Rng| nominal * (1.0 + self.peak_rsd * rng.gaussian());

        // Noise floor: scatter of repeated blank-minus-blank differences
        // (two fresh peak realizations each), matching the calibration
        // observable.
        let blanks: Vec<f64> = (0..30)
            .map(|_| {
                let a = chain.digitize(draw_peak(self.baseline_peak, &mut rng));
                let b = chain.digitize(draw_peak(self.baseline_peak, &mut rng));
                (a - b).as_amps()
            })
            .collect();
        let mean = blanks.iter().sum::<f64>() / blanks.len() as f64;
        let var =
            blanks.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (blanks.len() - 1) as f64;
        let blank_sigma = Amperes::from_amps(var.sqrt());

        let points = standards
            .iter()
            .map(|&c| {
                let reps = (0..replicates)
                    .map(|_| {
                        // Each replicate measures blank and dosed peaks;
                        // the observable is their difference.
                        let blank = chain.digitize(draw_peak(self.baseline_peak, &mut rng));
                        let dosed = chain.digitize(draw_peak(self.guanine_peak(c), &mut rng));
                        blank - dosed
                    })
                    .collect();
                CalibrationPoint::new(c, reps)
            })
            .collect();
        CalibrationCurve::new(points, self.electrode.area(), blank_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_analytics::LinearRangeOptions;
    use bios_electrochem::waveform::Waveform;
    use bios_units::ConcentrationRange;

    #[test]
    fn suppression_is_monotone_and_saturating() {
        let s = DnaCpSensor::palaska2007();
        let mut prev = -1.0;
        for micro in [0.0, 10.0, 50.0, 200.0, 1000.0] {
            let loss = s.peak_suppression(Molar::from_micro_molar(micro)).as_amps();
            assert!(loss >= prev);
            prev = loss;
        }
        // Bounded by ε·i0.
        let max = s.peak_suppression(Molar::from_molar(1.0)).as_micro_amps();
        assert!(max <= 2.0 * 0.6 + 1e-9);
    }

    #[test]
    fn dpv_waveform_spans_guanine_window() {
        let w = DnaCpSensor::palaska2007().waveform();
        // Guanine oxidizes near +1.0 V; the scan must reach it.
        let end = w.potential_at(w.duration());
        assert!(end.as_milli_volts() >= 1000.0);
    }

    #[test]
    fn dna_baseline_calibrates_but_underperforms_cyp_sensor() {
        // Head-to-head on CP: the enzyme sensor must beat the DNA
        // baseline on detection limit — the §3.2.4 motivation.
        let dna = DnaCpSensor::palaska2007();
        let mut chain = ReadoutChain::benchtop(5);
        let standards = ConcentrationRange::from_micro_molar(0.0, 150.0)
            .unwrap()
            .linspace(16);
        let curve = dna.calibrate(&mut chain, &standards, 3, 9);
        let summary = curve.summary(&LinearRangeOptions::default()).unwrap();

        let cyp = crate::catalog::cyp_sensors()
            .into_iter()
            .find(|e| e.id() == "cyp/cyclophosphamide")
            .unwrap();
        let cyp_summary = cyp.run_calibration(5).unwrap().summary;

        assert!(summary.detection_limit > cyp_summary.detection_limit);
        assert!(summary.sensitivity < cyp_summary.sensitivity);
    }

    #[test]
    fn incubation_cost_is_material() {
        let s = DnaCpSensor::palaska2007();
        assert!(s.incubation().as_seconds() >= 120.0);
    }
}

//! Every sensor of the paper's Tables 1 and 2 as a runnable
//! configuration.
//!
//! Each [`CatalogEntry`] carries (a) the figures of merit the paper
//! reports for that device and (b) a physical recipe — electrode,
//! modification, enzyme, film — whose parameters are *derived from* the
//! reported figures through the forward model:
//!
//! * the apparent `K_M` is set so Michaelis–Menten curvature ends the
//!   linear range where the paper says it ends (5 % tolerance);
//! * the effective enzyme loading is set so the model's low-concentration
//!   slope equals the reported sensitivity given the modification's
//!   collection efficiency;
//! * the readout noise floor is set so 3σ/slope lands at the reported
//!   detection limit.
//!
//! The calibration harness then *re-measures* all three figures from a
//! noisy simulated standard series — slope from regression, range from
//! the linearity detector, LOD from measured blank scatter — so the
//! reproduced table is an output of the pipeline, not an echo of its
//! inputs.

use bios_analytics::{CalibrationCurve, CalibrationSummary, LinearRangeOptions};
use bios_electrochem::degradation::ElectrodeHealth;
use bios_enzyme::michaelis::MichaelisMenten;
use bios_enzyme::{CypIsoform, CypSensorChemistry, EnzymeFilm, Oxidase, OxidaseKind};
use bios_faults::{FaultPlan, Faultable, RealizedFaults};
use bios_instrument::noise::NoiseGenerator;
use bios_instrument::{Adc, ReadoutChain, TransimpedanceAmplifier};
use bios_nanomaterial::{Electrode, ElectrodeRole, ElectrodeStock, SurfaceModification};
use bios_units::{
    Amperes, ConcentrationRange, Kelvin, Molar, Sensitivity, SquareCm, SurfaceLoading, Volts,
    FARADAY,
};

use crate::analyte::Analyte;
use crate::error::Result;
use crate::protocol::{CalibrationProtocol, Chronoamperometry, CyclicVoltammetry};
use crate::sensor::{Biosensor, Technique};

/// Linearity tolerance used to translate a reported linear range into an
/// apparent Michaelis constant.
const LINEARITY_TOLERANCE: f64 = 0.05;

/// The paper-reported figures of merit for one Table 2 row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperFigures {
    /// Reported sensitivity.
    pub sensitivity: Sensitivity,
    /// Reported linear range.
    pub linear_range: ConcentrationRange,
    /// Reported limit of detection (the CNT-mat sensor \[42\] reports
    /// none).
    pub detection_limit: Option<Molar>,
}

/// Which enzyme chemistry an entry mounts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum ChemistryKind {
    Oxidase(OxidaseKind),
    Cyp(CypIsoform),
}

/// A reproducible sensor configuration with its paper-reported target
/// figures.
///
/// # Examples
///
/// ```
/// use bios_core::catalog;
///
/// let ours = catalog::our_glucose_sensor();
/// let sensor = ours.build_sensor();
/// // The forward model's analytic slope matches the paper's 55.5
/// // µA·mM⁻¹·cm⁻² by construction…
/// let s = sensor.model_sensitivity();
/// assert!(s.relative_error(ours.paper().sensitivity) < 1e-6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct CatalogEntry {
    id: String,
    label: String,
    citation: Option<String>,
    analyte: Analyte,
    paper: PaperFigures,
    electrode: Electrode,
    modification: SurfaceModification,
    chemistry: ChemistryKind,
    technique: Technique,
    sweep: ConcentrationRange,
    sweep_points: usize,
    film_activity: f64,
    is_ours: bool,
}

impl CatalogEntry {
    /// Stable identifier (e.g. `"glucose/ours"`, `"lactate/goran2011"`).
    #[must_use]
    pub fn id(&self) -> &str {
        &self.id
    }

    /// Table 2 row label (e.g. `"MWCNT/Nafion + GOD"`).
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Bibliography key for literature baselines; `None` for the paper's
    /// own devices.
    #[must_use]
    pub fn citation(&self) -> Option<&str> {
        self.citation.as_deref()
    }

    /// The analyte detected.
    #[must_use]
    pub fn analyte(&self) -> Analyte {
        self.analyte
    }

    /// The paper-reported figures of merit.
    #[must_use]
    pub fn paper(&self) -> PaperFigures {
        self.paper
    }

    /// Whether this is one of the authors' own devices (bold rows in
    /// Table 2).
    #[must_use]
    pub fn is_ours(&self) -> bool {
        self.is_ours
    }

    /// The concentration sweep the harness calibrates over.
    #[must_use]
    pub fn sweep(&self) -> ConcentrationRange {
        self.sweep
    }

    /// Number of standards in the sweep.
    #[must_use]
    pub fn sweep_points(&self) -> usize {
        self.sweep_points
    }

    /// Returns the entry with a different number of standards in the
    /// calibration sweep. Mainly useful for stress and fault-injection
    /// scenarios: fewer than 3 points makes [`CatalogEntry::run_calibration`]
    /// fail figure-of-merit extraction.
    #[must_use]
    pub fn with_sweep_points(mut self, sweep_points: usize) -> CatalogEntry {
        self.sweep_points = sweep_points;
        self
    }

    /// Returns the entry under a different id (e.g. to mount the same
    /// recipe as several fleet channels without cache aliasing).
    #[must_use]
    pub fn with_id(mut self, id: &str) -> CatalogEntry {
        self.id = id.to_owned();
        self
    }

    /// Retained enzyme-film activity this entry is assembled with
    /// (1.0 = fresh film).
    #[must_use]
    pub fn film_activity(&self) -> f64 {
        self.film_activity
    }

    /// Returns the entry with the film's retained activity pinned to
    /// `activity` (clamped to [0.05, 1.0]) — an **aged** device. A
    /// calibration of the aged entry measures the degraded film with
    /// the full sweep, which is how the stream engine rebuilds a
    /// drifted patient channel's calibration epoch. The activity is
    /// part of the protocol fingerprint, so aged and fresh runs never
    /// alias in the memo cache.
    #[must_use]
    pub fn with_film_activity(mut self, activity: f64) -> CatalogEntry {
        self.film_activity = activity.clamp(0.05, 1.0);
        self
    }

    /// A stable 64-bit fingerprint (FNV-1a) of everything that
    /// determines the calibration protocol: electrode, modification,
    /// chemistry, technique, sweep, and the paper figures the film
    /// recipe is derived from. Entries that would simulate differently
    /// fingerprint differently, so `(id, fingerprint, seed)` is a sound
    /// memo-cache key for [`CatalogEntry::run_calibration`].
    #[must_use]
    pub fn protocol_fingerprint(&self) -> u64 {
        // The Debug rendering covers every field of the entry, and f64
        // Debug output is shortest-round-trip, so distinct bit patterns
        // render distinctly.
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in format!("{self:?}").bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
        }
        hash
    }

    /// The apparent Michaelis constant implied by the reported linear
    /// range at the 5 % linearity tolerance.
    #[must_use]
    pub fn target_km(&self) -> Molar {
        MichaelisMenten::km_for_linear_limit(self.paper.linear_range.high(), LINEARITY_TOLERANCE)
    }

    /// Constructs the physical sensor for this entry.
    ///
    /// Film parameters are derived from the paper figures as described
    /// in the module docs.
    #[must_use]
    pub fn build_sensor(&self) -> Biosensor {
        self.assemble_sensor(self.film_activity, 1.0)
    }

    /// Sensor assembly parametrized by degradation: `activity` scales the
    /// film's retained activity (denaturation) and `current_scale` scales
    /// the effective loading (electrode fouling / reference drift act as
    /// a current multiplier to first order). `(1.0, 1.0)` is the healthy
    /// device, bit-identical to the original derivation.
    fn assemble_sensor(&self, activity: f64, current_scale: f64) -> Biosensor {
        let km_target = self.target_km();
        let coll = self.modification.collection_efficiency();
        let s_target = self
            .paper
            .sensitivity
            .as_micro_amps_per_milli_molar_square_cm();

        match self.chemistry {
            ChemistryKind::Oxidase(kind) => {
                let enzyme = Oxidase::stock(kind);
                let apparent = enzyme.apparent_kinetics();
                let km_shift = km_target.as_molar() / apparent.km().as_molar();
                let kcat_app = apparent.kcat().as_per_second();
                let n = f64::from(enzyme.electrons_per_turnover());
                // S [µA·mM⁻¹·cm⁻²] = 1e3·n·F·coll·Γ·kcat/K_M[M]
                let gamma = s_target * km_target.as_molar() / (1e3 * n * FARADAY * coll * kcat_app);
                let film = EnzymeFilm::builder()
                    .loading(SurfaceLoading::from_mol_per_square_cm(
                        gamma * current_scale,
                    ))
                    .retained_activity(activity)
                    .km_shift(km_shift)
                    .build();
                Biosensor::builder(&self.label, self.analyte)
                    .electrode(self.electrode)
                    .modification(self.modification.clone())
                    .oxidase(enzyme, film)
                    .technique(self.technique)
                    .build()
            }
            ChemistryKind::Cyp(isoform) => {
                let chemistry = CypSensorChemistry::stock(isoform);
                let km_shift = km_target.as_molar() / chemistry.binding().km().as_molar();
                let kcat_eff = chemistry.binding().kcat().as_per_second() * chemistry.coupling();
                let n = f64::from(chemistry.electrons_per_turnover());
                let gamma = s_target * km_target.as_molar() / (1e3 * n * FARADAY * coll * kcat_eff);
                let film = EnzymeFilm::builder()
                    .loading(SurfaceLoading::from_mol_per_square_cm(
                        gamma * current_scale,
                    ))
                    .retained_activity(activity)
                    .km_shift(km_shift)
                    .build();
                Biosensor::builder(&self.label, self.analyte)
                    .electrode(self.electrode)
                    .modification(self.modification.clone())
                    .cyp(chemistry, film)
                    .technique(self.technique)
                    .build()
            }
        }
    }

    /// The per-sample white-noise RMS implied by the reported detection
    /// limit (nominal 10 µM when the paper reports none).
    #[must_use]
    pub fn readout_noise(&self) -> Amperes {
        let lod = self
            .paper
            .detection_limit
            .unwrap_or(Molar::from_micro_molar(10.0));
        let slope_micro_amps_per_milli_molar = self
            .paper
            .sensitivity
            .as_micro_amps_per_milli_molar_square_cm()
            * self.electrode.area().as_square_cm();
        let sigma_reading = lod.as_milli_molar() * slope_micro_amps_per_milli_molar / 3.0;
        // Chronoamperometry averages an 8-sample window per reading, so
        // the per-sample RMS is √8 larger; CV reads single sweeps.
        let window = match self.technique {
            Technique::Chronoamperometry { .. } => {
                Chronoamperometry::default().samples_per_reading as f64
            }
            _ => 1.0,
        };
        Amperes::from_micro_amps(sigma_reading * window.sqrt())
    }

    /// Builds the readout chain for this entry: auto-ranged amplifier,
    /// 16-bit converter, and the device's noise floor. Deterministic
    /// under `seed`.
    #[must_use]
    pub fn build_readout(&self, seed: u64) -> ReadoutChain {
        let sensor = self.build_sensor();
        let max_current = sensor.faradaic_current(self.sweep.high());
        let rail = Volts::from_volts(3.3);
        let tia = TransimpedanceAmplifier::auto_range(max_current * 1.2, rail);
        ReadoutChain::new(
            tia,
            Adc::new(16, rail),
            NoiseGenerator::new(seed, self.readout_noise()),
            bios_instrument::filter::FilterSpec::None,
        )
    }

    /// The combined current multiplier from injected electrode faults
    /// (fouling × Tafel-slope drift for this entry's redox chemistry).
    fn electrode_current_factor(&self, faults: &RealizedFaults) -> f64 {
        let health = ElectrodeHealth::pristine().with_faults(faults);
        if health.is_pristine() {
            return 1.0;
        }
        let n = match self.chemistry {
            ChemistryKind::Oxidase(kind) => Oxidase::stock(kind).electrons_per_turnover(),
            ChemistryKind::Cyp(isoform) => {
                CypSensorChemistry::stock(isoform).electrons_per_turnover()
            }
        };
        // α = 0.5 is the standard symmetric transfer coefficient for the
        // mediator/H₂O₂ couples these sensors poise on.
        health.current_factor(n, 0.5, Kelvin::ROOM)
    }

    /// Estimated number of ADC samples one calibration run digitizes —
    /// the unit of the runtime's per-job work budget. Saturating, so a
    /// pathological `with_sweep_points` request cannot overflow.
    #[must_use]
    pub fn calibration_workload(&self) -> u64 {
        let points = self.sweep_points as u64;
        match self.technique {
            Technique::Chronoamperometry { .. } => {
                let p = Chronoamperometry::default();
                (p.blank_readings as u64)
                    .saturating_add(points.saturating_mul(p.replicates as u64))
                    .saturating_mul(p.samples_per_reading as u64)
            }
            _ => {
                let p = CyclicVoltammetry::default();
                (p.blank_readings as u64).saturating_add(points.saturating_mul(p.replicates as u64))
            }
        }
    }

    /// Runs the entry's calibration protocol end to end and extracts the
    /// figures of merit.
    ///
    /// # Errors
    ///
    /// Propagates analytics errors from the figure-of-merit extraction.
    pub fn run_calibration(&self, seed: u64) -> Result<CalibrationOutcome> {
        self.run_calibration_with(seed, None)
    }

    /// Like [`run_calibration`](Self::run_calibration), but with an
    /// optional armed fault plan. The plan's faults for this `(entry,
    /// seed)` pair are realized deterministically and applied at the
    /// matching layer: film denaturation to the enzyme film, fouling and
    /// reference drift as an electrode current factor, and readout
    /// faults to the digitizer chain. With `None` — or a plan that
    /// realizes nothing — the run is bit-identical to the healthy path.
    ///
    /// # Errors
    ///
    /// Propagates analytics errors from the figure-of-merit extraction;
    /// severe injected degradation can surface as e.g. a non-positive
    /// calibration slope.
    pub fn run_calibration_with(
        &self,
        seed: u64,
        plan: Option<&FaultPlan>,
    ) -> Result<CalibrationOutcome> {
        let realized = plan.map(|p| p.realize(&self.id, seed));
        let (sensor, mut chain) = match &realized {
            None => (self.build_sensor(), self.build_readout(seed)),
            Some(faults) => (
                // An injected denaturation compounds with the entry's
                // own aged-film state multiplicatively.
                self.assemble_sensor(
                    (self.film_activity * faults.film_activity).max(0.05),
                    self.electrode_current_factor(faults),
                ),
                self.build_readout(seed).with_faults(faults),
            ),
        };
        let standards = self.sweep.linspace(self.sweep_points);
        let curve = match self.technique {
            Technique::Chronoamperometry { .. } => {
                Chronoamperometry::default().calibrate(&sensor, &mut chain, &standards)
            }
            _ => CyclicVoltammetry::default().calibrate(&sensor, &mut chain, &standards),
        };
        let summary = curve.summary(&LinearRangeOptions::default())?;
        Ok(CalibrationOutcome { summary, curve })
    }
}

/// The result of one end-to-end calibration run.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationOutcome {
    /// Extracted figures of merit.
    pub summary: CalibrationSummary,
    /// The underlying calibration data.
    pub curve: CalibrationCurve,
}

fn glassy_carbon() -> Electrode {
    ElectrodeStock::GlassyCarbonDisc.working_electrode()
}

fn carbon_paste_disc() -> Electrode {
    Electrode::new(
        bios_nanomaterial::ElectrodeMaterial::CarbonPaste,
        SquareCm::from_square_mm(7.07),
        ElectrodeRole::Working,
    )
}

// The range literals below are transcribed paper constants; the
// catalog round-trip tests execute every entry, so a malformed literal
// cannot survive CI. Panicking here beats threading a Result through
// every consumer of the static table.
#[allow(clippy::too_many_arguments, clippy::expect_used)]
fn entry(
    id: &str,
    label: &str,
    citation: Option<&str>,
    analyte: Analyte,
    sensitivity: f64,
    range_milli_molar: (f64, f64),
    lod_micro_molar: Option<f64>,
    electrode: Electrode,
    modification: SurfaceModification,
    chemistry: ChemistryKind,
    technique: Technique,
    sweep_top_milli_molar: f64,
) -> CatalogEntry {
    CatalogEntry {
        id: id.to_owned(),
        label: label.to_owned(),
        citation: citation.map(str::to_owned),
        analyte,
        paper: PaperFigures {
            sensitivity: Sensitivity::new(sensitivity),
            linear_range: ConcentrationRange::from_milli_molar(
                range_milli_molar.0,
                range_milli_molar.1,
            )
            // bios-audit: allow(P-expect) — static paper constant, exercised by every catalog test
            .expect("paper range is well-formed"),
            detection_limit: lod_micro_molar.map(Molar::from_micro_molar),
        },
        electrode,
        modification,
        chemistry,
        technique,
        sweep: ConcentrationRange::from_milli_molar(0.0, sweep_top_milli_molar)
            // bios-audit: allow(P-expect) — static paper constant, exercised by every catalog test
            .expect("sweep is well-formed"),
        sweep_points: 25,
        film_activity: 1.0,
        is_ours: citation.is_none(),
    }
}

/// The paper's glucose sensor: MWCNT/Nafion on the microfabricated Au
/// chip, 55.5 µA·mM⁻¹·cm⁻², 0–1 mM, LOD 2 µM.
#[must_use]
pub fn our_glucose_sensor() -> CatalogEntry {
    entry(
        "glucose/ours",
        "MWCNT/Nafion + GOD",
        None,
        Analyte::Glucose,
        55.5,
        (0.0, 1.0),
        Some(2.0),
        ElectrodeStock::EpflMicroChip.working_electrode(),
        SurfaceModification::mwcnt_nafion(),
        ChemistryKind::Oxidase(OxidaseKind::GlucoseOxidase),
        Technique::paper_chronoamperometry(),
        1.6,
    )
}

/// The GLUCOSE block of Table 2, in row order (ours last).
#[must_use]
pub fn glucose_sensors() -> Vec<CatalogEntry> {
    vec![
        entry(
            "glucose/ryu2010",
            "CNT mat + GOD",
            Some("[42]"),
            Analyte::Glucose,
            4.05,
            (0.2, 2.18),
            None,
            glassy_carbon(),
            SurfaceModification::cnt_mat(),
            ChemistryKind::Oxidase(OxidaseKind::GlucoseOxidase),
            Technique::paper_chronoamperometry(),
            3.3,
        ),
        entry(
            "glucose/tsai2005",
            "MWCNT/Nafion co-cast + GOD",
            Some("[49]"),
            Analyte::Glucose,
            4.7,
            (0.025, 2.0),
            Some(4.0),
            glassy_carbon(),
            SurfaceModification::mwcnt_nafion_codeposit(),
            ChemistryKind::Oxidase(OxidaseKind::GlucoseOxidase),
            Technique::paper_chronoamperometry(),
            3.0,
        ),
        entry(
            "glucose/wang2003",
            "MWCNT + GOD",
            Some("[55]"),
            Analyte::Glucose,
            14.2,
            (0.05, 13.0),
            Some(10.0),
            glassy_carbon(),
            SurfaceModification::mwcnt_au_film(),
            ChemistryKind::Oxidase(OxidaseKind::GlucoseOxidase),
            Technique::paper_chronoamperometry(),
            19.0,
        ),
        entry(
            "glucose/hua2012",
            "MWCNT-BA + GOD",
            Some("[18]"),
            Analyte::Glucose,
            23.5,
            (0.01, 2.5),
            Some(10.0),
            glassy_carbon(),
            SurfaceModification::mwcnt_butyric_acid(),
            ChemistryKind::Oxidase(OxidaseKind::GlucoseOxidase),
            Technique::paper_chronoamperometry(),
            3.8,
        ),
        our_glucose_sensor(),
    ]
}

/// The paper's lactate sensor: 25.0 µA·mM⁻¹·cm⁻², 0–1 mM, LOD 11 µM.
#[must_use]
pub fn our_lactate_sensor() -> CatalogEntry {
    entry(
        "lactate/ours",
        "MWCNT/Nafion + LOD",
        None,
        Analyte::Lactate,
        25.0,
        (0.0, 1.0),
        Some(11.0),
        ElectrodeStock::EpflMicroChip.working_electrode(),
        SurfaceModification::mwcnt_nafion(),
        ChemistryKind::Oxidase(OxidaseKind::LactateOxidase),
        Technique::paper_chronoamperometry(),
        1.6,
    )
}

/// The LACTATE block of Table 2, in row order (ours last).
#[must_use]
pub fn lactate_sensors() -> Vec<CatalogEntry> {
    vec![
        entry(
            "lactate/rubianes2005",
            "MWCNT/mineral oil + LOD",
            Some("[41]"),
            Analyte::Lactate,
            0.204,
            (0.0, 7.0),
            Some(300.0),
            carbon_paste_disc(),
            SurfaceModification::cnt_paste(),
            ChemistryKind::Oxidase(OxidaseKind::LactateOxidase),
            Technique::paper_chronoamperometry(),
            10.5,
        ),
        entry(
            "lactate/yang2008",
            "Titanate NT + LOD",
            Some("[57]"),
            Analyte::Lactate,
            0.24,
            (0.5, 14.0),
            Some(200.0),
            glassy_carbon(),
            SurfaceModification::titanate_nanotube(),
            ChemistryKind::Oxidase(OxidaseKind::LactateOxidase),
            Technique::paper_chronoamperometry(),
            20.0,
        ),
        entry(
            "lactate/huang2007",
            "MWCNT + sol-gel/LOD",
            Some("[19]"),
            Analyte::Lactate,
            2.1,
            (0.3, 1.5),
            Some(0.3),
            glassy_carbon(),
            SurfaceModification::mwcnt_sol_gel(),
            ChemistryKind::Oxidase(OxidaseKind::LactateOxidase),
            Technique::paper_chronoamperometry(),
            2.3,
        ),
        entry(
            "lactate/goran2011",
            "N-doped CNT/Nafion + LOD",
            Some("[16]"),
            Analyte::Lactate,
            40.0,
            (0.014, 0.325),
            Some(4.0),
            glassy_carbon(),
            SurfaceModification::n_doped_cnt_nafion(),
            ChemistryKind::Oxidase(OxidaseKind::LactateOxidase),
            Technique::paper_chronoamperometry(),
            0.5,
        ),
        our_lactate_sensor(),
    ]
}

/// The paper's glutamate sensor: 0.9 µA·mM⁻¹·cm⁻², 0–2 mM, LOD 78 µM.
#[must_use]
pub fn our_glutamate_sensor() -> CatalogEntry {
    entry(
        "glutamate/ours",
        "MWCNT/Nafion + GlOD",
        None,
        Analyte::Glutamate,
        0.9,
        (0.0, 2.0),
        Some(78.0),
        ElectrodeStock::EpflMicroChip.working_electrode(),
        SurfaceModification::mwcnt_nafion(),
        ChemistryKind::Oxidase(OxidaseKind::GlutamateOxidase),
        Technique::paper_chronoamperometry(),
        3.2,
    )
}

/// The GLUTAMATE block of Table 2, in row order (ours last).
#[must_use]
pub fn glutamate_sensors() -> Vec<CatalogEntry> {
    vec![
        entry(
            "glutamate/pan1996",
            "Nafion + GlOD",
            Some("[33]"),
            Analyte::Glutamate,
            16.1,
            (0.001, 0.013),
            Some(0.3),
            ElectrodeStock::PlatinumDisc.working_electrode(),
            SurfaceModification::nafion_film(),
            ChemistryKind::Oxidase(OxidaseKind::GlutamateOxidase),
            Technique::paper_chronoamperometry(),
            0.02,
        ),
        entry(
            "glutamate/zhang2006",
            "Chit + GlOD",
            Some("[59]"),
            Analyte::Glutamate,
            85.0,
            (0.0, 0.2),
            Some(0.1),
            glassy_carbon(),
            SurfaceModification::chitosan_film(),
            ChemistryKind::Oxidase(OxidaseKind::GlutamateOxidase),
            Technique::paper_chronoamperometry(),
            0.32,
        ),
        entry(
            "glutamate/ammam2010",
            "PU/MWCNT + GlOD/PP",
            Some("[1]"),
            Analyte::Glutamate,
            384.0,
            (0.0, 0.14),
            Some(0.3),
            ElectrodeStock::PlatinumDisc.working_electrode(),
            SurfaceModification::pu_mwcnt_polypyrrole(),
            ChemistryKind::Oxidase(OxidaseKind::GlutamateOxidase),
            Technique::paper_chronoamperometry(),
            0.22,
        ),
        our_glutamate_sensor(),
    ]
}

/// The CYP450 block of Table 2 (all four are the paper's own devices):
/// arachidonic acid, cyclophosphamide, ifosfamide, Ftorafur®.
#[must_use]
pub fn cyp_sensors() -> Vec<CatalogEntry> {
    let spe = ElectrodeStock::DropSensSpe.working_electrode();
    vec![
        entry(
            "cyp/arachidonic-acid",
            "MWCNT + custom-CYP",
            None,
            Analyte::ArachidonicAcid,
            1140.0,
            (0.0, 0.04),
            Some(0.4),
            spe,
            SurfaceModification::mwcnt_chloroform(),
            ChemistryKind::Cyp(CypIsoform::Custom102A1),
            Technique::paper_cyclic_voltammetry(),
            0.048,
        ),
        entry(
            "cyp/cyclophosphamide",
            "MWCNT + CYP2B6",
            None,
            Analyte::Cyclophosphamide,
            102.0,
            (0.0, 0.07),
            Some(2.0),
            spe,
            SurfaceModification::mwcnt_chloroform(),
            ChemistryKind::Cyp(CypIsoform::Cyp2B6),
            Technique::paper_cyclic_voltammetry(),
            0.084,
        ),
        entry(
            "cyp/ifosfamide",
            "MWCNT + CYP3A4",
            None,
            Analyte::Ifosfamide,
            160.0,
            (0.0, 0.14),
            Some(2.0),
            spe,
            SurfaceModification::mwcnt_chloroform(),
            ChemistryKind::Cyp(CypIsoform::Cyp3A4),
            Technique::paper_cyclic_voltammetry(),
            0.168,
        ),
        entry(
            "cyp/ftorafur",
            "MWCNT + CYP1A2",
            None,
            Analyte::Ftorafur,
            883.0,
            (0.0, 0.008),
            Some(0.7),
            spe,
            SurfaceModification::mwcnt_chloroform(),
            ChemistryKind::Cyp(CypIsoform::Cyp1A2),
            Technique::paper_cyclic_voltammetry(),
            0.0096,
        ),
    ]
}

/// The extended multi-panel drug set of the authors' earlier work \[9\]:
/// benzphetamine, cyclophosphamide, dextromethorphan, naproxen, and
/// flurbiprofen in human serum, one P450 isoform per channel. These are
/// *extension* entries (not Table 2 rows); their figures are set to the
/// serum-panel operating points of \[9\]-era devices.
#[must_use]
pub fn multi_panel_sensors() -> Vec<CatalogEntry> {
    let spe = ElectrodeStock::DropSensSpe.working_electrode();
    let make = |id: &str,
                label: &str,
                analyte: Analyte,
                isoform: CypIsoform,
                sensitivity: f64,
                top_milli: f64,
                lod_micro: f64| {
        entry(
            id,
            label,
            Some("[9]"),
            analyte,
            sensitivity,
            (0.0, top_milli),
            Some(lod_micro),
            spe,
            SurfaceModification::mwcnt_chloroform(),
            ChemistryKind::Cyp(isoform),
            Technique::paper_cyclic_voltammetry(),
            top_milli * 1.2,
        )
    };
    vec![
        make(
            "panel/benzphetamine",
            "MWCNT + CYP2B6 (BP)",
            Analyte::Benzphetamine,
            CypIsoform::Cyp2B6,
            65.0,
            0.05,
            3.0,
        ),
        make(
            "panel/cyclophosphamide",
            "MWCNT + CYP2B6 (CP)",
            Analyte::Cyclophosphamide,
            CypIsoform::Cyp2B6,
            102.0,
            0.07,
            2.0,
        ),
        make(
            "panel/dextromethorphan",
            "MWCNT + CYP2D6 (DEX)",
            Analyte::Dextromethorphan,
            CypIsoform::Cyp2D6,
            420.0,
            0.012,
            0.8,
        ),
        make(
            "panel/naproxen",
            "MWCNT + CYP2C9 (NAP)",
            Analyte::Naproxen,
            CypIsoform::Cyp2C9,
            48.0,
            0.3,
            6.0,
        ),
        make(
            "panel/flurbiprofen",
            "MWCNT + CYP2C9 (FLB)",
            Analyte::Flurbiprofen,
            CypIsoform::Cyp2C9,
            90.0,
            0.09,
            2.5,
        ),
    ]
}

/// Every Table 2 row, block by block (glucose, lactate, glutamate, CYP).
#[must_use]
pub fn all_table2() -> Vec<CatalogEntry> {
    let mut v = glucose_sensors();
    v.extend(lactate_sensors());
    v.extend(glutamate_sensors());
    v.extend(cyp_sensors());
    v
}

/// Table 1: the paper's own seven biosensors (target, probe, technique).
#[must_use]
pub fn table1() -> Vec<CatalogEntry> {
    let mut v = vec![
        our_glucose_sensor(),
        our_lactate_sensor(),
        our_glutamate_sensor(),
    ];
    v.extend(cyp_sensors());
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_18_rows() {
        assert_eq!(all_table2().len(), 18);
        assert_eq!(glucose_sensors().len(), 5);
        assert_eq!(lactate_sensors().len(), 5);
        assert_eq!(glutamate_sensors().len(), 4);
        assert_eq!(cyp_sensors().len(), 4);
    }

    #[test]
    fn table1_has_7_sensors_all_ours() {
        let t1 = table1();
        assert_eq!(t1.len(), 7);
        assert!(t1.iter().all(CatalogEntry::is_ours));
    }

    #[test]
    fn ids_are_unique() {
        let all = all_table2();
        for (i, a) in all.iter().enumerate() {
            for b in all.iter().skip(i + 1) {
                assert_ne!(a.id(), b.id());
            }
        }
    }

    #[test]
    fn forward_model_reproduces_paper_sensitivity_exactly() {
        for e in all_table2() {
            let s = e.build_sensor().model_sensitivity();
            let rel = s.relative_error(e.paper().sensitivity);
            assert!(rel < 1e-9, "{}: relative error {rel}", e.id());
        }
    }

    #[test]
    fn model_linear_limit_matches_paper_range() {
        for e in all_table2() {
            let limit = e.build_sensor().model_linear_limit();
            let target = e.paper().linear_range.high();
            let rel = (limit.as_molar() - target.as_molar()).abs() / target.as_molar();
            assert!(rel < 1e-9, "{}: relative error {rel}", e.id());
        }
    }

    #[test]
    fn sweeps_cover_reported_ranges() {
        for e in all_table2() {
            assert!(
                e.sweep().covers(&e.paper().linear_range),
                "{} sweep does not cover paper range",
                e.id()
            );
            assert!(
                e.sweep().high() > e.paper().linear_range.high(),
                "{} sweep must extend beyond the linear range",
                e.id()
            );
        }
    }

    #[test]
    fn enzyme_loadings_are_physically_plausible() {
        // 3-D CNT films hold up to ~1 nmol/cm²; monolayers ~1 pmol/cm².
        for e in all_table2() {
            let sensor = e.build_sensor();
            let gamma = sensor
                .chemistry()
                .film()
                .effective_loading()
                .as_pico_mol_per_square_cm();
            assert!(
                gamma > 0.01 && gamma < 5000.0,
                "{}: loading {gamma} pmol/cm²",
                e.id()
            );
        }
    }

    #[test]
    fn readout_noise_positive_and_sub_microamp() {
        for e in all_table2() {
            let n = e.readout_noise();
            assert!(n.as_amps() > 0.0, "{}", e.id());
            assert!(n.as_micro_amps() < 1.0, "{}: {n}", e.id());
        }
    }

    #[test]
    fn our_glucose_sensor_calibrates_near_paper_values() {
        let e = our_glucose_sensor();
        let outcome = e.run_calibration(1234).unwrap();
        let s = outcome.summary;
        assert!(
            s.sensitivity.relative_error(e.paper().sensitivity) < 0.15,
            "sensitivity {} vs paper {}",
            s.sensitivity,
            e.paper().sensitivity
        );
        let lod_rel = (s.detection_limit.as_micro_molar() - 2.0).abs() / 2.0;
        assert!(
            lod_rel < 1.0,
            "LOD {} µM",
            s.detection_limit.as_micro_molar()
        );
        assert!(s.r_squared > 0.99);
    }

    #[test]
    fn aged_entry_calibrates_with_proportionally_lower_sensitivity() {
        let fresh = our_glucose_sensor();
        let aged = fresh.clone().with_film_activity(0.6);
        assert!((aged.film_activity() - 0.6).abs() < 1e-12);
        assert_ne!(
            fresh.protocol_fingerprint(),
            aged.protocol_fingerprint(),
            "aged and fresh entries must not alias in the memo cache"
        );
        let s_fresh = fresh.run_calibration(77).unwrap().summary.sensitivity;
        let s_aged = aged.run_calibration(77).unwrap().summary.sensitivity;
        let ratio = s_aged.as_micro_amps_per_milli_molar_square_cm()
            / s_fresh.as_micro_amps_per_milli_molar_square_cm();
        assert!(
            (0.45..0.75).contains(&ratio),
            "60% film should measure ≈60% sensitivity, got {ratio}"
        );
    }

    #[test]
    fn film_activity_clamps_and_compounds_with_injected_denaturation() {
        let e = our_glucose_sensor().with_film_activity(-3.0);
        assert!((e.film_activity() - 0.05).abs() < 1e-12, "clamps to floor");
        let e = our_glucose_sensor().with_film_activity(7.0);
        assert!((e.film_activity() - 1.0).abs() < 1e-12, "clamps to fresh");
        // The same denaturation plan degrades an aged entry further
        // than a fresh one.
        let plan = bios_faults::FaultPlan::builder("age", 3)
            .spec(bios_faults::FaultKind::FilmDenaturation, 1.0, 0.5)
            .build();
        let fresh = our_glucose_sensor()
            .run_calibration_with(5, Some(&plan))
            .unwrap();
        let aged = our_glucose_sensor()
            .with_film_activity(0.5)
            .run_calibration_with(5, Some(&plan))
            .unwrap();
        assert!(
            aged.summary
                .sensitivity
                .as_micro_amps_per_milli_molar_square_cm()
                < fresh
                    .summary
                    .sensitivity
                    .as_micro_amps_per_milli_molar_square_cm()
        );
    }

    #[test]
    fn multi_panel_covers_five_distinct_drugs() {
        let panel = multi_panel_sensors();
        assert_eq!(panel.len(), 5);
        let mut analytes: Vec<Analyte> = panel.iter().map(CatalogEntry::analyte).collect();
        analytes.dedup();
        assert_eq!(analytes.len(), 5);
        assert!(panel.iter().all(|e| e.analyte().is_drug()));
        assert!(panel.iter().all(|e| e.citation() == Some("[9]")));
    }

    #[test]
    fn multi_panel_sensors_calibrate() {
        for e in multi_panel_sensors() {
            let outcome = e.run_calibration(17).unwrap();
            assert!(
                outcome
                    .summary
                    .sensitivity
                    .relative_error(e.paper().sensitivity)
                    < 0.15,
                "{}",
                e.id()
            );
        }
    }

    #[test]
    fn calibration_is_deterministic_under_seed() {
        let e = our_lactate_sensor();
        let a = e.run_calibration(77).unwrap();
        let b = e.run_calibration(77).unwrap();
        assert_eq!(a.summary.sensitivity, b.summary.sensitivity);
        assert_eq!(a.summary.detection_limit, b.summary.detection_limit);
    }

    #[test]
    fn harmless_plan_matches_healthy_run_exactly() {
        let e = our_glucose_sensor();
        let calm = bios_faults::FaultPlan::chaos(3, 0.0);
        let healthy = e.run_calibration(5).unwrap();
        let armed = e.run_calibration_with(5, Some(&calm)).unwrap();
        assert_eq!(healthy, armed, "zero-intensity plan perturbed the run");
    }

    #[test]
    fn faulted_calibration_is_deterministic() {
        let e = our_glucose_sensor();
        let plan = bios_faults::FaultPlan::builder("deterministic", 11)
            .spec(bios_faults::FaultKind::FilmDenaturation, 1.0, 0.7)
            .spec(bios_faults::FaultKind::ReadoutSpike, 1.0, 0.5)
            .build();
        let a = e.run_calibration_with(9, Some(&plan)).unwrap();
        let b = e.run_calibration_with(9, Some(&plan)).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn denaturation_suppresses_sensitivity() {
        let e = our_glucose_sensor();
        let plan = bios_faults::FaultPlan::builder("denature", 21)
            .spec(bios_faults::FaultKind::FilmDenaturation, 1.0, 1.0)
            .build();
        let healthy = e.run_calibration(2).unwrap().summary.sensitivity;
        let faulted = e
            .run_calibration_with(2, Some(&plan))
            .unwrap()
            .summary
            .sensitivity;
        assert!(
            faulted.as_micro_amps_per_milli_molar_square_cm()
                < 0.7 * healthy.as_micro_amps_per_milli_molar_square_cm(),
            "faulted {faulted:?} vs healthy {healthy:?}"
        );
    }

    #[test]
    fn fouling_and_drift_suppress_sensitivity() {
        let e = our_lactate_sensor();
        let plan = bios_faults::FaultPlan::builder("electrode", 31)
            .spec(bios_faults::FaultKind::ElectrodeFouling, 1.0, 1.0)
            .spec(bios_faults::FaultKind::ReferenceDrift, 1.0, 1.0)
            .build();
        let healthy = e.run_calibration(4).unwrap().summary.sensitivity;
        let faulted = e
            .run_calibration_with(4, Some(&plan))
            .unwrap()
            .summary
            .sensitivity;
        assert!(
            faulted.as_micro_amps_per_milli_molar_square_cm()
                < healthy.as_micro_amps_per_milli_molar_square_cm()
        );
    }

    #[test]
    fn workload_scales_with_sweep_points() {
        let e = our_glucose_sensor();
        let base = e.calibration_workload();
        // Chrono default: (30 blanks + 25 pts × 3 reps) × 8 samples.
        assert_eq!(base, (30 + 25 * 3) * 8);
        let wide = e.with_sweep_points(1000);
        assert!(wide.calibration_workload() > base);
        // Saturates instead of overflowing.
        let absurd = our_glucose_sensor().with_sweep_points(usize::MAX);
        assert_eq!(absurd.calibration_workload(), u64::MAX);
    }

    #[test]
    fn different_seeds_vary_but_stay_in_band() {
        let e = our_glucose_sensor();
        for seed in [1, 2, 3] {
            let s = e.run_calibration(seed).unwrap().summary.sensitivity;
            assert!(s.relative_error(e.paper().sensitivity) < 0.2, "seed {seed}");
        }
    }
}

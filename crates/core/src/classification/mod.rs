//! The paper's §2 classification as a typed ontology.
//!
//! Section 2 of the paper proposes "an essential classification of
//! biosensors" along five axes: target, sensing element, transduction
//! mechanism, nanotechnology, and electrode technology. This module
//! encodes that taxonomy as enums ([`taxonomy`]) and populates a
//! queryable [`registry::SensorRegistry`] with the literature devices the
//! survey cites — so the survey itself becomes an executable artifact.

pub mod registry;
pub mod taxonomy;

pub use registry::{SensorClassEntry, SensorRegistry};
pub use taxonomy::{ElectrodeTechnology, NanoMaterialClass, SensingElement, Target, Transduction};

//! The literature survey of §2 as a queryable registry.

use super::taxonomy::{
    ElectrodeTechnology, NanoMaterialClass, SensingElement, Target, Transduction,
};

/// One surveyed device: a point in the five-axis classification space.
#[derive(Debug, Clone, PartialEq)]
pub struct SensorClassEntry {
    /// Short description ("glucose SPE strip", "CNT-FET PSA sensor", …).
    pub name: String,
    /// Reference key in the paper's bibliography ("\[30\]", "\[22\]", …).
    pub citation: String,
    /// What it detects.
    pub target: Target,
    /// Recognition element.
    pub element: SensingElement,
    /// Transduction mechanism.
    pub transduction: Transduction,
    /// Nanomaterial, if any.
    pub nanomaterial: Option<NanoMaterialClass>,
    /// Electrode / integration technology.
    pub technology: ElectrodeTechnology,
}

impl SensorClassEntry {
    fn new(
        name: &str,
        citation: &str,
        target: Target,
        element: SensingElement,
        transduction: Transduction,
        nanomaterial: Option<NanoMaterialClass>,
        technology: ElectrodeTechnology,
    ) -> SensorClassEntry {
        SensorClassEntry {
            name: name.to_owned(),
            citation: citation.to_owned(),
            target,
            element,
            transduction,
            nanomaterial,
            technology,
        }
    }
}

/// The queryable registry of surveyed sensors.
///
/// # Examples
///
/// ```
/// use bios_core::classification::{SensorRegistry, Transduction};
///
/// let reg = SensorRegistry::literature();
/// // Amperometric devices dominate the literature, as §2.3 asserts.
/// let amp = reg.by_transduction(Transduction::Amperometric).len();
/// for t in [Transduction::Optical, Transduction::Piezoelectric] {
///     assert!(amp > reg.by_transduction(t).len());
/// }
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SensorRegistry {
    entries: Vec<SensorClassEntry>,
}

impl SensorRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> SensorRegistry {
        SensorRegistry::default()
    }

    /// The §2 survey: every device family the paper cites, classified
    /// along its five axes.
    #[must_use]
    pub fn literature() -> SensorRegistry {
        use ElectrodeTechnology as Tech;
        use NanoMaterialClass as Nano;
        use SensingElement as El;
        use Target as T;
        use Transduction as Tx;

        let e = SensorClassEntry::new;
        let entries = vec![
            // §2.1 targets / §2.3 transduction survey.
            e(
                "DNA microarray (light-generated oligo arrays)",
                "[35]",
                T::Dna,
                El::NucleicAcid,
                Tx::Optical,
                None,
                Tech::Conventional,
            ),
            e(
                "label-free electronic DNA chip",
                "[45]",
                T::Dna,
                El::NucleicAcid,
                Tx::ImpedimetricCapacitive,
                None,
                Tech::Integrated,
            ),
            e(
                "home blood-glucose strip",
                "[30]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                None,
                Tech::Disposable,
            ),
            e(
                "sports-medicine lactate sensor",
                "[31]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                None,
                Tech::Disposable,
            ),
            e(
                "cobalt-oxide cholesterol sensor",
                "[43]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::Nanoparticle),
                Tech::Conventional,
            ),
            e(
                "in-vivo glutamate microsensor",
                "[38]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                None,
                Tech::Conventional,
            ),
            e(
                "creatinine biosensor",
                "[21]",
                T::Metabolite,
                El::Enzyme,
                Tx::Potentiometric,
                None,
                Tech::Conventional,
            ),
            e(
                "multiplexed PSA assay",
                "[58]",
                T::Biomarker,
                El::Antibody,
                Tx::Amperometric,
                None,
                Tech::Disposable,
            ),
            e(
                "CA-125 immunosensor (thionine/AuNP carbon paste)",
                "[47]",
                T::Biomarker,
                El::Antibody,
                Tx::Amperometric,
                Some(Nano::Nanoparticle),
                Tech::Conventional,
            ),
            e(
                "SPR autoimmune-antibody panel",
                "[11]",
                T::Biomarker,
                El::Antibody,
                Tx::SurfacePlasmonResonance,
                None,
                Tech::Conventional,
            ),
            e(
                "dengue RNA / hepatitis-B antigen screen",
                "[11]",
                T::Pathogen,
                El::NucleicAcid,
                Tx::Optical,
                None,
                Tech::Disposable,
            ),
            e(
                "cardiac-marker (AMI) protein panel",
                "[11]",
                T::Biomarker,
                El::Antibody,
                Tx::SurfacePlasmonResonance,
                None,
                Tech::Conventional,
            ),
            e(
                "paracetamol / theophylline / chlorpromazine / salicylate monitors",
                "[53]",
                T::Drug,
                El::Enzyme,
                Tx::Amperometric,
                None,
                Tech::Disposable,
            ),
            e(
                "multi-panel P450 drug detector in serum",
                "[9]",
                T::Drug,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Disposable,
            ),
            e(
                "ELISA (enzyme-linked immunosorbent assay)",
                "[25]",
                T::Biomarker,
                El::Antibody,
                Tx::Optical,
                None,
                Tech::Conventional,
            ),
            e(
                "ion-channel receptor platform",
                "[46]",
                T::Drug,
                El::Receptor,
                Tx::Potentiometric,
                None,
                Tech::Conventional,
            ),
            e(
                "QCM DNA / immunoassay microbalance",
                "[13]",
                T::Dna,
                El::NucleicAcid,
                Tx::Piezoelectric,
                None,
                Tech::Conventional,
            ),
            e(
                "capacitive microsystem for biomarkers",
                "[50]",
                T::Biomarker,
                El::Antibody,
                Tx::ImpedimetricCapacitive,
                None,
                Tech::Integrated,
            ),
            e(
                "Faradic impedimetric immunosensor",
                "[37]",
                T::Biomarker,
                El::Antibody,
                Tx::ImpedimetricFaradic,
                None,
                Tech::Conventional,
            ),
            e(
                "potentiometric urea / creatinine sensors",
                "[23]",
                T::Metabolite,
                El::Enzyme,
                Tx::Potentiometric,
                None,
                Tech::Conventional,
            ),
            e(
                "ISFET biological sensor",
                "[24]",
                T::Metabolite,
                El::Enzyme,
                Tx::FieldEffect,
                None,
                Tech::Integrated,
            ),
            e(
                "CNT-FET prostate-cancer diagnostic",
                "[22]",
                T::Biomarker,
                El::Antibody,
                Tx::FieldEffect,
                Some(Nano::CarbonNanotube),
                Tech::Integrated,
            ),
            e(
                "nanowire conductometric biosensors",
                "[39]",
                T::Biomarker,
                El::Enzyme,
                Tx::FieldEffect,
                Some(Nano::Nanowire),
                Tech::Integrated,
            ),
            e(
                "AuNP-enhanced voltammetric sensors",
                "[36]",
                T::Biomarker,
                El::Antibody,
                Tx::Amperometric,
                Some(Nano::Nanoparticle),
                Tech::Conventional,
            ),
            e(
                "quantum-dot labeled assays",
                "[27]",
                T::Biomarker,
                El::Antibody,
                Tx::Optical,
                Some(Nano::QuantumDot),
                Tech::Conventional,
            ),
            e(
                "core-shell nanoparticle chemosensors",
                "[2]",
                T::Biomarker,
                El::Antibody,
                Tx::Optical,
                Some(Nano::CoreShell),
                Tech::Conventional,
            ),
            e(
                "direct-ET glucose oxidase on CNT",
                "[7]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "DNA-modified electrodes for cyclophosphamide",
                "[32]",
                T::Drug,
                El::NucleicAcid,
                Tx::Amperometric,
                None,
                Tech::Disposable,
            ),
            e(
                "3-D stacked bio-electronic interface",
                "[17]",
                T::Dna,
                El::NucleicAcid,
                Tx::ImpedimetricCapacitive,
                None,
                Tech::ThreeDimensionalStack,
            ),
            // Table 2 literature baselines.
            e(
                "CNT-mat glucose electrode",
                "[42]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "MWCNT/Nafion cast glucose film",
                "[49]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "MWCNT + Au film glucose sensor",
                "[55]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "butyric-acid MWCNT glucose sensor",
                "[18]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "CNT-paste lactate electrode",
                "[41]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "titanate-nanotube lactate sensor",
                "[57]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::OtherNanotube),
                Tech::Conventional,
            ),
            e(
                "sol-gel MWCNT lactate film",
                "[19]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "N-doped CNT lactate electrode",
                "[16]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "Nafion/GlOD glutamate sensor",
                "[33]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                None,
                Tech::Conventional,
            ),
            e(
                "chitosan/GlOD glutamate film",
                "[59]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                None,
                Tech::Conventional,
            ),
            e(
                "PU/MWCNT polypyrrole glutamate microsensor",
                "[1]",
                T::Metabolite,
                El::Enzyme,
                Tx::Amperometric,
                Some(Nano::CarbonNanotube),
                Tech::Conventional,
            ),
            e(
                "porous-silicon P450 arachidonic-acid sensor",
                "[14]",
                T::Metabolite,
                El::Enzyme,
                Tx::Optical,
                None,
                Tech::Integrated,
            ),
        ];
        SensorRegistry { entries }
    }

    /// Adds an entry.
    pub fn add(&mut self, entry: SensorClassEntry) {
        self.entries.push(entry);
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over all entries.
    pub fn iter(&self) -> impl Iterator<Item = &SensorClassEntry> {
        self.entries.iter()
    }

    /// Entries detecting `target`.
    #[must_use]
    pub fn by_target(&self, target: Target) -> Vec<&SensorClassEntry> {
        self.entries.iter().filter(|e| e.target == target).collect()
    }

    /// Entries using `element` for recognition.
    #[must_use]
    pub fn by_element(&self, element: SensingElement) -> Vec<&SensorClassEntry> {
        self.entries
            .iter()
            .filter(|e| e.element == element)
            .collect()
    }

    /// Entries transduced by `mechanism`.
    #[must_use]
    pub fn by_transduction(&self, mechanism: Transduction) -> Vec<&SensorClassEntry> {
        self.entries
            .iter()
            .filter(|e| e.transduction == mechanism)
            .collect()
    }

    /// Entries enhanced by `nanomaterial`.
    #[must_use]
    pub fn by_nanomaterial(&self, nanomaterial: NanoMaterialClass) -> Vec<&SensorClassEntry> {
        self.entries
            .iter()
            .filter(|e| e.nanomaterial == Some(nanomaterial))
            .collect()
    }

    /// Entries built on `technology`.
    #[must_use]
    pub fn by_technology(&self, technology: ElectrodeTechnology) -> Vec<&SensorClassEntry> {
        self.entries
            .iter()
            .filter(|e| e.technology == technology)
            .collect()
    }

    /// All electrochemical entries.
    #[must_use]
    pub fn electrochemical(&self) -> Vec<&SensorClassEntry> {
        self.entries
            .iter()
            .filter(|e| e.transduction.is_electrochemical())
            .collect()
    }

    /// Fraction of entries using any nanomaterial.
    #[must_use]
    pub fn nanotech_fraction(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries
            .iter()
            .filter(|e| e.nanomaterial.is_some())
            .count() as f64
            / self.entries.len() as f64
    }

    /// Finds an entry by citation key.
    #[must_use]
    pub fn by_citation(&self, citation: &str) -> Option<&SensorClassEntry> {
        self.entries.iter().find(|e| e.citation == citation)
    }

    /// The literature survey extended with the paper's own seven Table 1
    /// devices, each classified through
    /// [`crate::sensor::Biosensor::classify`].
    #[must_use]
    pub fn with_paper_platform() -> SensorRegistry {
        let mut reg = SensorRegistry::literature();
        for entry in crate::catalog::table1() {
            reg.add(entry.build_sensor().classify());
        }
        reg
    }
}

impl IntoIterator for SensorRegistry {
    type Item = SensorClassEntry;
    type IntoIter = std::vec::IntoIter<SensorClassEntry>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl FromIterator<SensorClassEntry> for SensorRegistry {
    fn from_iter<I: IntoIterator<Item = SensorClassEntry>>(iter: I) -> SensorRegistry {
        SensorRegistry {
            entries: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survey_has_broad_coverage() {
        let reg = SensorRegistry::literature();
        assert!(reg.len() >= 35, "only {} entries", reg.len());
        // Every axis value is represented at least once.
        for t in [
            Target::Dna,
            Target::Metabolite,
            Target::Biomarker,
            Target::Pathogen,
            Target::Drug,
        ] {
            assert!(!reg.by_target(t).is_empty(), "no entries for {t}");
        }
        for el in [
            SensingElement::Enzyme,
            SensingElement::Antibody,
            SensingElement::NucleicAcid,
            SensingElement::Receptor,
        ] {
            assert!(!reg.by_element(el).is_empty(), "no entries for {el}");
        }
    }

    #[test]
    fn amperometric_dominates() {
        // §2.3: "electrochemical biosensors … are by far the most
        // reported devices in literature" and amperometric sensors "have
        // had great success in the market".
        let reg = SensorRegistry::literature();
        let amp = reg.by_transduction(Transduction::Amperometric).len();
        for t in [
            Transduction::Optical,
            Transduction::SurfacePlasmonResonance,
            Transduction::Piezoelectric,
            Transduction::Potentiometric,
            Transduction::FieldEffect,
        ] {
            assert!(amp > reg.by_transduction(t).len(), "amperometric ≤ {t}");
        }
        let ec = reg.electrochemical().len();
        assert!(ec * 2 > reg.len(), "electrochemical not a majority");
    }

    #[test]
    fn cnt_is_the_most_common_nanomaterial() {
        let reg = SensorRegistry::literature();
        let cnt = reg.by_nanomaterial(NanoMaterialClass::CarbonNanotube).len();
        for n in [
            NanoMaterialClass::Nanoparticle,
            NanoMaterialClass::QuantumDot,
            NanoMaterialClass::CoreShell,
            NanoMaterialClass::Nanowire,
            NanoMaterialClass::OtherNanotube,
        ] {
            assert!(cnt > reg.by_nanomaterial(n).len());
        }
    }

    #[test]
    fn citation_lookup() {
        let reg = SensorRegistry::literature();
        let guiducci = reg.by_citation("[17]").unwrap();
        assert_eq!(
            guiducci.technology,
            ElectrodeTechnology::ThreeDimensionalStack
        );
        assert!(reg.by_citation("[999]").is_none());
    }

    #[test]
    fn nanotech_fraction_is_substantial() {
        // §2.4: nanomaterials are "the new frontier" — a large minority
        // of surveyed devices already use them.
        let f = SensorRegistry::literature().nanotech_fraction();
        assert!(f > 0.3 && f < 0.8, "fraction {f}");
    }

    #[test]
    fn collect_and_iterate() {
        let reg = SensorRegistry::literature();
        let metabolite_only: SensorRegistry = reg
            .clone()
            .into_iter()
            .filter(|e| e.target == Target::Metabolite)
            .collect();
        assert_eq!(
            metabolite_only.len(),
            reg.by_target(Target::Metabolite).len()
        );
        assert!(!metabolite_only.is_empty());
    }

    #[test]
    fn paper_platform_classifies_into_the_survey() {
        let reg = SensorRegistry::with_paper_platform();
        let base = SensorRegistry::literature();
        assert_eq!(reg.len(), base.len() + 7);
        // All seven are amperometric enzyme sensors ("this work").
        let ours: Vec<_> = reg.iter().filter(|e| e.citation == "this work").collect();
        assert_eq!(ours.len(), 7);
        for e in &ours {
            assert_eq!(e.element, SensingElement::Enzyme);
            assert_eq!(e.transduction, Transduction::Amperometric);
            assert_eq!(e.nanomaterial, Some(NanoMaterialClass::CarbonNanotube));
        }
        // Oxidase sensors ride the integrated Au chip; CYP sensors the
        // disposable SPE — both §2.5 technologies are represented.
        assert!(ours
            .iter()
            .any(|e| e.technology == ElectrodeTechnology::Integrated));
        assert!(ours
            .iter()
            .any(|e| e.technology == ElectrodeTechnology::Disposable));
    }

    #[test]
    fn add_extends_registry() {
        let mut reg = SensorRegistry::new();
        assert!(reg.is_empty());
        reg.add(SensorClassEntry {
            name: "test".into(),
            citation: "[x]".into(),
            target: Target::Drug,
            element: SensingElement::Enzyme,
            transduction: Transduction::Amperometric,
            nanomaterial: None,
            technology: ElectrodeTechnology::Disposable,
        });
        assert_eq!(reg.len(), 1);
    }
}

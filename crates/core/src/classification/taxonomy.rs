//! The five classification axes of §2.

/// §2.1 — what the biosensor detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Target {
    /// Nucleic acids: diagnosis, sequencing, food/environment analysis.
    Dna,
    /// Small metabolites: glucose, lactate, cholesterol, glutamate,
    /// creatinine…
    Metabolite,
    /// Disease biomarkers: proteins, peptides, tumor-related metabolites
    /// (PSA, CA-125), auto-antibodies.
    Biomarker,
    /// Pathogens: viral RNA, hepatitis antigens, bacteria.
    Pathogen,
    /// Drugs: paracetamol, theophylline, anticancer agents…
    Drug,
}

/// §2.2 — the biological recognition element.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SensingElement {
    /// Catalytic proteins; need a cofactor; bind analyte at the active
    /// site.
    Enzyme,
    /// Bind antigens specifically; no catalysis (ELISA-style assays).
    Antibody,
    /// Base-pairing strands, often labeled.
    NucleicAcid,
    /// Cell-membrane receptor proteins read out through ion channels.
    Receptor,
}

/// §2.3 — how recognition becomes a measurable signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transduction {
    /// Spectroscopic/colorimetric readout, fluorescent labels.
    Optical,
    /// Surface plasmon resonance (a prominent optical sub-family).
    SurfacePlasmonResonance,
    /// Quartz crystal microbalance / microcantilever mass detection.
    Piezoelectric,
    /// Capacitance-change detection.
    ImpedimetricCapacitive,
    /// Charge-transfer-resistance detection with a redox probe.
    ImpedimetricFaradic,
    /// Zero-current potential measurement (ion-selective electrodes).
    Potentiometric,
    /// Field-effect devices with functionalized gate or channel.
    FieldEffect,
    /// Current measurement under applied potential — the paper's choice.
    Amperometric,
}

impl Transduction {
    /// Whether the mechanism is electrochemical (the family §2.5 argues
    /// is most suitable for CMOS integration).
    #[must_use]
    pub fn is_electrochemical(&self) -> bool {
        matches!(
            self,
            Transduction::ImpedimetricCapacitive
                | Transduction::ImpedimetricFaradic
                | Transduction::Potentiometric
                | Transduction::FieldEffect
                | Transduction::Amperometric
        )
    }
}

/// §2.4 — the nanomaterial (if any) enhancing the device.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NanoMaterialClass {
    /// Metallic nanoparticles (Au, Ag, Pt).
    Nanoparticle,
    /// Semiconductor quantum dots (≤ 10 nm, used as labels).
    QuantumDot,
    /// Core-shell particles (metal core, organic/inorganic shell).
    CoreShell,
    /// Metallic or semiconducting nanowires.
    Nanowire,
    /// Carbon nanotubes — ballistic conduction, protein adsorption.
    CarbonNanotube,
    /// Non-carbon nanotubes (e.g. titanate).
    OtherNanotube,
}

/// §2.5 — electrode / integration technology.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ElectrodeTechnology {
    /// Disposable screen-printed strips — the market-dominant format.
    Disposable,
    /// Microfabricated electrodes integrated with CMOS readout.
    Integrated,
    /// Vertically stacked 3-D integration with through-silicon vias
    /// (Guiducci et al. \[17\]).
    ThreeDimensionalStack,
    /// Conventional bulk electrodes (lab glassware).
    Conventional,
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Target::Dna => "DNA",
            Target::Metabolite => "metabolite",
            Target::Biomarker => "biomarker",
            Target::Pathogen => "pathogen",
            Target::Drug => "drug",
        })
    }
}

impl std::fmt::Display for SensingElement {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SensingElement::Enzyme => "enzyme",
            SensingElement::Antibody => "antibody",
            SensingElement::NucleicAcid => "nucleic acid",
            SensingElement::Receptor => "receptor",
        })
    }
}

impl std::fmt::Display for Transduction {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Transduction::Optical => "optical",
            Transduction::SurfacePlasmonResonance => "SPR",
            Transduction::Piezoelectric => "piezoelectric",
            Transduction::ImpedimetricCapacitive => "impedimetric (capacitive)",
            Transduction::ImpedimetricFaradic => "impedimetric (Faradic)",
            Transduction::Potentiometric => "potentiometric",
            Transduction::FieldEffect => "field-effect",
            Transduction::Amperometric => "amperometric",
        })
    }
}

impl std::fmt::Display for NanoMaterialClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NanoMaterialClass::Nanoparticle => "nanoparticle",
            NanoMaterialClass::QuantumDot => "quantum dot",
            NanoMaterialClass::CoreShell => "core-shell",
            NanoMaterialClass::Nanowire => "nanowire",
            NanoMaterialClass::CarbonNanotube => "carbon nanotube",
            NanoMaterialClass::OtherNanotube => "non-carbon nanotube",
        })
    }
}

impl std::fmt::Display for ElectrodeTechnology {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            ElectrodeTechnology::Disposable => "disposable",
            ElectrodeTechnology::Integrated => "integrated",
            ElectrodeTechnology::ThreeDimensionalStack => "3-D stacked",
            ElectrodeTechnology::Conventional => "conventional",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn electrochemical_family_membership() {
        assert!(Transduction::Amperometric.is_electrochemical());
        assert!(Transduction::Potentiometric.is_electrochemical());
        assert!(Transduction::FieldEffect.is_electrochemical());
        assert!(!Transduction::Optical.is_electrochemical());
        assert!(!Transduction::Piezoelectric.is_electrochemical());
        assert!(!Transduction::SurfacePlasmonResonance.is_electrochemical());
    }

    #[test]
    fn displays_cover_all_variants() {
        assert_eq!(Target::Dna.to_string(), "DNA");
        assert_eq!(SensingElement::NucleicAcid.to_string(), "nucleic acid");
        assert_eq!(Transduction::SurfacePlasmonResonance.to_string(), "SPR");
        assert_eq!(
            NanoMaterialClass::CarbonNanotube.to_string(),
            "carbon nanotube"
        );
        assert_eq!(
            ElectrodeTechnology::ThreeDimensionalStack.to_string(),
            "3-D stacked"
        );
    }
}

//! Error type for platform operations.

use std::error::Error;
use std::fmt;

use bios_analytics::AnalyticsError;
use bios_units::QuantityError;

/// Convenience alias for platform results.
pub type Result<T> = std::result::Result<T, CoreError>;

/// Errors raised while configuring or running the sensing platform.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// A calibration could not be analyzed.
    Analytics(AnalyticsError),
    /// An invalid physical quantity was supplied.
    Quantity(QuantityError),
    /// A platform channel index is out of range.
    ChannelOutOfRange {
        /// Requested channel.
        channel: usize,
        /// Channels available.
        available: usize,
    },
    /// A platform channel has no sensor mounted.
    ChannelEmpty {
        /// The empty channel.
        channel: usize,
    },
    /// A builder was finalized before a required part was supplied.
    BuilderIncomplete {
        /// The missing part, with its article (e.g. `"an electrode"`).
        missing: &'static str,
    },
    /// The sensor cannot detect the requested analyte.
    AnalyteMismatch {
        /// What the sensor detects.
        expected: &'static str,
        /// What was requested.
        requested: &'static str,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Analytics(e) => write!(f, "calibration analysis failed: {e}"),
            CoreError::Quantity(e) => write!(f, "invalid quantity: {e}"),
            CoreError::ChannelOutOfRange { channel, available } => {
                write!(f, "channel {channel} out of range ({available} available)")
            }
            CoreError::ChannelEmpty { channel } => {
                write!(f, "channel {channel} has no sensor mounted")
            }
            CoreError::BuilderIncomplete { missing } => {
                write!(f, "biosensor builder needs {missing}")
            }
            CoreError::AnalyteMismatch {
                expected,
                requested,
            } => write!(f, "sensor detects {expected} but {requested} was requested"),
        }
    }
}

impl Error for CoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CoreError::Analytics(e) => Some(e),
            CoreError::Quantity(e) => Some(e),
            _ => None,
        }
    }
}

impl From<AnalyticsError> for CoreError {
    fn from(e: AnalyticsError) -> CoreError {
        CoreError::Analytics(e)
    }
}

impl From<QuantityError> for CoreError {
    fn from(e: QuantityError) -> CoreError {
        CoreError::Quantity(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CoreError::ChannelOutOfRange {
            channel: 7,
            available: 5,
        };
        assert_eq!(e.to_string(), "channel 7 out of range (5 available)");
        let e = CoreError::ChannelEmpty { channel: 2 };
        assert!(e.to_string().contains("no sensor"));
    }

    #[test]
    fn sources_are_chained() {
        let inner = AnalyticsError::NonPositiveSlope;
        let e = CoreError::from(inner);
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CoreError>();
    }
}

//! # bios-core
//!
//! The paper's primary contribution, virtualized: a **modular platform
//! for multi-target electrochemical biosensing**, with a clean separation
//! between the chemical component (electrode + nanomaterial + enzyme,
//! from [`bios_nanomaterial`] and [`bios_enzyme`]) and the electrical
//! component (the readout chain from [`bios_instrument`]).
//!
//! Module map:
//!
//! * [`classification`] — the §2 survey as a typed ontology plus a
//!   queryable registry of literature sensors.
//! * [`analyte`] — the analytes of Table 1 (metabolites + drugs) and the
//!   common interferents.
//! * [`sample`] — synthetic physiological samples (the simulate-the-
//!   missing-wet-lab substitution).
//! * [`sensor`] — [`sensor::Biosensor`]: a composed sensing channel with
//!   a physics-based forward model from concentration to current.
//! * [`protocol`] — chronoamperometric and voltammetric calibration
//!   protocols producing [`bios_analytics::CalibrationCurve`]s.
//! * [`platform`] — the multi-working-electrode chip
//!   ([`platform::SensingPlatform`]) and the 3-D integration cost model.
//! * [`catalog`] — every sensor of the paper's Tables 1 and 2 (the
//!   authors' devices *and* the literature baselines) as ready-to-run
//!   configurations with their paper-reported figures of merit.
//!
//! # Examples
//!
//! ```
//! use bios_core::catalog;
//! use bios_core::protocol::CalibrationProtocol;
//!
//! // Reproduce the paper's glucose sensor row end to end.
//! let entry = catalog::our_glucose_sensor();
//! let outcome = entry.run_calibration(42)?;
//! let s = outcome.summary.sensitivity;
//! // Table 2 reports 55.5 µA·mM⁻¹·cm⁻²; the simulation should land close.
//! assert!(s.relative_error(entry.paper().sensitivity) < 0.25);
//! # Ok::<(), bios_core::CoreError>(())
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod analyte;
pub mod baseline;
pub mod catalog;
pub mod classification;
pub mod error;
pub mod platform;
pub mod protocol;
pub mod quantify;
pub mod sample;
pub mod sensor;

pub use analyte::Analyte;
pub use error::{CoreError, Result};
pub use sample::Sample;
pub use sensor::Biosensor;

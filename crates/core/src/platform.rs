//! The multi-target sensing platform.
//!
//! The paper's §3 platform pairs the 5-working-electrode microfabricated
//! chip with per-channel readout, keeping the chemical component
//! (electrode functionalization) separate from the electrical component
//! (readout chain) — "easing design and manufacturing". The
//! [`SensingPlatform`] models exactly that composition; [`stack`] models
//! the 3-D integration option of Guiducci et al. \[17\] discussed in §2.5.

use bios_instrument::ReadoutChain;
use bios_units::Amperes;

use crate::analyte::Analyte;
use crate::error::{CoreError, Result};
use crate::sample::Sample;
use crate::sensor::Biosensor;

/// A multiplexed measurement from one channel.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelReading {
    /// Which channel produced the reading.
    pub channel: usize,
    /// The analyte that channel detects.
    pub analyte: Analyte,
    /// The digitized current.
    pub current: Amperes,
}

/// A multi-channel biosensing platform: N independently functionalized
/// working electrodes, each with its own readout chain.
///
/// # Examples
///
/// ```
/// use bios_core::platform::SensingPlatform;
/// use bios_core::{catalog, Analyte, Sample};
///
/// let mut platform = SensingPlatform::epfl_chip(42);
/// platform.mount(0, catalog::our_glucose_sensor().build_sensor())?;
/// platform.mount(1, catalog::our_lactate_sensor().build_sensor())?;
///
/// let readings = platform.measure_all(&Sample::cell_culture_medium());
/// assert_eq!(readings.len(), 2);
/// assert_eq!(readings[0].analyte, Analyte::Glucose);
/// # Ok::<(), bios_core::CoreError>(())
/// ```
#[derive(Debug)]
pub struct SensingPlatform {
    channels: Vec<Option<Biosensor>>,
    chains: Vec<ReadoutChain>,
    /// Fraction of every other channel's current coupled into each
    /// reading through the shared counter/reference pair (0 on an ideal
    /// chip).
    crosstalk: f64,
}

impl SensingPlatform {
    /// Creates a platform with `channels` empty channels, each given an
    /// integrated-CMOS readout chain seeded deterministically from
    /// `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `channels` is zero.
    #[must_use]
    pub fn new(channels: usize, seed: u64) -> SensingPlatform {
        assert!(channels > 0, "platform needs at least one channel");
        SensingPlatform {
            channels: (0..channels).map(|_| None).collect(),
            chains: (0..channels)
                .map(|i| ReadoutChain::integrated_cmos(seed.wrapping_add(i as u64)))
                .collect(),
            crosstalk: 0.0,
        }
    }

    /// Sets the inter-channel crosstalk fraction: sharing one counter
    /// and one reference electrode among five working electrodes (as the
    /// microfabricated chip does) couples a small fraction of each
    /// channel's current into the others.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` lies in `[0, 0.5)`.
    #[must_use]
    pub fn with_crosstalk(mut self, fraction: f64) -> SensingPlatform {
        assert!(
            (0.0..0.5).contains(&fraction),
            "crosstalk fraction must lie in [0, 0.5)"
        );
        self.crosstalk = fraction;
        self
    }

    /// The configured crosstalk fraction.
    #[must_use]
    pub fn crosstalk(&self) -> f64 {
        self.crosstalk
    }

    /// The paper's 5-channel microfabricated chip.
    #[must_use]
    pub fn epfl_chip(seed: u64) -> SensingPlatform {
        SensingPlatform::new(5, seed)
    }

    /// Number of channels.
    #[must_use]
    pub fn channel_count(&self) -> usize {
        self.channels.len()
    }

    /// Mounts a sensor on `channel` (replacing any previous sensor).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ChannelOutOfRange`] for a bad index.
    pub fn mount(&mut self, channel: usize, sensor: Biosensor) -> Result<()> {
        let n = self.channels.len();
        let slot = self
            .channels
            .get_mut(channel)
            .ok_or(CoreError::ChannelOutOfRange {
                channel,
                available: n,
            })?;
        *slot = Some(sensor);
        Ok(())
    }

    /// Dismounts the sensor on `channel`, returning it.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ChannelOutOfRange`] for a bad index.
    pub fn dismount(&mut self, channel: usize) -> Result<Option<Biosensor>> {
        let n = self.channels.len();
        let slot = self
            .channels
            .get_mut(channel)
            .ok_or(CoreError::ChannelOutOfRange {
                channel,
                available: n,
            })?;
        Ok(slot.take())
    }

    /// The sensor mounted on `channel`, if any.
    #[must_use]
    pub fn sensor_at(&self, channel: usize) -> Option<&Biosensor> {
        self.channels.get(channel).and_then(Option::as_ref)
    }

    /// Replaces a channel's readout chain (e.g. to use a custom noise
    /// model).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ChannelOutOfRange`] for a bad index.
    pub fn set_readout(&mut self, channel: usize, chain: ReadoutChain) -> Result<()> {
        let n = self.chains.len();
        let slot = self
            .chains
            .get_mut(channel)
            .ok_or(CoreError::ChannelOutOfRange {
                channel,
                available: n,
            })?;
        *slot = chain;
        Ok(())
    }

    /// Measures one channel against a sample.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ChannelOutOfRange`] or
    /// [`CoreError::ChannelEmpty`].
    pub fn measure(&mut self, channel: usize, sample: &Sample) -> Result<ChannelReading> {
        let n = self.channels.len();
        let sensor = self
            .channels
            .get(channel)
            .ok_or(CoreError::ChannelOutOfRange {
                channel,
                available: n,
            })?
            .as_ref()
            .ok_or(CoreError::ChannelEmpty { channel })?;
        let mut true_current = sensor.respond_to_sample(sample).as_amps();
        if self.crosstalk > 0.0 {
            let neighbours: f64 = self
                .channels
                .iter()
                .enumerate()
                .filter(|(i, _)| *i != channel)
                .filter_map(|(_, s)| s.as_ref())
                .map(|s| s.respond_to_sample(sample).as_amps())
                .sum();
            true_current += self.crosstalk * neighbours;
        }
        let current = self.chains[channel].digitize(Amperes::from_amps(true_current));
        Ok(ChannelReading {
            channel,
            analyte: sensor.analyte(),
            current,
        })
    }

    /// Measures every mounted channel against the same sample — the
    /// multi-target detection the platform exists for.
    pub fn measure_all(&mut self, sample: &Sample) -> Vec<ChannelReading> {
        (0..self.channels.len())
            .filter_map(|ch| self.measure(ch, sample).ok())
            .collect()
    }
}

/// The 3-D stacked integration model of Guiducci et al. \[17\]: vertically
/// stacked heterogeneous layers connected by through-silicon vias, with
/// a disposable biolayer on top and permanent readout/processing/power
/// layers below.
pub mod stack {

    /// A layer's role in the stack.
    #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
    pub enum LayerKind {
        /// The disposable biolayer in contact with the sample.
        BioInterface,
        /// Analog front end (potentiostats, amplifiers, converters).
        Readout,
        /// Digital post-processing.
        Processing,
        /// Power management / energy storage.
        Power,
        /// Wireless transmission.
        Radio,
    }

    /// One layer of the stack.
    #[derive(Debug, Clone, Copy, PartialEq)]
    pub struct Layer {
        /// The layer's role.
        pub kind: LayerKind,
        /// Whether this layer is replaced between measurements.
        pub disposable: bool,
        /// Fabrication cost in arbitrary units (for the NRE comparison).
        pub unit_cost: f64,
    }

    /// A vertically integrated sensing stack.
    ///
    /// # Examples
    ///
    /// ```
    /// use bios_core::platform::stack::IntegratedStack;
    ///
    /// let stack = IntegratedStack::guiducci();
    /// // Only the biolayer is disposable — the running cost is a small
    /// // fraction of the stack's build cost.
    /// assert!(stack.recurring_cost() < 0.2 * stack.build_cost());
    /// ```
    #[derive(Debug, Clone, PartialEq)]
    pub struct IntegratedStack {
        layers: Vec<Layer>,
    }

    impl IntegratedStack {
        /// The \[17\] reference stack: disposable biolayer + permanent
        /// readout, processing, power, and radio layers.
        #[must_use]
        pub fn guiducci() -> IntegratedStack {
            IntegratedStack {
                layers: vec![
                    Layer {
                        kind: LayerKind::BioInterface,
                        disposable: true,
                        unit_cost: 1.0,
                    },
                    Layer {
                        kind: LayerKind::Readout,
                        disposable: false,
                        unit_cost: 8.0,
                    },
                    Layer {
                        kind: LayerKind::Processing,
                        disposable: false,
                        unit_cost: 6.0,
                    },
                    Layer {
                        kind: LayerKind::Power,
                        disposable: false,
                        unit_cost: 3.0,
                    },
                    Layer {
                        kind: LayerKind::Radio,
                        disposable: false,
                        unit_cost: 4.0,
                    },
                ],
            }
        }

        /// The layers, top (sample side) first.
        #[must_use]
        pub fn layers(&self) -> &[Layer] {
            &self.layers
        }

        /// One-time cost of building the whole stack.
        #[must_use]
        pub fn build_cost(&self) -> f64 {
            self.layers.iter().map(|l| l.unit_cost).sum()
        }

        /// Per-measurement-cycle cost: only disposable layers are
        /// replaced.
        #[must_use]
        pub fn recurring_cost(&self) -> f64 {
            self.layers
                .iter()
                .filter(|l| l.disposable)
                .map(|l| l.unit_cost)
                .sum()
        }

        /// Cost of `n` measurement cycles: build once, replace the
        /// disposables each cycle.
        #[must_use]
        pub fn cost_over(&self, cycles: u64) -> f64 {
            self.build_cost() + self.recurring_cost() * cycles.saturating_sub(1) as f64
        }

        /// Cost of `n` cycles with fully disposable devices (the strip
        /// model the paper contrasts against): rebuild everything each
        /// time.
        #[must_use]
        pub fn disposable_cost_over(&self, cycles: u64) -> f64 {
            self.build_cost() * cycles as f64
        }

        /// The break-even cycle count beyond which the integrated stack
        /// is cheaper than fully disposable devices.
        #[must_use]
        pub fn break_even_cycles(&self) -> u64 {
            let build = self.build_cost();
            let rec = self.recurring_cost();
            if rec >= build {
                return u64::MAX;
            }
            // build + rec·(n−1) < build·n  →  n > (build − rec)/(build − rec) = 1;
            // first integer n where the inequality is strict:
            2
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn reference_stack_shape() {
            let s = IntegratedStack::guiducci();
            assert_eq!(s.layers().len(), 5);
            assert_eq!(
                s.layers().iter().filter(|l| l.disposable).count(),
                1,
                "only the biolayer is disposable"
            );
            assert_eq!(s.layers()[0].kind, LayerKind::BioInterface);
        }

        #[test]
        fn integration_amortizes_cost() {
            let s = IntegratedStack::guiducci();
            let cycles = 100;
            assert!(s.cost_over(cycles) < s.disposable_cost_over(cycles) / 5.0);
        }

        #[test]
        fn single_cycle_costs_build() {
            let s = IntegratedStack::guiducci();
            assert!((s.cost_over(1) - s.build_cost()).abs() < 1e-12);
        }

        #[test]
        fn break_even_is_early() {
            assert_eq!(IntegratedStack::guiducci().break_even_cycles(), 2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn loaded_platform() -> SensingPlatform {
        let mut p = SensingPlatform::epfl_chip(7);
        p.mount(0, catalog::our_glucose_sensor().build_sensor())
            .unwrap();
        p.mount(1, catalog::our_lactate_sensor().build_sensor())
            .unwrap();
        p.mount(2, catalog::our_glutamate_sensor().build_sensor())
            .unwrap();
        p
    }

    #[test]
    fn five_channel_chip() {
        assert_eq!(SensingPlatform::epfl_chip(0).channel_count(), 5);
    }

    #[test]
    fn mount_measure_dismount_cycle() {
        let mut p = loaded_platform();
        let sample = Sample::cell_culture_medium();
        let r = p.measure(0, &sample).unwrap();
        assert_eq!(r.analyte, Analyte::Glucose);
        assert!(r.current.as_amps() > 0.0);

        let removed = p.dismount(0).unwrap();
        assert!(removed.is_some());
        assert!(matches!(
            p.measure(0, &sample),
            Err(CoreError::ChannelEmpty { channel: 0 })
        ));
    }

    #[test]
    fn out_of_range_channel_errors() {
        let mut p = loaded_platform();
        assert!(matches!(
            p.measure(9, &Sample::blank()),
            Err(CoreError::ChannelOutOfRange { channel: 9, .. })
        ));
        assert!(p
            .mount(9, catalog::our_glucose_sensor().build_sensor())
            .is_err());
    }

    #[test]
    fn measure_all_skips_empty_channels() {
        let mut p = loaded_platform();
        let readings = p.measure_all(&Sample::cell_culture_medium());
        assert_eq!(readings.len(), 3);
        let analytes: Vec<Analyte> = readings.iter().map(|r| r.analyte).collect();
        assert_eq!(
            analytes,
            vec![Analyte::Glucose, Analyte::Lactate, Analyte::Glutamate]
        );
    }

    #[test]
    fn channels_respond_to_their_own_analytes() {
        let mut p = loaded_platform();
        // Glucose-only sample: glucose channel sees signal, lactate
        // channel sees only noise.
        let sample = Sample::blank()
            .with_analyte(Analyte::Glucose, bios_units::Molar::from_milli_molar(0.8));
        let glucose = p.measure(0, &sample).unwrap().current;
        let lactate = p.measure(1, &sample).unwrap().current;
        assert!(glucose.as_amps() > 10.0 * lactate.as_amps().abs());
    }

    #[test]
    fn crosstalk_leaks_neighbour_signal() {
        let build = |xtalk: f64| {
            let mut p = SensingPlatform::epfl_chip(7).with_crosstalk(xtalk);
            p.mount(0, catalog::our_glucose_sensor().build_sensor())
                .unwrap();
            p.mount(1, catalog::our_lactate_sensor().build_sensor())
                .unwrap();
            p
        };
        // Strong glucose signal, nothing for the lactate channel.
        let sample = Sample::blank()
            .with_analyte(Analyte::Glucose, bios_units::Molar::from_milli_molar(0.9));
        let mut ideal = build(0.0);
        let mut leaky = build(0.05);
        let clean = ideal.measure(1, &sample).unwrap().current;
        let dirty = leaky.measure(1, &sample).unwrap().current;
        assert!(
            dirty.as_amps() > clean.as_amps() + 1e-10,
            "{clean} vs {dirty}"
        );
        // The leak is ~5 % of the glucose channel's signal.
        let glucose = ideal.measure(0, &sample).unwrap().current;
        let leak = dirty.as_amps() - clean.as_amps();
        assert!((leak / glucose.as_amps() - 0.05).abs() < 0.02);
    }

    #[test]
    #[should_panic(expected = "crosstalk fraction")]
    fn absurd_crosstalk_rejected() {
        let _ = SensingPlatform::epfl_chip(0).with_crosstalk(0.9);
    }

    #[test]
    fn blank_sample_reads_near_zero_everywhere() {
        let mut p = loaded_platform();
        for r in p.measure_all(&Sample::blank()) {
            assert!(r.current.as_nano_amps().abs() < 1.0, "{r:?}");
        }
    }
}

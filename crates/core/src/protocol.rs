//! Calibration protocols: the virtual wet-lab procedures.
//!
//! A protocol runs a sensor through a standard-addition series exactly
//! the way the paper's experiments do — settle, sample, replicate — and
//! returns a [`CalibrationCurve`] ready for figure-of-merit extraction.

use bios_analytics::{CalibrationCurve, CalibrationPoint};
use bios_instrument::ReadoutChain;
use bios_units::{Amperes, ConcentrationRange, Molar, Seconds};

use crate::sensor::Biosensor;

/// Anything that can calibrate a sensor over a set of standards.
pub trait CalibrationProtocol {
    /// Runs the standard series and assembles the calibration curve.
    fn calibrate(
        &self,
        sensor: &Biosensor,
        chain: &mut ReadoutChain,
        standards: &[Molar],
    ) -> CalibrationCurve;

    /// Convenience: sweep `n` evenly spaced standards over `range`.
    fn calibrate_over(
        &self,
        sensor: &Biosensor,
        chain: &mut ReadoutChain,
        range: &ConcentrationRange,
        n: usize,
    ) -> CalibrationCurve {
        self.calibrate(sensor, chain, &range.linspace(n))
    }
}

/// Fixed-bias chronoamperometry: settle at the working potential, then
/// average a sampling window; repeat per replicate.
///
/// # Examples
///
/// ```
/// use bios_core::catalog;
/// use bios_core::protocol::{CalibrationProtocol, Chronoamperometry};
/// use bios_instrument::ReadoutChain;
/// use bios_units::Molar;
///
/// let entry = catalog::our_glucose_sensor();
/// let sensor = entry.build_sensor();
/// let mut chain = entry.build_readout(7);
/// let standards: Vec<Molar> =
///     (0..=10).map(|k| Molar::from_milli_molar(0.1 * k as f64)).collect();
/// let curve = Chronoamperometry::default().calibrate(&sensor, &mut chain, &standards);
/// assert_eq!(curve.points().len(), 11);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Chronoamperometry {
    /// Time allowed for the Cottrell transient to settle (bookkeeping —
    /// the model samples the settled plateau).
    pub settle_time: Seconds,
    /// Samples averaged per replicate reading.
    pub samples_per_reading: usize,
    /// Replicate readings per standard.
    pub replicates: usize,
    /// Blank readings used to estimate the noise floor.
    pub blank_readings: usize,
}

impl Default for Chronoamperometry {
    /// 30 s settling, 8-sample window, triplicate standards, 30 blanks.
    fn default() -> Chronoamperometry {
        Chronoamperometry {
            settle_time: Seconds::from_seconds(30.0),
            samples_per_reading: 8,
            replicates: 3,
            blank_readings: 30,
        }
    }
}

impl Chronoamperometry {
    /// Simulates the full current transient after the potential step:
    /// double-layer charging spike, Cottrell-like diffusive decay, and
    /// the enzyme-limited plateau the calibration samples, digitized
    /// through the chain at `sample_interval`.
    ///
    /// The plateau is the sensor's steady faradaic current; the decay
    /// approaches it with the `t^-1/2` diffusive tail riding on top,
    /// matched so the transient is continuous at the settling time.
    pub fn transient(
        &self,
        sensor: &Biosensor,
        concentration: Molar,
        chain: &mut ReadoutChain,
        sample_interval: Seconds,
    ) -> Vec<(Seconds, Amperes)> {
        let plateau = sensor.faradaic_current(concentration).as_amps();
        // Effective diffusion-layer settling: treat the settle_time as
        // the crossover where the Cottrell tail meets the plateau.
        let t_settle = self.settle_time.as_seconds().max(1e-3);
        // Double-layer charging: spike amplitude from the step through
        // the cell resistance, tau from typical SPE values.
        let r_cell = 1_000.0; // Ω
        let c_dl = 2e-6; // F — geometric-scale film capacitance
        let tau = r_cell * c_dl;
        let e_step = match sensor.technique() {
            crate::sensor::Technique::Chronoamperometry { bias } => bias.as_volts(),
            _ => 0.65,
        };
        let n = (self.settle_time.as_seconds() / sample_interval.as_seconds()).ceil() as usize;
        (1..=n)
            .map(|k| {
                let t = k as f64 * sample_interval.as_seconds();
                let charging = e_step / r_cell * (-t / tau).exp();
                let diffusive = plateau * (t_settle / t).sqrt().min(25.0);
                let true_i = Amperes::from_amps(charging + diffusive.max(plateau));
                let measured = chain.digitize(true_i);
                (Seconds::from_seconds(t), measured)
            })
            .collect()
    }

    fn read_once(&self, chain: &mut ReadoutChain, true_current: Amperes) -> Amperes {
        let sum: f64 = (0..self.samples_per_reading)
            .map(|_| chain.digitize(true_current).as_amps())
            .sum();
        Amperes::from_amps(sum / self.samples_per_reading as f64)
    }

    /// Standard deviation of blank replicate readings — the σ used for
    /// the 3σ detection limit, measured with the same averaging as the
    /// standards.
    pub fn measure_blank_sigma(&self, chain: &mut ReadoutChain) -> Amperes {
        let blanks: Vec<f64> = (0..self.blank_readings)
            .map(|_| self.read_once(chain, Amperes::ZERO).as_amps())
            .collect();
        let mean = blanks.iter().sum::<f64>() / blanks.len() as f64;
        let var =
            blanks.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (blanks.len() - 1) as f64;
        Amperes::from_amps(var.sqrt())
    }
}

impl CalibrationProtocol for Chronoamperometry {
    fn calibrate(
        &self,
        sensor: &Biosensor,
        chain: &mut ReadoutChain,
        standards: &[Molar],
    ) -> CalibrationCurve {
        let blank_sigma = self.measure_blank_sigma(chain);
        let points = standards
            .iter()
            .map(|&c| {
                let true_current = sensor.faradaic_current(c);
                let replicates = (0..self.replicates)
                    .map(|_| self.read_once(chain, true_current))
                    .collect();
                CalibrationPoint::new(c, replicates)
            })
            .collect();
        CalibrationCurve::new(points, sensor.electrode().area(), blank_sigma)
    }
}

/// Cyclic voltammetry calibration: each standard's reading is the
/// baseline-corrected catalytic peak height.
///
/// The full hysteresis simulation lives in
/// [`bios_electrochem::voltammetry`]; for calibration throughput this
/// protocol uses the sensor's catalytic peak model and the readout
/// chain's noise, which is what the paper's peak-vs-concentration plots
/// reduce to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclicVoltammetry {
    /// Number of conditioning cycles before the measured sweep.
    pub conditioning_cycles: u32,
    /// Replicate sweeps per standard.
    pub replicates: usize,
    /// Blank sweeps for the noise floor.
    pub blank_readings: usize,
}

impl Default for CyclicVoltammetry {
    /// Three conditioning cycles, triplicate sweeps, 30 blanks.
    fn default() -> CyclicVoltammetry {
        CyclicVoltammetry {
            conditioning_cycles: 3,
            replicates: 3,
            blank_readings: 30,
        }
    }
}

impl CalibrationProtocol for CyclicVoltammetry {
    fn calibrate(
        &self,
        sensor: &Biosensor,
        chain: &mut ReadoutChain,
        standards: &[Molar],
    ) -> CalibrationCurve {
        // Noise floor from blank sweeps.
        let blanks: Vec<f64> = (0..self.blank_readings)
            .map(|_| chain.digitize(Amperes::ZERO).as_amps())
            .collect();
        let mean = blanks.iter().sum::<f64>() / blanks.len() as f64;
        let var =
            blanks.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (blanks.len() - 1) as f64;
        let blank_sigma = Amperes::from_amps(var.sqrt());

        let points = standards
            .iter()
            .map(|&c| {
                let peak = sensor.faradaic_current(c);
                let replicates = (0..self.replicates).map(|_| chain.digitize(peak)).collect();
                CalibrationPoint::new(c, replicates)
            })
            .collect();
        CalibrationCurve::new(points, sensor.electrode().area(), blank_sigma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analyte::Analyte;
    use crate::sensor::Technique;
    use bios_enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
    use bios_instrument::ReadoutChain;
    use bios_nanomaterial::{ElectrodeStock, SurfaceModification};
    use bios_units::SurfaceLoading;

    fn sensor() -> Biosensor {
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(100.0))
            .retained_activity(0.6)
            .build();
        Biosensor::builder("glucose", Analyte::Glucose)
            .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
            .modification(SurfaceModification::mwcnt_nafion())
            .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
            .technique(Technique::paper_chronoamperometry())
            .build()
    }

    #[test]
    fn chronoamperometry_recovers_model_sensitivity() {
        let s = sensor();
        let mut chain = ReadoutChain::benchtop(3)
            .auto_ranged_for(s.faradaic_current(Molar::from_milli_molar(1.5)));
        let range = ConcentrationRange::from_milli_molar(0.0, 1.0).unwrap();
        let curve = Chronoamperometry::default().calibrate_over(&s, &mut chain, &range, 11);
        let measured = curve.sensitivity().unwrap();
        let model = s.model_sensitivity();
        let rel = measured.relative_error(model);
        assert!(rel < 0.10, "relative error {rel}");
    }

    #[test]
    fn replicates_and_points_shape() {
        let s = sensor();
        let mut chain = ReadoutChain::benchtop(1);
        let protocol = Chronoamperometry {
            replicates: 5,
            ..Chronoamperometry::default()
        };
        let standards: Vec<Molar> = (0..7)
            .map(|k| Molar::from_milli_molar(0.1 * k as f64))
            .collect();
        let curve = protocol.calibrate(&s, &mut chain, &standards);
        assert_eq!(curve.points().len(), 7);
        assert!(curve.points().iter().all(|p| p.replicates().len() == 5));
    }

    #[test]
    fn blank_sigma_positive_and_small() {
        let mut chain = ReadoutChain::benchtop(9);
        let sigma = Chronoamperometry::default().measure_blank_sigma(&mut chain);
        assert!(sigma.as_amps() > 0.0);
        assert!(sigma.as_nano_amps() < 1.0);
    }

    #[test]
    fn averaging_window_reduces_blank_sigma() {
        let narrow = Chronoamperometry {
            samples_per_reading: 1,
            blank_readings: 200,
            ..Chronoamperometry::default()
        };
        let wide = Chronoamperometry {
            samples_per_reading: 32,
            blank_readings: 200,
            ..Chronoamperometry::default()
        };
        let s1 = narrow.measure_blank_sigma(&mut ReadoutChain::benchtop(5));
        let s2 = wide.measure_blank_sigma(&mut ReadoutChain::benchtop(5));
        assert!(s2 < s1);
    }

    #[test]
    fn transient_decays_to_plateau() {
        let s = sensor();
        let c = Molar::from_milli_molar(0.5);
        let mut chain = ReadoutChain::benchtop(5).auto_ranged_for(Amperes::from_micro_amps(1.0));
        let protocol = Chronoamperometry::default();
        let trace = protocol.transient(&s, c, &mut chain, Seconds::from_millis(100.0));
        assert!(trace.len() > 100);
        // Early current far exceeds the final plateau…
        let early = trace[2].1.as_amps();
        let late = trace.last().unwrap().1.as_amps();
        assert!(early > 3.0 * late, "early {early}, late {late}");
        // …and the tail approaches the model's steady current.
        let plateau = s.faradaic_current(c).as_amps();
        assert!(
            (late - plateau).abs() / plateau < 0.25,
            "late {late} vs plateau {plateau}"
        );
    }

    #[test]
    fn transient_is_eventually_decreasing() {
        let s = sensor();
        let mut chain = ReadoutChain::benchtop(8).auto_ranged_for(Amperes::from_micro_amps(1.0));
        let trace = Chronoamperometry::default().transient(
            &s,
            Molar::from_milli_molar(0.5),
            &mut chain,
            Seconds::from_millis(500.0),
        );
        // Compare 1 s vs 25 s vs plateau ordering (noise-robust points).
        let at = |sec: f64| {
            trace
                .iter()
                .min_by(|a, b| {
                    (a.0.as_seconds() - sec)
                        .abs()
                        .total_cmp(&(b.0.as_seconds() - sec).abs())
                })
                .unwrap()
                .1
                .as_amps()
        };
        assert!(at(1.0) > at(10.0));
        assert!(at(10.0) > at(29.0) * 0.99);
    }

    #[test]
    fn cv_protocol_produces_calibratable_curve() {
        use bios_enzyme::{CypIsoform, CypSensorChemistry};
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(300.0))
            .retained_activity(0.5)
            .build();
        let s = Biosensor::builder("CP", Analyte::Cyclophosphamide)
            .electrode(ElectrodeStock::DropSensSpe.working_electrode())
            .modification(SurfaceModification::mwcnt_chloroform())
            .cyp(CypSensorChemistry::stock(CypIsoform::Cyp2B6), film)
            .technique(Technique::paper_cyclic_voltammetry())
            .build();
        let mut chain = ReadoutChain::benchtop(11)
            .auto_ranged_for(s.faradaic_current(Molar::from_micro_molar(100.0)));
        let range = ConcentrationRange::from_micro_molar(0.0, 70.0).unwrap();
        let curve = CyclicVoltammetry::default().calibrate_over(&s, &mut chain, &range, 10);
        let fit = curve.fit_all().unwrap();
        assert!(fit.slope() > 0.0);
        assert!(fit.r_squared() > 0.98);
    }
}

//! Concentration read-back from calibrated channels.
//!
//! Point-of-care use (the paper's end goal) is the inverse problem of
//! calibration: given a measured current on a calibrated channel, report
//! the analyte concentration — or say honestly that the reading is below
//! the detection limit or beyond the linear range.

use bios_analytics::CalibrationSummary;
use bios_units::{Amperes, ConcentrationRange, Molar, SquareCm};

/// Outcome of quantifying one reading.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Quantification {
    /// A concentration inside the validated range.
    Level(Molar),
    /// Signal indistinguishable from blank (below 3σ LOD).
    BelowDetection {
        /// The channel's detection limit.
        limit: Molar,
    },
    /// Signal beyond the linear range — dilute and re-measure.
    AboveRange {
        /// Upper end of the validated range.
        range_top: Molar,
    },
}

impl Quantification {
    /// The concentration if quantified, `None` otherwise.
    #[must_use]
    pub fn level(&self) -> Option<Molar> {
        match self {
            Quantification::Level(c) => Some(*c),
            _ => None,
        }
    }
}

/// A calibrated inverse model for one channel.
///
/// # Examples
///
/// ```
/// use bios_core::catalog;
/// use bios_core::quantify::{Quantification, Quantifier};
/// use bios_units::Molar;
///
/// let entry = catalog::our_glucose_sensor();
/// let outcome = entry.run_calibration(42)?;
/// let sensor = entry.build_sensor();
/// let q = Quantifier::from_calibration(&outcome.summary, sensor.electrode().area());
///
/// let unknown = Molar::from_micro_molar(400.0);
/// let current = sensor.faradaic_current(unknown);
/// let result = q.quantify(current);
/// let level = result.level().expect("inside the linear range");
/// assert!((level.as_micro_molar() - 400.0).abs() / 400.0 < 0.15);
/// # Ok::<(), bios_core::CoreError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Quantifier {
    /// Calibration slope, µA per mM (already area-integrated).
    slope_micro_amps_per_milli_molar: f64,
    detection_limit: Molar,
    linear_range: ConcentrationRange,
}

impl Quantifier {
    /// Builds the inverse model from a calibration summary and the
    /// channel's electrode area.
    #[must_use]
    pub fn from_calibration(summary: &CalibrationSummary, area: SquareCm) -> Quantifier {
        Quantifier {
            slope_micro_amps_per_milli_molar: summary
                .sensitivity
                .as_micro_amps_per_milli_molar_square_cm()
                * area.as_square_cm(),
            detection_limit: summary.detection_limit,
            linear_range: summary.linear_range,
        }
    }

    /// The calibration slope in µA/mM.
    #[must_use]
    pub fn slope_micro_amps_per_milli_molar(&self) -> f64 {
        self.slope_micro_amps_per_milli_molar
    }

    /// The channel's detection limit.
    #[must_use]
    pub fn detection_limit(&self) -> Molar {
        self.detection_limit
    }

    /// The validated concentration window.
    #[must_use]
    pub fn linear_range(&self) -> ConcentrationRange {
        self.linear_range
    }

    /// Converts a measured current into a concentration verdict.
    #[must_use]
    pub fn quantify(&self, current: Amperes) -> Quantification {
        let raw = Molar::from_milli_molar(
            (current.as_micro_amps() / self.slope_micro_amps_per_milli_molar).max(0.0),
        );
        if raw < self.detection_limit {
            Quantification::BelowDetection {
                limit: self.detection_limit,
            }
        } else if raw > self.linear_range.high() {
            Quantification::AboveRange {
                range_top: self.linear_range.high(),
            }
        } else {
            Quantification::Level(raw)
        }
    }

    /// The dilution factor needed to bring an above-range estimate back
    /// to the middle of the validated window.
    #[must_use]
    pub fn suggested_dilution(&self, current: Amperes) -> Option<f64> {
        match self.quantify(current) {
            Quantification::AboveRange { .. } => {
                let raw = current.as_micro_amps() / self.slope_micro_amps_per_milli_molar;
                let mid = self.linear_range.high().as_milli_molar() / 2.0;
                Some((raw / mid).max(1.0))
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog;

    fn quantifier() -> (Quantifier, crate::Biosensor) {
        let entry = catalog::our_glucose_sensor();
        let outcome = entry.run_calibration(11).unwrap();
        let sensor = entry.build_sensor();
        let q = Quantifier::from_calibration(&outcome.summary, sensor.electrode().area());
        (q, sensor)
    }

    #[test]
    fn in_range_reading_quantifies_accurately() {
        let (q, sensor) = quantifier();
        for micro_molar in [100.0, 300.0, 600.0] {
            let truth = Molar::from_micro_molar(micro_molar);
            let verdict = q.quantify(sensor.faradaic_current(truth));
            let level = verdict.level().expect("in range");
            let rel = (level.as_micro_molar() - micro_molar).abs() / micro_molar;
            assert!(rel < 0.15, "{micro_molar} µM recovered as {level} ({rel})");
        }
    }

    #[test]
    fn tiny_signal_reports_below_detection() {
        let (q, sensor) = quantifier();
        let verdict = q.quantify(sensor.faradaic_current(Molar::from_nano_molar(100.0)));
        assert!(matches!(verdict, Quantification::BelowDetection { .. }));
        assert!(verdict.level().is_none());
    }

    #[test]
    fn saturated_signal_reports_above_range_with_dilution_advice() {
        let (q, sensor) = quantifier();
        let current = sensor.faradaic_current(Molar::from_milli_molar(5.0));
        // 5 mM is beyond the 0–1 mM window even after MM compression…
        match q.quantify(current) {
            Quantification::AboveRange { range_top } => {
                assert!(range_top.as_milli_molar() <= 1.2);
            }
            other => panic!("expected AboveRange, got {other:?}"),
        }
        let dilution = q.suggested_dilution(current).unwrap();
        assert!(dilution > 1.0 && dilution < 20.0, "dilution {dilution}");
    }

    #[test]
    fn negative_noise_readings_clamp_to_below_detection() {
        let (q, _) = quantifier();
        let verdict = q.quantify(Amperes::from_nano_amps(-0.5));
        assert!(matches!(verdict, Quantification::BelowDetection { .. }));
    }

    #[test]
    fn no_dilution_advice_inside_range() {
        let (q, sensor) = quantifier();
        let current = sensor.faradaic_current(Molar::from_micro_molar(500.0));
        assert!(q.suggested_dilution(current).is_none());
    }
}

//! Synthetic samples — the stand-in for human fluids and cell-culture
//! supernatant the paper measures.

use std::collections::HashMap;

use bios_units::Molar;

use crate::analyte::Analyte;

/// A liquid sample: a set of analyte concentrations.
///
/// # Examples
///
/// ```
/// use bios_core::{Analyte, Sample};
/// use bios_units::Molar;
///
/// let serum = Sample::physiological_serum();
/// assert!(serum.concentration(Analyte::Glucose).as_milli_molar() > 3.0);
///
/// let dosed = serum.with_analyte(
///     Analyte::Cyclophosphamide,
///     Molar::from_micro_molar(40.0),
/// );
/// assert!(dosed.concentration(Analyte::Cyclophosphamide).as_micro_molar() > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    concentrations: HashMap<Analyte, Molar>,
    /// Fraction of the buffer-calibration slope retained in this matrix
    /// (1.0 = clean buffer; serum proteins foul electrodes and suppress
    /// the response).
    matrix_factor: f64,
}

impl Default for Sample {
    fn default() -> Sample {
        Sample {
            concentrations: HashMap::new(),
            matrix_factor: 1.0,
        }
    }
}

impl Sample {
    /// An empty (blank buffer) sample.
    #[must_use]
    pub fn blank() -> Sample {
        Sample::default()
    }

    /// Healthy human serum: physiological metabolites and interferents,
    /// no drugs. Serum proteins suppress amperometric slopes by ~15 %.
    #[must_use]
    pub fn physiological_serum() -> Sample {
        let mut s = Sample::blank().with_matrix_factor(0.85);
        for analyte in [
            Analyte::Glucose,
            Analyte::Lactate,
            Analyte::Glutamate,
            Analyte::AscorbicAcid,
            Analyte::UricAcid,
        ] {
            if let Some(level) = analyte.physiological_level() {
                s.concentrations.insert(analyte, level);
            }
        }
        s
    }

    /// Neural cell-culture medium as in the authors' earlier work \[4\]\[5\]:
    /// glucose-rich, accumulating lactate and glutamate.
    #[must_use]
    pub fn cell_culture_medium() -> Sample {
        Sample::blank()
            .with_analyte(Analyte::Glucose, Molar::from_milli_molar(10.0))
            .with_analyte(Analyte::Lactate, Molar::from_milli_molar(0.5))
            .with_analyte(Analyte::Glutamate, Molar::from_micro_molar(200.0))
    }

    /// Returns a copy with the matrix suppression factor set.
    ///
    /// # Panics
    ///
    /// Panics unless the factor lies in `(0, 1]`.
    #[must_use]
    pub fn with_matrix_factor(mut self, factor: f64) -> Sample {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "matrix factor must lie in (0, 1]"
        );
        self.matrix_factor = factor;
        self
    }

    /// The matrix suppression factor (1.0 for clean buffer).
    #[must_use]
    pub fn matrix_factor(&self) -> f64 {
        self.matrix_factor
    }

    /// Returns a copy with one analyte set to `concentration`.
    #[must_use]
    pub fn with_analyte(mut self, analyte: Analyte, concentration: Molar) -> Sample {
        self.concentrations.insert(analyte, concentration);
        self
    }

    /// Returns a copy with the analyte removed.
    #[must_use]
    pub fn without_analyte(mut self, analyte: Analyte) -> Sample {
        self.concentrations.remove(&analyte);
        self
    }

    /// Concentration of `analyte` (zero if absent).
    #[must_use]
    pub fn concentration(&self, analyte: Analyte) -> Molar {
        self.concentrations
            .get(&analyte)
            .copied()
            .unwrap_or(Molar::ZERO)
    }

    /// All analytes present at non-zero concentration.
    #[must_use]
    pub fn analytes(&self) -> Vec<Analyte> {
        let mut v: Vec<Analyte> = self
            .concentrations
            .iter()
            .filter(|(_, c)| c.as_molar() > 0.0)
            .map(|(a, _)| *a)
            .collect();
        v.sort_by_key(|a| a.name());
        v
    }

    /// Whether the sample contains nothing.
    #[must_use]
    pub fn is_blank(&self) -> bool {
        self.analytes().is_empty()
    }

    /// A dilution of this sample by `factor` (> 1 dilutes).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not positive.
    #[must_use]
    pub fn diluted(&self, factor: f64) -> Sample {
        assert!(factor > 0.0, "dilution factor must be positive");
        let mut s = Sample::blank();
        for (&a, &c) in &self.concentrations {
            s.concentrations.insert(a, c / factor);
        }
        // Dilution relaxes the matrix toward clean buffer.
        s.matrix_factor = 1.0 - (1.0 - self.matrix_factor) / factor;
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn blank_is_blank() {
        assert!(Sample::blank().is_blank());
        assert_eq!(Sample::blank().concentration(Analyte::Glucose), Molar::ZERO);
    }

    #[test]
    fn serum_has_metabolites_but_no_drugs() {
        let s = Sample::physiological_serum();
        assert!(s.concentration(Analyte::Glucose).as_molar() > 0.0);
        assert!(s.concentration(Analyte::UricAcid).as_molar() > 0.0);
        assert_eq!(s.concentration(Analyte::Cyclophosphamide), Molar::ZERO);
    }

    #[test]
    fn with_and_without_round_trip() {
        let s = Sample::blank().with_analyte(Analyte::Ifosfamide, Molar::from_micro_molar(80.0));
        assert!((s.concentration(Analyte::Ifosfamide).as_micro_molar() - 80.0).abs() < 1e-9);
        let s = s.without_analyte(Analyte::Ifosfamide);
        assert!(s.is_blank());
    }

    #[test]
    fn matrix_factor_validated_and_defaulted() {
        assert_eq!(Sample::blank().matrix_factor(), 1.0);
        assert!((Sample::physiological_serum().matrix_factor() - 0.85).abs() < 1e-12);
        let s = Sample::blank().with_matrix_factor(0.6);
        assert!((s.matrix_factor() - 0.6).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "matrix factor")]
    fn zero_matrix_factor_rejected() {
        let _ = Sample::blank().with_matrix_factor(0.0);
    }

    #[test]
    fn dilution_relaxes_matrix() {
        let serum = Sample::physiological_serum();
        let diluted = serum.diluted(10.0);
        assert!(diluted.matrix_factor() > serum.matrix_factor());
        assert!((diluted.matrix_factor() - 0.985).abs() < 1e-9);
    }

    #[test]
    fn dilution_scales_everything() {
        let s = Sample::physiological_serum().diluted(10.0);
        assert!((s.concentration(Analyte::Glucose).as_milli_molar() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn analytes_listing_is_sorted_and_nonzero_only() {
        let s = Sample::blank()
            .with_analyte(Analyte::UricAcid, Molar::from_micro_molar(10.0))
            .with_analyte(Analyte::Glucose, Molar::ZERO);
        let list = s.analytes();
        assert_eq!(list, vec![Analyte::UricAcid]);
    }

    #[test]
    fn culture_medium_is_glucose_rich() {
        let m = Sample::cell_culture_medium();
        assert!(
            m.concentration(Analyte::Glucose)
                > Sample::physiological_serum().concentration(Analyte::Glucose)
        );
    }

    #[test]
    #[should_panic(expected = "dilution factor")]
    fn zero_dilution_rejected() {
        let _ = Sample::blank().diluted(0.0);
    }
}

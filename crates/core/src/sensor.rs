//! A composed biosensing channel and its forward model.
//!
//! A [`Biosensor`] is the paper's §3 recipe as a value: electrode +
//! nanomaterial modification + immobilized enzyme + electrochemical
//! technique. Its forward model maps analyte concentration to faradaic
//! current through the physics of the substrate crates:
//!
//! `i(C) = n·F·A·η_coll·Γ_eff·k_cat_app·C/(K_M_app + C)`
//!
//! where the apparent kinetics come from the enzyme (and its O₂
//! co-substrate, for oxidases) filtered through the film model, and the
//! collection efficiency and loading capacity come from the surface
//! modification.

use bios_enzyme::michaelis::MichaelisMenten;
use bios_enzyme::{CypSensorChemistry, EnzymeFilm, Oxidase};
use bios_nanomaterial::{Electrode, SurfaceModification};
use bios_units::{Amperes, Molar, ScanRate, Sensitivity, Volts, FARADAY};

use crate::analyte::Analyte;
use crate::sample::Sample;

/// The electrochemical technique a sensor is read out with (Table 1's
/// third column).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Technique {
    /// Hold a fixed oxidizing bias, read the settled current — the
    /// oxidase recipe (+650 mV in the paper).
    Chronoamperometry {
        /// Working-electrode bias vs the reference.
        bias: Volts,
    },
    /// Sweep the potential forward and back, read the peak height — the
    /// CYP450 recipe.
    CyclicVoltammetry {
        /// Most negative potential of the window.
        low: Volts,
        /// Most positive potential of the window.
        high: Volts,
        /// Sweep rate.
        rate: ScanRate,
    },
    /// Staircase + pulse readout (the DNA-based CP baseline of \[32\]).
    DifferentialPulseVoltammetry {
        /// Start potential.
        low: Volts,
        /// End potential.
        high: Volts,
        /// Pulse amplitude.
        amplitude: Volts,
    },
}

impl Technique {
    /// The paper's chronoamperometric readout: +650 mV bias.
    #[must_use]
    pub fn paper_chronoamperometry() -> Technique {
        Technique::Chronoamperometry {
            bias: Volts::from_milli_volts(650.0),
        }
    }

    /// The paper's cyclic-voltammetry readout window for CYP sensing.
    #[must_use]
    pub fn paper_cyclic_voltammetry() -> Technique {
        Technique::CyclicVoltammetry {
            low: Volts::from_milli_volts(-700.0),
            high: Volts::from_milli_volts(100.0),
            rate: ScanRate::from_milli_volts_per_second(50.0),
        }
    }

    /// Short label as used in Table 1.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Technique::Chronoamperometry { .. } => "Chronoamperometry",
            Technique::CyclicVoltammetry { .. } => "Cyclic voltammetry",
            Technique::DifferentialPulseVoltammetry { .. } => "Differential pulse voltammetry",
        }
    }
}

/// The immobilized recognition chemistry.
#[derive(Debug, Clone, PartialEq)]
pub enum SensorChemistry {
    /// Oxidase + H₂O₂ detection (metabolite sensors).
    Oxidase {
        /// The enzyme.
        enzyme: Oxidase,
        /// Its immobilization film.
        film: EnzymeFilm,
    },
    /// Cytochrome P450 catalytic-current detection (drug sensors).
    Cyp {
        /// The isoform chemistry.
        chemistry: CypSensorChemistry,
        /// Its immobilization film.
        film: EnzymeFilm,
    },
}

impl SensorChemistry {
    /// Probe name as in Table 1 ("Glucose oxidase", "CYP2B6", …).
    #[must_use]
    pub fn probe_name(&self) -> String {
        match self {
            SensorChemistry::Oxidase { enzyme, .. } => match enzyme.kind() {
                bios_enzyme::OxidaseKind::GlucoseOxidase => "Glucose oxidase".to_owned(),
                bios_enzyme::OxidaseKind::LactateOxidase => "Lactate oxidase".to_owned(),
                bios_enzyme::OxidaseKind::GlutamateOxidase => "Glutamate oxidase".to_owned(),
            },
            SensorChemistry::Cyp { chemistry, .. } => chemistry.isoform().name().to_owned(),
        }
    }

    /// Electrons per catalytic turnover reaching the electrode.
    #[must_use]
    pub fn electrons(&self) -> u32 {
        match self {
            SensorChemistry::Oxidase { enzyme, .. } => enzyme.electrons_per_turnover(),
            SensorChemistry::Cyp { chemistry, .. } => chemistry.electrons_per_turnover(),
        }
    }

    /// The apparent (film + co-substrate) Michaelis–Menten kinetics that
    /// govern the calibration shape.
    #[must_use]
    pub fn apparent_kinetics(&self) -> MichaelisMenten {
        match self {
            SensorChemistry::Oxidase { enzyme, film } => {
                film.apparent_kinetics(&enzyme.apparent_kinetics())
            }
            SensorChemistry::Cyp { chemistry, film } => {
                let base = film.apparent_kinetics(&chemistry.binding());
                // Coupling losses scale the turnover, not the affinity.
                MichaelisMenten::new(base.kcat() * chemistry.coupling(), base.km())
            }
        }
    }

    /// The film.
    #[must_use]
    pub fn film(&self) -> &EnzymeFilm {
        match self {
            SensorChemistry::Oxidase { film, .. } | SensorChemistry::Cyp { film, .. } => film,
        }
    }
}

/// A fully composed biosensor channel.
///
/// # Examples
///
/// ```
/// use bios_core::sensor::{Biosensor, Technique};
/// use bios_core::Analyte;
/// use bios_enzyme::{EnzymeFilm, Oxidase, OxidaseKind};
/// use bios_nanomaterial::{ElectrodeStock, SurfaceModification};
/// use bios_units::Molar;
///
/// let sensor = Biosensor::builder("demo glucose sensor", Analyte::Glucose)
///     .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
///     .modification(SurfaceModification::mwcnt_nafion())
///     .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), EnzymeFilm::builder().build())
///     .technique(Technique::paper_chronoamperometry())
///     .build();
/// let i1 = sensor.faradaic_current(Molar::from_milli_molar(0.5));
/// let i2 = sensor.faradaic_current(Molar::from_milli_molar(1.0));
/// assert!(i2 > i1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Biosensor {
    name: String,
    analyte: Analyte,
    electrode: Electrode,
    modification: SurfaceModification,
    chemistry: SensorChemistry,
    technique: Technique,
}

impl Biosensor {
    /// Starts building a sensor for `analyte`.
    #[must_use]
    pub fn builder(name: &str, analyte: Analyte) -> BiosensorBuilder {
        BiosensorBuilder {
            name: name.to_owned(),
            analyte,
            electrode: None,
            modification: SurfaceModification::bare(),
            chemistry: None,
            technique: Technique::paper_chronoamperometry(),
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The analyte this channel detects.
    #[must_use]
    pub fn analyte(&self) -> Analyte {
        self.analyte
    }

    /// The working electrode.
    #[must_use]
    pub fn electrode(&self) -> &Electrode {
        &self.electrode
    }

    /// The surface modification.
    #[must_use]
    pub fn modification(&self) -> &SurfaceModification {
        &self.modification
    }

    /// The recognition chemistry.
    #[must_use]
    pub fn chemistry(&self) -> &SensorChemistry {
        &self.chemistry
    }

    /// The readout technique.
    #[must_use]
    pub fn technique(&self) -> Technique {
        self.technique
    }

    /// Steady-state faradaic current at analyte concentration `c`.
    ///
    /// This is the forward model: enzyme film flux × collection
    /// efficiency × electrons × Faraday × geometric area.
    #[must_use]
    pub fn faradaic_current(&self, c: Molar) -> Amperes {
        let apparent = self.chemistry.apparent_kinetics();
        let gamma = self
            .chemistry
            .film()
            .effective_loading()
            .as_mol_per_square_cm();
        let turnover = apparent.turnover_rate(c).as_per_second();
        let flux = gamma * turnover; // mol/(cm²·s)
        let n = f64::from(self.chemistry.electrons());
        let coll = self.modification.collection_efficiency();
        Amperes::from_amps(n * FARADAY * self.electrode.area().as_square_cm() * coll * flux)
    }

    /// The analytic low-concentration sensitivity of the forward model,
    /// µA · mM⁻¹ · cm⁻² — what a noiseless calibration would measure.
    #[must_use]
    pub fn model_sensitivity(&self) -> Sensitivity {
        let apparent = self.chemistry.apparent_kinetics();
        let gamma = self
            .chemistry
            .film()
            .effective_loading()
            .as_mol_per_square_cm();
        let n = f64::from(self.chemistry.electrons());
        let coll = self.modification.collection_efficiency();
        // dI/dC at C→0, per area: n·F·coll·Γ·kcat/K_M with K_M in mol/L;
        // convert A/(cm²·M) to µA/(cm²·mM): ×1e6 µA/A ×1e-3 M/mM.
        let slope =
            n * FARADAY * coll * gamma * apparent.kcat().as_per_second() / apparent.km().as_molar();
        Sensitivity::new(slope * 1e3)
    }

    /// The model's theoretical linear-range endpoint for a 5 %
    /// linearity tolerance.
    #[must_use]
    pub fn model_linear_limit(&self) -> Molar {
        self.chemistry.apparent_kinetics().linear_limit(0.05)
    }

    /// Response to a whole sample: analyte signal plus direct oxidation
    /// of electroactive interferents (ascorbate, urate, paracetamol) at
    /// chronoamperometric bias. Nafion-based films largely reject the
    /// anionic interferents.
    #[must_use]
    pub fn respond_to_sample(&self, sample: &Sample) -> Amperes {
        let mut i = self
            .faradaic_current(sample.concentration(self.analyte))
            .as_amps()
            * sample.matrix_factor();
        if let Technique::Chronoamperometry { bias } = self.technique {
            if bias.as_milli_volts() > 400.0 {
                i += self.interference_current(sample).as_amps();
            }
        }
        Amperes::from_amps(i)
    }

    /// Synthesizes the full cyclic voltammogram ("hysteresis plot",
    /// §3.1) of a CYP sensor at drug concentration `c`: the
    /// surface-confined heme wave, the catalytic wave growing with
    /// substrate, and the capacitive envelope of the CNT film.
    ///
    /// Returns `None` for non-CYP chemistries or non-CV techniques.
    #[must_use]
    pub fn synthesize_voltammogram(
        &self,
        c: Molar,
    ) -> Option<bios_electrochem::voltammetry::Voltammogram> {
        use bios_electrochem::double_layer::DoubleLayer;
        use bios_electrochem::voltammetry::{Voltammogram, VoltammogramPoint};
        use bios_electrochem::waveform::{CyclicSweep, Waveform};
        use bios_units::{Seconds, FARADAY as F, GAS_CONSTANT as R};

        let SensorChemistry::Cyp { chemistry, film } = &self.chemistry else {
            return None;
        };
        let Technique::CyclicVoltammetry { low, high, rate } = self.technique else {
            return None;
        };
        let sweep = CyclicSweep::new(low, high, rate, 1);
        let t_room = 298.15;
        let n = f64::from(chemistry.electrons_per_turnover());
        let f_over_rt = F / (R * t_room);
        let e0 = chemistry.heme_potential().as_volts();
        let area = self.electrode.area();

        // Surface-confined heme wave amplitude (1-electron heme couple).
        let gamma = film.effective_loading().as_mol_per_square_cm();
        let i_surf_peak = bios_electrochem::randles_sevcik::surface_confined_peak_current(
            1,
            area,
            gamma,
            rate,
            bios_units::Kelvin::ROOM,
        )
        .as_amps();

        // Catalytic wave amplitude: the steady catalytic current.
        let i_cat = self.faradaic_current(c).as_amps();

        // Capacitive envelope from the CNT film's real area.
        let dl = DoubleLayer::new(
            self.electrode.material().specific_capacitance(),
            area,
            self.modification.roughness(),
        );
        let i_c = dl.charging_current(rate).as_amps();

        let dt = Seconds::from_seconds(sweep.duration().as_seconds() / 800.0);
        let points = sweep
            .samples(dt)
            .into_iter()
            .enumerate()
            .map(|(k, (t, e))| {
                let half = sweep.duration().as_seconds() / 2.0;
                let forward = t.as_seconds() <= half;
                // Cathodic sweep first (toward the heme potential):
                // direction sign for the surface wave and capacitance.
                let dir = if forward { -1.0 } else { 1.0 };
                let x = f_over_rt * (e.as_volts() - e0);
                let ex = x.exp();
                let bell = 4.0 * ex / ((1.0 + ex) * (1.0 + ex));
                let surf = dir * i_surf_peak * bell;
                // Catalytic reduction: sigmoidal turn-on past the heme
                // potential, cathodic (negative) on both branches.
                let catalytic = -i_cat * n / (1.0 + (f_over_rt * (e.as_volts() - e0)).exp());
                let capacitive = dir * i_c;
                let _ = k;
                VoltammogramPoint {
                    time: t,
                    potential: e,
                    current: Amperes::from_amps(surf + catalytic + capacitive),
                }
            })
            .collect();
        Some(Voltammogram::new(points))
    }

    /// Classifies this sensor along the five §2 axes — placing the
    /// paper's own devices inside the survey taxonomy they propose.
    #[must_use]
    pub fn classify(&self) -> crate::classification::SensorClassEntry {
        use crate::classification::{
            ElectrodeTechnology, NanoMaterialClass, SensingElement, SensorClassEntry, Target,
            Transduction,
        };
        use bios_nanomaterial::ElectrodeMaterial;

        let target = if self.analyte.is_drug() {
            Target::Drug
        } else {
            Target::Metabolite
        };
        let nanomaterial = if self.modification.cnt_dimensions().is_some() {
            Some(NanoMaterialClass::CarbonNanotube)
        } else if self.modification.is_nanostructured() {
            Some(NanoMaterialClass::OtherNanotube)
        } else {
            None
        };
        let technology = match self.electrode.material() {
            ElectrodeMaterial::Graphite | ElectrodeMaterial::CarbonPaste => {
                ElectrodeTechnology::Disposable
            }
            ElectrodeMaterial::Gold => ElectrodeTechnology::Integrated,
            _ => ElectrodeTechnology::Conventional,
        };
        SensorClassEntry {
            name: self.name.clone(),
            citation: "this work".to_owned(),
            target,
            element: SensingElement::Enzyme,
            transduction: Transduction::Amperometric,
            nanomaterial,
            technology,
        }
    }

    /// Direct-oxidation current from interferents alone.
    #[must_use]
    pub fn interference_current(&self, sample: &Sample) -> Amperes {
        // Bare-electrode interferent sensitivity, µA·mM⁻¹·cm⁻².
        const INTERFERENT_SENSITIVITY: f64 = 1.2;
        let rejects = self
            .modification
            .dispersant()
            .is_some_and(|d| d.rejects_anionic_interferents());
        let passband = if rejects { 0.02 } else { 1.0 };
        let area = self.electrode.area().as_square_cm();
        let total_milli_molar: f64 = [
            Analyte::AscorbicAcid,
            Analyte::UricAcid,
            Analyte::Paracetamol,
        ]
        .iter()
        .map(|&a| sample.concentration(a).as_milli_molar())
        .sum();
        Amperes::from_micro_amps(INTERFERENT_SENSITIVITY * passband * area * total_milli_molar)
    }
}

/// Builder for [`Biosensor`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct BiosensorBuilder {
    name: String,
    analyte: Analyte,
    electrode: Option<Electrode>,
    modification: SurfaceModification,
    chemistry: Option<SensorChemistry>,
    technique: Technique,
}

impl BiosensorBuilder {
    /// Sets the working electrode.
    #[must_use]
    pub fn electrode(mut self, electrode: Electrode) -> Self {
        self.electrode = Some(electrode);
        self
    }

    /// Sets the surface modification (defaults to bare).
    #[must_use]
    pub fn modification(mut self, modification: SurfaceModification) -> Self {
        self.modification = modification;
        self
    }

    /// Mounts an oxidase chemistry.
    #[must_use]
    pub fn oxidase(mut self, enzyme: Oxidase, film: EnzymeFilm) -> Self {
        self.chemistry = Some(SensorChemistry::Oxidase { enzyme, film });
        self
    }

    /// Mounts a cytochrome-P450 chemistry.
    #[must_use]
    pub fn cyp(mut self, chemistry: CypSensorChemistry, film: EnzymeFilm) -> Self {
        self.chemistry = Some(SensorChemistry::Cyp { chemistry, film });
        self
    }

    /// Sets the readout technique (defaults to the paper's
    /// chronoamperometry).
    #[must_use]
    pub fn technique(mut self, technique: Technique) -> Self {
        self.technique = technique;
        self
    }

    /// Finalizes the sensor, reporting what is missing instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`crate::error::CoreError::BuilderIncomplete`] when no electrode or
    /// no chemistry was supplied.
    pub fn try_build(self) -> crate::error::Result<Biosensor> {
        let electrode = self
            .electrode
            .ok_or(crate::error::CoreError::BuilderIncomplete {
                missing: "an electrode",
            })?;
        let chemistry = self
            .chemistry
            .ok_or(crate::error::CoreError::BuilderIncomplete {
                missing: "a sensing chemistry",
            })?;
        Ok(Biosensor {
            name: self.name,
            analyte: self.analyte,
            electrode,
            modification: self.modification,
            chemistry,
            technique: self.technique,
        })
    }

    /// Finalizes the sensor.
    ///
    /// # Panics
    ///
    /// Panics if no electrode or chemistry was supplied; use
    /// [`BiosensorBuilder::try_build`] for the checked path.
    #[must_use]
    pub fn build(self) -> Biosensor {
        match self.try_build() {
            Ok(sensor) => sensor,
            // bios-audit: allow(P-panic) — documented builder contract; try_build is the checked path
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_enzyme::OxidaseKind;
    use bios_nanomaterial::ElectrodeStock;
    use bios_units::SurfaceLoading;

    fn glucose_sensor() -> Biosensor {
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(100.0))
            .retained_activity(0.6)
            .build();
        Biosensor::builder("glucose test", Analyte::Glucose)
            .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
            .modification(SurfaceModification::mwcnt_nafion())
            .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
            .technique(Technique::paper_chronoamperometry())
            .build()
    }

    fn cp_sensor() -> Biosensor {
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(200.0))
            .retained_activity(0.5)
            .build();
        Biosensor::builder("CP test", Analyte::Cyclophosphamide)
            .electrode(ElectrodeStock::DropSensSpe.working_electrode())
            .modification(SurfaceModification::mwcnt_chloroform())
            .cyp(
                CypSensorChemistry::stock(bios_enzyme::CypIsoform::Cyp2B6),
                film,
            )
            .technique(Technique::paper_cyclic_voltammetry())
            .build()
    }

    #[test]
    fn current_is_monotone_and_saturating() {
        let s = glucose_sensor();
        let mut prev = -1.0;
        for mm in [0.0, 0.5, 1.0, 5.0, 20.0, 100.0] {
            let i = s.faradaic_current(Molar::from_milli_molar(mm)).as_amps();
            assert!(i >= prev);
            prev = i;
        }
        // Saturation: doubling from an already-high concentration gains
        // little.
        let hi = s.faradaic_current(Molar::from_milli_molar(200.0)).as_amps();
        let hi2 = s.faradaic_current(Molar::from_milli_molar(400.0)).as_amps();
        assert!((hi2 - hi) / hi < 0.05);
    }

    #[test]
    fn zero_concentration_zero_current() {
        assert_eq!(
            glucose_sensor().faradaic_current(Molar::ZERO),
            Amperes::ZERO
        );
        assert_eq!(cp_sensor().faradaic_current(Molar::ZERO), Amperes::ZERO);
    }

    #[test]
    fn model_sensitivity_matches_numeric_slope() {
        for sensor in [glucose_sensor(), cp_sensor()] {
            let s_model = sensor.model_sensitivity();
            // Numeric slope at a concentration far below K_M.
            let c = Molar::from_molar(sensor.chemistry().apparent_kinetics().km().as_molar() / 1e4);
            let i = sensor.faradaic_current(c);
            let numeric =
                i.as_micro_amps() / c.as_milli_molar() / sensor.electrode().area().as_square_cm();
            let rel = (numeric - s_model.as_micro_amps_per_milli_molar_square_cm()).abs()
                / s_model.as_micro_amps_per_milli_molar_square_cm();
            assert!(rel < 0.01, "{}: {rel}", sensor.name());
        }
    }

    #[test]
    fn better_modification_higher_sensitivity() {
        let make = |modification: SurfaceModification| {
            let film = EnzymeFilm::builder()
                .loading(SurfaceLoading::from_pico_mol_per_square_cm(100.0))
                .build();
            Biosensor::builder("x", Analyte::Glucose)
                .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
                .modification(modification)
                .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
                .build()
        };
        let cnt = make(SurfaceModification::mwcnt_nafion());
        let bare = make(SurfaceModification::bare());
        assert!(cnt.model_sensitivity() > bare.model_sensitivity());
    }

    #[test]
    fn interferents_add_current_and_nafion_blocks_them() {
        let serum = Sample::physiological_serum();
        let cnt_nafion = glucose_sensor();
        // Matrix-adjusted clean signal (serum suppresses the slope).
        let clean = cnt_nafion.faradaic_current(serum.concentration(Analyte::Glucose))
            * serum.matrix_factor();
        let with_interf = cnt_nafion.respond_to_sample(&serum);
        // Nafion blocks most, but not all, of the interferent signal.
        assert!(with_interf >= clean);

        let unprotected = {
            let film = EnzymeFilm::builder()
                .loading(SurfaceLoading::from_pico_mol_per_square_cm(100.0))
                .retained_activity(0.6)
                .build();
            Biosensor::builder("no nafion", Analyte::Glucose)
                .electrode(ElectrodeStock::EpflMicroChip.working_electrode())
                .modification(SurfaceModification::cnt_mat())
                .oxidase(Oxidase::stock(OxidaseKind::GlucoseOxidase), film)
                .build()
        };
        assert!(
            unprotected.interference_current(&serum).as_amps()
                > cnt_nafion.interference_current(&serum).as_amps() * 10.0
        );
    }

    #[test]
    fn cv_sensors_skip_anodic_interference() {
        let sample = Sample::blank()
            .with_analyte(Analyte::Cyclophosphamide, Molar::from_micro_molar(40.0))
            .with_analyte(Analyte::AscorbicAcid, Molar::from_micro_molar(60.0));
        let s = cp_sensor();
        let with = s.respond_to_sample(&sample);
        let without = s.faradaic_current(Molar::from_micro_molar(40.0));
        assert_eq!(with, without);
    }

    #[test]
    fn table1_labels() {
        assert_eq!(glucose_sensor().chemistry().probe_name(), "Glucose oxidase");
        assert_eq!(cp_sensor().chemistry().probe_name(), "CYP2B6");
        assert_eq!(glucose_sensor().technique().label(), "Chronoamperometry");
        assert_eq!(cp_sensor().technique().label(), "Cyclic voltammetry");
    }

    #[test]
    #[should_panic(expected = "needs an electrode")]
    fn builder_requires_electrode() {
        let _ = Biosensor::builder("x", Analyte::Glucose).build();
    }

    #[test]
    fn voltammogram_only_for_cyp_cv_sensors() {
        assert!(glucose_sensor()
            .synthesize_voltammogram(Molar::from_milli_molar(1.0))
            .is_none());
        assert!(cp_sensor()
            .synthesize_voltammogram(Molar::from_micro_molar(40.0))
            .is_some());
    }

    #[test]
    fn voltammogram_cathodic_peak_grows_with_drug() {
        let s = cp_sensor();
        let peak = |micro: f64| {
            s.synthesize_voltammogram(Molar::from_micro_molar(micro))
                .unwrap()
                .cathodic_peak()
                .unwrap()
                .current
                .as_amps()
                .abs()
        };
        let blank = peak(0.0);
        let low = peak(20.0);
        let high = peak(60.0);
        assert!(low > blank);
        assert!(high > low);
        // Peak-height difference is roughly linear in concentration
        // below the binding K_M.
        let d1 = low - blank;
        let d2 = high - blank;
        assert!((d2 / d1 - 3.0).abs() < 0.5, "ratio {}", d2 / d1);
    }

    #[test]
    fn voltammogram_shows_hysteresis() {
        let s = cp_sensor();
        let vg = s
            .synthesize_voltammogram(Molar::from_micro_molar(40.0))
            .unwrap();
        // Forward and return branches enclose a loop.
        assert!(vg.hysteresis_area() > 0.0);
        // Surface wave: both anodic and cathodic excursions exist.
        assert!(vg.anodic_peak().unwrap().current.as_amps() > 0.0);
        assert!(vg.cathodic_peak().unwrap().current.as_amps() < 0.0);
    }

    #[test]
    fn voltammogram_peak_sits_near_heme_potential() {
        let s = cp_sensor();
        let vg = s
            .synthesize_voltammogram(Molar::from_micro_molar(40.0))
            .unwrap();
        let peak_e = vg.cathodic_peak().unwrap().potential.as_milli_volts();
        // Heme at −300 mV; catalytic wave shifts the apex cathodic.
        assert!(peak_e < -150.0 && peak_e > -720.0, "peak at {peak_e} mV");
    }
}

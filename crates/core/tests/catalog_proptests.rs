//! Property tests sweeping the *entire* sensor catalog: invariants that
//! must hold for every Table 2 row and every multi-panel entry, at any
//! concentration and under any seed. Sampled deterministically via
//! `bios_prng::cases`.

use bios_core::catalog::{self, CatalogEntry};
use bios_core::Sample;
use bios_prng::{cases, Rng};
use bios_units::Molar;

fn every_entry() -> Vec<CatalogEntry> {
    let mut v = catalog::all_table2();
    v.extend(catalog::multi_panel_sensors());
    v
}

fn any_entry(rng: &mut Rng) -> CatalogEntry {
    let mut v = every_entry();
    let i = rng.index(v.len());
    v.swap_remove(i)
}

/// Every catalog sensor's forward model is non-negative, monotone,
/// and bounded by its saturation current.
#[test]
fn forward_model_invariants() {
    cases(0x0701, 48, |rng| {
        let entry = any_entry(rng);
        let frac_lo = rng.uniform();
        let frac_step = rng.uniform();
        let sensor = entry.build_sensor();
        let top = entry.sweep().high().as_molar();
        let c1 = Molar::from_molar(top * frac_lo);
        let c2 = Molar::from_molar(top * frac_lo + top * frac_step);
        let i1 = sensor.faradaic_current(c1);
        let i2 = sensor.faradaic_current(c2);
        assert!(i1.as_amps() >= 0.0);
        assert!(i2.as_amps() >= i1.as_amps());
        // Bounded: MM never exceeds the C→∞ asymptote.
        let saturation = sensor.faradaic_current(Molar::from_molar(1e3));
        assert!(i2.as_amps() <= saturation.as_amps() * (1.0 + 1e-12));
    });
}

/// The forward model's analytic sensitivity equals the paper value
/// for every entry (the calibration identity the catalog guarantees).
#[test]
fn model_sensitivity_identity() {
    for entry in every_entry() {
        let s = entry.build_sensor().model_sensitivity();
        assert!(
            s.relative_error(entry.paper().sensitivity) < 1e-9,
            "{}",
            entry.id()
        );
    }
}

/// Blank samples never produce faradaic current on any catalog
/// sensor, regardless of interferent-free matrix.
#[test]
fn blanks_are_silent() {
    cases(0x0702, 48, |rng| {
        let entry = any_entry(rng);
        let matrix = rng.uniform_in(0.2, 1.0);
        let sensor = entry.build_sensor();
        let blank = Sample::blank().with_matrix_factor(matrix);
        assert_eq!(sensor.respond_to_sample(&blank).as_amps(), 0.0);
    });
}

/// The matrix factor scales the analyte response exactly linearly.
#[test]
fn matrix_factor_is_multiplicative() {
    cases(0x0703, 48, |rng| {
        let entry = any_entry(rng);
        let frac = rng.uniform_in(0.05, 1.0);
        let matrix = rng.uniform_in(0.2, 1.0);
        let sensor = entry.build_sensor();
        let c = Molar::from_molar(entry.sweep().high().as_molar() * frac);
        let clean = Sample::blank().with_analyte(sensor.analyte(), c);
        let fouled = clean.clone().with_matrix_factor(matrix);
        let i_clean = sensor.respond_to_sample(&clean).as_amps();
        let i_fouled = sensor.respond_to_sample(&fouled).as_amps();
        assert!((i_fouled - i_clean * matrix).abs() <= i_clean * 1e-9);
    });
}

/// Calibration under any seed yields positive figures of merit with
/// the range inside the sweep, for a random catalog entry.
#[test]
fn any_entry_calibrates_under_any_seed() {
    cases(0x0704, 48, |rng| {
        let entry = any_entry(rng);
        let seed = rng.next_u64() % 500;
        let outcome = entry.run_calibration(seed).unwrap();
        let s = outcome.summary;
        assert!(s.sensitivity.as_micro_amps_per_milli_molar_square_cm() > 0.0);
        assert!(s.detection_limit.as_molar() > 0.0);
        // Allow one ULP of linspace endpoint rounding.
        assert!(
            s.linear_range.high().as_molar() <= entry.sweep().high().as_molar() * (1.0 + 1e-12)
        );
        assert!(s.r_squared > 0.9, "{}: R² {}", entry.id(), s.r_squared);
        // Sensitivity lands within a generous band of the paper value
        // for every entry and every seed.
        assert!(
            s.sensitivity.relative_error(entry.paper().sensitivity) < 0.30,
            "{} seed {}",
            entry.id(),
            seed
        );
    });
}

/// Classification places every catalog sensor in the enzyme +
/// amperometric cell of the taxonomy, with a nanomaterial exactly
/// when the modification is nanostructured (the polymer-film
/// literature baselines [33]/[59] carry none).
#[test]
fn classification_is_consistent() {
    use bios_core::classification::{SensingElement, Transduction};
    for entry in every_entry() {
        let sensor = entry.build_sensor();
        let class = sensor.classify();
        assert_eq!(class.element, SensingElement::Enzyme);
        assert_eq!(class.transduction, Transduction::Amperometric);
        let expects_nano = sensor.modification().cnt_dimensions().is_some()
            || sensor.modification().is_nanostructured();
        assert_eq!(class.nanomaterial.is_some(), expects_nano, "{}", entry.id());
    }
}

/// The quantifier round-trips any in-range concentration within
/// 20 % for any entry (noise + fit bias included).
#[test]
fn quantifier_round_trips_all_entries() {
    cases(0x0705, 48, |rng| {
        use bios_core::quantify::Quantifier;
        let entry = any_entry(rng);
        let frac = rng.uniform_in(0.25, 0.75);
        let seed = rng.next_u64() % 100;
        let outcome = entry.run_calibration(seed).unwrap();
        let sensor = entry.build_sensor();
        let q = Quantifier::from_calibration(&outcome.summary, sensor.electrode().area());
        let c = Molar::from_molar(outcome.summary.linear_range.high().as_molar() * frac);
        // Skip sub-LOD targets (tiny linear ranges at low seeds).
        if c <= outcome.summary.detection_limit * 2.0 {
            return;
        }
        let mut chain = entry.build_readout(seed.wrapping_add(7));
        let reading = chain.digitize(sensor.faradaic_current(c));
        if let Some(level) = q.quantify(reading).level() {
            let rel = (level.as_molar() - c.as_molar()).abs() / c.as_molar();
            assert!(rel < 0.20, "{}: {rel}", entry.id());
        }
    });
}

//! Butler–Volmer electron-transfer kinetics.
//!
//! The carbon-nanotube electrode modifications at the heart of the paper
//! work by raising the heterogeneous standard rate constant `k⁰` (ballistic
//! conduction, tip/wall field emission — §2.4). These functions quantify
//! how current responds to overpotential for a finite `k⁰`.

use bios_units::{Amperes, Kelvin, Molar, SquareCm, Volts, FARADAY, GAS_CONSTANT};

/// Kinetic parameters of a heterogeneous electron transfer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransferKinetics {
    /// Standard heterogeneous rate constant, cm · s⁻¹.
    pub k0_cm_per_s: f64,
    /// Cathodic transfer coefficient α (0 < α < 1, usually ≈ 0.5).
    pub alpha: f64,
    /// Electrons transferred per event.
    pub n: u32,
}

impl TransferKinetics {
    /// Symmetric (α = 0.5) single-electron kinetics with the given `k⁰`.
    #[must_use]
    pub fn symmetric(k0_cm_per_s: f64) -> TransferKinetics {
        TransferKinetics {
            k0_cm_per_s,
            alpha: 0.5,
            n: 1,
        }
    }

    /// Dimensionless reversibility parameter Λ = k⁰/√(D·f·v) used to
    /// classify a voltammetric experiment (Matsuda–Ayabe): Λ ≳ 15 is
    /// reversible, 15 > Λ > 10⁻³ quasireversible, below that irreversible.
    ///
    /// `d` is the diffusion coefficient in cm²/s, `scan_rate_v_per_s` the
    /// sweep rate, `t` the temperature.
    #[must_use]
    pub fn matsuda_ayabe(&self, d: f64, scan_rate_v_per_s: f64, t: Kelvin) -> f64 {
        let f_over_rt = FARADAY / (GAS_CONSTANT * t.as_kelvin());
        self.k0_cm_per_s / (d * f_over_rt * scan_rate_v_per_s).sqrt()
    }

    /// Reversibility classification per Matsuda–Ayabe.
    #[must_use]
    pub fn regime(&self, d: f64, scan_rate_v_per_s: f64, t: Kelvin) -> Reversibility {
        let lambda = self.matsuda_ayabe(d, scan_rate_v_per_s, t);
        if lambda >= 15.0 {
            Reversibility::Reversible
        } else if lambda >= 1e-3 {
            Reversibility::Quasireversible
        } else {
            Reversibility::Irreversible
        }
    }
}

/// Kinetic regime of a voltammetric experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Reversibility {
    /// Electron transfer fast enough that Nernst equilibrium holds at the
    /// surface throughout the sweep.
    Reversible,
    /// Finite kinetics distort and separate the peaks.
    Quasireversible,
    /// Transfer so slow only the forward branch is seen.
    Irreversible,
}

/// Exchange current density `j₀ = n·F·k⁰·C` (A · cm⁻²) for a couple with
/// equal bulk oxidized/reduced concentrations `c`.
///
/// # Examples
///
/// ```
/// use bios_electrochem::butler_volmer::exchange_current_density;
/// use bios_units::Molar;
///
/// let j0 = exchange_current_density(1, 1e-3, Molar::from_milli_molar(1.0));
/// assert!(j0 > 0.0);
/// ```
#[must_use]
pub fn exchange_current_density(n: u32, k0_cm_per_s: f64, c: Molar) -> f64 {
    // mol/L → mol/cm³ is a factor of 1e-3.
    f64::from(n) * FARADAY * k0_cm_per_s * c.as_molar() * 1e-3
}

/// Butler–Volmer current for overpotential `eta` on electrode area `area`.
///
/// `i = j₀·A·[exp((1−α)·nF·η/RT) − exp(−α·nF·η/RT)]`
///
/// Anodic currents are positive by convention.
///
/// # Examples
///
/// ```
/// use bios_electrochem::butler_volmer::{butler_volmer_current, TransferKinetics};
/// use bios_units::{Kelvin, Molar, SquareCm, Volts};
///
/// let k = TransferKinetics::symmetric(1e-3);
/// let i = butler_volmer_current(
///     &k,
///     Molar::from_milli_molar(1.0),
///     SquareCm::from_square_cm(0.1),
///     Volts::from_milli_volts(100.0),
///     Kelvin::ROOM,
/// );
/// assert!(i.as_amps() > 0.0);
/// ```
#[must_use]
pub fn butler_volmer_current(
    kinetics: &TransferKinetics,
    bulk: Molar,
    area: SquareCm,
    eta: Volts,
    t: Kelvin,
) -> Amperes {
    let j0 = exchange_current_density(kinetics.n, kinetics.k0_cm_per_s, bulk);
    let nf_over_rt = f64::from(kinetics.n) * FARADAY / (GAS_CONSTANT * t.as_kelvin());
    let x = nf_over_rt * eta.as_volts();
    let anodic = ((1.0 - kinetics.alpha) * x).exp();
    let cathodic = (-kinetics.alpha * x).exp();
    Amperes::from_amps(j0 * area.as_square_cm() * (anodic - cathodic))
}

/// Small-overpotential (linearized) charge-transfer resistance
/// `R_ct = RT/(nF·j₀·A)` in ohms.
///
/// Faradic impedimetric biosensors (§2.3) measure exactly this quantity.
///
/// # Examples
///
/// ```
/// use bios_electrochem::butler_volmer::{charge_transfer_resistance, TransferKinetics};
/// use bios_units::{Kelvin, Molar, SquareCm};
///
/// let slow = TransferKinetics::symmetric(1e-5);
/// let fast = TransferKinetics::symmetric(1e-2);
/// let c = Molar::from_milli_molar(1.0);
/// let a = SquareCm::from_square_cm(0.1);
/// let r_slow = charge_transfer_resistance(&slow, c, a, Kelvin::ROOM);
/// let r_fast = charge_transfer_resistance(&fast, c, a, Kelvin::ROOM);
/// assert!(r_slow > r_fast);
/// ```
#[must_use]
pub fn charge_transfer_resistance(
    kinetics: &TransferKinetics,
    bulk: Molar,
    area: SquareCm,
    t: Kelvin,
) -> f64 {
    let j0 = exchange_current_density(kinetics.n, kinetics.k0_cm_per_s, bulk);
    GAS_CONSTANT * t.as_kelvin() / (f64::from(kinetics.n) * FARADAY * j0 * area.as_square_cm())
}

/// Tafel slope `b = 2.303·RT/(α·n·F)` in volts per decade of current —
/// the high-overpotential asymptote of Butler–Volmer.
#[must_use]
pub fn tafel_slope(kinetics: &TransferKinetics, t: Kelvin) -> Volts {
    Volts::from_volts(
        std::f64::consts::LN_10 * GAS_CONSTANT * t.as_kelvin()
            / (kinetics.alpha * f64::from(kinetics.n) * FARADAY),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kin() -> TransferKinetics {
        TransferKinetics::symmetric(1e-3)
    }

    #[test]
    fn zero_overpotential_gives_zero_net_current() {
        let i = butler_volmer_current(
            &kin(),
            Molar::from_milli_molar(1.0),
            SquareCm::from_square_cm(0.1),
            Volts::ZERO,
            Kelvin::ROOM,
        );
        assert!(i.as_amps().abs() < 1e-18);
    }

    #[test]
    fn current_is_antisymmetric_for_symmetric_alpha() {
        let c = Molar::from_milli_molar(1.0);
        let a = SquareCm::from_square_cm(0.1);
        let eta = Volts::from_milli_volts(50.0);
        let fwd = butler_volmer_current(&kin(), c, a, eta, Kelvin::ROOM);
        let rev = butler_volmer_current(&kin(), c, a, -eta, Kelvin::ROOM);
        assert!((fwd.as_amps() + rev.as_amps()).abs() < 1e-15);
    }

    #[test]
    fn current_scales_with_k0() {
        let c = Molar::from_milli_molar(1.0);
        let a = SquareCm::from_square_cm(0.1);
        let eta = Volts::from_milli_volts(20.0);
        let slow =
            butler_volmer_current(&TransferKinetics::symmetric(1e-4), c, a, eta, Kelvin::ROOM);
        let fast =
            butler_volmer_current(&TransferKinetics::symmetric(1e-3), c, a, eta, Kelvin::ROOM);
        assert!((fast.as_amps() / slow.as_amps() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn tafel_slope_near_118_mv_per_decade() {
        // α = 0.5, n = 1 at room temperature → ≈ 118 mV/decade.
        let b = tafel_slope(&kin(), Kelvin::ROOM);
        assert!((b.as_milli_volts() - 118.3).abs() < 0.5);
    }

    #[test]
    fn matsuda_ayabe_classification() {
        // Very fast kinetics at slow scan → reversible.
        let fast = TransferKinetics::symmetric(1.0);
        assert_eq!(
            fast.regime(1e-5, 0.05, Kelvin::ROOM),
            Reversibility::Reversible
        );
        // Sluggish kinetics at fast scan → irreversible.
        let slow = TransferKinetics::symmetric(1e-8);
        assert_eq!(
            slow.regime(1e-5, 1.0, Kelvin::ROOM),
            Reversibility::Irreversible
        );
        // In between → quasireversible.
        let mid = TransferKinetics::symmetric(1e-3);
        assert_eq!(
            mid.regime(1e-5, 0.1, Kelvin::ROOM),
            Reversibility::Quasireversible
        );
    }

    #[test]
    fn charge_transfer_resistance_decreases_with_concentration() {
        let a = SquareCm::from_square_cm(0.1);
        let r1 = charge_transfer_resistance(&kin(), Molar::from_milli_molar(1.0), a, Kelvin::ROOM);
        let r2 = charge_transfer_resistance(&kin(), Molar::from_milli_molar(2.0), a, Kelvin::ROOM);
        assert!((r1 / r2 - 2.0).abs() < 1e-9);
    }
}

//! Cooperative cancellation for long-running solver loops.
//!
//! The diffusion and voltammetry integrators can run for millions of
//! inner steps. When a fleet watchdog decides a job has blown its
//! deadline, the only clean way to reclaim the worker is for the solver
//! to *agree to stop*: preemption would leave shared state poisoned.
//! [`CheckPoint`] is that agreement — solvers poll it every few dozen
//! steps and bail out with `ElectrochemError::Cancelled` when it trips.
//!
//! Polling is deliberately coarse (every [`POLL_INTERVAL`] steps) so
//! the healthy fast path pays one relaxed atomic load per interval,
//! which is unmeasurable against the stencil arithmetic.

use std::sync::atomic::{AtomicBool, Ordering};

/// How many inner solver steps run between cancellation polls.
pub const POLL_INTERVAL: usize = 64;

/// A cancellation point a solver polls from inside its inner loop.
///
/// Implementations must be cheap (a relaxed atomic load) and must be
/// monotonic: once `cancelled` returns `true` it keeps returning
/// `true` for the lifetime of the computation.
pub trait CheckPoint: Sync {
    /// True when the computation should stop at the next opportunity.
    fn cancelled(&self) -> bool;
}

/// The trivial checkpoint: never cancels. Lets unchecked entry points
/// share the checked solver bodies at zero behavioral cost.
#[derive(Debug, Clone, Copy, Default)]
pub struct NeverCancel;

impl CheckPoint for NeverCancel {
    fn cancelled(&self) -> bool {
        false
    }
}

/// A shared flag is the natural checkpoint: the watchdog stores `true`,
/// the solver observes it at its next poll.
impl CheckPoint for AtomicBool {
    fn cancelled(&self) -> bool {
        self.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn never_cancel_never_cancels() {
        assert!(!NeverCancel.cancelled());
    }

    #[test]
    fn atomic_bool_tracks_store() {
        let flag = Arc::new(AtomicBool::new(false));
        assert!(!flag.cancelled());
        flag.store(true, Ordering::Relaxed);
        assert!(flag.cancelled());
    }
}

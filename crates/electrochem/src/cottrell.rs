//! The Cottrell equation: diffusion-limited chronoamperometry.
//!
//! The oxidase sensors in the paper are read out by chronoamperometry —
//! the working electrode is held at +650 mV and the current sampled once
//! the transient settles. The Cottrell relation is the ideal response to
//! the potential step and anchors the steady-state current model.

use bios_units::{Amperes, DiffusionCoefficient, Molar, Seconds, SquareCm, FARADAY};

/// Current `t` seconds after a potential step into the diffusion-limited
/// regime:
///
/// `i(t) = n·F·A·C·√(D/(π·t))`
///
/// # Panics
///
/// Panics if `t` is zero (the ideal Cottrell current diverges at `t = 0`)
/// or if `n == 0`.
///
/// # Examples
///
/// ```
/// use bios_electrochem::cottrell::cottrell_current;
/// use bios_units::{DiffusionCoefficient, Molar, SquareCm, Seconds};
///
/// let d = DiffusionCoefficient::from_square_cm_per_second(1e-5);
/// let i1 = cottrell_current(1, SquareCm::from_square_cm(0.1), d,
///                           Molar::from_milli_molar(1.0), Seconds::from_seconds(1.0));
/// let i4 = cottrell_current(1, SquareCm::from_square_cm(0.1), d,
///                           Molar::from_milli_molar(1.0), Seconds::from_seconds(4.0));
/// // i ∝ 1/√t: quadrupling t halves the current.
/// assert!((i1.as_amps() / i4.as_amps() - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn cottrell_current(
    n: u32,
    area: SquareCm,
    d: DiffusionCoefficient,
    bulk: Molar,
    t: Seconds,
) -> Amperes {
    assert!(n > 0, "electron count must be at least 1");
    assert!(t.as_seconds() > 0.0, "Cottrell current diverges at t = 0");
    // mol/L → mol/cm³.
    let c = bulk.as_molar() * 1e-3;
    let i = f64::from(n)
        * FARADAY
        * area.as_square_cm()
        * c
        * (d.as_square_cm_per_second() / (std::f64::consts::PI * t.as_seconds())).sqrt();
    Amperes::from_amps(i)
}

/// Full Cottrell transient sampled at `times`.
///
/// # Panics
///
/// Panics under the same conditions as [`cottrell_current`].
#[must_use]
pub fn cottrell_transient(
    n: u32,
    area: SquareCm,
    d: DiffusionCoefficient,
    bulk: Molar,
    times: &[Seconds],
) -> Vec<Amperes> {
    times
        .iter()
        .map(|&t| cottrell_current(n, area, d, bulk, t))
        .collect()
}

/// Steady-state current through a stagnant diffusion layer of thickness
/// `delta_cm` (Nernst diffusion-layer model):
///
/// `i_ss = n·F·A·D·C/δ`
///
/// Real chronoamperometric sensors settle to this plateau (set by
/// convection or by the enzyme-film thickness) instead of decaying
/// forever; it is the current the paper's calibration points sample.
///
/// # Panics
///
/// Panics if `delta_cm` is not positive or `n == 0`.
///
/// # Examples
///
/// ```
/// use bios_electrochem::cottrell::steady_state_current;
/// use bios_units::{DiffusionCoefficient, Molar, SquareCm};
///
/// let i = steady_state_current(
///     2,
///     SquareCm::from_square_mm(0.25),
///     DiffusionCoefficient::from_square_cm_per_second(1.43e-5),
///     Molar::from_milli_molar(0.5),
///     20e-4, // 20 µm diffusion layer
/// );
/// assert!(i.as_micro_amps() > 0.0);
/// ```
#[must_use]
pub fn steady_state_current(
    n: u32,
    area: SquareCm,
    d: DiffusionCoefficient,
    bulk: Molar,
    delta_cm: f64,
) -> Amperes {
    assert!(n > 0, "electron count must be at least 1");
    assert!(
        delta_cm > 0.0 && delta_cm.is_finite(),
        "diffusion layer thickness must be positive"
    );
    let c = bulk.as_molar() * 1e-3;
    Amperes::from_amps(
        f64::from(n) * FARADAY * area.as_square_cm() * d.as_square_cm_per_second() * c / delta_cm,
    )
}

/// Time after the step at which the Cottrell current decays to the
/// steady-state plateau — the crossover where sampling should happen.
///
/// Setting `i_cottrell(t*) = i_ss` gives `t* = D·δ²/(π·D²) = δ²/(π·D)`.
///
/// # Panics
///
/// Panics if `delta_cm` is not positive.
#[must_use]
pub fn settling_time(d: DiffusionCoefficient, delta_cm: f64) -> Seconds {
    assert!(
        delta_cm > 0.0 && delta_cm.is_finite(),
        "diffusion layer thickness must be positive"
    );
    Seconds::from_seconds(
        delta_cm * delta_cm / (std::f64::consts::PI * d.as_square_cm_per_second()),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::from_square_cm_per_second(1e-5)
    }

    #[test]
    fn inverse_sqrt_time_decay() {
        let a = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(1.0);
        let i1 = cottrell_current(1, a, d(), c, Seconds::from_seconds(0.25));
        let i2 = cottrell_current(1, a, d(), c, Seconds::from_seconds(1.0));
        assert!((i1.as_amps() / i2.as_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn linear_in_concentration_and_area() {
        let a = SquareCm::from_square_cm(0.1);
        let t = Seconds::from_seconds(1.0);
        let i1 = cottrell_current(1, a, d(), Molar::from_milli_molar(1.0), t);
        let i2 = cottrell_current(1, a, d(), Molar::from_milli_molar(3.0), t);
        assert!((i2.as_amps() / i1.as_amps() - 3.0).abs() < 1e-12);
        let i3 = cottrell_current(1, a * 2.0, d(), Molar::from_milli_molar(1.0), t);
        assert!((i3.as_amps() / i1.as_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_magnitude() {
        // n=1, A=1 cm², D=1e-5 cm²/s, C=1 mM, t=1 s:
        // i = 96485 * 1e-6 mol/cm³ * sqrt(1e-5/π) ≈ 172 µA... let's verify
        // against the closed form itself evaluated by hand:
        let i = cottrell_current(
            1,
            SquareCm::from_square_cm(1.0),
            d(),
            Molar::from_milli_molar(1.0),
            Seconds::from_seconds(1.0),
        );
        let expected = 96485.33212 * 1e-6 * (1e-5 / std::f64::consts::PI).sqrt();
        assert!((i.as_amps() - expected).abs() / expected < 1e-12);
        // ≈ 0.172 mA·cm⁻²·mM⁻¹ scale — sanity on the order of magnitude.
        assert!(i.as_micro_amps() > 100.0 && i.as_micro_amps() < 300.0);
    }

    #[test]
    fn transient_is_monotone_decreasing() {
        let times: Vec<Seconds> = (1..10).map(|k| Seconds::from_seconds(k as f64)).collect();
        let trace = cottrell_transient(
            1,
            SquareCm::from_square_cm(0.1),
            d(),
            Molar::from_milli_molar(1.0),
            &times,
        );
        for w in trace.windows(2) {
            assert!(w[0] > w[1]);
        }
    }

    #[test]
    fn steady_state_scales_inverse_delta() {
        let a = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(1.0);
        let thin = steady_state_current(1, a, d(), c, 10e-4);
        let thick = steady_state_current(1, a, d(), c, 20e-4);
        assert!((thin.as_amps() / thick.as_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn settling_time_matches_crossover() {
        let delta = 20e-4;
        let ts = settling_time(d(), delta);
        let a = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(1.0);
        let cot = cottrell_current(1, a, d(), c, ts);
        let ss = steady_state_current(1, a, d(), c, delta);
        assert!((cot.as_amps() / ss.as_amps() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "diverges")]
    fn zero_time_panics() {
        let _ = cottrell_current(
            1,
            SquareCm::from_square_cm(0.1),
            d(),
            Molar::from_milli_molar(1.0),
            Seconds::ZERO,
        );
    }
}

//! Electrode degradation: fouling and reference drift.
//!
//! Two failure modes dominate real amperometric sensors operated in
//! biological matrices (the paper's §2.5 lifetime discussion):
//!
//! 1. **Fouling** — proteins and oxidation products passivate a fraction
//!    `θ` of the working-electrode area. To first order the faradaic
//!    current scales with the *free* area, `i = i₀·(1 − θ)`.
//! 2. **Reference drift** — a pseudo-reference (screen-printed Ag/AgCl)
//!    walks by ΔE, shifting the true overpotential applied to the
//!    working electrode. On the mass-transport plateau extra
//!    overpotential gains nothing, but drifting *toward* the foot of the
//!    wave suppresses the current along the Tafel slope,
//!    `i/i₀ = exp(α·n·f·ΔE)` capped at 1.
//!
//! [`ElectrodeHealth`] composes both into a single current multiplier
//! that `bios-core` applies when a fault plan is armed; a pristine
//! health is an exact no-op.

use bios_faults::{Faultable, RealizedFaults};
use bios_units::{nearly_zero, Kelvin, Volts, FARADAY, GAS_CONSTANT};

use crate::error::ElectrochemError;

/// Degradation state of a working/reference electrode pair.
///
/// # Examples
///
/// ```
/// use bios_electrochem::degradation::ElectrodeHealth;
/// use bios_units::{Kelvin, Volts};
///
/// let healthy = ElectrodeHealth::pristine();
/// assert_eq!(healthy.current_factor(1, 0.5, Kelvin::ROOM), 1.0);
///
/// let fouled = ElectrodeHealth::new(0.3, Volts::from_milli_volts(-40.0))
///     .expect("valid health");
/// let factor = fouled.current_factor(1, 0.5, Kelvin::ROOM);
/// assert!(factor < 0.7 && factor > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ElectrodeHealth {
    /// Fraction of working-electrode area passivated, `[0, 1)`.
    fouling_coverage: f64,
    /// Reference-electrode potential error (true − nominal).
    reference_drift: Volts,
}

impl ElectrodeHealth {
    /// A factory-fresh electrode pair: no fouling, no drift.
    #[must_use]
    pub fn pristine() -> ElectrodeHealth {
        ElectrodeHealth {
            fouling_coverage: 0.0,
            reference_drift: Volts::ZERO,
        }
    }

    /// Builds a health state, validating that coverage lies in `[0, 1)`
    /// and the drift is finite.
    pub fn new(
        fouling_coverage: f64,
        reference_drift: Volts,
    ) -> Result<ElectrodeHealth, ElectrochemError> {
        if !(0.0..1.0).contains(&fouling_coverage) || !fouling_coverage.is_finite() {
            return Err(ElectrochemError::InvalidParameter {
                name: "fouling coverage",
                value: fouling_coverage,
            });
        }
        if !reference_drift.as_volts().is_finite() {
            return Err(ElectrochemError::InvalidParameter {
                name: "reference drift",
                value: reference_drift.as_volts(),
            });
        }
        Ok(ElectrodeHealth {
            fouling_coverage,
            reference_drift,
        })
    }

    /// Passivated area fraction.
    #[must_use]
    pub fn fouling_coverage(&self) -> f64 {
        self.fouling_coverage
    }

    /// Reference potential error.
    #[must_use]
    pub fn reference_drift(&self) -> Volts {
        self.reference_drift
    }

    /// True when the pair is factory-fresh (both factors exactly 1).
    #[must_use]
    pub fn is_pristine(&self) -> bool {
        nearly_zero(self.fouling_coverage) && self.reference_drift == Volts::ZERO
    }

    /// Area factor from fouling: the free fraction `1 − θ`.
    #[must_use]
    pub fn fouling_factor(&self) -> f64 {
        1.0 - self.fouling_coverage
    }

    /// Current factor from reference drift for an `n`-electron couple
    /// with transfer coefficient `alpha` at `temperature`:
    /// `min(1, exp(α·n·F·ΔE/(R·T)))`. Positive drift (more
    /// overpotential) is capped at 1 — the sensor already sits on the
    /// mass-transport plateau; negative drift slides down the Tafel
    /// slope exponentially.
    #[must_use]
    pub fn drift_factor(&self, n: u32, alpha: f64, temperature: Kelvin) -> f64 {
        let de = self.reference_drift.as_volts();
        if nearly_zero(de) {
            return 1.0;
        }
        let f = FARADAY / (GAS_CONSTANT * temperature.as_kelvin());
        (alpha * f64::from(n) * f * de).exp().min(1.0)
    }

    /// Combined multiplier on the healthy faradaic current.
    #[must_use]
    pub fn current_factor(&self, n: u32, alpha: f64, temperature: Kelvin) -> f64 {
        self.fouling_factor() * self.drift_factor(n, alpha, temperature)
    }
}

impl Default for ElectrodeHealth {
    fn default() -> Self {
        Self::pristine()
    }
}

impl Faultable for ElectrodeHealth {
    /// Applies injected fouling and reference drift; a healthy
    /// realization returns the state unchanged.
    fn with_faults(self, faults: &RealizedFaults) -> Self {
        if faults.fouling_coverage <= 0.0 && nearly_zero(faults.reference_drift_volts) {
            return self;
        }
        let coverage = (self.fouling_coverage + faults.fouling_coverage).clamp(0.0, 0.99);
        let drift =
            Volts::from_volts(self.reference_drift.as_volts() + faults.reference_drift_volts);
        ElectrodeHealth {
            fouling_coverage: coverage,
            reference_drift: drift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pristine_is_identity() {
        let h = ElectrodeHealth::pristine();
        assert!(h.is_pristine());
        assert_eq!(h.current_factor(1, 0.5, Kelvin::ROOM), 1.0);
        assert_eq!(h.current_factor(2, 0.3, Kelvin::from_celsius(37.0)), 1.0);
    }

    #[test]
    fn fouling_scales_linearly_with_free_area() {
        let h = ElectrodeHealth::new(0.4, Volts::ZERO).unwrap();
        assert!((h.current_factor(1, 0.5, Kelvin::ROOM) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn negative_drift_follows_tafel_slope() {
        let h = ElectrodeHealth::new(0.0, Volts::from_milli_volts(-59.0)).unwrap();
        let factor = h.drift_factor(1, 0.5, Kelvin::ROOM);
        // α·f·ΔE ≈ 0.5 · 38.92 V⁻¹ · −0.059 V ≈ −1.148 → e^−1.148 ≈ 0.317.
        assert!((factor - (-1.148f64).exp()).abs() < 0.01, "factor {factor}");
    }

    #[test]
    fn positive_drift_is_capped_on_the_plateau() {
        let h = ElectrodeHealth::new(0.0, Volts::from_milli_volts(80.0)).unwrap();
        assert_eq!(h.drift_factor(1, 0.5, Kelvin::ROOM), 1.0);
    }

    #[test]
    fn invalid_inputs_are_typed_errors() {
        assert!(matches!(
            ElectrodeHealth::new(1.0, Volts::ZERO),
            Err(ElectrochemError::InvalidParameter {
                name: "fouling coverage",
                ..
            })
        ));
        assert!(matches!(
            ElectrodeHealth::new(-0.1, Volts::ZERO),
            Err(ElectrochemError::InvalidParameter { .. })
        ));
        assert!(matches!(
            ElectrodeHealth::new(0.0, Volts::from_volts(f64::NAN)),
            Err(ElectrochemError::InvalidParameter {
                name: "reference drift",
                ..
            })
        ));
    }

    #[test]
    fn healthy_faults_leave_state_untouched() {
        let h = ElectrodeHealth::pristine();
        assert_eq!(h.with_faults(&RealizedFaults::healthy()), h);
    }

    #[test]
    fn injected_fouling_and_drift_compose() {
        let mut faults = RealizedFaults::healthy();
        faults.fouling_coverage = 0.25;
        faults.reference_drift_volts = -0.02;
        let h = ElectrodeHealth::pristine().with_faults(&faults);
        assert!((h.fouling_coverage() - 0.25).abs() < 1e-12);
        assert!((h.reference_drift().as_volts() + 0.02).abs() < 1e-12);
        assert!(h.current_factor(1, 0.5, Kelvin::ROOM) < 0.75);
    }
}

//! One-dimensional finite-difference diffusion solver.
//!
//! Semi-infinite planar diffusion toward the electrode is the transport
//! regime of every sensor in the paper (planar SPE and microfabricated
//! electrodes, quiescent drop of sample). The grid discretizes
//!
//! `∂C/∂t = D·∂²C/∂x²  (+ source)`
//!
//! with the electrode at `x = 0` and bulk solution at the far edge.
//!
//! Two integrators are provided: an explicit FTCS step (simple, stability
//! limited to `D·Δt/Δx² ≤ 0.5`) and an unconditionally stable
//! Crank–Nicolson step solved by the Thomas tridiagonal algorithm.

use bios_units::{DiffusionCoefficient, Molar, Seconds};

use crate::checkpoint::{CheckPoint, NeverCancel, POLL_INTERVAL};
use crate::error::ElectrochemError;

/// Boundary condition applied at the electrode surface (`x = 0`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SurfaceBoundary {
    /// Fixed surface concentration (mol/cm³) — e.g. 0 for a
    /// diffusion-limited oxidation (Cottrell conditions).
    Concentration(f64),
    /// Fixed outward flux (mol · cm⁻² · s⁻¹); positive flux consumes
    /// material at the surface. `Flux(0.0)` is a blocking (no-flux) wall.
    Flux(f64),
}

/// A 1-D diffusion field on a uniform grid.
///
/// Concentrations are stored in mol/cm³ internally (consistent with CGS
/// transport constants); construction and readout use [`Molar`].
///
/// # Examples
///
/// ```
/// use bios_electrochem::diffusion::{DiffusionGrid, SurfaceBoundary};
/// use bios_units::{DiffusionCoefficient, Molar, Seconds};
///
/// let mut grid = DiffusionGrid::new(
///     DiffusionCoefficient::from_square_cm_per_second(1e-5),
///     Molar::from_milli_molar(1.0),
///     50e-4,  // 50 µm domain
///     100,    // nodes
/// )
/// .expect("valid grid");
/// grid.set_surface(SurfaceBoundary::Concentration(0.0));
/// grid.advance(Seconds::from_millis(100.0), Seconds::from_millis(1.0));
/// // Material has been consumed at the electrode:
/// assert!(grid.concentration_at(0).as_milli_molar() < 1e-6);
/// assert!(grid.flux_mol_per_cm2_s() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionGrid {
    /// Node concentrations, mol/cm³; index 0 is the electrode surface.
    c: Vec<f64>,
    /// Diffusion coefficient, cm²/s.
    d: f64,
    /// Node spacing, cm.
    dx: f64,
    /// Bulk concentration pinned at the far boundary, mol/cm³.
    bulk: f64,
    surface: SurfaceBoundary,
    /// Scratch buffers for the tridiagonal solver.
    scratch_c: Vec<f64>,
    scratch_d: Vec<f64>,
}

impl DiffusionGrid {
    /// Creates a grid of `nodes` points spanning `length_cm`, initially at
    /// uniform `bulk` concentration with a blocking electrode.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::GridTooSmall`] if `nodes < 3` and
    /// [`ElectrochemError::InvalidLength`] if `length_cm` is not a
    /// positive finite number.
    pub fn new(
        d: DiffusionCoefficient,
        bulk: Molar,
        length_cm: f64,
        nodes: usize,
    ) -> Result<DiffusionGrid, ElectrochemError> {
        if nodes < 3 {
            return Err(ElectrochemError::GridTooSmall {
                requested: nodes,
                minimum: 3,
            });
        }
        if !(length_cm > 0.0 && length_cm.is_finite()) {
            return Err(ElectrochemError::InvalidLength { length_cm });
        }
        let bulk_cgs = bulk.as_molar() * 1e-3;
        Ok(DiffusionGrid {
            c: vec![bulk_cgs; nodes],
            d: d.as_square_cm_per_second(),
            dx: length_cm / (nodes - 1) as f64,
            bulk: bulk_cgs,
            surface: SurfaceBoundary::Flux(0.0),
            scratch_c: vec![0.0; nodes],
            scratch_d: vec![0.0; nodes],
        })
    }

    /// Number of grid nodes.
    #[must_use]
    pub fn nodes(&self) -> usize {
        self.c.len()
    }

    /// Node spacing in cm.
    #[must_use]
    pub fn dx_cm(&self) -> f64 {
        self.dx
    }

    /// Sets the electrode-surface boundary condition.
    pub fn set_surface(&mut self, surface: SurfaceBoundary) {
        self.surface = surface;
    }

    /// Replaces the pinned bulk concentration (a standard-addition step).
    pub fn set_bulk(&mut self, bulk: Molar) {
        self.bulk = bulk.as_molar() * 1e-3;
        let last = self.c.len() - 1;
        self.c[last] = self.bulk;
    }

    /// Resets every node to the bulk concentration.
    pub fn reset(&mut self) {
        let bulk = self.bulk;
        self.c.fill(bulk);
    }

    /// Concentration at node `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of bounds.
    #[must_use]
    pub fn concentration_at(&self, i: usize) -> Molar {
        Molar::from_molar(self.c[i] * 1e3)
    }

    /// The full profile as molar concentrations.
    #[must_use]
    pub fn profile(&self) -> Vec<Molar> {
        self.c.iter().map(|&v| Molar::from_molar(v * 1e3)).collect()
    }

    /// Total moles per unit area in the domain (the conserved quantity
    /// under no-flux boundaries), mol/cm².
    #[must_use]
    pub fn inventory_mol_per_cm2(&self) -> f64 {
        // Trapezoidal rule.
        let n = self.c.len();
        let interior: f64 = self.c[1..n - 1].iter().sum();
        (interior + 0.5 * (self.c[0] + self.c[n - 1])) * self.dx
    }

    /// Diffusive flux into the electrode, mol · cm⁻² · s⁻¹ (positive when
    /// material flows toward the surface). Uses a second-order one-sided
    /// difference.
    #[must_use]
    pub fn flux_mol_per_cm2_s(&self) -> f64 {
        match self.surface {
            SurfaceBoundary::Flux(f) => f,
            SurfaceBoundary::Concentration(_) => {
                // dC/dx at x=0 via 3-point forward difference.
                let grad = (-3.0 * self.c[0] + 4.0 * self.c[1] - self.c[2]) / (2.0 * self.dx);
                self.d * grad
            }
        }
    }

    /// The largest explicit time step that is stable, `Δx²/(2D)`.
    #[must_use]
    pub fn max_stable_dt(&self) -> Seconds {
        Seconds::from_seconds(0.5 * self.dx * self.dx / self.d)
    }

    /// Advances one explicit (FTCS) step of length `dt`.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::UnstableStep`] if `dt` exceeds the
    /// stability limit [`Self::max_stable_dt`].
    pub fn step_explicit(&mut self, dt: Seconds) -> Result<(), ElectrochemError> {
        let r = self.d * dt.as_seconds() / (self.dx * self.dx);
        if r > 0.5 + 1e-12 {
            return Err(ElectrochemError::UnstableStep { ratio: r });
        }
        self.step_explicit_unchecked(dt);
        Ok(())
    }

    /// FTCS update body; callers must have verified stability.
    fn step_explicit_unchecked(&mut self, dt: Seconds) {
        let r = self.d * dt.as_seconds() / (self.dx * self.dx);
        debug_assert!(r <= 0.5 + 1e-12, "unchecked explicit step with r = {r}");
        let n = self.c.len();
        let old = self.c.clone();
        for i in 1..n - 1 {
            self.c[i] = old[i] + r * (old[i + 1] - 2.0 * old[i] + old[i - 1]);
        }
        self.apply_boundaries(r, &old);
    }

    fn apply_boundaries(&mut self, r: f64, old: &[f64]) {
        let n = self.c.len();
        // Far edge: pinned to bulk (semi-infinite approximation).
        self.c[n - 1] = self.bulk;
        match self.surface {
            SurfaceBoundary::Concentration(cs) => {
                self.c[0] = cs;
            }
            SurfaceBoundary::Flux(f) => {
                // Ghost-node treatment: C[-1] = C[1] - 2·Δx·f/D (outward
                // flux f consumes material).
                let ghost = old[1] - 2.0 * self.dx * f / self.d;
                self.c[0] = old[0] + r * (old[1] - 2.0 * old[0] + ghost);
            }
        }
    }

    /// Advances one Crank–Nicolson step of length `dt` (unconditionally
    /// stable).
    pub fn step_crank_nicolson(&mut self, dt: Seconds) {
        let dt = dt.as_seconds();
        let r = self.d * dt / (self.dx * self.dx);
        let n = self.c.len();
        // Build RHS = (I + r/2·L)·c  and solve (I − r/2·L)·c_new = RHS
        // on interior nodes, with boundaries folded in.
        let half = 0.5 * r;

        // Determine boundary values for the new time level.
        let (c0_new_known, ghost_flux) = match self.surface {
            SurfaceBoundary::Concentration(cs) => (Some(cs), 0.0),
            SurfaceBoundary::Flux(f) => (None, f),
        };
        let c_last = self.bulk;

        // We solve for nodes 0..n-1 where node n-1 is Dirichlet bulk and
        // node 0 is either Dirichlet or a flux (ghost) node.
        // Tridiagonal system a_i·x_{i-1} + b_i·x_i + c_i·x_{i+1} = d_i.
        let m = n - 1; // unknowns are indices 0..m (exclusive of last node)
        let a = -half;
        let b_diag = 1.0 + r;
        let cc = -half;

        let rhs = &mut self.scratch_d;
        rhs.resize(m, 0.0);
        let cprime = &mut self.scratch_c;
        cprime.resize(m, 0.0);

        // Assemble RHS from the old field (explicit half).
        #[allow(clippy::needless_range_loop)] // i indexes three arrays with offsets
        for i in 0..m {
            let left = if i == 0 {
                match self.surface {
                    SurfaceBoundary::Concentration(cs) => cs,
                    SurfaceBoundary::Flux(f) => self.c[1] - 2.0 * self.dx * f / self.d,
                }
            } else {
                self.c[i - 1]
            };
            let right = if i == m - 1 { self.c[m] } else { self.c[i + 1] };
            rhs[i] = self.c[i] + half * (left - 2.0 * self.c[i] + right);
        }

        // Fold in new-time boundary contributions.
        // Far boundary (node m == n-1) is Dirichlet at bulk:
        rhs[m - 1] += half * c_last;

        match c0_new_known {
            Some(cs) => {
                // Node 0 is known: replace row 0 with identity.
                rhs[0] = cs;
            }
            None => {
                // Flux BC: ghost node x_{-1} = x_1 − 2Δx·f/D couples row 0
                // to x_1 twice.
                rhs[0] += half * (-2.0 * self.dx * ghost_flux / self.d);
            }
        }

        // Thomas sweep. Row 0 is special under each BC.
        let (b0, c0) = match c0_new_known {
            Some(_) => (1.0, 0.0),
            None => (b_diag, 2.0 * cc), // ghost folds the sub-diagonal in
        };
        cprime[0] = c0 / b0;
        rhs[0] /= b0;
        for i in 1..m {
            let ci = if i == m - 1 { 0.0 } else { cc };
            let denom = b_diag - a * cprime[i - 1];
            cprime[i] = ci / denom;
            rhs[i] = (rhs[i] - a * rhs[i - 1]) / denom;
        }
        // Back substitution.
        self.c[m] = c_last;
        self.c[m - 1] = rhs[m - 1];
        for i in (0..m - 1).rev() {
            self.c[i] = rhs[i] - cprime[i] * self.c[i + 1];
        }
    }

    /// Runs the simulation for `duration` using steps of `dt`, choosing
    /// the explicit integrator when stable and Crank–Nicolson otherwise.
    pub fn advance(&mut self, duration: Seconds, dt: Seconds) {
        // NeverCancel never trips, and an already-finite field that goes
        // non-finite would have produced the same garbage before the
        // guard existed — stopping early changes nothing observable.
        let _ = self.advance_checked(duration, dt, &NeverCancel);
    }

    /// [`Self::advance`] with cooperative cancellation and a numerical
    /// guardrail: every [`POLL_INTERVAL`] steps the solver polls `cp`
    /// and scans the field for NaN/±Inf.
    ///
    /// # Errors
    ///
    /// * [`ElectrochemError::Cancelled`] — `cp` tripped; the field holds
    ///   the state at the last completed step.
    /// * [`ElectrochemError::NonFinite`] — the solution diverged; the
    ///   field must not be trusted (or cached) by the caller.
    pub fn advance_checked(
        &mut self,
        duration: Seconds,
        dt: Seconds,
        cp: &dyn CheckPoint,
    ) -> Result<(), ElectrochemError> {
        let steps = (duration.as_seconds() / dt.as_seconds()).round() as usize;
        let explicit_ok = dt <= self.max_stable_dt();
        for step in 0..steps {
            if step % POLL_INTERVAL == 0 {
                if cp.cancelled() {
                    return Err(ElectrochemError::Cancelled);
                }
                if !self.is_finite() {
                    return Err(ElectrochemError::NonFinite { step });
                }
            }
            if explicit_ok {
                self.step_explicit_unchecked(dt);
            } else {
                self.step_crank_nicolson(dt);
            }
        }
        if !self.is_finite() {
            return Err(ElectrochemError::NonFinite { step: steps });
        }
        Ok(())
    }

    /// True when every node of the field is a finite number.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.c.iter().all(|v| v.is_finite())
    }

    /// The brownout resolution-downgrade hook: a fresh grid spanning
    /// the same domain (same length in cm, same bulk [`Molar`]
    /// concentration, same boundary condition) with roughly
    /// `1/factor` of the nodes, floored at the 3-node minimum. Under
    /// sustained overload the gateway trades spatial resolution for
    /// service time instead of dropping work — a coarser grid takes
    /// proportionally fewer explicit steps to cover the same physical
    /// duration (the stable step grows as Δx²).
    ///
    /// The returned grid starts from a uniform bulk field: coarsening
    /// is a *job-level* downgrade applied before simulating, not a
    /// mid-run resampling, so a degraded run is still a pure function
    /// of its inputs.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] when `factor`
    /// is zero.
    pub fn coarsened(&self, factor: usize) -> Result<DiffusionGrid, ElectrochemError> {
        if factor == 0 {
            return Err(ElectrochemError::InvalidParameter {
                name: "coarsening factor",
                value: 0.0,
            });
        }
        let nodes = (self.c.len().div_ceil(factor)).max(3);
        let length_cm = self.dx * (self.c.len() - 1) as f64;
        let mut grid = DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(self.d),
            Molar::from_molar(self.bulk * 1e3),
            length_cm,
            nodes,
        )?;
        grid.set_surface(self.surface);
        Ok(grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> DiffusionGrid {
        DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(1e-5),
            Molar::from_milli_molar(1.0),
            100e-4,
            101,
        )
        .expect("valid grid")
    }

    #[test]
    fn blocking_wall_conserves_mass_explicit() {
        let mut g = grid();
        let before = g.inventory_mol_per_cm2();
        let dt = g.max_stable_dt() * 0.9;
        for _ in 0..200 {
            g.step_explicit(dt).expect("stable step");
        }
        let after = g.inventory_mol_per_cm2();
        assert!((after - before).abs() / before < 1e-9);
    }

    #[test]
    fn uniform_field_is_steady_state() {
        let mut g = grid();
        g.advance(Seconds::from_millis(50.0), Seconds::from_millis(0.1));
        for i in 0..g.nodes() {
            assert!((g.concentration_at(i).as_milli_molar() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn consuming_surface_depletes_near_field() {
        let mut g = grid();
        g.set_surface(SurfaceBoundary::Concentration(0.0));
        g.advance(Seconds::from_millis(100.0), Seconds::from_millis(0.2));
        // Monotone profile from 0 at the electrode to bulk far away.
        let profile = g.profile();
        assert!(profile[0].as_milli_molar() < 1e-9);
        for w in profile.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!((profile.last().unwrap().as_milli_molar() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn flux_matches_cottrell_prediction() {
        // Fine grid, long domain so the depletion layer stays inside.
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-5);
        let bulk = Molar::from_milli_molar(1.0);
        let mut g = DiffusionGrid::new(d, bulk, 400e-4, 801).expect("valid grid");
        g.set_surface(SurfaceBoundary::Concentration(0.0));
        let dt = Seconds::from_millis(1.0);
        let t_total = 1.0; // s
        let steps = (t_total / dt.as_seconds()) as usize;
        for _ in 0..steps {
            g.step_crank_nicolson(dt);
        }
        let flux = g.flux_mol_per_cm2_s();
        // Analytic Cottrell flux at t = 1 s: C·√(D/(π·t)).
        let c_cgs = 1e-6; // 1 mM in mol/cm³
        let analytic = c_cgs * (1e-5 / (std::f64::consts::PI * t_total)).sqrt();
        assert!(
            (flux - analytic).abs() / analytic < 0.03,
            "flux {flux} vs analytic {analytic}"
        );
    }

    #[test]
    fn crank_nicolson_matches_explicit() {
        let mut ge = grid();
        let mut gc = grid();
        ge.set_surface(SurfaceBoundary::Concentration(0.0));
        gc.set_surface(SurfaceBoundary::Concentration(0.0));
        let dt = ge.max_stable_dt() * 0.5;
        for _ in 0..500 {
            ge.step_explicit(dt).expect("stable step");
            gc.step_crank_nicolson(dt);
        }
        for i in 0..ge.nodes() {
            let a = ge.concentration_at(i).as_milli_molar();
            let b = gc.concentration_at(i).as_milli_molar();
            assert!((a - b).abs() < 5e-3, "node {i}: {a} vs {b}");
        }
    }

    #[test]
    fn constant_outward_flux_drains_inventory() {
        let mut g = grid();
        let f = 1e-10; // mol/cm²/s outward
        g.set_surface(SurfaceBoundary::Flux(f));
        let before = g.inventory_mol_per_cm2();
        let dt = g.max_stable_dt() * 0.9;
        let mut elapsed = 0.0;
        for _ in 0..400 {
            g.step_explicit(dt).expect("stable step");
            elapsed += dt.as_seconds();
        }
        let after = g.inventory_mol_per_cm2();
        // Bulk boundary replenishes, so drained mass is bounded by f·t but
        // the near-surface deficit must exist.
        assert!(after < before);
        assert!(before - after <= f * elapsed * 1.5);
        assert!(g.concentration_at(0) < g.concentration_at(g.nodes() - 1));
    }

    #[test]
    fn explicit_step_guards_stability() {
        let mut g = grid();
        let dt = g.max_stable_dt() * 4.0;
        let before = g.profile();
        match g.step_explicit(dt) {
            Err(ElectrochemError::UnstableStep { ratio }) => assert!(ratio > 0.5),
            other => panic!("expected UnstableStep, got {other:?}"),
        }
        // The rejected step must not have touched the field.
        assert_eq!(g.profile(), before);
    }

    #[test]
    fn set_bulk_moves_far_boundary() {
        let mut g = grid();
        g.set_bulk(Molar::from_milli_molar(2.0));
        assert!((g.concentration_at(g.nodes() - 1).as_milli_molar() - 2.0).abs() < 1e-12);
        // After long equilibration with blocking wall, whole field → 2 mM.
        g.advance(Seconds::from_seconds(25.0), Seconds::from_millis(2.0));
        assert!((g.concentration_at(0).as_milli_molar() - 2.0).abs() < 0.05);
    }

    #[test]
    fn tiny_grid_rejected() {
        let result = DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(1e-5),
            Molar::from_milli_molar(1.0),
            1e-3,
            2,
        );
        assert!(matches!(
            result,
            Err(ElectrochemError::GridTooSmall {
                requested: 2,
                minimum: 3
            })
        ));
    }

    #[test]
    fn advance_checked_matches_unchecked_advance() {
        let mut a = grid();
        let mut b = grid();
        a.set_surface(SurfaceBoundary::Concentration(0.0));
        b.set_surface(SurfaceBoundary::Concentration(0.0));
        a.advance(Seconds::from_millis(50.0), Seconds::from_millis(0.2));
        b.advance_checked(
            Seconds::from_millis(50.0),
            Seconds::from_millis(0.2),
            &crate::checkpoint::NeverCancel,
        )
        .expect("healthy field stays finite");
        assert_eq!(
            a.profile(),
            b.profile(),
            "checked path must be bit-identical"
        );
    }

    #[test]
    fn pre_tripped_token_cancels_immediately() {
        use std::sync::atomic::AtomicBool;
        let mut g = grid();
        let token = AtomicBool::new(true);
        let before = g.profile();
        let result = g.advance_checked(
            Seconds::from_seconds(10.0),
            Seconds::from_millis(1.0),
            &token,
        );
        assert!(matches!(result, Err(ElectrochemError::Cancelled)));
        // Cancellation at step 0 must not have advanced the field.
        assert_eq!(g.profile(), before);
    }

    #[test]
    fn nonfinite_field_is_caught_not_propagated() {
        // Regression for the NaN/Inf guardrail: an infinite outward flux
        // poisons the surface node on the first step; the checked
        // advance must detect it instead of marching NaNs for the full
        // duration.
        let mut g = grid();
        g.set_surface(SurfaceBoundary::Flux(f64::INFINITY));
        let result = g.advance_checked(
            Seconds::from_seconds(1.0),
            g.max_stable_dt() * 0.9,
            &crate::checkpoint::NeverCancel,
        );
        match result {
            Err(ElectrochemError::NonFinite { step }) => {
                // Caught within one poll interval of the poisoning.
                assert!(step <= crate::checkpoint::POLL_INTERVAL + 1, "step {step}");
            }
            other => panic!("expected NonFinite, got {other:?}"),
        }
        assert!(!g.is_finite());
    }

    #[test]
    fn coarsened_grid_preserves_domain_and_speeds_up() {
        let g = grid(); // 101 nodes over 100 µm
        let coarse = g.coarsened(4).expect("valid factor");
        assert_eq!(coarse.nodes(), 26);
        // Same physical domain: (nodes-1)·dx is unchanged.
        let span = |g: &DiffusionGrid| g.dx_cm() * (g.nodes() - 1) as f64;
        assert!((span(&coarse) - span(&g)).abs() < 1e-12);
        // Coarser grid ⇒ larger stable explicit step ⇒ fewer steps for
        // the same physical duration.
        assert!(coarse.max_stable_dt() > g.max_stable_dt() * 4.0);
        // Degraded physics stays physics: the Cottrell-like depletion
        // still develops on the coarse grid.
        let mut coarse = coarse;
        coarse.set_surface(SurfaceBoundary::Concentration(0.0));
        coarse.advance(Seconds::from_millis(100.0), Seconds::from_millis(0.2));
        assert!(coarse.concentration_at(0).as_milli_molar() < 1e-9);
        assert!(coarse.flux_mol_per_cm2_s() > 0.0);
    }

    #[test]
    fn coarsened_rejects_zero_and_floors_at_minimum() {
        let g = grid();
        assert!(matches!(
            g.coarsened(0),
            Err(ElectrochemError::InvalidParameter {
                name: "coarsening factor",
                ..
            })
        ));
        let floor = g.coarsened(usize::MAX).expect("huge factor still valid");
        assert_eq!(floor.nodes(), 3);
    }

    #[test]
    fn coarsened_flux_approximates_fine_grid_flux() {
        // The brownout accuracy argument in miniature: a 4× coarser
        // grid reproduces the fine-grid Cottrell flux to a few percent.
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-5);
        let bulk = Molar::from_milli_molar(1.0);
        let mut fine = DiffusionGrid::new(d, bulk, 400e-4, 801).expect("valid grid");
        fine.set_surface(SurfaceBoundary::Concentration(0.0));
        let mut coarse = fine.coarsened(4).expect("valid factor");
        let dt = Seconds::from_millis(1.0);
        for _ in 0..1000 {
            fine.step_crank_nicolson(dt);
            coarse.step_crank_nicolson(dt);
        }
        let f = fine.flux_mol_per_cm2_s();
        let c = coarse.flux_mol_per_cm2_s();
        assert!((f - c).abs() / f < 0.05, "fine {f} vs coarse {c}");
    }

    #[test]
    fn bad_domain_length_rejected() {
        for bad in [0.0, -1.0, f64::NAN, f64::INFINITY] {
            let result = DiffusionGrid::new(
                DiffusionCoefficient::from_square_cm_per_second(1e-5),
                Molar::from_milli_molar(1.0),
                bad,
                11,
            );
            assert!(
                matches!(result, Err(ElectrochemError::InvalidLength { .. })),
                "length {bad} accepted"
            );
        }
    }
}

//! Double-layer capacitance and charging currents.
//!
//! Every potential excursion charges the electrode/electrolyte interface.
//! The charging (non-faradaic) current rides on top of the faradaic signal
//! and is one reason the nanostructured electrodes of the paper — with
//! their enormous real surface area — need careful treatment: capacitance
//! scales with *real* area while the useful signal scales with coverage.

use bios_units::{Amperes, ScanRate, Seconds, SquareCm, Volts};

/// A double-layer capacitor at the electrode interface.
///
/// # Examples
///
/// ```
/// use bios_electrochem::double_layer::DoubleLayer;
/// use bios_units::{ScanRate, SquareCm};
///
/// // A bare electrode (~20 µF/cm²) vs a CNT-modified one whose real
/// // area is 100× larger.
/// let bare = DoubleLayer::new(20e-6, SquareCm::from_square_cm(0.1), 1.0);
/// let cnt = DoubleLayer::new(20e-6, SquareCm::from_square_cm(0.1), 100.0);
/// let v = ScanRate::from_milli_volts_per_second(50.0);
/// assert!(cnt.charging_current(v).as_amps() > bare.charging_current(v).as_amps());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DoubleLayer {
    /// Specific capacitance of the pristine interface, F/cm².
    specific_f_per_cm2: f64,
    /// Geometric electrode area.
    area: SquareCm,
    /// Real-to-geometric area ratio (roughness factor); ≥ 1.
    roughness: f64,
}

impl DoubleLayer {
    /// Typical specific capacitance of a clean metal electrode, F/cm².
    pub const TYPICAL_SPECIFIC: f64 = 20e-6;

    /// Creates a double layer.
    ///
    /// # Panics
    ///
    /// Panics if the specific capacitance is not positive or the roughness
    /// factor is below 1.
    #[must_use]
    pub fn new(specific_f_per_cm2: f64, area: SquareCm, roughness: f64) -> DoubleLayer {
        assert!(
            specific_f_per_cm2 > 0.0 && specific_f_per_cm2.is_finite(),
            "specific capacitance must be positive"
        );
        assert!(roughness >= 1.0, "roughness factor cannot be below 1");
        DoubleLayer {
            specific_f_per_cm2,
            area,
            roughness,
        }
    }

    /// Total interfacial capacitance in farads.
    #[must_use]
    pub fn capacitance_farads(&self) -> f64 {
        self.specific_f_per_cm2 * self.area.as_square_cm() * self.roughness
    }

    /// Steady charging current during a potential ramp: `i_c = C·v`.
    #[must_use]
    pub fn charging_current(&self, scan_rate: ScanRate) -> Amperes {
        Amperes::from_amps(self.capacitance_farads() * scan_rate.as_volts_per_second())
    }

    /// Exponentially decaying charging transient after a potential step
    /// `ΔE` through solution resistance `r_ohms`:
    /// `i(t) = (ΔE/R)·exp(−t/(R·C))`.
    ///
    /// # Panics
    ///
    /// Panics if `r_ohms` is not positive.
    #[must_use]
    pub fn step_transient(&self, delta_e: Volts, r_ohms: f64, t: Seconds) -> Amperes {
        assert!(r_ohms > 0.0, "solution resistance must be positive");
        let tau = r_ohms * self.capacitance_farads();
        Amperes::from_amps(delta_e.as_volts() / r_ohms * (-t.as_seconds() / tau).exp())
    }

    /// The RC time constant for a step through `r_ohms`, seconds.
    #[must_use]
    pub fn time_constant(&self, r_ohms: f64) -> Seconds {
        Seconds::from_seconds(r_ohms * self.capacitance_farads())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dl() -> DoubleLayer {
        DoubleLayer::new(20e-6, SquareCm::from_square_cm(0.1), 1.0)
    }

    #[test]
    fn capacitance_is_specific_times_area() {
        assert!((dl().capacitance_farads() - 2e-6).abs() < 1e-18);
    }

    #[test]
    fn charging_current_linear_in_scan_rate() {
        let i1 = dl().charging_current(ScanRate::from_milli_volts_per_second(25.0));
        let i2 = dl().charging_current(ScanRate::from_milli_volts_per_second(50.0));
        assert!((i2.as_amps() / i1.as_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn roughness_multiplies_capacitance() {
        let rough = DoubleLayer::new(20e-6, SquareCm::from_square_cm(0.1), 80.0);
        assert!((rough.capacitance_farads() / dl().capacitance_farads() - 80.0).abs() < 1e-9);
    }

    #[test]
    fn step_transient_decays_with_tau() {
        let d = dl();
        let r = 1000.0;
        let tau = d.time_constant(r);
        let i0 = d.step_transient(Volts::from_milli_volts(100.0), r, Seconds::ZERO);
        let it = d.step_transient(Volts::from_milli_volts(100.0), r, tau);
        assert!((it.as_amps() / i0.as_amps() - (-1.0f64).exp()).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "roughness")]
    fn sub_unity_roughness_rejected() {
        let _ = DoubleLayer::new(20e-6, SquareCm::from_square_cm(0.1), 0.5);
    }
}

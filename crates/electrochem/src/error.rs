//! Typed errors for invalid electrochemical configurations.
//!
//! Construction-time validation used to `assert!`, which aborts the
//! calling thread — fatal for a fleet runtime where one bad config
//! should fail one job, not the process. Input validation now returns
//! [`ElectrochemError`]; internal invariants that cannot be violated by
//! caller input stay as `debug_assert!`s.

use std::error::Error;
use std::fmt;

/// Reasons an electrochemical model rejects its inputs.
#[derive(Debug, Clone, PartialEq)]
pub enum ElectrochemError {
    /// A spatial grid was requested with too few nodes to discretize.
    GridTooSmall {
        /// Nodes requested.
        requested: usize,
        /// Minimum nodes the solver needs.
        minimum: usize,
    },
    /// A spatial domain length was zero, negative, or non-finite.
    InvalidLength {
        /// The offending length in cm.
        length_cm: f64,
    },
    /// An explicit time step exceeded the FTCS stability limit.
    UnstableStep {
        /// The stability ratio `D·Δt/Δx²` that was requested.
        ratio: f64,
    },
    /// A named scalar parameter was out of its physical range.
    InvalidParameter {
        /// Which parameter was rejected.
        name: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A checked solver loop observed its cancellation token and
    /// stopped cooperatively (watchdog deadline, shutdown).
    Cancelled,
    /// The solution field left the finite domain (NaN or ±Inf) — the
    /// numerics diverged and nothing downstream may trust the state.
    NonFinite {
        /// Inner-loop step index at which non-finite values were seen.
        step: usize,
    },
}

impl fmt::Display for ElectrochemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElectrochemError::GridTooSmall { requested, minimum } => {
                write!(f, "grid needs at least {minimum} nodes, got {requested}")
            }
            ElectrochemError::InvalidLength { length_cm } => {
                write!(
                    f,
                    "domain length must be positive and finite, got {length_cm} cm"
                )
            }
            ElectrochemError::UnstableStep { ratio } => {
                write!(f, "explicit step unstable: D*dt/dx^2 = {ratio} > 0.5")
            }
            ElectrochemError::InvalidParameter { name, value } => {
                write!(f, "{name} out of range: {value}")
            }
            ElectrochemError::Cancelled => {
                write!(f, "solver cancelled at a cooperative checkpoint")
            }
            ElectrochemError::NonFinite { step } => {
                write!(f, "solution became non-finite at step {step}")
            }
        }
    }
}

impl Error for ElectrochemError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failure() {
        let e = ElectrochemError::GridTooSmall {
            requested: 2,
            minimum: 3,
        };
        assert!(e.to_string().contains("at least 3 nodes"));
        let e = ElectrochemError::UnstableStep { ratio: 1.25 };
        assert!(e.to_string().contains("unstable"));
        let e = ElectrochemError::InvalidParameter {
            name: "catalytic rate",
            value: -1.0,
        };
        assert!(e.to_string().contains("catalytic rate"));
        let e = ElectrochemError::InvalidLength { length_cm: -0.5 };
        assert!(e.to_string().contains("positive"));
    }
}

//! Field-effect (ISFET / nanowire / CNT-FET) transduction.
//!
//! §2.3: conventional FETs "can be modified for biosensing purposes by
//! functionalizing the gate terminal with probes … the binding between
//! probes and targets results in a variation of electric charges at the
//! gate terminal", and §2.4 notes nanowires/CNTs can replace the channel
//! so binding modulates channel conductivity. This module models both: a
//! charge-to-threshold-shift gate model and a square-law MOSFET readout.

use bios_units::{nearly_zero, Amperes, Molar, Volts};

/// A biologically functionalized FET.
///
/// Probe–target binding follows a Langmuir isotherm; bound targets
/// deposit charge on the gate, shifting the threshold voltage by
/// `ΔV_th = q·N_bound/C_ox` (per unit area), which the drain current
/// readout converts to signal.
///
/// # Examples
///
/// ```
/// use bios_electrochem::field_effect::BioFet;
/// use bios_units::{Molar, Volts};
///
/// let fet = BioFet::psa_cnt_fet();
/// let blank = fet.drain_current(Molar::ZERO);
/// let bound = fet.drain_current(Molar::from_nano_molar(10.0));
/// assert!(bound != blank);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BioFet {
    /// Probe surface density, m⁻² (sites available for binding).
    probe_density_per_m2: f64,
    /// Dissociation constant of the probe–target pair.
    kd: Molar,
    /// Elementary charges delivered per bound target (sign matters:
    /// DNA/PSA are negative at physiological pH).
    charges_per_target: f64,
    /// Gate oxide capacitance per area, F/m².
    oxide_capacitance_per_m2: f64,
    /// Bare threshold voltage.
    threshold: Volts,
    /// Gate overdrive at the bias point.
    overdrive: Volts,
    /// Transconductance parameter k' = µC_ox·W/L, A/V².
    k_prime: f64,
}

impl BioFet {
    /// A CNT-channel PSA immunosensor in the spirit of \[22\]:
    /// antibody probes, nM-scale affinity, negative analyte charge.
    #[must_use]
    pub fn psa_cnt_fet() -> BioFet {
        BioFet {
            probe_density_per_m2: 1e15,
            kd: Molar::from_nano_molar(5.0),
            charges_per_target: -4.0,
            oxide_capacitance_per_m2: 8.6e-3, // ~4 nm SiO₂
            threshold: Volts::from_milli_volts(500.0),
            overdrive: Volts::from_milli_volts(300.0),
            k_prime: 2e-4,
        }
    }

    /// An ISFET pH/charge sensor with a covalently functionalized gate
    /// (\[24\]): denser small probes, µM affinity.
    #[must_use]
    pub fn isfet() -> BioFet {
        BioFet {
            probe_density_per_m2: 2e15,
            kd: Molar::from_micro_molar(10.0),
            charges_per_target: -1.0,
            oxide_capacitance_per_m2: 3.45e-3, // ~10 nm SiO₂
            threshold: Volts::from_milli_volts(700.0),
            overdrive: Volts::from_milli_volts(250.0),
            k_prime: 1e-4,
        }
    }

    /// Fraction of probes occupied at target concentration `c`
    /// (Langmuir).
    #[must_use]
    pub fn occupancy(&self, c: Molar) -> f64 {
        let x = c.as_molar().max(0.0);
        x / (self.kd.as_molar() + x)
    }

    /// Threshold shift produced by bound targets.
    #[must_use]
    pub fn threshold_shift(&self, c: Molar) -> Volts {
        const Q: f64 = 1.602_176_634e-19;
        let bound = self.probe_density_per_m2 * self.occupancy(c);
        // Negative charge raises V_th of an n-FET.
        Volts::from_volts(-Q * self.charges_per_target * bound / self.oxide_capacitance_per_m2)
    }

    /// Saturation drain current at the fixed bias point:
    /// `I_D = k'/2·(V_ov − ΔV_th)²`, clamped at cut-off.
    #[must_use]
    pub fn drain_current(&self, c: Molar) -> Amperes {
        let v_eff = self.overdrive.as_volts() - self.threshold_shift(c).as_volts();
        if v_eff <= 0.0 {
            return Amperes::ZERO;
        }
        Amperes::from_amps(self.k_prime / 2.0 * v_eff * v_eff)
    }

    /// The relative signal `|ΔI/I₀|` at concentration `c` — the
    /// figure usually quoted for FET biosensors.
    #[must_use]
    pub fn relative_response(&self, c: Molar) -> f64 {
        let i0 = self.drain_current(Molar::ZERO).as_amps();
        let i = self.drain_current(c).as_amps();
        if nearly_zero(i0) {
            return 0.0;
        }
        (i - i0).abs() / i0
    }

    /// The bare threshold voltage.
    #[must_use]
    pub fn threshold(&self) -> Volts {
        self.threshold
    }

    /// The probe–target dissociation constant.
    #[must_use]
    pub fn kd(&self) -> Molar {
        self.kd
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn occupancy_is_langmuir() {
        let fet = BioFet::psa_cnt_fet();
        assert_eq!(fet.occupancy(Molar::ZERO), 0.0);
        let half = fet.occupancy(fet.kd());
        assert!((half - 0.5).abs() < 1e-12);
        assert!(fet.occupancy(Molar::from_micro_molar(1.0)) > 0.99);
    }

    #[test]
    fn negative_targets_raise_threshold_and_cut_current() {
        let fet = BioFet::psa_cnt_fet();
        let shift = fet.threshold_shift(Molar::from_nano_molar(50.0));
        assert!(
            shift.as_volts() > 0.0,
            "negative charge raises V_th of n-FET"
        );
        let i0 = fet.drain_current(Molar::ZERO);
        let i = fet.drain_current(Molar::from_nano_molar(50.0));
        assert!(i < i0);
    }

    #[test]
    fn response_is_monotone_in_concentration() {
        let fet = BioFet::psa_cnt_fet();
        let mut prev = -1.0;
        for nano in [0.1, 1.0, 5.0, 20.0, 100.0] {
            let r = fet.relative_response(Molar::from_nano_molar(nano));
            assert!(r >= prev, "at {nano} nM");
            prev = r;
        }
    }

    #[test]
    fn nanomolar_sensitivity() {
        // The §2.4 argument for nano-channel FETs: nM targets give
        // percent-scale signals.
        let fet = BioFet::psa_cnt_fet();
        let r = fet.relative_response(Molar::from_nano_molar(5.0));
        assert!(r > 0.02, "relative response {r}");
    }

    #[test]
    fn saturating_targets_can_pinch_off() {
        // Enough bound charge can push the device to cut-off; the model
        // clamps at zero rather than going negative.
        let mut fet = BioFet::psa_cnt_fet();
        fet.charges_per_target = -1000.0;
        let i = fet.drain_current(Molar::from_micro_molar(10.0));
        assert_eq!(i, Amperes::ZERO);
    }

    #[test]
    fn isfet_and_cnt_fet_differ_in_affinity() {
        assert!(BioFet::isfet().kd() > BioFet::psa_cnt_fet().kd());
    }
}

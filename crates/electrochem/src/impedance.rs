//! Electrochemical impedance spectroscopy (EIS) on a Randles cell.
//!
//! Faradic impedimetric biosensors (§2.3 of the paper, \[37\]) read the
//! charge-transfer resistance `R_ct` of a redox probe: antibody–antigen
//! binding blocks the surface and `R_ct` rises. This module computes the
//! complex impedance of the standard Randles equivalent circuit
//!
//! `Z(ω) = R_s + ( (R_ct + Z_W) ⁻¹ + jωC_dl )⁻¹`,  `Z_W = σ·ω^-1/2·(1−j)`
//!
//! and provides the spectrum analysis a sensor readout needs (Nyquist
//! semicircle diameter → `R_ct`).

/// A complex number; minimal ad-hoc implementation to avoid external
/// dependencies.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Creates a complex number from its real and imaginary parts
    /// (unit-agnostic; throughout this module both parts are in Ω).
    #[must_use]
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// Magnitude |z|, in the same unit as the parts (Ω for impedances).
    #[must_use]
    pub fn magnitude(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Phase angle in radians.
    #[must_use]
    pub fn phase(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex reciprocal.
    ///
    /// # Panics
    ///
    /// Panics on a zero magnitude.
    #[must_use]
    pub fn recip(self) -> Complex {
        let d = self.re * self.re + self.im * self.im;
        assert!(d > 0.0, "cannot invert zero impedance");
        Complex::new(self.re / d, -self.im / d)
    }
}

impl std::ops::Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl std::ops::Mul<f64> for Complex {
    type Output = Complex;
    fn mul(self, rhs: f64) -> Complex {
        Complex::new(self.re * rhs, self.im * rhs)
    }
}

/// The Randles equivalent circuit of an electrode interface.
///
/// # Examples
///
/// ```
/// use bios_electrochem::impedance::RandlesCell;
///
/// let cell = RandlesCell::new(100.0, 5_000.0, 1e-6, 50.0);
/// // At very high frequency only the solution resistance remains.
/// let z_hf = cell.impedance(1e6);
/// assert!((z_hf.re - 100.0).abs() < 20.0);
/// // At low frequency the charge-transfer arc dominates.
/// let z_lf = cell.impedance(1.0);
/// assert!(z_lf.re > 3_000.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandlesCell {
    /// Solution (series) resistance, Ω.
    pub solution_resistance: f64,
    /// Charge-transfer resistance, Ω — the sensing observable.
    pub charge_transfer_resistance: f64,
    /// Double-layer capacitance, F.
    pub double_layer_capacitance: f64,
    /// Warburg coefficient σ, Ω·s^-1/2 (0 disables diffusion impedance).
    pub warburg_sigma: f64,
}

impl RandlesCell {
    /// Creates a Randles cell from `r_s` and `r_ct` in Ω, `c_dl` in
    /// farads, and the Warburg coefficient `sigma` in Ω·s^-1/2.
    ///
    /// # Panics
    ///
    /// Panics if any resistance or the capacitance is not positive, or
    /// σ is negative.
    #[must_use]
    pub fn new(r_s: f64, r_ct: f64, c_dl: f64, sigma: f64) -> RandlesCell {
        assert!(r_s > 0.0, "solution resistance must be positive");
        assert!(r_ct > 0.0, "charge-transfer resistance must be positive");
        assert!(c_dl > 0.0, "double-layer capacitance must be positive");
        assert!(sigma >= 0.0, "Warburg coefficient cannot be negative");
        RandlesCell {
            solution_resistance: r_s,
            charge_transfer_resistance: r_ct,
            double_layer_capacitance: c_dl,
            warburg_sigma: sigma,
        }
    }

    /// Complex impedance, in Ω, at frequency `hz` in Hz.
    ///
    /// # Panics
    ///
    /// Panics if `hz` is not positive.
    #[must_use]
    pub fn impedance(&self, hz: f64) -> Complex {
        assert!(hz > 0.0, "frequency must be positive");
        let omega = 2.0 * std::f64::consts::PI * hz;
        // Faradaic branch: R_ct in series with Warburg.
        let w = self.warburg_sigma / omega.sqrt();
        let faradaic = Complex::new(self.charge_transfer_resistance + w, -w);
        // In parallel with the double layer.
        let y_dl = Complex::new(0.0, omega * self.double_layer_capacitance);
        let y_total = faradaic.recip() + y_dl;
        let z_parallel = y_total.recip();
        Complex::new(self.solution_resistance, 0.0) + z_parallel
    }

    /// Sweeps `points` frequencies log-spaced over `[f_lo, f_hi]` Hz.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < f_lo < f_hi` and `points ≥ 2`.
    #[must_use]
    pub fn spectrum(&self, f_lo: f64, f_hi: f64, points: usize) -> Vec<(f64, Complex)> {
        assert!(f_lo > 0.0 && f_hi > f_lo, "need 0 < f_lo < f_hi");
        assert!(points >= 2, "need at least 2 spectrum points");
        let log_lo = f_lo.log10();
        let log_hi = f_hi.log10();
        (0..points)
            .map(|k| {
                let f = 10f64.powf(log_lo + (log_hi - log_lo) * k as f64 / (points - 1) as f64);
                (f, self.impedance(f))
            })
            .collect()
    }

    /// The characteristic frequency, in Hz, of the charge-transfer
    /// semicircle apex, `f* = 1/(2π·R_ct·C_dl)`.
    #[must_use]
    pub fn apex_frequency(&self) -> f64 {
        1.0 / (2.0
            * std::f64::consts::PI
            * self.charge_transfer_resistance
            * self.double_layer_capacitance)
    }
}

/// Estimates `R_ct`, in Ω, from a measured spectrum as the width of the
/// Nyquist semicircle: the difference between the low-frequency
/// real-axis intercept (σ = 0) and the high-frequency intercept.
///
/// For spectra with Warburg tails, the estimate uses the real part at
/// the apex (−Z″ maximum): `R_ct ≈ 2·(Re(Z_apex) − R_s)`.
///
/// # Panics
///
/// Panics on an empty spectrum.
#[must_use]
pub fn estimate_charge_transfer(spectrum: &[(f64, Complex)]) -> f64 {
    assert!(!spectrum.is_empty(), "spectrum is empty");
    // High-frequency intercept ≈ minimum real part.
    let r_s = spectrum
        .iter()
        .map(|(_, z)| z.re)
        .fold(f64::INFINITY, f64::min);
    // Apex: maximum −Z″ (most capacitive point of the semicircle).
    // The assert above guarantees a maximum exists; fall back to the
    // intercept (R_ct = 0) rather than carrying a panic path.
    let apex_re = spectrum
        .iter()
        .max_by(|a, b| (-a.1.im).total_cmp(&(-b.1.im)))
        .map_or(r_s, |(_, z)| z.re);
    2.0 * (apex_re - r_s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cell() -> RandlesCell {
        RandlesCell::new(100.0, 10_000.0, 1e-6, 0.0)
    }

    #[test]
    fn limits_are_resistive() {
        let c = cell();
        // HF → R_s.
        let z = c.impedance(1e7);
        assert!((z.re - 100.0).abs() < 5.0);
        assert!(z.im.abs() < 5.0);
        // LF → R_s + R_ct.
        let z = c.impedance(1e-3);
        assert!((z.re - 10_100.0).abs() < 10.0);
    }

    #[test]
    fn apex_is_most_capacitive_point() {
        let c = cell();
        let f_apex = c.apex_frequency();
        let at = |f: f64| -c.impedance(f).im;
        assert!(at(f_apex) > at(f_apex * 5.0));
        assert!(at(f_apex) > at(f_apex / 5.0));
        // At the apex, −Z″ = R_ct/2 for an ideal semicircle.
        assert!((at(f_apex) - 5_000.0).abs() < 10.0);
    }

    #[test]
    fn rct_estimation_recovers_truth() {
        let c = cell();
        let spec = c.spectrum(0.01, 1e6, 400);
        let est = estimate_charge_transfer(&spec);
        assert!((est - 10_000.0).abs() / 10_000.0 < 0.05, "estimated {est}");
    }

    #[test]
    fn binding_event_raises_rct_estimate() {
        // The immunosensor principle: surface blocking doubles R_ct.
        let before = RandlesCell::new(100.0, 5_000.0, 1e-6, 30.0);
        let after = RandlesCell::new(100.0, 10_000.0, 1e-6, 30.0);
        let est_before = estimate_charge_transfer(&before.spectrum(0.1, 1e6, 100));
        let est_after = estimate_charge_transfer(&after.spectrum(0.1, 1e6, 100));
        assert!(est_after > 1.6 * est_before);
    }

    #[test]
    fn warburg_tail_appears_at_low_frequency() {
        let with_w = RandlesCell::new(100.0, 1_000.0, 1e-6, 500.0);
        let spec = with_w.spectrum(0.01, 1e5, 80);
        // At the lowest frequencies, the 45° Warburg line: |Z″| grows
        // with falling f and the phase tends toward −45° relative slope.
        let (f1, z1) = spec[0];
        let (f2, z2) = spec[4];
        assert!(f1 < f2);
        assert!(-z1.im > -z2.im);
        // Warburg real and imaginary contributions are equal; slope of
        // the tail ≈ 1.
        let slope = (z2.im - z1.im) / (z2.re - z1.re);
        assert!((slope.abs() - 1.0).abs() < 0.35, "slope {slope}");
    }

    #[test]
    fn spectrum_is_log_spaced_and_ordered() {
        let spec = cell().spectrum(1.0, 1e4, 5);
        assert_eq!(spec.len(), 5);
        let ratios: Vec<f64> = spec.windows(2).map(|w| w[1].0 / w[0].0).collect();
        for r in &ratios {
            assert!((r - 10.0).abs() < 1e-9);
        }
    }

    #[test]
    fn complex_helpers() {
        let z = Complex::new(3.0, 4.0);
        assert!((z.magnitude() - 5.0).abs() < 1e-12);
        let r = z.recip();
        assert!((r.re - 0.12).abs() < 1e-12);
        assert!((r.im + 0.16).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "frequency must be positive")]
    fn zero_frequency_rejected() {
        let _ = cell().impedance(0.0);
    }
}

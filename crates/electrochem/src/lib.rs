//! # bios-electrochem
//!
//! Electrochemical physics engine underlying the biosensor simulation
//! platform.
//!
//! The paper's devices are amperometric and voltammetric sensors; every
//! figure of merit they report is ultimately governed by a handful of
//! textbook relations plus diffusive mass transport:
//!
//! * [`nernst`] — equilibrium electrode potentials and the Nernst boundary
//!   condition used by reversible voltammetry.
//! * [`butler_volmer`] — finite-rate electron-transfer kinetics; the CNT
//!   films in the paper matter precisely because they raise the standard
//!   rate constant `k⁰`.
//! * [`cottrell`] — the diffusion-limited current transient after a
//!   potential step (chronoamperometry, the oxidase-sensor technique).
//! * [`randles_sevcik`] — peak currents in linear-sweep/cyclic voltammetry
//!   (the cytochrome-P450 sensor technique).
//! * [`diffusion`] — a 1-D finite-difference mass-transport solver
//!   (explicit and Crank–Nicolson schemes) for when the closed forms do
//!   not apply.
//! * [`waveform`] — potential programs: step, linear sweep, cyclic,
//!   differential pulse.
//! * [`species`] — redox couple descriptors (`E⁰`, `n`, `α`, `k⁰`, `D`).
//! * [`double_layer`] — capacitive charging currents that contaminate the
//!   faradaic signal.
//! * [`voltammetry`] — a full digital simulation of cyclic voltammetry
//!   (Nernstian and quasireversible) built on the diffusion solver.
//! * [`checkpoint`] — cooperative cancellation ([`CheckPoint`]) polled
//!   inside the diffusion/voltammetry inner loops so a fleet watchdog
//!   can reclaim a worker without preemption.
//!
//! # Examples
//!
//! ```
//! use bios_electrochem::{cottrell, species};
//! use bios_units::{Molar, SquareCm, Seconds};
//!
//! // Diffusion-limited current 1 s after stepping the potential on a
//! // 0.25 mm² microelectrode in 1 mM H2O2.
//! let i = cottrell::cottrell_current(
//!     2,
//!     SquareCm::from_square_mm(0.25),
//!     species::diffusion::HYDROGEN_PEROXIDE,
//!     Molar::from_milli_molar(1.0),
//!     Seconds::from_seconds(1.0),
//! );
//! assert!(i.as_micro_amps() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod butler_volmer;
pub mod checkpoint;
pub mod cottrell;
pub mod degradation;
pub mod diffusion;
pub mod double_layer;
pub mod error;
pub mod field_effect;
pub mod impedance;
pub mod microelectrode;
pub mod nernst;
pub mod potentiometry;
pub mod randles_sevcik;
pub mod species;
pub mod voltammetry;
pub mod waveform;

pub use bios_units::{FARADAY, GAS_CONSTANT};
pub use checkpoint::{CheckPoint, NeverCancel};
pub use degradation::ElectrodeHealth;
pub use error::ElectrochemError;
pub use species::RedoxCouple;
pub use waveform::{CyclicSweep, DifferentialPulse, LinearSweep, PotentialStep, Waveform};

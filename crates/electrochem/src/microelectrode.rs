//! Ultramicroelectrode (UME) behaviour — the physics behind the paper's
//! miniaturization argument.
//!
//! Shrinking electrodes below ~25 µm changes the transport regime from
//! planar to radial diffusion: the current reaches a true steady state
//! `i_ss = 4·n·F·D·C·r` (inlaid disc) instead of decaying forever, and
//! the signal *density* grows as the radius falls — the quantitative
//! basis for §1's claim that "system miniaturization increases also
//! sensor response and requires small samples".

use bios_units::{
    Amperes, Centimeters, CurrentDensity, DiffusionCoefficient, Molar, Seconds, SquareCm, FARADAY,
};

/// Steady-state diffusion-limited current of an inlaid disc
/// ultramicroelectrode of radius `r`: `i_ss = 4·n·F·D·C·r`.
///
/// # Panics
///
/// Panics if `n == 0` or the radius is not positive.
///
/// # Examples
///
/// ```
/// use bios_electrochem::microelectrode::disc_steady_state;
/// use bios_units::{Centimeters, DiffusionCoefficient, Molar};
///
/// // A 5 µm-radius disc in 1 mM analyte: a few nanoamps, forever.
/// let i = disc_steady_state(
///     1,
///     Centimeters::from_micro_meters(5.0),
///     DiffusionCoefficient::from_square_cm_per_second(1e-5),
///     Molar::from_milli_molar(1.0),
/// );
/// assert!(i.as_nano_amps() > 1.0 && i.as_nano_amps() < 10.0);
/// ```
#[must_use]
pub fn disc_steady_state(
    n: u32,
    radius: Centimeters,
    d: DiffusionCoefficient,
    bulk: Molar,
) -> Amperes {
    assert!(n > 0, "electron count must be at least 1");
    assert!(radius.as_cm() > 0.0, "radius must be positive");
    let c = bulk.as_molar() * 1e-3; // mol/cm³
    Amperes::from_amps(
        4.0 * f64::from(n) * FARADAY * d.as_square_cm_per_second() * c * radius.as_cm(),
    )
}

/// The steady-state current *density* of the disc — grows as 1/r, the
/// miniaturization payoff.
#[must_use]
pub fn disc_steady_state_density(
    n: u32,
    radius: Centimeters,
    d: DiffusionCoefficient,
    bulk: Molar,
) -> CurrentDensity {
    let i = disc_steady_state(n, radius, d, bulk);
    let area = SquareCm::from_square_cm(std::f64::consts::PI * radius.as_cm() * radius.as_cm());
    i / area
}

/// The time after a potential step at which a disc of radius `r`
/// transitions from planar (Cottrell) to radial (steady-state)
/// behaviour: `t* ≈ r²/D`.
///
/// # Panics
///
/// Panics if the radius is not positive.
#[must_use]
pub fn radial_transition_time(radius: Centimeters, d: DiffusionCoefficient) -> Seconds {
    assert!(radius.as_cm() > 0.0, "radius must be positive");
    Seconds::from_seconds(radius.as_cm() * radius.as_cm() / d.as_square_cm_per_second())
}

/// Whether an electrode of radius `r` behaves as a microelectrode on the
/// experiment's timescale `t` (radial transport dominates).
#[must_use]
pub fn is_radial_regime(radius: Centimeters, d: DiffusionCoefficient, t: Seconds) -> bool {
    t > radial_transition_time(radius, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::from_square_cm_per_second(1e-5)
    }

    #[test]
    fn current_linear_in_radius_and_concentration() {
        let c = Molar::from_milli_molar(1.0);
        let i1 = disc_steady_state(1, Centimeters::from_micro_meters(5.0), d(), c);
        let i2 = disc_steady_state(1, Centimeters::from_micro_meters(10.0), d(), c);
        assert!((i2.as_amps() / i1.as_amps() - 2.0).abs() < 1e-12);
        let i3 = disc_steady_state(
            1,
            Centimeters::from_micro_meters(5.0),
            d(),
            Molar::from_milli_molar(3.0),
        );
        assert!((i3.as_amps() / i1.as_amps() - 3.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_magnitude() {
        // 4·F·D·C·r for r = 5 µm, D = 1e-5, C = 1 mM:
        // 4·96485·1e-5·1e-6·5e-4 ≈ 1.93 nA.
        let i = disc_steady_state(
            1,
            Centimeters::from_micro_meters(5.0),
            d(),
            Molar::from_milli_molar(1.0),
        );
        assert!((i.as_nano_amps() - 1.93).abs() < 0.02);
    }

    #[test]
    fn density_grows_as_radius_shrinks() {
        let c = Molar::from_milli_molar(1.0);
        let j_big = disc_steady_state_density(1, Centimeters::from_micro_meters(50.0), d(), c);
        let j_small = disc_steady_state_density(1, Centimeters::from_micro_meters(5.0), d(), c);
        assert!(
            (j_small.as_amps_per_square_cm() / j_big.as_amps_per_square_cm() - 10.0).abs() < 1e-9
        );
    }

    #[test]
    fn transition_time_scales_with_radius_squared() {
        let t1 = radial_transition_time(Centimeters::from_micro_meters(5.0), d());
        let t2 = radial_transition_time(Centimeters::from_micro_meters(10.0), d());
        assert!((t2.as_seconds() / t1.as_seconds() - 4.0).abs() < 1e-9);
        // 5 µm disc: t* = 25e-8/1e-5 = 25 ms.
        assert!((t1.as_millis() - 25.0).abs() < 0.1);
    }

    #[test]
    fn micro_vs_macro_regimes() {
        let t = Seconds::from_seconds(1.0);
        assert!(is_radial_regime(
            Centimeters::from_micro_meters(5.0),
            d(),
            t
        ));
        assert!(!is_radial_regime(Centimeters::from_mm(2.0), d(), t));
    }
}

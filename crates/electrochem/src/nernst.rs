//! The Nernst equation and related equilibrium relations.

use bios_units::{Kelvin, Molar, Volts, FARADAY, GAS_CONSTANT};

/// Thermal voltage `RT/F` at temperature `t` — about 25.7 mV at 25 °C.
///
/// # Examples
///
/// ```
/// use bios_electrochem::nernst::thermal_voltage;
/// use bios_units::Kelvin;
///
/// let vt = thermal_voltage(Kelvin::ROOM);
/// assert!((vt.as_milli_volts() - 25.69).abs() < 0.05);
/// ```
#[must_use]
pub fn thermal_voltage(t: Kelvin) -> Volts {
    Volts::from_volts(GAS_CONSTANT * t.as_kelvin() / FARADAY)
}

/// Equilibrium potential of a redox couple by the Nernst equation:
///
/// `E = E⁰ + (RT/nF) · ln([Ox]/[Red])`
///
/// # Panics
///
/// Panics if `n == 0` — a redox couple transfers at least one electron.
///
/// # Examples
///
/// ```
/// use bios_electrochem::nernst::nernst_potential;
/// use bios_units::{Kelvin, Molar, Volts};
///
/// // Equal activities: E = E⁰.
/// let e = nernst_potential(
///     Volts::from_milli_volts(200.0),
///     1,
///     Molar::from_milli_molar(1.0),
///     Molar::from_milli_molar(1.0),
///     Kelvin::ROOM,
/// );
/// assert!((e.as_milli_volts() - 200.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn nernst_potential(
    standard_potential: Volts,
    n: u32,
    oxidized: Molar,
    reduced: Molar,
    t: Kelvin,
) -> Volts {
    assert!(n > 0, "electron count must be at least 1");
    let vt = thermal_voltage(t).as_volts();
    let ratio = oxidized.as_molar() / reduced.as_molar();
    Volts::from_volts(standard_potential.as_volts() + vt / f64::from(n) * ratio.ln())
}

/// Surface concentration ratio `[Ox]/[Red]` imposed by an applied
/// potential under Nernstian (reversible) conditions:
///
/// `[Ox]/[Red] = exp(nF(E − E⁰)/RT)`
///
/// This is the boundary condition that drives the reversible cyclic
/// voltammetry simulation in [`crate::voltammetry`].
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn nernst_ratio(applied: Volts, standard_potential: Volts, n: u32, t: Kelvin) -> f64 {
    assert!(n > 0, "electron count must be at least 1");
    let vt = thermal_voltage(t).as_volts();
    (f64::from(n) * (applied.as_volts() - standard_potential.as_volts()) / vt).exp()
}

/// The Nernstian slope per decade of concentration ratio:
/// `2.303·RT/nF` — the canonical “59 mV per decade” at 25 °C for n = 1.
///
/// Potentiometric sensors (ion-selective electrodes, §2.3 of the paper)
/// are characterized by how closely they approach this slope.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn nernstian_slope_per_decade(n: u32, t: Kelvin) -> Volts {
    assert!(n > 0, "electron count must be at least 1");
    Volts::from_volts(thermal_voltage(t).as_volts() * std::f64::consts::LN_10 / f64::from(n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifty_nine_millivolts_per_decade() {
        let slope = nernstian_slope_per_decade(1, Kelvin::ROOM);
        assert!((slope.as_milli_volts() - 59.16).abs() < 0.05);
        // n = 2 halves the slope.
        let slope2 = nernstian_slope_per_decade(2, Kelvin::ROOM);
        assert!((slope2.as_milli_volts() - 29.58).abs() < 0.05);
    }

    #[test]
    fn decade_of_concentration_shifts_by_slope() {
        let e0 = Volts::from_milli_volts(100.0);
        let e1 = nernst_potential(
            e0,
            1,
            Molar::from_milli_molar(10.0),
            Molar::from_milli_molar(1.0),
            Kelvin::ROOM,
        );
        let expected = nernstian_slope_per_decade(1, Kelvin::ROOM);
        assert!((e1.as_volts() - e0.as_volts() - expected.as_volts()).abs() < 1e-9);
    }

    #[test]
    fn ratio_is_one_at_standard_potential() {
        let e0 = Volts::from_milli_volts(300.0);
        let r = nernst_ratio(e0, e0, 1, Kelvin::ROOM);
        assert!((r - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_grows_exponentially_positive_of_e0() {
        let e0 = Volts::ZERO;
        let vt = thermal_voltage(Kelvin::ROOM).as_volts();
        let r = nernst_ratio(Volts::from_volts(vt), e0, 1, Kelvin::ROOM);
        assert!((r - std::f64::consts::E).abs() < 1e-9);
    }

    #[test]
    fn higher_temperature_raises_thermal_voltage() {
        assert!(thermal_voltage(Kelvin::PHYSIOLOGICAL) > thermal_voltage(Kelvin::ROOM));
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn zero_electrons_rejected() {
        let _ = nernstian_slope_per_decade(0, Kelvin::ROOM);
    }
}

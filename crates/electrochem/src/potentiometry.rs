//! Potentiometric (zero-current) sensing.
//!
//! §2.3: "the catalyzed reaction … can result in a variation of the
//! electrode potential, while no current flows. Such technique is called
//! potentiometric. Ion-selective sensors belong to that family." The
//! standard response model is the Nikolsky–Eisenmann extension of the
//! Nernst equation, which adds interference through selectivity
//! coefficients.

use bios_units::{Kelvin, Molar, Volts};

use crate::nernst::nernstian_slope_per_decade;

/// An interfering ion with its selectivity coefficient.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Interferent {
    /// Potentiometric selectivity coefficient `K^pot_{ij}` (smaller is
    /// better; 10⁻³ means a 1000× selectivity margin).
    pub selectivity: f64,
    /// Charge of the interfering ion.
    pub charge: i32,
}

/// An ion-selective electrode following Nikolsky–Eisenmann:
///
/// `E = E⁰ + (2.303RT/z_iF)·log₁₀(a_i + Σ_j K_ij·a_j^(z_i/z_j))`
///
/// # Examples
///
/// ```
/// use bios_electrochem::potentiometry::IonSelectiveElectrode;
/// use bios_units::{Kelvin, Molar, Volts};
///
/// // An ammonium ISE, the back end of potentiometric urea biosensors.
/// let ise = IonSelectiveElectrode::new(Volts::from_milli_volts(220.0), 1, Kelvin::ROOM);
/// let e1 = ise.potential(Molar::from_milli_molar(0.1), &[]);
/// let e2 = ise.potential(Molar::from_milli_molar(1.0), &[]);
/// // One decade → one Nernstian slope (≈ 59 mV).
/// assert!(((e2 - e1).as_milli_volts() - 59.2).abs() < 0.5);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct IonSelectiveElectrode {
    standard_potential: Volts,
    charge: i32,
    temperature: Kelvin,
    /// Fraction of the ideal Nernstian slope actually delivered
    /// (membrane quality); 1.0 is ideal.
    slope_efficiency: f64,
}

impl IonSelectiveElectrode {
    /// Creates an ideal ISE for an ion of charge `z`.
    ///
    /// # Panics
    ///
    /// Panics if `z == 0`.
    #[must_use]
    pub fn new(
        standard_potential: Volts,
        charge: i32,
        temperature: Kelvin,
    ) -> IonSelectiveElectrode {
        assert!(charge != 0, "ion charge cannot be zero");
        IonSelectiveElectrode {
            standard_potential,
            charge,
            temperature,
            slope_efficiency: 1.0,
        }
    }

    /// Degrades the electrode slope to `fraction` of Nernstian (aged or
    /// fouled membranes read sub-Nernstian).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction ≤ 1`.
    #[must_use]
    pub fn with_slope_efficiency(mut self, fraction: f64) -> IonSelectiveElectrode {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "slope efficiency must lie in (0, 1]"
        );
        self.slope_efficiency = fraction;
        self
    }

    /// The electrode's actual slope per decade.
    #[must_use]
    pub fn slope_per_decade(&self) -> Volts {
        let ideal = nernstian_slope_per_decade(self.charge.unsigned_abs(), self.temperature);
        let signed = if self.charge > 0 { 1.0 } else { -1.0 };
        ideal * (self.slope_efficiency * signed)
    }

    /// Electrode potential for primary-ion activity `a_i` with the given
    /// interferents at activities `a_j` (Molar used as activity).
    ///
    /// # Panics
    ///
    /// Panics if the total effective activity is not positive (an ISE
    /// needs some ion to sense).
    #[must_use]
    pub fn potential(&self, primary: Molar, interferents: &[(Interferent, Molar)]) -> Volts {
        let zi = f64::from(self.charge);
        let effective: f64 = primary.as_molar()
            + interferents
                .iter()
                .map(|(ion, a)| ion.selectivity * a.as_molar().powf(zi / f64::from(ion.charge)))
                .sum::<f64>();
        assert!(effective > 0.0, "no sensible ion activity present");
        Volts::from_volts(
            self.standard_potential.as_volts()
                + self.slope_per_decade().as_volts() * effective.log10(),
        )
    }

    /// The apparent detection limit imposed by an interferent background:
    /// the primary activity at which the interference term equals the
    /// primary term (the IUPAC crossing-point construction).
    #[must_use]
    pub fn interference_floor(&self, interferents: &[(Interferent, Molar)]) -> Molar {
        let zi = f64::from(self.charge);
        let floor: f64 = interferents
            .iter()
            .map(|(ion, a)| ion.selectivity * a.as_molar().powf(zi / f64::from(ion.charge)))
            .sum();
        Molar::from_molar(floor)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ise() -> IonSelectiveElectrode {
        IonSelectiveElectrode::new(Volts::from_milli_volts(220.0), 1, Kelvin::ROOM)
    }

    #[test]
    fn nernstian_decade_response() {
        let e_decade = ise().potential(Molar::from_milli_molar(1.0), &[])
            - ise().potential(Molar::from_milli_molar(0.1), &[]);
        assert!((e_decade.as_milli_volts() - 59.16).abs() < 0.1);
    }

    #[test]
    fn divalent_ion_halves_slope() {
        let ca = IonSelectiveElectrode::new(Volts::ZERO, 2, Kelvin::ROOM);
        let e_decade = ca.potential(Molar::from_milli_molar(1.0), &[])
            - ca.potential(Molar::from_milli_molar(0.1), &[]);
        assert!((e_decade.as_milli_volts() - 29.58).abs() < 0.1);
    }

    #[test]
    fn anion_slope_is_negative() {
        let cl = IonSelectiveElectrode::new(Volts::ZERO, -1, Kelvin::ROOM);
        let e1 = cl.potential(Molar::from_milli_molar(0.1), &[]);
        let e2 = cl.potential(Molar::from_milli_molar(1.0), &[]);
        assert!(e2 < e1);
    }

    #[test]
    fn sub_nernstian_membranes() {
        let old = ise().with_slope_efficiency(0.9);
        let e_decade = old.potential(Molar::from_milli_molar(1.0), &[])
            - old.potential(Molar::from_milli_molar(0.1), &[]);
        assert!((e_decade.as_milli_volts() - 0.9 * 59.16).abs() < 0.1);
    }

    #[test]
    fn selective_electrode_ignores_weak_interferent() {
        let k_interferent = (
            Interferent {
                selectivity: 1e-4,
                charge: 1,
            },
            Molar::from_milli_molar(10.0),
        );
        let clean = ise().potential(Molar::from_milli_molar(1.0), &[]);
        let with = ise().potential(Molar::from_milli_molar(1.0), &[k_interferent]);
        assert!((with - clean).as_milli_volts() < 0.5);
    }

    #[test]
    fn interference_floor_limits_detection() {
        let bad_ion = (
            Interferent {
                selectivity: 1e-2,
                charge: 1,
            },
            Molar::from_milli_molar(100.0),
        );
        let floor = ise().interference_floor(&[bad_ion]);
        assert!((floor.as_milli_molar() - 1.0).abs() < 1e-9);
        // Below the floor, response flattens: a decade below the floor
        // moves the potential by far less than a Nernstian decade.
        let e_hi = ise().potential(Molar::from_milli_molar(1.0), &[bad_ion]);
        let e_lo = ise().potential(Molar::from_milli_molar(0.1), &[bad_ion]);
        assert!((e_hi - e_lo).as_milli_volts() < 20.0);
    }

    #[test]
    #[should_panic(expected = "charge cannot be zero")]
    fn zero_charge_rejected() {
        let _ = IonSelectiveElectrode::new(Volts::ZERO, 0, Kelvin::ROOM);
    }
}

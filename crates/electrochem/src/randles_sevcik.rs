//! Randles–Ševčík peak currents for sweep voltammetry.
//!
//! The cytochrome-P450 drug sensors in the paper are read out by cyclic
//! voltammetry: "the peak height is proportional to drug concentration"
//! (§3.1). These closed forms give the ideal peak for reversible and
//! irreversible couples and serve as the reference the digital simulation
//! in [`crate::voltammetry`] is validated against.

use bios_units::{
    Amperes, DiffusionCoefficient, Kelvin, Molar, ScanRate, SquareCm, Volts, FARADAY, GAS_CONSTANT,
};

/// Reversible Randles–Ševčík peak current:
///
/// `i_p = 0.4463·n·F·A·C·√(n·F·v·D/(R·T))`
///
/// # Panics
///
/// Panics if `n == 0` or the scan rate is not positive.
///
/// # Examples
///
/// ```
/// use bios_electrochem::randles_sevcik::reversible_peak_current;
/// use bios_units::{DiffusionCoefficient, Kelvin, Molar, ScanRate, SquareCm};
///
/// let slow = reversible_peak_current(
///     1, SquareCm::from_square_cm(0.1),
///     DiffusionCoefficient::from_square_cm_per_second(6.5e-6),
///     Molar::from_milli_molar(1.0),
///     ScanRate::from_milli_volts_per_second(25.0),
///     Kelvin::ROOM,
/// );
/// let fast = reversible_peak_current(
///     1, SquareCm::from_square_cm(0.1),
///     DiffusionCoefficient::from_square_cm_per_second(6.5e-6),
///     Molar::from_milli_molar(1.0),
///     ScanRate::from_milli_volts_per_second(100.0),
///     Kelvin::ROOM,
/// );
/// // Peak grows as √v: 4× the scan rate doubles the peak.
/// assert!((fast.as_amps() / slow.as_amps() - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn reversible_peak_current(
    n: u32,
    area: SquareCm,
    d: DiffusionCoefficient,
    bulk: Molar,
    scan_rate: ScanRate,
    t: Kelvin,
) -> Amperes {
    assert!(n > 0, "electron count must be at least 1");
    let v = scan_rate.as_volts_per_second();
    assert!(v > 0.0, "scan rate must be positive");
    let nf = f64::from(n) * FARADAY;
    let c = bulk.as_molar() * 1e-3; // mol/cm³
    let i = 0.4463
        * nf
        * area.as_square_cm()
        * c
        * (nf * v * d.as_square_cm_per_second() / (GAS_CONSTANT * t.as_kelvin())).sqrt();
    Amperes::from_amps(i)
}

/// Irreversible-couple peak current (Nicholson–Shain):
///
/// `i_p = 0.4958·n·F·A·C·√(α·n·F·v·D/(R·T))`
///
/// with α the transfer coefficient of the rate-determining step.
///
/// # Panics
///
/// Panics if `n == 0`, the scan rate is not positive, or `alpha` is not in
/// `(0, 1)`.
#[must_use]
pub fn irreversible_peak_current(
    n: u32,
    alpha: f64,
    area: SquareCm,
    d: DiffusionCoefficient,
    bulk: Molar,
    scan_rate: ScanRate,
    t: Kelvin,
) -> Amperes {
    assert!(n > 0, "electron count must be at least 1");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha must lie in (0, 1)");
    let v = scan_rate.as_volts_per_second();
    assert!(v > 0.0, "scan rate must be positive");
    let nf = f64::from(n) * FARADAY;
    let c = bulk.as_molar() * 1e-3;
    let i = 0.4958
        * nf
        * area.as_square_cm()
        * c
        * (alpha * nf * v * d.as_square_cm_per_second() / (GAS_CONSTANT * t.as_kelvin())).sqrt();
    Amperes::from_amps(i)
}

/// Peak-to-peak separation of an ideal reversible couple,
/// `ΔE_p ≈ 2.218·RT/nF` (≈ 57 mV / n at 25 °C).
///
/// Peak separation is the standard diagnostic for electron-transfer
/// quality; CNT modification pulls a sluggish couple's ΔE_p down toward
/// this reversible floor.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn reversible_peak_separation(n: u32, t: Kelvin) -> Volts {
    assert!(n > 0, "electron count must be at least 1");
    Volts::from_volts(2.218 * GAS_CONSTANT * t.as_kelvin() / (f64::from(n) * FARADAY))
}

/// Surface-confined (thin-film / adsorbed species) voltammetric peak:
///
/// `i_p = n²·F²·v·A·Γ/(4·R·T)`
///
/// Immobilized CYP450 on MWCNT behaves as a surface-confined couple; its
/// peak scales linearly with scan rate (not √v), the classic signature
/// the paper's calibration relies on.
///
/// `gamma_mol_per_cm2` is the electroactive surface coverage.
///
/// # Panics
///
/// Panics if `n == 0` or the scan rate is not positive.
#[must_use]
pub fn surface_confined_peak_current(
    n: u32,
    area: SquareCm,
    gamma_mol_per_cm2: f64,
    scan_rate: ScanRate,
    t: Kelvin,
) -> Amperes {
    assert!(n > 0, "electron count must be at least 1");
    let v = scan_rate.as_volts_per_second();
    assert!(v > 0.0, "scan rate must be positive");
    let nf = f64::from(n) * FARADAY;
    let i = nf * nf * v * area.as_square_cm() * gamma_mol_per_cm2
        / (4.0 * GAS_CONSTANT * t.as_kelvin());
    Amperes::from_amps(i)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d() -> DiffusionCoefficient {
        DiffusionCoefficient::from_square_cm_per_second(6.5e-6)
    }

    #[test]
    fn peak_linear_in_concentration() {
        let v = ScanRate::from_milli_volts_per_second(50.0);
        let a = SquareCm::from_square_cm(0.1);
        let i1 = reversible_peak_current(1, a, d(), Molar::from_milli_molar(1.0), v, Kelvin::ROOM);
        let i2 = reversible_peak_current(1, a, d(), Molar::from_milli_molar(2.0), v, Kelvin::ROOM);
        assert!((i2.as_amps() / i1.as_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn textbook_magnitude_for_ferrocyanide() {
        // Classic teaching-lab numbers: 1 mM ferrocyanide, 0.1 V/s, 1 cm²
        // electrode → i_p ≈ 2.4e2 µA.
        let i = reversible_peak_current(
            1,
            SquareCm::from_square_cm(1.0),
            d(),
            Molar::from_milli_molar(1.0),
            ScanRate::from_volts_per_second(0.1),
            Kelvin::ROOM,
        );
        assert!(i.as_micro_amps() > 150.0 && i.as_micro_amps() < 350.0);
    }

    #[test]
    fn irreversible_peak_smaller_with_low_alpha() {
        let v = ScanRate::from_milli_volts_per_second(50.0);
        let a = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(1.0);
        let rev = reversible_peak_current(1, a, d(), c, v, Kelvin::ROOM);
        let irr = irreversible_peak_current(1, 0.5, a, d(), c, v, Kelvin::ROOM);
        // 0.4958·√0.5 ≈ 0.3506 < 0.4463.
        assert!(irr < rev);
    }

    #[test]
    fn peak_separation_57_over_n() {
        let dp1 = reversible_peak_separation(1, Kelvin::ROOM);
        assert!((dp1.as_milli_volts() - 56.96).abs() < 0.3);
        let dp2 = reversible_peak_separation(2, Kelvin::ROOM);
        assert!((dp1.as_milli_volts() / dp2.as_milli_volts() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn surface_confined_peak_linear_in_scan_rate() {
        let a = SquareCm::from_square_cm(0.1);
        let g = 1e-10;
        let i1 = surface_confined_peak_current(
            1,
            a,
            g,
            ScanRate::from_milli_volts_per_second(20.0),
            Kelvin::ROOM,
        );
        let i2 = surface_confined_peak_current(
            1,
            a,
            g,
            ScanRate::from_milli_volts_per_second(40.0),
            Kelvin::ROOM,
        );
        assert!((i2.as_amps() / i1.as_amps() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn surface_confined_peak_linear_in_coverage() {
        let a = SquareCm::from_square_cm(0.1);
        let v = ScanRate::from_milli_volts_per_second(20.0);
        let i1 = surface_confined_peak_current(1, a, 1e-11, v, Kelvin::ROOM);
        let i2 = surface_confined_peak_current(1, a, 5e-11, v, Kelvin::ROOM);
        assert!((i2.as_amps() / i1.as_amps() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "scan rate")]
    fn zero_scan_rate_panics() {
        let _ = reversible_peak_current(
            1,
            SquareCm::from_square_cm(0.1),
            d(),
            Molar::from_milli_molar(1.0),
            ScanRate::from_volts_per_second(0.0),
            Kelvin::ROOM,
        );
    }
}

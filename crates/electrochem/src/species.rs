//! Redox-couple descriptors and tabulated transport properties.

use bios_units::{DiffusionCoefficient, Volts};

use crate::butler_volmer::TransferKinetics;

/// Tabulated aqueous diffusion coefficients (25 °C) for species relevant
/// to the paper's sensors.
pub mod diffusion {
    use bios_units::DiffusionCoefficient;

    /// Glucose, 6.7 × 10⁻⁶ cm²/s.
    pub const GLUCOSE: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(6.7e-6);
    /// L-lactate, 1.0 × 10⁻⁵ cm²/s.
    pub const LACTATE: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(1.0e-5);
    /// L-glutamate, 7.6 × 10⁻⁶ cm²/s.
    pub const GLUTAMATE: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(7.6e-6);
    /// Hydrogen peroxide — the species the oxidase sensors actually
    /// oxidize at +650 mV — 1.43 × 10⁻⁵ cm²/s.
    pub const HYDROGEN_PEROXIDE: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(1.43e-5);
    /// Dissolved O₂, 2.1 × 10⁻⁵ cm²/s.
    pub const OXYGEN: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(2.1e-5);
    /// Cyclophosphamide (mid-size organic), ≈ 4.5 × 10⁻⁶ cm²/s.
    pub const CYCLOPHOSPHAMIDE: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(4.5e-6);
    /// Ferrocyanide redox probe, 6.5 × 10⁻⁶ cm²/s.
    pub const FERROCYANIDE: DiffusionCoefficient =
        DiffusionCoefficient::from_square_cm_per_second(6.5e-6);
}

/// A redox couple: everything the simulators need to know about the
/// electroactive species.
///
/// # Examples
///
/// ```
/// use bios_electrochem::RedoxCouple;
/// use bios_units::{DiffusionCoefficient, Volts};
///
/// let h2o2 = RedoxCouple::builder("H2O2 oxidation")
///     .standard_potential(Volts::from_milli_volts(400.0))
///     .electrons(2)
///     .diffusion(DiffusionCoefficient::from_square_cm_per_second(1.43e-5))
///     .rate_constant(1e-4)
///     .build();
/// assert_eq!(h2o2.electrons(), 2);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RedoxCouple {
    name: String,
    standard_potential: Volts,
    electrons: u32,
    alpha: f64,
    k0_cm_per_s: f64,
    diffusion: DiffusionCoefficient,
}

impl RedoxCouple {
    /// Starts building a couple with the given display name.
    #[must_use]
    pub fn builder(name: &str) -> RedoxCoupleBuilder {
        RedoxCoupleBuilder {
            name: name.to_owned(),
            standard_potential: Volts::ZERO,
            electrons: 1,
            alpha: 0.5,
            k0_cm_per_s: 1e-3,
            diffusion: DiffusionCoefficient::from_square_cm_per_second(1e-5),
        }
    }

    /// Display name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Formal/standard potential `E⁰`.
    #[must_use]
    pub fn standard_potential(&self) -> Volts {
        self.standard_potential
    }

    /// Electrons transferred, `n`.
    #[must_use]
    pub fn electrons(&self) -> u32 {
        self.electrons
    }

    /// Transfer coefficient α (dimensionless, in `(0, 1)`).
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Standard heterogeneous rate constant `k⁰`, cm/s.
    #[must_use]
    pub fn rate_constant(&self) -> f64 {
        self.k0_cm_per_s
    }

    /// Diffusion coefficient of the electroactive species.
    #[must_use]
    pub fn diffusion(&self) -> DiffusionCoefficient {
        self.diffusion
    }

    /// The couple's electron-transfer kinetics bundle.
    #[must_use]
    pub fn kinetics(&self) -> TransferKinetics {
        TransferKinetics {
            k0_cm_per_s: self.k0_cm_per_s,
            alpha: self.alpha,
            n: self.electrons,
        }
    }

    /// Returns a copy with the rate constant multiplied by `factor` —
    /// how surface modifications (CNT films) accelerate the couple.
    #[must_use]
    pub fn with_rate_enhanced(&self, factor: f64) -> RedoxCouple {
        let mut out = self.clone();
        out.k0_cm_per_s *= factor;
        out
    }

    /// The ferrocyanide/ferricyanide probe used to characterize electrode
    /// surfaces in virtually every CNT-biosensor paper.
    #[must_use]
    pub fn ferrocyanide_probe() -> RedoxCouple {
        RedoxCouple::builder("Fe(CN)6^3-/4-")
            .standard_potential(Volts::from_milli_volts(230.0))
            .electrons(1)
            .diffusion(diffusion::FERROCYANIDE)
            .rate_constant(5e-3)
            .build()
    }

    /// H₂O₂ oxidation at a metallic electrode, the detection reaction of
    /// every oxidase sensor in Table 2.
    #[must_use]
    pub fn hydrogen_peroxide_oxidation() -> RedoxCouple {
        RedoxCouple::builder("H2O2 -> O2 + 2H+ + 2e-")
            .standard_potential(Volts::from_milli_volts(400.0))
            .electrons(2)
            .diffusion(diffusion::HYDROGEN_PEROXIDE)
            .rate_constant(2e-4)
            .build()
    }

    /// The cytochrome-P450 heme Fe(III)/Fe(II) couple driving the drug
    /// sensors (§3.2.4).
    #[must_use]
    pub fn cyp_heme() -> RedoxCouple {
        RedoxCouple::builder("CYP450 Fe(III)/Fe(II)")
            .standard_potential(Volts::from_milli_volts(-300.0))
            .electrons(1)
            .diffusion(DiffusionCoefficient::from_square_cm_per_second(1e-6))
            .rate_constant(5e-4)
            .build()
    }
}

/// Builder for [`RedoxCouple`] (C-BUILDER).
#[derive(Debug, Clone)]
pub struct RedoxCoupleBuilder {
    name: String,
    standard_potential: Volts,
    electrons: u32,
    alpha: f64,
    k0_cm_per_s: f64,
    diffusion: DiffusionCoefficient,
}

impl RedoxCoupleBuilder {
    /// Sets the formal potential `E⁰`.
    #[must_use]
    pub fn standard_potential(mut self, e0: Volts) -> Self {
        self.standard_potential = e0;
        self
    }

    /// Sets the electron count `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn electrons(mut self, n: u32) -> Self {
        assert!(n > 0, "electron count must be at least 1");
        self.electrons = n;
        self
    }

    /// Sets the transfer coefficient α (dimensionless).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    #[must_use]
    pub fn alpha(mut self, alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha < 1.0,
            "transfer coefficient must lie in (0, 1)"
        );
        self.alpha = alpha;
        self
    }

    /// Sets the standard rate constant `k⁰` in cm/s.
    ///
    /// # Panics
    ///
    /// Panics if `k0` is not positive and finite.
    #[must_use]
    pub fn rate_constant(mut self, k0_cm_per_s: f64) -> Self {
        assert!(
            k0_cm_per_s > 0.0 && k0_cm_per_s.is_finite(),
            "rate constant must be positive and finite"
        );
        self.k0_cm_per_s = k0_cm_per_s;
        self
    }

    /// Sets the diffusion coefficient.
    #[must_use]
    pub fn diffusion(mut self, d: DiffusionCoefficient) -> Self {
        self.diffusion = d;
        self
    }

    /// Finalizes the couple.
    #[must_use]
    pub fn build(self) -> RedoxCouple {
        RedoxCouple {
            name: self.name,
            standard_potential: self.standard_potential,
            electrons: self.electrons,
            alpha: self.alpha,
            k0_cm_per_s: self.k0_cm_per_s,
            diffusion: self.diffusion,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_sane() {
        let c = RedoxCouple::builder("test").build();
        assert_eq!(c.electrons(), 1);
        assert_eq!(c.alpha(), 0.5);
        assert!(c.rate_constant() > 0.0);
    }

    #[test]
    fn rate_enhancement_multiplies_k0() {
        let base = RedoxCouple::hydrogen_peroxide_oxidation();
        let boosted = base.with_rate_enhanced(50.0);
        assert!((boosted.rate_constant() / base.rate_constant() - 50.0).abs() < 1e-9);
        // Everything else is untouched.
        assert_eq!(boosted.electrons(), base.electrons());
        assert_eq!(boosted.standard_potential(), base.standard_potential());
    }

    #[test]
    fn stock_couples_have_expected_shapes() {
        assert_eq!(RedoxCouple::hydrogen_peroxide_oxidation().electrons(), 2);
        assert_eq!(RedoxCouple::ferrocyanide_probe().electrons(), 1);
        assert!(RedoxCouple::cyp_heme().standard_potential().as_volts() < 0.0);
    }

    #[test]
    #[should_panic(expected = "transfer coefficient")]
    fn alpha_must_be_fractional() {
        let _ = RedoxCouple::builder("bad").alpha(1.5);
    }

    #[test]
    #[should_panic(expected = "positive and finite")]
    fn k0_must_be_positive() {
        let _ = RedoxCouple::builder("bad").rate_constant(0.0);
    }

    #[test]
    fn kinetics_bundle_matches_fields() {
        let c = RedoxCouple::builder("x")
            .electrons(2)
            .alpha(0.4)
            .rate_constant(3e-3)
            .build();
        let k = c.kinetics();
        assert_eq!(k.n, 2);
        assert_eq!(k.alpha, 0.4);
        assert_eq!(k.k0_cm_per_s, 3e-3);
    }
}

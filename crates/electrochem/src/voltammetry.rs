//! Digital simulation of sweep voltammetry.
//!
//! Simulates the coupled diffusion of the oxidized and reduced halves of a
//! redox couple under a swept potential, producing full voltammograms —
//! the "hysteresis plots" the paper's CYP450 sensors are read from. The
//! surface condition is either Nernstian (reversible) or Butler–Volmer
//! (quasireversible), selected automatically from the couple's `k⁰`.
//!
//! Validated against the Randles–Ševčík closed form (see tests).

use bios_units::{Amperes, Kelvin, Molar, Seconds, SquareCm, Volts, FARADAY, GAS_CONSTANT};

use crate::checkpoint::{CheckPoint, NeverCancel, POLL_INTERVAL};
use crate::error::ElectrochemError;
use crate::species::RedoxCouple;
use crate::waveform::{CyclicSweep, Waveform};

/// One simulated current/potential trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Voltammogram {
    points: Vec<VoltammogramPoint>,
}

/// A single sample of the voltammogram.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VoltammogramPoint {
    /// Time from sweep start.
    pub time: Seconds,
    /// Applied potential.
    pub potential: Volts,
    /// Measured current (anodic positive).
    pub current: Amperes,
}

impl Voltammogram {
    /// Creates a voltammogram from raw points.
    #[must_use]
    pub fn new(points: Vec<VoltammogramPoint>) -> Voltammogram {
        Voltammogram { points }
    }

    /// All samples in sweep order.
    #[must_use]
    pub fn points(&self) -> &[VoltammogramPoint] {
        &self.points
    }

    /// The most anodic (most positive current) sample.
    #[must_use]
    pub fn anodic_peak(&self) -> Option<VoltammogramPoint> {
        self.points
            .iter()
            .copied()
            .max_by(|a, b| a.current.as_amps().total_cmp(&b.current.as_amps()))
    }

    /// The most cathodic (most negative current) sample.
    #[must_use]
    pub fn cathodic_peak(&self) -> Option<VoltammogramPoint> {
        self.points
            .iter()
            .copied()
            .min_by(|a, b| a.current.as_amps().total_cmp(&b.current.as_amps()))
    }

    /// Anodic-to-cathodic peak potential separation, when both exist.
    #[must_use]
    pub fn peak_separation(&self) -> Option<Volts> {
        let a = self.anodic_peak()?;
        let c = self.cathodic_peak()?;
        Some(Volts::from_volts(
            (a.potential.as_volts() - c.potential.as_volts()).abs(),
        ))
    }

    /// Loop (hysteresis) area in volt·amps, computed by the shoelace
    /// formula over the (E, i) trace. The paper reads drug concentration
    /// off the hysteresis plot; the loop area is a robust scalar proxy.
    #[must_use]
    pub fn hysteresis_area(&self) -> f64 {
        let n = self.points.len();
        if n < 3 {
            return 0.0;
        }
        let mut acc = 0.0;
        for k in 0..n {
            let p = &self.points[k];
            let q = &self.points[(k + 1) % n];
            acc += p.potential.as_volts() * q.current.as_amps()
                - q.potential.as_volts() * p.current.as_amps();
        }
        (acc / 2.0).abs()
    }
}

/// Configuration and state for a cyclic-voltammetry digital simulation.
///
/// # Examples
///
/// ```
/// use bios_electrochem::voltammetry::CvSimulator;
/// use bios_electrochem::{CyclicSweep, RedoxCouple};
/// use bios_units::{Kelvin, Molar, ScanRate, SquareCm, Volts};
///
/// let couple = RedoxCouple::ferrocyanide_probe();
/// let sweep = CyclicSweep::new(
///     Volts::from_milli_volts(-170.0),
///     Volts::from_milli_volts(630.0),
///     ScanRate::from_milli_volts_per_second(100.0),
///     1,
/// );
/// let vg = CvSimulator::new(couple, SquareCm::from_square_cm(0.1))
///     .with_reduced_bulk(Molar::from_milli_molar(1.0))
///     .run(&sweep);
/// let peak = vg.anodic_peak().expect("sweep produced samples");
/// assert!(peak.current.as_micro_amps() > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct CvSimulator {
    couple: RedoxCouple,
    area: SquareCm,
    temperature: Kelvin,
    oxidized_bulk: Molar,
    reduced_bulk: Molar,
    nodes: usize,
    /// Samples stored per simulated second of sweep.
    samples_per_second: f64,
    /// EC′ pseudo-first-order regeneration rate, s⁻¹: the reduced form
    /// is chemically re-oxidized in solution (substrate turnover), so
    /// the cathodic wave becomes catalytic. 0 disables the mechanism.
    catalytic_rate_per_s: f64,
}

impl CvSimulator {
    /// Creates a simulator for `couple` on an electrode of geometric
    /// `area`, with no analyte present (set bulks before running).
    #[must_use]
    pub fn new(couple: RedoxCouple, area: SquareCm) -> CvSimulator {
        CvSimulator {
            couple,
            area,
            temperature: Kelvin::ROOM,
            oxidized_bulk: Molar::ZERO,
            reduced_bulk: Molar::ZERO,
            nodes: 240,
            samples_per_second: 50.0,
            catalytic_rate_per_s: 0.0,
        }
    }

    /// Enables the EC′ catalytic mechanism: after electro-reduction, the
    /// reduced form is chemically converted back to the oxidized form at
    /// pseudo-first-order rate `k` (set by the substrate concentration
    /// and the catalyst turnover). The cathodic wave then plateaus at a
    /// substrate-dependent catalytic current instead of peaking — the
    /// textbook signature of mediated enzyme catalysis.
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::InvalidParameter`] if the rate is
    /// negative or non-finite.
    pub fn with_catalytic_rate(mut self, k_per_s: f64) -> Result<CvSimulator, ElectrochemError> {
        if !(k_per_s >= 0.0 && k_per_s.is_finite()) {
            return Err(ElectrochemError::InvalidParameter {
                name: "catalytic rate",
                value: k_per_s,
            });
        }
        self.catalytic_rate_per_s = k_per_s;
        Ok(self)
    }

    /// Sets the bulk concentration of the oxidized form.
    #[must_use]
    pub fn with_oxidized_bulk(mut self, c: Molar) -> CvSimulator {
        self.oxidized_bulk = c;
        self
    }

    /// Sets the bulk concentration of the reduced form.
    #[must_use]
    pub fn with_reduced_bulk(mut self, c: Molar) -> CvSimulator {
        self.reduced_bulk = c;
        self
    }

    /// Sets the cell temperature.
    #[must_use]
    pub fn with_temperature(mut self, t: Kelvin) -> CvSimulator {
        self.temperature = t;
        self
    }

    /// Overrides the spatial resolution (default 240 nodes).
    ///
    /// # Errors
    ///
    /// Returns [`ElectrochemError::GridTooSmall`] if fewer than 16
    /// nodes are requested.
    pub fn with_nodes(mut self, nodes: usize) -> Result<CvSimulator, ElectrochemError> {
        if nodes < 16 {
            return Err(ElectrochemError::GridTooSmall {
                requested: nodes,
                minimum: 16,
            });
        }
        self.nodes = nodes;
        Ok(self)
    }

    /// Runs the sweep and returns the voltammogram.
    #[must_use]
    pub fn run(&self, sweep: &CyclicSweep) -> Voltammogram {
        // NeverCancel cannot trip; a NonFinite bail returns the samples
        // collected so far, which is what the old unguarded loop would
        // have produced up to the divergence anyway.
        match self.run_checked(sweep, &NeverCancel) {
            Ok(vg) => vg,
            Err(_) => Voltammogram::new(Vec::new()),
        }
    }

    /// [`Self::run`] with cooperative cancellation and a numerical
    /// guardrail: every [`POLL_INTERVAL`] inner steps the simulator
    /// polls `cp` and verifies the surface fields are finite.
    ///
    /// # Errors
    ///
    /// * [`ElectrochemError::Cancelled`] — `cp` tripped mid-sweep.
    /// * [`ElectrochemError::NonFinite`] — the digital simulation
    ///   diverged; the partial trace must not be trusted.
    pub fn run_checked(
        &self,
        sweep: &CyclicSweep,
        cp: &dyn CheckPoint,
    ) -> Result<Voltammogram, ElectrochemError> {
        let d = self.couple.diffusion().as_square_cm_per_second();
        let t_total = sweep.duration().as_seconds();
        // Domain: 6 diffusion lengths keeps the far boundary unperturbed.
        let length = 6.0 * (d * t_total).sqrt();
        let dx = length / (self.nodes - 1) as f64;
        // Explicit stability with margin.
        let dt = 0.4 * dx * dx / d;
        let steps = (t_total / dt).ceil() as usize;
        let dt = t_total / steps as f64;
        let r = d * dt / (dx * dx);

        let c_ox_bulk = self.oxidized_bulk.as_molar() * 1e-3;
        let c_red_bulk = self.reduced_bulk.as_molar() * 1e-3;
        let mut c_ox = vec![c_ox_bulk; self.nodes];
        let mut c_red = vec![c_red_bulk; self.nodes];
        let mut old_ox = c_ox.clone();
        let mut old_red = c_red.clone();

        let n = f64::from(self.couple.electrons());
        let f_over_rt = n * FARADAY / (GAS_CONSTANT * self.temperature.as_kelvin());
        let e0 = self.couple.standard_potential().as_volts();
        let k0 = self.couple.rate_constant();
        let alpha = self.couple.alpha();
        let nfa = n * FARADAY * self.area.as_square_cm();

        let sample_every = ((1.0 / self.samples_per_second) / dt).max(1.0) as usize;
        let mut points = Vec::with_capacity(steps / sample_every + 2);

        for step in 0..=steps {
            if step % POLL_INTERVAL == 0 {
                if cp.cancelled() {
                    return Err(ElectrochemError::Cancelled);
                }
                // The surface nodes see every pathology first (they fold
                // in the exponential Butler–Volmer rates), so checking
                // them is a sufficient sentinel for the whole field.
                if !(c_ox[0].is_finite()
                    && c_red[0].is_finite()
                    && c_ox[1].is_finite()
                    && c_red[1].is_finite())
                {
                    return Err(ElectrochemError::NonFinite { step });
                }
            }
            let t = step as f64 * dt;
            let e = sweep.potential_at(Seconds::from_seconds(t)).as_volts();

            // Butler–Volmer surface flux (reduction positive), linearized
            // against the first interior node.
            let x = f_over_rt * (e - e0);
            let kf = k0 * (-alpha * x).exp(); // reduction of O
            let kb = k0 * ((1.0 - alpha) * x).exp(); // oxidation of R
            let j = (kf * c_ox[1] - kb * c_red[1]) / (1.0 + (kf + kb) * dx / d);
            // Surface concentrations consistent with that flux.
            c_ox[0] = (c_ox[1] - j * dx / d).max(0.0);
            c_red[0] = (c_red[1] + j * dx / d).max(0.0);

            // Anodic-positive current.
            let i = -nfa * j;
            if step % sample_every == 0 || step == steps {
                points.push(VoltammogramPoint {
                    time: Seconds::from_seconds(t),
                    potential: Volts::from_volts(e),
                    current: Amperes::from_amps(i),
                });
            }

            if step == steps {
                break;
            }

            // Diffuse the interior (FTCS) with the EC′ source/sink.
            old_ox.copy_from_slice(&c_ox);
            old_red.copy_from_slice(&c_red);
            let kc = self.catalytic_rate_per_s * dt;
            for i in 1..self.nodes - 1 {
                let regenerated = kc * old_red[i];
                c_ox[i] =
                    old_ox[i] + r * (old_ox[i + 1] - 2.0 * old_ox[i] + old_ox[i - 1]) + regenerated;
                c_red[i] = (old_red[i] + r * (old_red[i + 1] - 2.0 * old_red[i] + old_red[i - 1])
                    - regenerated)
                    .max(0.0);
            }
            c_ox[self.nodes - 1] = c_ox_bulk;
            c_red[self.nodes - 1] = c_red_bulk;
        }

        Ok(Voltammogram::new(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::randles_sevcik::reversible_peak_current;
    use bios_units::ScanRate;

    fn fast_couple() -> RedoxCouple {
        // k0 large → reversible behaviour.
        RedoxCouple::builder("fast probe")
            .standard_potential(Volts::from_milli_volts(230.0))
            .electrons(1)
            .rate_constant(1.0)
            .diffusion(bios_units::DiffusionCoefficient::from_square_cm_per_second(
                6.5e-6,
            ))
            .build()
    }

    fn sweep() -> CyclicSweep {
        CyclicSweep::new(
            Volts::from_milli_volts(-170.0),
            Volts::from_milli_volts(630.0),
            ScanRate::from_milli_volts_per_second(100.0),
            1,
        )
    }

    #[test]
    fn reversible_peak_matches_randles_sevcik() {
        let area = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(1.0);
        let vg = CvSimulator::new(fast_couple(), area)
            .with_reduced_bulk(c)
            .with_nodes(300)
            .expect("enough nodes")
            .run(&sweep());
        let sim_peak = vg.anodic_peak().unwrap().current;
        let analytic = reversible_peak_current(
            1,
            area,
            fast_couple().diffusion(),
            c,
            ScanRate::from_milli_volts_per_second(100.0),
            Kelvin::ROOM,
        );
        let rel = (sim_peak.as_amps() - analytic.as_amps()).abs() / analytic.as_amps();
        assert!(rel < 0.05, "relative error {rel}");
    }

    #[test]
    fn reversible_peak_potential_near_e0_plus_28mv() {
        let vg = CvSimulator::new(fast_couple(), SquareCm::from_square_cm(0.1))
            .with_reduced_bulk(Molar::from_milli_molar(1.0))
            .with_nodes(300)
            .expect("enough nodes")
            .run(&sweep());
        let peak_e = vg.anodic_peak().unwrap().potential.as_milli_volts();
        // E_p = E0 + 28.5/n mV for an anodic reversible sweep.
        assert!(
            (peak_e - (230.0 + 28.5)).abs() < 12.0,
            "peak at {peak_e} mV"
        );
    }

    #[test]
    fn peak_current_linear_in_concentration() {
        let area = SquareCm::from_square_cm(0.1);
        let run = |mm: f64| {
            CvSimulator::new(fast_couple(), area)
                .with_reduced_bulk(Molar::from_milli_molar(mm))
                .run(&sweep())
                .anodic_peak()
                .unwrap()
                .current
                .as_amps()
        };
        let i1 = run(0.5);
        let i2 = run(1.0);
        assert!((i2 / i1 - 2.0).abs() < 0.02);
    }

    #[test]
    fn return_sweep_shows_cathodic_peak() {
        let vg = CvSimulator::new(fast_couple(), SquareCm::from_square_cm(0.1))
            .with_reduced_bulk(Molar::from_milli_molar(1.0))
            .run(&sweep());
        let cat = vg.cathodic_peak().unwrap();
        assert!(cat.current.as_amps() < 0.0);
        // Reversible ΔEp ≈ 57 mV; digital + quasi effects allow slack.
        let sep = vg.peak_separation().unwrap();
        assert!(
            sep.as_milli_volts() > 40.0 && sep.as_milli_volts() < 120.0,
            "separation {sep}"
        );
    }

    #[test]
    fn sluggish_kinetics_depress_and_shift_peak() {
        let slow = RedoxCouple::builder("slow probe")
            .standard_potential(Volts::from_milli_volts(230.0))
            .electrons(1)
            .rate_constant(1e-5)
            .diffusion(bios_units::DiffusionCoefficient::from_square_cm_per_second(
                6.5e-6,
            ))
            .build();
        let area = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(1.0);
        let fast_vg = CvSimulator::new(fast_couple(), area)
            .with_reduced_bulk(c)
            .run(&sweep());
        let slow_vg = CvSimulator::new(slow, area)
            .with_reduced_bulk(c)
            .run(&sweep());
        let fast_peak = fast_vg.anodic_peak().unwrap();
        let slow_peak = slow_vg.anodic_peak().unwrap();
        assert!(slow_peak.current < fast_peak.current);
        assert!(slow_peak.potential > fast_peak.potential);
    }

    #[test]
    fn blank_solution_gives_negligible_current() {
        let vg = CvSimulator::new(fast_couple(), SquareCm::from_square_cm(0.1)).run(&sweep());
        let peak = vg.anodic_peak().unwrap();
        assert!(peak.current.as_nano_amps().abs() < 1.0);
    }

    #[test]
    fn catalytic_ec_prime_exceeds_diffusive_peak() {
        // Oxidized species present; sweep cathodic. With regeneration,
        // the reduction current exceeds the purely diffusive peak.
        let couple = RedoxCouple::builder("heme-like")
            .standard_potential(Volts::from_milli_volts(-300.0))
            .electrons(1)
            .rate_constant(0.5)
            .diffusion(bios_units::DiffusionCoefficient::from_square_cm_per_second(
                6.5e-6,
            ))
            .build();
        let sweep = CyclicSweep::new(
            Volts::from_milli_volts(100.0),
            Volts::from_milli_volts(-700.0),
            ScanRate::from_milli_volts_per_second(50.0),
            1,
        );
        let area = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(0.5);
        let run = |k: f64| {
            CvSimulator::new(couple.clone(), area)
                .with_oxidized_bulk(c)
                .with_catalytic_rate(k)
                .expect("valid rate")
                .run(&sweep)
        };
        let diffusive = run(0.0);
        let catalytic = run(5.0);
        let i_diff = diffusive.cathodic_peak().unwrap().current.as_amps().abs();
        let i_cat = catalytic.cathodic_peak().unwrap().current.as_amps().abs();
        assert!(
            i_cat > 1.5 * i_diff,
            "catalytic {i_cat} vs diffusive {i_diff}"
        );
    }

    #[test]
    fn catalytic_current_scales_as_sqrt_rate() {
        // Savéant limit: i_cat = n·F·A·C·√(k·D), independent of scan
        // rate, ∝ √k.
        let couple = RedoxCouple::builder("mediator")
            .standard_potential(Volts::from_milli_volts(-300.0))
            .electrons(1)
            .rate_constant(1.0)
            .diffusion(bios_units::DiffusionCoefficient::from_square_cm_per_second(
                6.5e-6,
            ))
            .build();
        let sweep = CyclicSweep::new(
            Volts::from_milli_volts(100.0),
            Volts::from_milli_volts(-700.0),
            ScanRate::from_milli_volts_per_second(50.0),
            1,
        );
        let area = SquareCm::from_square_cm(0.1);
        let c = Molar::from_milli_molar(0.5);
        let plateau = |k: f64| {
            CvSimulator::new(couple.clone(), area)
                .with_oxidized_bulk(c)
                .with_catalytic_rate(k)
                .expect("valid rate")
                .run(&sweep)
                .cathodic_peak()
                .unwrap()
                .current
                .as_amps()
                .abs()
        };
        let i16 = plateau(16.0);
        let i64 = plateau(64.0);
        let ratio = i64 / i16;
        assert!((ratio - 2.0).abs() < 0.25, "ratio {ratio}");
        // And the absolute plateau approaches the Savéant expression.
        let analytic = 96485.332 * area.as_square_cm() * (0.5e-6) * (64.0 * 6.5e-6f64).sqrt();
        let rel = (i64 - analytic).abs() / analytic;
        assert!(rel < 0.3, "plateau {i64} vs analytic {analytic}");
    }

    #[test]
    fn catalytic_return_branch_retraces_forward_branch() {
        // In the pure kinetic (S-shaped) regime the forward and return
        // traces nearly coincide: no diffusive peak to hystere around.
        let couple = RedoxCouple::builder("mediator")
            .standard_potential(Volts::from_milli_volts(-300.0))
            .electrons(1)
            .rate_constant(1.0)
            .diffusion(bios_units::DiffusionCoefficient::from_square_cm_per_second(
                6.5e-6,
            ))
            .build();
        let sweep = CyclicSweep::new(
            Volts::from_milli_volts(100.0),
            Volts::from_milli_volts(-700.0),
            ScanRate::from_milli_volts_per_second(50.0),
            1,
        );
        let vg = CvSimulator::new(couple, SquareCm::from_square_cm(0.1))
            .with_oxidized_bulk(Molar::from_milli_molar(0.5))
            .with_catalytic_rate(25.0)
            .expect("valid rate")
            .run(&sweep);
        // Compare currents at −500 mV on each branch.
        let at_branch = |forward: bool| {
            let pts = vg.points();
            let half = pts.len() / 2;
            let slice = if forward { &pts[..half] } else { &pts[half..] };
            slice
                .iter()
                .min_by(|a, b| {
                    (a.potential.as_milli_volts() + 500.0)
                        .abs()
                        .total_cmp(&(b.potential.as_milli_volts() + 500.0).abs())
                })
                .unwrap()
                .current
                .as_amps()
        };
        let fwd = at_branch(true);
        let ret = at_branch(false);
        assert!(
            (fwd - ret).abs() / fwd.abs() < 0.15,
            "branches diverge: {fwd} vs {ret}"
        );
    }

    #[test]
    fn invalid_builder_inputs_are_typed_errors() {
        let sim = || CvSimulator::new(fast_couple(), SquareCm::from_square_cm(0.1));
        assert!(matches!(
            sim().with_nodes(8),
            Err(ElectrochemError::GridTooSmall {
                requested: 8,
                minimum: 16
            })
        ));
        assert!(matches!(
            sim().with_catalytic_rate(-1.0),
            Err(ElectrochemError::InvalidParameter { .. })
        ));
        assert!(matches!(
            sim().with_catalytic_rate(f64::NAN),
            Err(ElectrochemError::InvalidParameter { .. })
        ));
    }

    #[test]
    fn run_checked_matches_run_and_honours_cancellation() {
        use std::sync::atomic::AtomicBool;
        let sim = CvSimulator::new(fast_couple(), SquareCm::from_square_cm(0.1))
            .with_reduced_bulk(Molar::from_milli_molar(1.0));
        let plain = sim.run(&sweep());
        let checked = sim
            .run_checked(&sweep(), &crate::checkpoint::NeverCancel)
            .expect("healthy sweep completes");
        assert_eq!(plain, checked, "checked path must be bit-identical");
        let tripped = AtomicBool::new(true);
        assert!(matches!(
            sim.run_checked(&sweep(), &tripped),
            Err(ElectrochemError::Cancelled)
        ));
    }

    #[test]
    fn hysteresis_area_grows_with_concentration() {
        let area = SquareCm::from_square_cm(0.1);
        let run = |mm: f64| {
            CvSimulator::new(fast_couple(), area)
                .with_reduced_bulk(Molar::from_milli_molar(mm))
                .run(&sweep())
                .hysteresis_area()
        };
        assert!(run(1.0) > run(0.25));
    }
}

//! Potential programs applied by the potentiostat.
//!
//! Each technique in the paper corresponds to a waveform: the oxidase
//! sensors use a potential step held at +650 mV (chronoamperometry), the
//! CYP450 sensors a forward/backward linear ramp (cyclic voltammetry),
//! and the DNA-based cyclophosphamide baseline of \[32\] uses differential
//! pulse voltammetry.

use bios_units::{ScanRate, Seconds, Volts};

/// A deterministic potential-vs-time program.
///
/// Implementors are pure functions of time, so they can be sampled at any
/// rate by the instrument model.
pub trait Waveform {
    /// The applied potential at time `t` from the start of the program.
    fn potential_at(&self, t: Seconds) -> Volts;

    /// Total program duration.
    fn duration(&self) -> Seconds;

    /// Samples the program every `dt`, inclusive of `t = 0`, through the
    /// full duration.
    fn samples(&self, dt: Seconds) -> Vec<(Seconds, Volts)>
    where
        Self: Sized,
    {
        let n = (self.duration().as_seconds() / dt.as_seconds()).floor() as usize;
        (0..=n)
            .map(|k| {
                let t = Seconds::from_seconds(k as f64 * dt.as_seconds());
                (t, self.potential_at(t))
            })
            .collect()
    }
}

/// Chronoamperometric step: hold `baseline`, then jump to `level` at
/// `step_at` and hold until `duration`.
///
/// # Examples
///
/// ```
/// use bios_electrochem::{PotentialStep, Waveform};
/// use bios_units::{Seconds, Volts};
///
/// // The paper's oxidase readout: step to +650 mV.
/// let step = PotentialStep::new(
///     Volts::ZERO,
///     Volts::from_milli_volts(650.0),
///     Seconds::from_seconds(1.0),
///     Seconds::from_seconds(30.0),
/// );
/// assert_eq!(step.potential_at(Seconds::from_seconds(0.5)), Volts::ZERO);
/// assert_eq!(step.potential_at(Seconds::from_seconds(10.0)).as_milli_volts(), 650.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PotentialStep {
    baseline: Volts,
    level: Volts,
    step_at: Seconds,
    duration: Seconds,
}

impl PotentialStep {
    /// Creates a step program.
    ///
    /// # Panics
    ///
    /// Panics if `step_at` is not before `duration`.
    #[must_use]
    pub fn new(
        baseline: Volts,
        level: Volts,
        step_at: Seconds,
        duration: Seconds,
    ) -> PotentialStep {
        assert!(
            step_at < duration,
            "step must occur before the program ends"
        );
        PotentialStep {
            baseline,
            level,
            step_at,
            duration,
        }
    }

    /// The held level after the step.
    #[must_use]
    pub fn level(&self) -> Volts {
        self.level
    }

    /// When the step fires.
    #[must_use]
    pub fn step_at(&self) -> Seconds {
        self.step_at
    }
}

impl Waveform for PotentialStep {
    fn potential_at(&self, t: Seconds) -> Volts {
        if t < self.step_at {
            self.baseline
        } else {
            self.level
        }
    }

    fn duration(&self) -> Seconds {
        self.duration
    }
}

/// Single linear ramp from `start` to `end` at `rate`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearSweep {
    start: Volts,
    end: Volts,
    rate: ScanRate,
}

impl LinearSweep {
    /// Creates a sweep; the sign of travel is inferred from the endpoints.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or the endpoints coincide.
    #[must_use]
    pub fn new(start: Volts, end: Volts, rate: ScanRate) -> LinearSweep {
        assert!(
            rate.as_volts_per_second() > 0.0,
            "scan rate must be positive"
        );
        assert!(start != end, "sweep endpoints must differ");
        LinearSweep { start, end, rate }
    }

    /// Start potential.
    #[must_use]
    pub fn start(&self) -> Volts {
        self.start
    }

    /// End potential.
    #[must_use]
    pub fn end(&self) -> Volts {
        self.end
    }

    /// Scan rate magnitude.
    #[must_use]
    pub fn rate(&self) -> ScanRate {
        self.rate
    }
}

impl Waveform for LinearSweep {
    fn potential_at(&self, t: Seconds) -> Volts {
        let span = self.end.as_volts() - self.start.as_volts();
        let direction = span.signum();
        let travelled = self.rate.as_volts_per_second() * t.as_seconds();
        let e = self.start.as_volts() + direction * travelled.min(span.abs());
        Volts::from_volts(e)
    }

    fn duration(&self) -> Seconds {
        let span = (self.end.as_volts() - self.start.as_volts()).abs();
        Seconds::from_seconds(span / self.rate.as_volts_per_second())
    }
}

/// Triangular cyclic sweep: `start → vertex → start`, repeated `cycles`
/// times.
///
/// # Examples
///
/// ```
/// use bios_electrochem::{CyclicSweep, Waveform};
/// use bios_units::{ScanRate, Seconds, Volts};
///
/// let cv = CyclicSweep::new(
///     Volts::from_milli_volts(-600.0),
///     Volts::from_milli_volts(200.0),
///     ScanRate::from_milli_volts_per_second(50.0),
///     1,
/// );
/// // Forward vertex is reached halfway through the cycle.
/// let half = Seconds::from_seconds(cv.duration().as_seconds() / 2.0);
/// assert!((cv.potential_at(half).as_milli_volts() - 200.0).abs() < 1e-6);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclicSweep {
    start: Volts,
    vertex: Volts,
    rate: ScanRate,
    cycles: u32,
}

impl CyclicSweep {
    /// Creates a cyclic program.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive, the vertices coincide, or
    /// `cycles == 0`.
    #[must_use]
    pub fn new(start: Volts, vertex: Volts, rate: ScanRate, cycles: u32) -> CyclicSweep {
        assert!(
            rate.as_volts_per_second() > 0.0,
            "scan rate must be positive"
        );
        assert!(start != vertex, "sweep vertices must differ");
        assert!(cycles > 0, "at least one cycle required");
        CyclicSweep {
            start,
            vertex,
            rate,
            cycles,
        }
    }

    /// Start/return potential.
    #[must_use]
    pub fn start(&self) -> Volts {
        self.start
    }

    /// Turning potential.
    #[must_use]
    pub fn vertex(&self) -> Volts {
        self.vertex
    }

    /// Scan rate magnitude.
    #[must_use]
    pub fn rate(&self) -> ScanRate {
        self.rate
    }

    /// Number of triangular cycles.
    #[must_use]
    pub fn cycles(&self) -> u32 {
        self.cycles
    }

    /// Duration of a single triangular cycle.
    #[must_use]
    pub fn cycle_duration(&self) -> Seconds {
        let span = (self.vertex.as_volts() - self.start.as_volts()).abs();
        Seconds::from_seconds(2.0 * span / self.rate.as_volts_per_second())
    }
}

impl Waveform for CyclicSweep {
    fn potential_at(&self, t: Seconds) -> Volts {
        let cycle = self.cycle_duration().as_seconds();
        let span = self.vertex.as_volts() - self.start.as_volts();
        let within = (t.as_seconds() % cycle).min(cycle);
        // Clamp once past the final cycle.
        let within = if t.as_seconds() >= cycle * f64::from(self.cycles) {
            0.0
        } else {
            within
        };
        let half = cycle / 2.0;
        let frac = if within <= half {
            within / half
        } else {
            2.0 - within / half
        };
        Volts::from_volts(self.start.as_volts() + span * frac)
    }

    fn duration(&self) -> Seconds {
        Seconds::from_seconds(self.cycle_duration().as_seconds() * f64::from(self.cycles))
    }
}

/// Differential pulse voltammetry: a staircase ramp with a superimposed
/// pulse; the readout subtracts pre-pulse from end-of-pulse currents,
/// strongly rejecting capacitive background.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DifferentialPulse {
    start: Volts,
    end: Volts,
    step: Volts,
    amplitude: Volts,
    pulse_width: Seconds,
    period: Seconds,
}

impl DifferentialPulse {
    /// Creates a DPV program.
    ///
    /// # Panics
    ///
    /// Panics if the staircase step or pulse amplitude is not positive,
    /// the pulse is not shorter than the period, or the endpoints
    /// coincide.
    #[must_use]
    pub fn new(
        start: Volts,
        end: Volts,
        step: Volts,
        amplitude: Volts,
        pulse_width: Seconds,
        period: Seconds,
    ) -> DifferentialPulse {
        assert!(step.as_volts() > 0.0, "staircase step must be positive");
        assert!(
            amplitude.as_volts() > 0.0,
            "pulse amplitude must be positive"
        );
        assert!(
            pulse_width < period,
            "pulse must be shorter than the period"
        );
        assert!(start != end, "endpoints must differ");
        DifferentialPulse {
            start,
            end,
            step,
            amplitude,
            pulse_width,
            period,
        }
    }

    /// Number of staircase tread levels in the program.
    #[must_use]
    pub fn steps(&self) -> usize {
        let span = (self.end.as_volts() - self.start.as_volts()).abs();
        (span / self.step.as_volts()).ceil() as usize
    }

    /// The base (staircase) potential of tread `k`.
    #[must_use]
    pub fn base_potential(&self, k: usize) -> Volts {
        let dir = (self.end.as_volts() - self.start.as_volts()).signum();
        Volts::from_volts(self.start.as_volts() + dir * self.step.as_volts() * k as f64)
    }

    /// Pulse amplitude.
    #[must_use]
    pub fn amplitude(&self) -> Volts {
        self.amplitude
    }

    /// Pulse width.
    #[must_use]
    pub fn pulse_width(&self) -> Seconds {
        self.pulse_width
    }

    /// Staircase period.
    #[must_use]
    pub fn period(&self) -> Seconds {
        self.period
    }
}

impl Waveform for DifferentialPulse {
    fn potential_at(&self, t: Seconds) -> Volts {
        let k = (t.as_seconds() / self.period.as_seconds()).floor() as usize;
        let k = k.min(self.steps());
        let within = t.as_seconds() - k as f64 * self.period.as_seconds();
        let base = self.base_potential(k);
        // Pulse fires at the end of each tread.
        let pulse_start = self.period.as_seconds() - self.pulse_width.as_seconds();
        if within >= pulse_start {
            let dir = (self.end.as_volts() - self.start.as_volts()).signum();
            Volts::from_volts(base.as_volts() + dir * self.amplitude.as_volts())
        } else {
            base
        }
    }

    fn duration(&self) -> Seconds {
        Seconds::from_seconds(self.period.as_seconds() * (self.steps() + 1) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mv(v: f64) -> Volts {
        Volts::from_milli_volts(v)
    }

    fn s(v: f64) -> Seconds {
        Seconds::from_seconds(v)
    }

    #[test]
    fn step_holds_levels() {
        let w = PotentialStep::new(Volts::ZERO, mv(650.0), s(1.0), s(10.0));
        assert_eq!(w.potential_at(s(0.0)), Volts::ZERO);
        assert_eq!(w.potential_at(s(0.999)), Volts::ZERO);
        assert_eq!(w.potential_at(s(1.0)), mv(650.0));
        assert_eq!(w.potential_at(s(9.0)), mv(650.0));
        assert_eq!(w.duration(), s(10.0));
    }

    #[test]
    fn linear_sweep_travels_at_rate() {
        let w = LinearSweep::new(
            mv(-200.0),
            mv(300.0),
            ScanRate::from_milli_volts_per_second(50.0),
        );
        assert_eq!(w.potential_at(s(0.0)), mv(-200.0));
        assert!((w.potential_at(s(2.0)).as_milli_volts() - -100.0).abs() < 1e-9);
        assert!((w.duration().as_seconds() - 10.0).abs() < 1e-12);
        // Clamps at the end.
        assert!((w.potential_at(s(100.0)).as_milli_volts() - 300.0).abs() < 1e-9);
    }

    #[test]
    fn downward_sweep_supported() {
        let w = LinearSweep::new(
            mv(300.0),
            mv(-200.0),
            ScanRate::from_milli_volts_per_second(100.0),
        );
        assert!((w.potential_at(s(1.0)).as_milli_volts() - 200.0).abs() < 1e-9);
    }

    #[test]
    fn cyclic_sweep_is_triangular_and_returns() {
        let w = CyclicSweep::new(
            mv(-600.0),
            mv(200.0),
            ScanRate::from_milli_volts_per_second(100.0),
            1,
        );
        // Span 800 mV at 100 mV/s → 8 s out, 8 s back.
        assert!((w.duration().as_seconds() - 16.0).abs() < 1e-9);
        assert_eq!(w.potential_at(s(0.0)), mv(-600.0));
        assert!((w.potential_at(s(8.0)).as_milli_volts() - 200.0).abs() < 1e-6);
        assert!((w.potential_at(s(12.0)).as_milli_volts() - -200.0).abs() < 1e-6);
        assert!((w.potential_at(s(16.0)).as_milli_volts() - -600.0).abs() < 1e-6);
    }

    #[test]
    fn multi_cycle_repeats() {
        let w = CyclicSweep::new(
            mv(0.0),
            mv(100.0),
            ScanRate::from_milli_volts_per_second(100.0),
            3,
        );
        let one = w.cycle_duration().as_seconds();
        let e1 = w.potential_at(s(0.3 * one));
        let e2 = w.potential_at(s(1.3 * one));
        assert!((e1.as_volts() - e2.as_volts()).abs() < 1e-9);
        assert!((w.duration().as_seconds() - 3.0 * one).abs() < 1e-12);
    }

    #[test]
    fn samples_cover_duration() {
        let w = PotentialStep::new(Volts::ZERO, mv(650.0), s(1.0), s(5.0));
        let pts = w.samples(s(0.5));
        assert_eq!(pts.len(), 11);
        assert_eq!(pts[0].0, Seconds::ZERO);
        assert!((pts.last().unwrap().0.as_seconds() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn dpv_staircase_and_pulse() {
        let w = DifferentialPulse::new(
            mv(0.0),
            mv(100.0),
            mv(10.0),
            mv(25.0),
            Seconds::from_millis(50.0),
            Seconds::from_millis(200.0),
        );
        assert_eq!(w.steps(), 10);
        // Early in tread 0: base potential.
        assert!((w.potential_at(Seconds::from_millis(10.0)).as_milli_volts()).abs() < 1e-9);
        // End of tread 0: pulsed.
        assert!((w.potential_at(Seconds::from_millis(180.0)).as_milli_volts() - 25.0).abs() < 1e-9);
        // Tread 3 base.
        assert!((w.potential_at(Seconds::from_millis(650.0)).as_milli_volts() - 30.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "must differ")]
    fn degenerate_sweep_rejected() {
        let _ = LinearSweep::new(
            mv(100.0),
            mv(100.0),
            ScanRate::from_milli_volts_per_second(50.0),
        );
    }
}

//! Property tests for the electrochemistry engine: scaling laws,
//! conservation, and boundary behaviour over randomized parameters.
//! Sampled deterministically via `bios_prng::cases`.

use bios_electrochem::butler_volmer::{butler_volmer_current, TransferKinetics};
use bios_electrochem::diffusion::{DiffusionGrid, SurfaceBoundary};
use bios_electrochem::waveform::{CyclicSweep, LinearSweep, PotentialStep, Waveform};
use bios_electrochem::{cottrell, nernst, randles_sevcik};
use bios_prng::cases;
use bios_units::{DiffusionCoefficient, Kelvin, Molar, ScanRate, Seconds, SquareCm, Volts};

/// Cottrell current scales exactly linearly in area and
/// concentration and as 1/√t.
#[test]
fn cottrell_scaling_laws() {
    cases(0x0101, 48, |rng| {
        let area = rng.log_uniform_in(1e-3, 1.0);
        let c = rng.log_uniform_in(1e-3, 20.0);
        let t = rng.log_uniform_in(0.01, 100.0);
        let k = rng.uniform_in(1.5, 10.0);
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-5);
        let base = cottrell::cottrell_current(
            1,
            SquareCm::from_square_cm(area),
            d,
            Molar::from_milli_molar(c),
            Seconds::from_seconds(t),
        );
        let double_area = cottrell::cottrell_current(
            1,
            SquareCm::from_square_cm(area * k),
            d,
            Molar::from_milli_molar(c),
            Seconds::from_seconds(t),
        );
        assert!((double_area.as_amps() / base.as_amps() - k).abs() < 1e-9);
        let later = cottrell::cottrell_current(
            1,
            SquareCm::from_square_cm(area),
            d,
            Molar::from_milli_molar(c),
            Seconds::from_seconds(t * k * k),
        );
        assert!((base.as_amps() / later.as_amps() - k).abs() < 1e-9);
    });
}

/// The Nernst ratio is the exponential of the normalized
/// overpotential: multiplicative in potential shifts.
#[test]
fn nernst_ratio_is_multiplicative() {
    cases(0x0102, 48, |rng| {
        let e1 = rng.uniform_in(-0.3, 0.3);
        let e2 = rng.uniform_in(-0.3, 0.3);
        let e0 = Volts::ZERO;
        let r1 = nernst::nernst_ratio(Volts::from_volts(e1), e0, 1, Kelvin::ROOM);
        let r2 = nernst::nernst_ratio(Volts::from_volts(e2), e0, 1, Kelvin::ROOM);
        let r12 = nernst::nernst_ratio(Volts::from_volts(e1 + e2), e0, 1, Kelvin::ROOM);
        assert!((r1 * r2 - r12).abs() / r12 < 1e-9);
    });
}

/// Butler–Volmer current is strictly increasing in overpotential.
#[test]
fn butler_volmer_monotone_in_overpotential() {
    cases(0x0103, 48, |rng| {
        let alpha = rng.uniform_in(0.2, 0.8);
        let k0 = rng.log_uniform_in(1e-6, 1e-1);
        let eta_a = rng.uniform_in(-0.3, 0.3);
        let deta = rng.uniform_in(1e-4, 0.2);
        let kin = TransferKinetics {
            k0_cm_per_s: k0,
            alpha,
            n: 1,
        };
        let c = Molar::from_milli_molar(1.0);
        let a = SquareCm::from_square_cm(0.1);
        let i1 = butler_volmer_current(&kin, c, a, Volts::from_volts(eta_a), Kelvin::ROOM);
        let i2 = butler_volmer_current(&kin, c, a, Volts::from_volts(eta_a + deta), Kelvin::ROOM);
        assert!(i2.as_amps() > i1.as_amps());
    });
}

/// Randles–Ševčík peak is exactly √v in scan rate and linear in C.
#[test]
fn randles_sevcik_scalings() {
    cases(0x0104, 48, |rng| {
        let v = rng.log_uniform_in(0.005, 1.0);
        let c = rng.log_uniform_in(0.01, 10.0);
        let k = rng.uniform_in(1.2, 8.0);
        let d = DiffusionCoefficient::from_square_cm_per_second(6.5e-6);
        let area = SquareCm::from_square_cm(0.1);
        let base = randles_sevcik::reversible_peak_current(
            1,
            area,
            d,
            Molar::from_milli_molar(c),
            ScanRate::from_volts_per_second(v),
            Kelvin::ROOM,
        );
        let faster = randles_sevcik::reversible_peak_current(
            1,
            area,
            d,
            Molar::from_milli_molar(c),
            ScanRate::from_volts_per_second(v * k * k),
            Kelvin::ROOM,
        );
        assert!((faster.as_amps() / base.as_amps() - k).abs() < 1e-9);
        let richer = randles_sevcik::reversible_peak_current(
            1,
            area,
            d,
            Molar::from_milli_molar(c * k),
            ScanRate::from_volts_per_second(v),
            Kelvin::ROOM,
        );
        assert!((richer.as_amps() / base.as_amps() - k).abs() < 1e-9);
    });
}

/// Mass is conserved by the explicit solver under a blocking wall
/// for any stable step size.
#[test]
fn diffusion_conserves_mass() {
    cases(0x0105, 24, |rng| {
        let nodes = rng.index_in(11, 200);
        let bulk = rng.log_uniform_in(0.01, 10.0);
        let frac = rng.uniform_in(0.1, 0.95);
        let steps = rng.index_in(1, 150);
        let mut g = DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(1e-5),
            Molar::from_milli_molar(bulk),
            50e-4,
            nodes,
        )
        .expect("valid grid");
        let before = g.inventory_mol_per_cm2();
        let dt = g.max_stable_dt() * frac;
        for _ in 0..steps {
            g.step_explicit(dt).expect("stable step");
        }
        let after = g.inventory_mol_per_cm2();
        assert!((after - before).abs() / before < 1e-9);
    });
}

/// Concentrations never go negative or exceed bulk under a
/// consuming surface.
#[test]
fn diffusion_respects_physical_bounds() {
    cases(0x0106, 24, |rng| {
        let steps = rng.index_in(1, 300);
        let frac = rng.uniform_in(0.1, 0.95);
        let bulk = 1.0;
        let mut g = DiffusionGrid::new(
            DiffusionCoefficient::from_square_cm_per_second(1e-5),
            Molar::from_milli_molar(bulk),
            50e-4,
            101,
        )
        .expect("valid grid");
        g.set_surface(SurfaceBoundary::Concentration(0.0));
        let dt = g.max_stable_dt() * frac;
        for _ in 0..steps {
            g.step_explicit(dt).expect("stable step");
        }
        for i in 0..g.nodes() {
            let c = g.concentration_at(i).as_milli_molar();
            assert!(c >= -1e-12, "node {i} negative: {c}");
            assert!(c <= bulk + 1e-9, "node {i} exceeds bulk: {c}");
        }
    });
}

/// Crank–Nicolson agrees with the explicit integrator at matched
/// (stable) steps, for random durations.
#[test]
fn integrators_agree() {
    cases(0x0107, 16, |rng| {
        let steps = rng.index_in(10, 200);
        let make = || {
            let mut g = DiffusionGrid::new(
                DiffusionCoefficient::from_square_cm_per_second(1e-5),
                Molar::from_milli_molar(1.0),
                50e-4,
                101,
            )
            .expect("valid grid");
            g.set_surface(SurfaceBoundary::Concentration(0.0));
            g
        };
        let mut ge = make();
        let mut gc = make();
        let dt = ge.max_stable_dt() * 0.5;
        for _ in 0..steps {
            ge.step_explicit(dt).expect("stable step");
            gc.step_crank_nicolson(dt);
        }
        for i in 0..ge.nodes() {
            let a = ge.concentration_at(i).as_milli_molar();
            let b = gc.concentration_at(i).as_milli_molar();
            assert!((a - b).abs() < 1e-2, "node {i}: {a} vs {b}");
        }
    });
}

/// Waveform sampling covers [0, duration] and respects the
/// programmed potentials for all three waveform families.
#[test]
fn waveforms_stay_in_window() {
    cases(0x0108, 48, |rng| {
        let low_mv = rng.uniform_in(-800.0, -10.0);
        let high_mv = rng.uniform_in(10.0, 800.0);
        let rate = rng.uniform_in(5.0, 500.0);
        let t_frac = rng.uniform();
        let lo = Volts::from_milli_volts(low_mv);
        let hi = Volts::from_milli_volts(high_mv);
        let sr = ScanRate::from_milli_volts_per_second(rate);

        let cv = CyclicSweep::new(lo, hi, sr, 1);
        let t = Seconds::from_seconds(cv.duration().as_seconds() * t_frac);
        let e = cv.potential_at(t);
        assert!(e >= lo && e <= hi, "CV left window: {e}");

        let ls = LinearSweep::new(lo, hi, sr);
        let t = Seconds::from_seconds(ls.duration().as_seconds() * t_frac);
        let e = ls.potential_at(t);
        assert!(e >= lo && e <= hi, "sweep left window: {e}");

        let step = PotentialStep::new(
            lo,
            hi,
            Seconds::from_seconds(0.5),
            Seconds::from_seconds(2.0),
        );
        let t = Seconds::from_seconds(2.0 * t_frac);
        let e = step.potential_at(t);
        assert!(e == lo || e == hi);
    });
}

/// Cyclic sweeps return exactly to the start potential at the end
/// of every cycle.
#[test]
fn cyclic_sweep_closes() {
    cases(0x0109, 48, |rng| {
        let low_mv = rng.uniform_in(-500.0, 0.0);
        let high_mv = rng.uniform_in(10.0, 500.0);
        let cycles = rng.index_in(1, 4) as u32;
        let cv = CyclicSweep::new(
            Volts::from_milli_volts(low_mv),
            Volts::from_milli_volts(high_mv),
            ScanRate::from_milli_volts_per_second(100.0),
            cycles,
        );
        for k in 1..=cycles {
            let t = Seconds::from_seconds(cv.cycle_duration().as_seconds() * f64::from(k) - 1e-9);
            let e = cv.potential_at(t);
            assert!((e.as_milli_volts() - low_mv).abs() < 1.0, "cycle {k}: {e}");
        }
    });
}

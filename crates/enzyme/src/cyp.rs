//! Cytochrome-P450 sensing chemistry for drug detection.
//!
//! The paper's drug sensors (§3.2.4) immobilize P450 isoforms on
//! MWCNT-modified screen-printed electrodes. The electrode plays the role
//! of the natural redox partner: it supplies the electrons of the
//! catalytic cycle, so the *cathodic catalytic current* grows with
//! substrate concentration — that is the calibration signal.
//!
//! Isoform ↔ drug assignments follow the paper's Table 1:
//! custom CYP (BM3-like) → arachidonic acid, CYP1A2 → Ftorafur®,
//! CYP2B6 → cyclophosphamide, CYP3A4 → ifosfamide.

use bios_units::{Molar, RateConstant, Volts};

use crate::michaelis::MichaelisMenten;

/// P450 isoforms used by the paper's sensor family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CypIsoform {
    /// Customized fatty-acid-active isoform (CYP102A1/BM3 family),
    /// supplied by EMPA for arachidonic-acid sensing.
    Custom102A1,
    /// CYP1A2 — activates the chemotherapy prodrug Ftorafur® (tegafur).
    Cyp1A2,
    /// CYP2B6 — activates cyclophosphamide.
    Cyp2B6,
    /// CYP3A4 — activates ifosfamide; the most promiscuous human isoform.
    Cyp3A4,
    /// CYP2D6 — metabolizes dextromethorphan (multi-panel work \[9\]).
    Cyp2D6,
    /// CYP2C9 — metabolizes naproxen and flurbiprofen (multi-panel \[9\]).
    Cyp2C9,
}

impl CypIsoform {
    /// Paper-style display name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            CypIsoform::Custom102A1 => "custom-CYP",
            CypIsoform::Cyp1A2 => "CYP1A2",
            CypIsoform::Cyp2B6 => "CYP2B6",
            CypIsoform::Cyp3A4 => "CYP3A4",
            CypIsoform::Cyp2D6 => "CYP2D6",
            CypIsoform::Cyp2C9 => "CYP2C9",
        }
    }

    /// The substrate each isoform detects in the paper.
    #[must_use]
    pub fn paper_substrate(&self) -> &'static str {
        match self {
            CypIsoform::Custom102A1 => "arachidonic acid",
            CypIsoform::Cyp1A2 => "Ftorafur",
            CypIsoform::Cyp2B6 => "cyclophosphamide",
            CypIsoform::Cyp3A4 => "ifosfamide",
            CypIsoform::Cyp2D6 => "dextromethorphan",
            CypIsoform::Cyp2C9 => "naproxen",
        }
    }
}

/// A P450 electrode chemistry: isoform + substrate-binding kinetics +
/// heme electron demand.
///
/// The catalytic cycle consumes 2 electrons and one O₂ per monooxygenation.
/// At the electrode, the observed catalytic current adds to the baseline
/// heme Fe(III)→Fe(II) reduction in proportion to substrate saturation.
///
/// # Examples
///
/// ```
/// use bios_enzyme::{CypIsoform, CypSensorChemistry};
/// use bios_units::Molar;
///
/// let cyp = CypSensorChemistry::stock(CypIsoform::Cyp2B6);
/// let low = cyp.catalytic_turnover(Molar::from_micro_molar(10.0));
/// let high = cyp.catalytic_turnover(Molar::from_micro_molar(60.0));
/// assert!(high.as_per_second() > low.as_per_second());
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CypSensorChemistry {
    isoform: CypIsoform,
    binding: MichaelisMenten,
    /// Reduction potential of the immobilized heme vs Ag/AgCl.
    heme_potential: Volts,
    /// Fraction of substrate-bound enzymes productively coupled (the rest
    /// leak electrons to the "uncoupled" shunt without signal).
    coupling: f64,
}

impl CypSensorChemistry {
    /// Stock chemistries with literature-derived constants:
    ///
    /// | isoform | k_cat (s⁻¹) | K_M (µM) | coupling |
    /// |---|---|---|---|
    /// | custom-CYP / AA | 9.0 | 150 | 0.9 |
    /// | CYP1A2 / Ftorafur | 1.8 | 35 | 0.55 |
    /// | CYP2B6 / CP | 2.6 | 330 | 0.5 |
    /// | CYP3A4 / IFO | 3.1 | 650 | 0.45 |
    /// | CYP2D6 / DEX | 4.5 | 8 | 0.5 |
    /// | CYP2C9 / naproxen | 1.2 | 90 | 0.5 |
    #[must_use]
    pub fn stock(isoform: CypIsoform) -> CypSensorChemistry {
        let (kcat, km_micro, coupling) = match isoform {
            CypIsoform::Custom102A1 => (9.0, 150.0, 0.9),
            CypIsoform::Cyp1A2 => (1.8, 35.0, 0.55),
            CypIsoform::Cyp2B6 => (2.6, 330.0, 0.5),
            CypIsoform::Cyp3A4 => (3.1, 650.0, 0.45),
            CypIsoform::Cyp2D6 => (4.5, 8.0, 0.5),
            CypIsoform::Cyp2C9 => (1.2, 90.0, 0.5),
        };
        CypSensorChemistry {
            isoform,
            binding: MichaelisMenten::new(
                RateConstant::from_per_second(kcat),
                Molar::from_micro_molar(km_micro),
            ),
            heme_potential: Volts::from_milli_volts(-300.0),
            coupling,
        }
    }

    /// Builds a chemistry with explicit binding kinetics (catalog use);
    /// `coupling` is the dimensionless electron-transfer coupling
    /// fraction in `[0, 1]`.
    #[must_use]
    pub fn with_binding(
        isoform: CypIsoform,
        binding: MichaelisMenten,
        coupling: f64,
    ) -> CypSensorChemistry {
        assert!(
            coupling > 0.0 && coupling <= 1.0,
            "coupling efficiency must lie in (0, 1]"
        );
        CypSensorChemistry {
            isoform,
            binding,
            heme_potential: Volts::from_milli_volts(-300.0),
            coupling,
        }
    }

    /// The isoform.
    #[must_use]
    pub fn isoform(&self) -> CypIsoform {
        self.isoform
    }

    /// Substrate-binding kinetics.
    #[must_use]
    pub fn binding(&self) -> MichaelisMenten {
        self.binding
    }

    /// Heme reduction potential (vs Ag/AgCl reference).
    #[must_use]
    pub fn heme_potential(&self) -> Volts {
        self.heme_potential
    }

    /// Productive-coupling fraction.
    #[must_use]
    pub fn coupling(&self) -> f64 {
        self.coupling
    }

    /// Electrons drawn from the electrode per productive cycle.
    #[must_use]
    pub fn electrons_per_turnover(&self) -> u32 {
        2
    }

    /// Effective per-molecule catalytic turnover at drug concentration
    /// `s`, including the coupling loss.
    #[must_use]
    pub fn catalytic_turnover(&self, s: Molar) -> RateConstant {
        RateConstant::from_per_second(self.binding.turnover_rate(s).as_per_second() * self.coupling)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_isoforms_construct() {
        for iso in [
            CypIsoform::Custom102A1,
            CypIsoform::Cyp1A2,
            CypIsoform::Cyp2B6,
            CypIsoform::Cyp3A4,
        ] {
            let c = CypSensorChemistry::stock(iso);
            assert_eq!(c.isoform(), iso);
            assert!(c.binding().kcat().as_per_second() > 0.0);
        }
    }

    #[test]
    fn names_match_paper_table1() {
        assert_eq!(
            CypIsoform::Custom102A1.paper_substrate(),
            "arachidonic acid"
        );
        assert_eq!(CypIsoform::Cyp1A2.paper_substrate(), "Ftorafur");
        assert_eq!(CypIsoform::Cyp2B6.paper_substrate(), "cyclophosphamide");
        assert_eq!(CypIsoform::Cyp3A4.paper_substrate(), "ifosfamide");
    }

    #[test]
    fn custom_isoform_is_fastest() {
        let aa = CypSensorChemistry::stock(CypIsoform::Custom102A1);
        for other in [CypIsoform::Cyp1A2, CypIsoform::Cyp2B6, CypIsoform::Cyp3A4] {
            let o = CypSensorChemistry::stock(other);
            assert!(aa.binding().kcat() > o.binding().kcat());
        }
    }

    #[test]
    fn turnover_saturates_at_coupled_kcat() {
        let c = CypSensorChemistry::stock(CypIsoform::Cyp2B6);
        let v = c.catalytic_turnover(Molar::from_milli_molar(100.0));
        let cap = c.binding().kcat().as_per_second() * c.coupling();
        assert!(v.as_per_second() <= cap);
        assert!(v.as_per_second() > 0.95 * cap);
    }

    #[test]
    fn heme_potential_is_cathodic() {
        let c = CypSensorChemistry::stock(CypIsoform::Cyp3A4);
        assert!(c.heme_potential().as_volts() < 0.0);
    }

    #[test]
    #[should_panic(expected = "coupling")]
    fn invalid_coupling_rejected() {
        let binding = MichaelisMenten::new(
            RateConstant::from_per_second(1.0),
            Molar::from_micro_molar(100.0),
        );
        let _ = CypSensorChemistry::with_binding(CypIsoform::Cyp1A2, binding, 0.0);
    }
}

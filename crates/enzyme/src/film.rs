//! Immobilized enzyme films.
//!
//! Adsorbing an enzyme onto a CNT forest (the paper's immobilization
//! method, §2.4) changes three things relative to solution kinetics:
//!
//! 1. **Loading** — a 3-D nanotube film holds far more enzyme per
//!    geometric cm² than a monolayer;
//! 2. **Retained activity** — some fraction of adsorbed protein denatures
//!    or is wired badly;
//! 3. **Transport** — substrate must diffuse into the film, captured by a
//!    Thiele-modulus effectiveness factor and an apparent-K_M shift.
//!
//! The film's output is an areal product flux (mol · cm⁻² · s⁻¹), which
//! the sensor model converts to current via `i = n·F·A·η_coll·flux`.

use bios_faults::{Faultable, RealizedFaults};
use bios_units::{nearly_zero, Centimeters, DiffusionCoefficient, Molar, SurfaceLoading};

use crate::michaelis::MichaelisMenten;

/// An enzyme layer immobilized on the electrode.
///
/// # Examples
///
/// ```
/// use bios_enzyme::{EnzymeFilm, MichaelisMenten};
/// use bios_units::{Centimeters, Molar, RateConstant, SurfaceLoading};
///
/// let film = EnzymeFilm::builder()
///     .loading(SurfaceLoading::from_pico_mol_per_square_cm(50.0))
///     .retained_activity(0.6)
///     .thickness(Centimeters::from_micro_meters(2.0))
///     .build();
/// let kinetics = MichaelisMenten::new(
///     RateConstant::from_per_second(700.0),
///     Molar::from_milli_molar(20.0),
/// );
/// let flux = film.product_flux(&kinetics, Molar::from_milli_molar(1.0));
/// assert!(flux > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnzymeFilm {
    loading: SurfaceLoading,
    retained_activity: f64,
    thickness: Centimeters,
    km_shift: f64,
}

impl EnzymeFilm {
    /// Starts building a film with monolayer-scale defaults.
    #[must_use]
    pub fn builder() -> EnzymeFilmBuilder {
        EnzymeFilmBuilder {
            loading: SurfaceLoading::from_pico_mol_per_square_cm(2.0),
            retained_activity: 0.5,
            thickness: Centimeters::from_micro_meters(1.0),
            km_shift: 1.0,
        }
    }

    /// Total protein loading (active + inactive), mol/cm².
    #[must_use]
    pub fn loading(&self) -> SurfaceLoading {
        self.loading
    }

    /// Fraction of loaded enzyme that remains catalytically active.
    #[must_use]
    pub fn retained_activity(&self) -> f64 {
        self.retained_activity
    }

    /// Film thickness.
    #[must_use]
    pub fn thickness(&self) -> Centimeters {
        self.thickness
    }

    /// Multiplier applied to the solution `K_M` inside the film
    /// (partitioning and crowding effects).
    #[must_use]
    pub fn km_shift(&self) -> f64 {
        self.km_shift
    }

    /// Catalytically-effective loading, mol/cm².
    #[must_use]
    pub fn effective_loading(&self) -> SurfaceLoading {
        self.loading * self.retained_activity
    }

    /// The apparent in-film kinetics derived from solution kinetics.
    #[must_use]
    pub fn apparent_kinetics(&self, solution: &MichaelisMenten) -> MichaelisMenten {
        MichaelisMenten::new(solution.kcat(), solution.km() * self.km_shift)
    }

    /// Thiele modulus φ for the film given the substrate's in-film
    /// diffusion coefficient: `φ = L·√(V_max_vol/(K_M·D))` with
    /// `V_max_vol = Γ_eff·k_cat/L`.
    ///
    /// φ ≪ 1 means kinetics-limited (the whole film works); φ ≫ 1 means
    /// the outer skin does all the catalysis.
    #[must_use]
    pub fn thiele_modulus(&self, kinetics: &MichaelisMenten, d_film: DiffusionCoefficient) -> f64 {
        let gamma = self.effective_loading().as_mol_per_square_cm();
        let thickness = self.thickness.as_cm();
        if nearly_zero(thickness) || nearly_zero(gamma) {
            return 0.0;
        }
        let apparent = self.apparent_kinetics(kinetics);
        // V_max per unit volume, mol·cm⁻³·s⁻¹.
        let vmax_vol = gamma * apparent.kcat().as_per_second() / thickness;
        // K_M in mol/cm³.
        let km_cgs = apparent.km().as_molar() * 1e-3;
        let k_first_order = vmax_vol / km_cgs; // s⁻¹
        thickness * (k_first_order / d_film.as_square_cm_per_second()).sqrt()
    }

    /// Internal effectiveness factor `η = tanh(φ)/φ` (slab geometry).
    #[must_use]
    pub fn effectiveness(&self, kinetics: &MichaelisMenten, d_film: DiffusionCoefficient) -> f64 {
        let phi = self.thiele_modulus(kinetics, d_film);
        if phi < 1e-6 {
            1.0
        } else {
            phi.tanh() / phi
        }
    }

    /// Areal product-generation flux at bulk substrate concentration `s`
    /// ignoring transport limitation (kinetics-limited regime),
    /// mol · cm⁻² · s⁻¹.
    #[must_use]
    pub fn product_flux(&self, solution_kinetics: &MichaelisMenten, s: Molar) -> f64 {
        let apparent = self.apparent_kinetics(solution_kinetics);
        self.effective_loading().as_mol_per_square_cm() * apparent.turnover_rate(s).as_per_second()
    }

    /// Areal product flux including the Thiele effectiveness for a film
    /// with internal diffusion coefficient `d_film`.
    #[must_use]
    pub fn limited_product_flux(
        &self,
        solution_kinetics: &MichaelisMenten,
        s: Molar,
        d_film: DiffusionCoefficient,
    ) -> f64 {
        self.product_flux(solution_kinetics, s) * self.effectiveness(solution_kinetics, d_film)
    }

    /// Typical first-order activity-loss rate of an adsorbed enzyme film
    /// stored wet at room temperature, per day. CNT adsorption is a good
    /// immobilizer (\[4\]) but enzymes still denature over weeks.
    pub const TYPICAL_DECAY_PER_DAY: f64 = 0.02;

    /// The same film after `days` of operation/storage, with the active
    /// fraction decayed as `exp(−rate·days)` — the stability axis that
    /// separates disposable strips from implanted sensors (§2.5).
    ///
    /// # Panics
    ///
    /// Panics if `days` or `rate_per_day` is negative.
    #[must_use]
    pub fn aged(&self, days: f64, rate_per_day: f64) -> EnzymeFilm {
        assert!(days >= 0.0, "age cannot be negative");
        assert!(rate_per_day >= 0.0, "decay rate cannot be negative");
        let mut out = *self;
        out.retained_activity =
            (self.retained_activity * (-rate_per_day * days).exp()).max(f64::MIN_POSITIVE);
        out
    }

    /// The same film with its active fraction scaled by `factor` —
    /// abrupt denaturation (thermal shock, oxidative damage) as opposed
    /// to the gradual [`aged`](Self::aged) decay. The result is floored
    /// at `f64::MIN_POSITIVE` so a fully-denatured film still produces a
    /// (vanishingly small) signal rather than NaNs downstream.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < factor <= 1`.
    #[must_use]
    pub fn denatured(&self, factor: f64) -> EnzymeFilm {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "denaturation factor must lie in (0, 1]"
        );
        let mut out = *self;
        out.retained_activity = (self.retained_activity * factor).max(f64::MIN_POSITIVE);
        out
    }

    /// Days of operation until the film's activity falls to `fraction`
    /// of its current value at the given decay rate.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fraction < 1` and `rate_per_day > 0`.
    #[must_use]
    pub fn lifetime_to_fraction(&self, fraction: f64, rate_per_day: f64) -> f64 {
        assert!(
            fraction > 0.0 && fraction < 1.0,
            "fraction must lie in (0, 1)"
        );
        assert!(rate_per_day > 0.0, "decay rate must be positive");
        -fraction.ln() / rate_per_day
    }
}

impl Faultable for EnzymeFilm {
    /// Applies injected film denaturation; a healthy realization
    /// (`film_activity == 1.0`) returns the film bit-identical.
    fn with_faults(self, faults: &RealizedFaults) -> Self {
        if faults.film_activity >= 1.0 {
            self
        } else {
            self.denatured(faults.film_activity.max(f64::MIN_POSITIVE))
        }
    }
}

/// Builder for [`EnzymeFilm`].
#[derive(Debug, Clone)]
pub struct EnzymeFilmBuilder {
    loading: SurfaceLoading,
    retained_activity: f64,
    thickness: Centimeters,
    km_shift: f64,
}

impl EnzymeFilmBuilder {
    /// Sets the protein loading.
    #[must_use]
    pub fn loading(mut self, loading: SurfaceLoading) -> Self {
        self.loading = loading;
        self
    }

    /// Sets the retained-activity fraction.
    ///
    /// # Panics
    ///
    /// Panics unless the fraction lies in `(0, 1]`.
    #[must_use]
    pub fn retained_activity(mut self, fraction: f64) -> Self {
        assert!(
            fraction > 0.0 && fraction <= 1.0,
            "retained activity must lie in (0, 1]"
        );
        self.retained_activity = fraction;
        self
    }

    /// Sets the film thickness.
    #[must_use]
    pub fn thickness(mut self, thickness: Centimeters) -> Self {
        self.thickness = thickness;
        self
    }

    /// Sets the apparent-K_M multiplier.
    ///
    /// # Panics
    ///
    /// Panics unless the shift is positive.
    #[must_use]
    pub fn km_shift(mut self, shift: f64) -> Self {
        assert!(shift > 0.0, "K_M shift must be positive");
        self.km_shift = shift;
        self
    }

    /// Finalizes the film.
    #[must_use]
    pub fn build(self) -> EnzymeFilm {
        EnzymeFilm {
            loading: self.loading,
            retained_activity: self.retained_activity,
            thickness: self.thickness,
            km_shift: self.km_shift,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_units::RateConstant;

    fn kinetics() -> MichaelisMenten {
        MichaelisMenten::new(
            RateConstant::from_per_second(700.0),
            Molar::from_milli_molar(20.0),
        )
    }

    fn film() -> EnzymeFilm {
        EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(50.0))
            .retained_activity(0.6)
            .thickness(Centimeters::from_micro_meters(2.0))
            .build()
    }

    #[test]
    fn effective_loading_applies_activity() {
        let g = film().effective_loading();
        assert!((g.as_pico_mol_per_square_cm() - 30.0).abs() < 1e-9);
    }

    #[test]
    fn product_flux_scales_with_loading() {
        let thin = film();
        let heavy = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(100.0))
            .retained_activity(0.6)
            .thickness(Centimeters::from_micro_meters(2.0))
            .build();
        let s = Molar::from_milli_molar(1.0);
        let r = heavy.product_flux(&kinetics(), s) / thin.product_flux(&kinetics(), s);
        assert!((r - 2.0).abs() < 1e-9);
    }

    #[test]
    fn product_flux_saturates_with_substrate() {
        let f = film();
        let v1 = f.product_flux(&kinetics(), Molar::from_milli_molar(20.0));
        let v2 = f.product_flux(&kinetics(), Molar::from_molar(10.0));
        let vmax = f.effective_loading().as_mol_per_square_cm() * 700.0;
        assert!((v1 / vmax - 0.5).abs() < 1e-6);
        assert!(v2 < vmax && v2 > 0.97 * vmax);
    }

    #[test]
    fn km_shift_moves_apparent_km() {
        let shifted = EnzymeFilm::builder().km_shift(0.5).build();
        let app = shifted.apparent_kinetics(&kinetics());
        assert!((app.km().as_milli_molar() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn thin_film_is_fully_effective() {
        let f = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(2.0))
            .thickness(Centimeters::from_nano_meters(50.0))
            .build();
        let eta = f.effectiveness(
            &kinetics(),
            DiffusionCoefficient::from_square_cm_per_second(1e-6),
        );
        assert!(eta > 0.99);
    }

    #[test]
    fn thick_loaded_film_is_transport_limited() {
        let f = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_mol_per_square_cm(1e-8))
            .retained_activity(1.0)
            .thickness(Centimeters::from_micro_meters(50.0))
            .build();
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-7);
        let phi = f.thiele_modulus(&kinetics(), d);
        assert!(phi > 3.0, "phi = {phi}");
        let eta = f.effectiveness(&kinetics(), d);
        assert!(eta < 0.5);
    }

    #[test]
    fn limited_flux_below_kinetic_flux() {
        let f = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_mol_per_square_cm(1e-8))
            .retained_activity(1.0)
            .thickness(Centimeters::from_micro_meters(50.0))
            .build();
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-7);
        let s = Molar::from_milli_molar(1.0);
        assert!(f.limited_product_flux(&kinetics(), s, d) < f.product_flux(&kinetics(), s));
    }

    #[test]
    #[should_panic(expected = "retained activity")]
    fn activity_fraction_validated() {
        let _ = EnzymeFilm::builder().retained_activity(1.5);
    }

    #[test]
    fn aging_decays_activity_exponentially() {
        let fresh = film();
        let day10 = fresh.aged(10.0, EnzymeFilm::TYPICAL_DECAY_PER_DAY);
        let expected = fresh.retained_activity() * (-0.2f64).exp();
        assert!((day10.retained_activity() - expected).abs() < 1e-12);
        // Everything else unchanged.
        assert_eq!(day10.loading(), fresh.loading());
        assert_eq!(day10.km_shift(), fresh.km_shift());
    }

    #[test]
    fn aging_composes() {
        let fresh = film();
        let two_step = fresh.aged(5.0, 0.02).aged(5.0, 0.02);
        let one_step = fresh.aged(10.0, 0.02);
        assert!((two_step.retained_activity() - one_step.retained_activity()).abs() < 1e-12);
    }

    #[test]
    fn zero_days_is_identity() {
        let fresh = film();
        assert_eq!(
            fresh.aged(0.0, 0.05).retained_activity(),
            fresh.retained_activity()
        );
    }

    #[test]
    fn lifetime_inverts_decay() {
        let f = film();
        let days = f.lifetime_to_fraction(0.5, 0.02);
        let aged = f.aged(days, 0.02);
        assert!((aged.retained_activity() / f.retained_activity() - 0.5).abs() < 1e-9);
        // Half-life at 2 %/day ≈ 34.7 days.
        assert!((days - 34.657).abs() < 0.01);
    }

    #[test]
    fn denatured_scales_activity_and_nothing_else() {
        let fresh = film();
        let hit = fresh.denatured(0.25);
        assert!((hit.retained_activity() - fresh.retained_activity() * 0.25).abs() < 1e-12);
        assert_eq!(hit.loading(), fresh.loading());
        assert_eq!(hit.thickness(), fresh.thickness());
    }

    #[test]
    #[should_panic(expected = "denaturation factor")]
    fn denatured_rejects_zero_factor() {
        let _ = film().denatured(0.0);
    }

    #[test]
    fn healthy_faults_leave_film_untouched() {
        let fresh = film();
        assert_eq!(fresh.with_faults(&RealizedFaults::healthy()), fresh);
    }

    #[test]
    fn injected_denaturation_applies() {
        let mut faults = RealizedFaults::healthy();
        faults.film_activity = 0.5;
        let hit = film().with_faults(&faults);
        assert!((hit.retained_activity() - film().retained_activity() * 0.5).abs() < 1e-12);
    }

    #[test]
    fn aged_flux_shrinks_proportionally() {
        let f = film();
        let s = Molar::from_milli_molar(0.5);
        let fresh_flux = f.product_flux(&kinetics(), s);
        let aged_flux = f.aged(20.0, 0.02).product_flux(&kinetics(), s);
        let ratio = aged_flux / fresh_flux;
        assert!((ratio - (-0.4f64).exp()).abs() < 1e-9);
    }
}

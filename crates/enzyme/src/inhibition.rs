//! Reversible enzyme inhibition models.
//!
//! Drug-panel sensing (the paper's personalized-therapy use case) must
//! cope with co-administered compounds competing for the same P450
//! isoform; these models quantify how an inhibitor reshapes the apparent
//! kinetics.

use bios_units::{Molar, RateConstant};

use crate::michaelis::MichaelisMenten;

/// Classical reversible inhibition mechanisms.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Inhibition {
    /// Inhibitor binds the free enzyme only: apparent `K_M` rises,
    /// `V_max` unchanged.
    Competitive {
        /// Inhibition constant `K_i`.
        ki: Molar,
    },
    /// Inhibitor binds the enzyme–substrate complex only: both apparent
    /// `K_M` and `V_max` fall by the same factor.
    Uncompetitive {
        /// Inhibition constant `K_i'`.
        ki: Molar,
    },
    /// Inhibitor binds both forms equally: `V_max` falls, `K_M`
    /// unchanged.
    NonCompetitive {
        /// Inhibition constant `K_i`.
        ki: Molar,
    },
    /// Excess substrate itself inhibits (second molecule binds the ES
    /// complex): rate passes through a maximum at `√(K_M·K_si)`.
    Substrate {
        /// Substrate-inhibition constant `K_si`.
        ksi: Molar,
    },
}

impl Inhibition {
    /// The apparent kinetics seen in the presence of `inhibitor` at the
    /// given concentration (for [`Inhibition::Substrate`] the inhibitor
    /// *is* the substrate and this returns the base kinetics — use
    /// [`Inhibition::rate`] instead).
    #[must_use]
    pub fn apparent(&self, base: &MichaelisMenten, inhibitor: Molar) -> MichaelisMenten {
        match *self {
            Inhibition::Competitive { ki } => {
                let factor = 1.0 + inhibitor.as_molar() / ki.as_molar();
                MichaelisMenten::new(base.kcat(), base.km() * factor)
            }
            Inhibition::Uncompetitive { ki } => {
                let factor = 1.0 + inhibitor.as_molar() / ki.as_molar();
                MichaelisMenten::new(base.kcat() / factor, base.km() / factor)
            }
            Inhibition::NonCompetitive { ki } => {
                let factor = 1.0 + inhibitor.as_molar() / ki.as_molar();
                MichaelisMenten::new(base.kcat() / factor, base.km())
            }
            Inhibition::Substrate { .. } => *base,
        }
    }

    /// Per-molecule rate with both substrate and inhibitor present.
    #[must_use]
    pub fn rate(&self, base: &MichaelisMenten, substrate: Molar, inhibitor: Molar) -> RateConstant {
        match *self {
            Inhibition::Substrate { ksi } => {
                let s = substrate.as_molar().max(0.0);
                let denom = base.km().as_molar() + s + s * s / ksi.as_molar();
                RateConstant::from_per_second(base.kcat().as_per_second() * s / denom)
            }
            _ => self.apparent(base, inhibitor).turnover_rate(substrate),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> MichaelisMenten {
        MichaelisMenten::new(
            RateConstant::from_per_second(100.0),
            Molar::from_milli_molar(1.0),
        )
    }

    fn mm(v: f64) -> Molar {
        Molar::from_milli_molar(v)
    }

    #[test]
    fn competitive_raises_km_only() {
        let inh = Inhibition::Competitive { ki: mm(1.0) };
        let app = inh.apparent(&base(), mm(1.0));
        assert!((app.km().as_milli_molar() - 2.0).abs() < 1e-12);
        assert_eq!(app.kcat(), base().kcat());
        // High substrate overcomes competitive inhibition.
        let v_inh = inh.rate(&base(), mm(1000.0), mm(1.0));
        assert!(v_inh.as_per_second() > 99.0);
    }

    #[test]
    fn uncompetitive_scales_both_down() {
        let inh = Inhibition::Uncompetitive { ki: mm(1.0) };
        let app = inh.apparent(&base(), mm(1.0));
        assert!((app.km().as_milli_molar() - 0.5).abs() < 1e-12);
        assert!((app.kcat().as_per_second() - 50.0).abs() < 1e-12);
    }

    #[test]
    fn noncompetitive_lowers_vmax_only() {
        let inh = Inhibition::NonCompetitive { ki: mm(1.0) };
        let app = inh.apparent(&base(), mm(1.0));
        assert_eq!(app.km(), base().km());
        assert!((app.kcat().as_per_second() - 50.0).abs() < 1e-12);
        // Not overcome by substrate.
        let v = inh.rate(&base(), mm(1000.0), mm(1.0));
        assert!(v.as_per_second() < 51.0);
    }

    #[test]
    fn all_reduce_rate_at_moderate_substrate() {
        let s = mm(1.0);
        let i = mm(2.0);
        let v0 = base().turnover_rate(s).as_per_second();
        for inh in [
            Inhibition::Competitive { ki: mm(1.0) },
            Inhibition::Uncompetitive { ki: mm(1.0) },
            Inhibition::NonCompetitive { ki: mm(1.0) },
        ] {
            let v = inh.rate(&base(), s, i).as_per_second();
            assert!(v < v0, "{inh:?} did not inhibit");
        }
    }

    #[test]
    fn zero_inhibitor_recovers_base_kinetics() {
        for inh in [
            Inhibition::Competitive { ki: mm(1.0) },
            Inhibition::Uncompetitive { ki: mm(1.0) },
            Inhibition::NonCompetitive { ki: mm(1.0) },
        ] {
            let v = inh.rate(&base(), mm(0.7), Molar::ZERO).as_per_second();
            let v0 = base().turnover_rate(mm(0.7)).as_per_second();
            assert!((v - v0).abs() < 1e-12);
        }
    }

    #[test]
    fn substrate_inhibition_has_a_maximum() {
        let inh = Inhibition::Substrate { ksi: mm(10.0) };
        // Optimum at √(K_M·K_si) = √10 ≈ 3.16 mM.
        let v_low = inh.rate(&base(), mm(0.5), Molar::ZERO).as_per_second();
        let v_opt = inh.rate(&base(), mm(3.16), Molar::ZERO).as_per_second();
        let v_high = inh.rate(&base(), mm(100.0), Molar::ZERO).as_per_second();
        assert!(v_opt > v_low);
        assert!(v_opt > v_high);
    }
}

//! # bios-enzyme
//!
//! Enzyme kinetics for the biosensor platform: the sensing elements of
//! every device in the paper are enzymes (§2.2) — oxidases for the
//! metabolites (glucose, lactate, glutamate) and cytochrome-P450 isoforms
//! for the fatty acid and anticancer drugs.
//!
//! * [`michaelis`] — Michaelis–Menten and Hill kinetics, apparent
//!   parameters, linearization helpers.
//! * [`inhibition`] — competitive / uncompetitive / non-competitive and
//!   substrate inhibition.
//! * [`ping_pong`] — two-substrate ping-pong bi-bi kinetics (oxidases use
//!   O₂ as co-substrate).
//! * [`oxidase`] — glucose/lactate/glutamate oxidase descriptors with
//!   literature constants; their H₂O₂ product is what the electrode sees.
//! * [`cyp`] — cytochrome-P450 isoform descriptors (custom CYP, CYP1A2,
//!   CYP2B6, CYP3A4) with their catalytic-cycle electron demand.
//! * [`film`] — immobilized enzyme films: surface loading, retained
//!   activity, mass-transfer (Thiele) effectiveness, apparent K_M shifts.
//!
//! # Examples
//!
//! ```
//! use bios_enzyme::michaelis::MichaelisMenten;
//! use bios_units::{Molar, RateConstant};
//!
//! let god = MichaelisMenten::new(
//!     RateConstant::from_per_second(700.0),
//!     Molar::from_milli_molar(33.0),
//! );
//! // Half of k_cat exactly at K_M:
//! let v = god.turnover_rate(Molar::from_milli_molar(33.0));
//! assert!((v.as_per_second() - 350.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cyp;
pub mod film;
pub mod inhibition;
pub mod michaelis;
pub mod oxidase;
pub mod ping_pong;

pub use cyp::{CypIsoform, CypSensorChemistry};
pub use film::EnzymeFilm;
pub use michaelis::MichaelisMenten;
pub use oxidase::{Oxidase, OxidaseKind};

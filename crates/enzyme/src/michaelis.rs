//! Michaelis–Menten and Hill kinetics.

use bios_units::{Molar, RateConstant};

/// Michaelis–Menten kinetics of a single-substrate enzyme:
///
/// `v = k_cat·[S]/(K_M + [S])` (per enzyme molecule).
///
/// # Examples
///
/// ```
/// use bios_enzyme::MichaelisMenten;
/// use bios_units::{Molar, RateConstant};
///
/// let mm = MichaelisMenten::new(
///     RateConstant::from_per_second(100.0),
///     Molar::from_milli_molar(1.0),
/// );
/// // Saturation: rate approaches k_cat at high substrate.
/// let v = mm.turnover_rate(Molar::from_milli_molar(100.0));
/// assert!(v.as_per_second() > 99.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MichaelisMenten {
    kcat: RateConstant,
    km: Molar,
}

impl MichaelisMenten {
    /// Creates kinetics from the turnover number `k_cat` and the Michaelis
    /// constant `K_M`.
    ///
    /// # Panics
    ///
    /// Panics if `K_M` is not strictly positive.
    #[must_use]
    pub fn new(kcat: RateConstant, km: Molar) -> MichaelisMenten {
        assert!(km.as_molar() > 0.0, "Michaelis constant must be positive");
        MichaelisMenten { kcat, km }
    }

    /// Turnover number `k_cat`.
    #[must_use]
    pub fn kcat(&self) -> RateConstant {
        self.kcat
    }

    /// Michaelis constant `K_M`.
    #[must_use]
    pub fn km(&self) -> Molar {
        self.km
    }

    /// Per-molecule turnover rate at substrate concentration `s`.
    #[must_use]
    pub fn turnover_rate(&self, s: Molar) -> RateConstant {
        let frac = self.saturation(s);
        RateConstant::from_per_second(self.kcat.as_per_second() * frac)
    }

    /// The saturation fraction `[S]/(K_M + [S])` ∈ [0, 1).
    #[must_use]
    pub fn saturation(&self, s: Molar) -> f64 {
        let s = s.as_molar().max(0.0);
        s / (self.km.as_molar() + s)
    }

    /// Catalytic efficiency `k_cat/K_M` in M⁻¹·s⁻¹ — the second-order
    /// limit at vanishing substrate.
    #[must_use]
    pub fn efficiency_per_molar_second(&self) -> f64 {
        self.kcat.as_per_second() / self.km.as_molar()
    }

    /// Relative deviation of the true rate from the low-substrate linear
    /// extrapolation at concentration `s`: `[S]/(K_M + [S])`.
    ///
    /// This is the quantity the linear-range detector thresholds: a 5 %
    /// linearity tolerance is exceeded once `s > K_M/19`.
    #[must_use]
    pub fn linearity_deviation(&self, s: Molar) -> f64 {
        self.saturation(s)
    }

    /// The substrate concentration at which the linearity deviation
    /// reaches `tolerance` — the theoretical end of the linear range.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1`.
    #[must_use]
    pub fn linear_limit(&self, tolerance: f64) -> Molar {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must lie in (0, 1)"
        );
        // s/(Km+s) = tol  →  s = Km·tol/(1−tol).
        Molar::from_molar(self.km.as_molar() * tolerance / (1.0 - tolerance))
    }

    /// Inverse of [`MichaelisMenten::linear_limit`]: the apparent `K_M`
    /// that puts the end of the linear range at `limit` for the given
    /// `tolerance`. Used to calibrate catalog sensors from their reported
    /// linear ranges.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < tolerance < 1` and `limit > 0`.
    #[must_use]
    pub fn km_for_linear_limit(limit: Molar, tolerance: f64) -> Molar {
        assert!(
            tolerance > 0.0 && tolerance < 1.0,
            "tolerance must lie in (0, 1)"
        );
        assert!(limit.as_molar() > 0.0, "linear limit must be positive");
        Molar::from_molar(limit.as_molar() * (1.0 - tolerance) / tolerance)
    }
}

/// Hill kinetics for cooperative binding:
/// `v = k_cat·[S]ⁿ/(K₀.₅ⁿ + [S]ⁿ)`.
///
/// Reduces to Michaelis–Menten at `n = 1`; some P450 isoforms (notably
/// CYP3A4) show mild cooperativity.
///
/// # Examples
///
/// ```
/// use bios_enzyme::michaelis::Hill;
/// use bios_units::{Molar, RateConstant};
///
/// let h = Hill::new(RateConstant::from_per_second(10.0),
///                   Molar::from_micro_molar(50.0), 1.6);
/// assert!((h.saturation(Molar::from_micro_molar(50.0)) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hill {
    kcat: RateConstant,
    k_half: Molar,
    coefficient: f64,
}

impl Hill {
    /// Creates Hill kinetics.
    ///
    /// # Panics
    ///
    /// Panics if `K₀.₅` is not positive or the coefficient is not positive.
    #[must_use]
    pub fn new(kcat: RateConstant, k_half: Molar, coefficient: f64) -> Hill {
        assert!(k_half.as_molar() > 0.0, "half-saturation must be positive");
        assert!(coefficient > 0.0, "Hill coefficient must be positive");
        Hill {
            kcat,
            k_half,
            coefficient,
        }
    }

    /// Turnover number.
    #[must_use]
    pub fn kcat(&self) -> RateConstant {
        self.kcat
    }

    /// Half-saturation concentration `K₀.₅`.
    #[must_use]
    pub fn k_half(&self) -> Molar {
        self.k_half
    }

    /// Hill coefficient `n` (dimensionless cooperativity exponent).
    #[must_use]
    pub fn coefficient(&self) -> f64 {
        self.coefficient
    }

    /// Saturation fraction at substrate `s`.
    #[must_use]
    pub fn saturation(&self, s: Molar) -> f64 {
        let x = (s.as_molar().max(0.0) / self.k_half.as_molar()).powf(self.coefficient);
        x / (1.0 + x)
    }

    /// Per-molecule rate at substrate `s`.
    #[must_use]
    pub fn turnover_rate(&self, s: Molar) -> RateConstant {
        RateConstant::from_per_second(self.kcat.as_per_second() * self.saturation(s))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mm() -> MichaelisMenten {
        MichaelisMenten::new(
            RateConstant::from_per_second(700.0),
            Molar::from_milli_molar(33.0),
        )
    }

    #[test]
    fn half_rate_at_km() {
        let v = mm().turnover_rate(Molar::from_milli_molar(33.0));
        assert!((v.as_per_second() - 350.0).abs() < 1e-9);
    }

    #[test]
    fn rate_is_monotone_in_substrate() {
        let mut prev = -1.0;
        for c in [0.0, 0.1, 1.0, 10.0, 100.0, 1000.0] {
            let v = mm()
                .turnover_rate(Molar::from_milli_molar(c))
                .as_per_second();
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn zero_substrate_gives_zero_rate() {
        assert_eq!(mm().turnover_rate(Molar::ZERO).as_per_second(), 0.0);
    }

    #[test]
    fn rate_never_exceeds_kcat() {
        let v = mm().turnover_rate(Molar::from_molar(100.0));
        assert!(v.as_per_second() < 700.0);
    }

    #[test]
    fn efficiency_is_kcat_over_km() {
        let e = mm().efficiency_per_molar_second();
        assert!((e - 700.0 / 0.033).abs() / e < 1e-12);
    }

    #[test]
    fn linear_limit_round_trips_with_km_for_linear_limit() {
        let tol = 0.05;
        let limit = mm().linear_limit(tol);
        let km = MichaelisMenten::km_for_linear_limit(limit, tol);
        assert!((km.as_molar() - 0.033).abs() < 1e-12);
    }

    #[test]
    fn five_percent_linearity_at_km_over_19() {
        let limit = mm().linear_limit(0.05);
        assert!((limit.as_milli_molar() - 33.0 / 19.0).abs() < 1e-9);
    }

    #[test]
    fn hill_reduces_to_mm_at_n_one() {
        let h = Hill::new(
            RateConstant::from_per_second(700.0),
            Molar::from_milli_molar(33.0),
            1.0,
        );
        for c in [0.5, 5.0, 50.0] {
            let s = Molar::from_milli_molar(c);
            assert!((h.saturation(s) - mm().saturation(s)).abs() < 1e-12);
        }
    }

    #[test]
    fn hill_steeper_with_larger_n() {
        let k = Molar::from_micro_molar(50.0);
        let h1 = Hill::new(RateConstant::from_per_second(1.0), k, 1.0);
        let h2 = Hill::new(RateConstant::from_per_second(1.0), k, 2.0);
        // Below K½ the cooperative enzyme is *less* saturated…
        let low = Molar::from_micro_molar(10.0);
        assert!(h2.saturation(low) < h1.saturation(low));
        // …and above it, more.
        let high = Molar::from_micro_molar(250.0);
        assert!(h2.saturation(high) > h1.saturation(high));
    }

    #[test]
    #[should_panic(expected = "Michaelis constant")]
    fn zero_km_rejected() {
        let _ = MichaelisMenten::new(RateConstant::from_per_second(1.0), Molar::ZERO);
    }
}

//! Oxidase sensing elements: glucose, lactate, and glutamate oxidase.
//!
//! The paper's metabolite sensors (Table 1) all pair an oxidase with
//! chronoamperometric H₂O₂ detection: the enzyme oxidizes its substrate,
//! hands the electrons to O₂, and the resulting H₂O₂ is oxidized at the
//! electrode at +650 mV, two electrons per molecule.

use bios_units::{Molar, RateConstant};

use crate::ping_pong::{PingPongBiBi, AIR_SATURATED_O2};

/// Which oxidase is immobilized on the electrode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OxidaseKind {
    /// Glucose oxidase from *Aspergillus niger* (GOD, EC 1.1.3.4).
    GlucoseOxidase,
    /// Lactate oxidase from *Pediococcus* sp. (LOD, EC 1.1.3.2).
    LactateOxidase,
    /// L-glutamate oxidase from *Streptomyces* sp. (GlOD, EC 1.4.3.11).
    GlutamateOxidase,
}

impl OxidaseKind {
    /// Conventional abbreviation used in the paper (GOD/LOD/GlOD).
    #[must_use]
    pub fn abbreviation(&self) -> &'static str {
        match self {
            OxidaseKind::GlucoseOxidase => "GOD",
            OxidaseKind::LactateOxidase => "LOD",
            OxidaseKind::GlutamateOxidase => "GlOD",
        }
    }

    /// The metabolite this oxidase detects.
    #[must_use]
    pub fn substrate_name(&self) -> &'static str {
        match self {
            OxidaseKind::GlucoseOxidase => "glucose",
            OxidaseKind::LactateOxidase => "lactate",
            OxidaseKind::GlutamateOxidase => "glutamate",
        }
    }
}

/// A fully-parameterized oxidase sensing element.
///
/// # Examples
///
/// ```
/// use bios_enzyme::{Oxidase, OxidaseKind};
/// use bios_units::Molar;
///
/// let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
/// let v = god.peroxide_generation_rate(Molar::from_milli_molar(5.0));
/// assert!(v.as_per_second() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Oxidase {
    kind: OxidaseKind,
    kinetics: PingPongBiBi,
    oxygen: Molar,
}

impl Oxidase {
    /// Builds the literature ("solution") form of each oxidase:
    ///
    /// | enzyme | k_cat (s⁻¹) | K_M substrate | K_M O₂ |
    /// |---|---|---|---|
    /// | GOD  | 700 | 25 mM | 200 µM |
    /// | LOD  | 150 | 0.7 mM | 130 µM |
    /// | GlOD | 75  | 0.2 mM | 140 µM |
    #[must_use]
    pub fn stock(kind: OxidaseKind) -> Oxidase {
        let (kcat, ka_milli, kb_micro) = match kind {
            OxidaseKind::GlucoseOxidase => (700.0, 25.0, 200.0),
            OxidaseKind::LactateOxidase => (150.0, 0.7, 130.0),
            OxidaseKind::GlutamateOxidase => (75.0, 0.2, 140.0),
        };
        Oxidase {
            kind,
            kinetics: PingPongBiBi::new(
                RateConstant::from_per_second(kcat),
                Molar::from_milli_molar(ka_milli),
                Molar::from_micro_molar(kb_micro),
            ),
            oxygen: AIR_SATURATED_O2,
        }
    }

    /// Builds an oxidase with custom kinetics — used by the catalog to
    /// model immobilization-shifted apparent constants.
    #[must_use]
    pub fn with_kinetics(kind: OxidaseKind, kinetics: PingPongBiBi) -> Oxidase {
        Oxidase {
            kind,
            kinetics,
            oxygen: AIR_SATURATED_O2,
        }
    }

    /// Which oxidase this is.
    #[must_use]
    pub fn kind(&self) -> OxidaseKind {
        self.kind
    }

    /// The two-substrate kinetics.
    #[must_use]
    pub fn kinetics(&self) -> PingPongBiBi {
        self.kinetics
    }

    /// Ambient dissolved-oxygen level the sensor operates at.
    #[must_use]
    pub fn oxygen(&self) -> Molar {
        self.oxygen
    }

    /// Returns a copy operating at a different dissolved-O₂ level
    /// (hypoxic tissue, degassed buffer, cell-culture medium…).
    #[must_use]
    pub fn with_oxygen(mut self, oxygen: Molar) -> Oxidase {
        self.oxygen = oxygen;
        self
    }

    /// Per-molecule H₂O₂ production rate at the ambient oxygen level —
    /// one H₂O₂ per catalytic cycle.
    #[must_use]
    pub fn peroxide_generation_rate(&self, substrate: Molar) -> RateConstant {
        self.kinetics.rate(substrate, self.oxygen)
    }

    /// Electrons delivered to the electrode per catalytic turnover: H₂O₂
    /// oxidation is a 2-electron process.
    #[must_use]
    pub fn electrons_per_turnover(&self) -> u32 {
        2
    }

    /// The apparent Michaelis–Menten kinetics in the analyte at the
    /// ambient oxygen level.
    #[must_use]
    pub fn apparent_kinetics(&self) -> crate::michaelis::MichaelisMenten {
        self.kinetics.apparent_in_a(self.oxygen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stock_constants_are_distinct() {
        let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
        let lod = Oxidase::stock(OxidaseKind::LactateOxidase);
        let glod = Oxidase::stock(OxidaseKind::GlutamateOxidase);
        assert!(god.kinetics().kcat() > lod.kinetics().kcat());
        assert!(lod.kinetics().kcat() > glod.kinetics().kcat());
        assert!(god.kinetics().ka() > lod.kinetics().ka());
        assert!(lod.kinetics().ka() > glod.kinetics().ka());
    }

    #[test]
    fn abbreviations_match_paper() {
        assert_eq!(OxidaseKind::GlucoseOxidase.abbreviation(), "GOD");
        assert_eq!(OxidaseKind::LactateOxidase.abbreviation(), "LOD");
        assert_eq!(OxidaseKind::GlutamateOxidase.abbreviation(), "GlOD");
    }

    #[test]
    fn peroxide_rate_zero_without_substrate() {
        let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
        assert_eq!(
            god.peroxide_generation_rate(Molar::ZERO).as_per_second(),
            0.0
        );
    }

    #[test]
    fn hypoxia_suppresses_output() {
        let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
        let s = Molar::from_milli_molar(5.0);
        let v_air = god.peroxide_generation_rate(s);
        let v_low = god
            .with_oxygen(Molar::from_micro_molar(20.0))
            .peroxide_generation_rate(s);
        assert!(v_low < v_air);
    }

    #[test]
    fn two_electrons_per_h2o2() {
        assert_eq!(
            Oxidase::stock(OxidaseKind::LactateOxidase).electrons_per_turnover(),
            2
        );
    }

    #[test]
    fn apparent_kinetics_below_solution_values() {
        let god = Oxidase::stock(OxidaseKind::GlucoseOxidase);
        let app = god.apparent_kinetics();
        // O2 limitation pulls both constants below the solution values.
        assert!(app.kcat() < god.kinetics().kcat());
        assert!(app.km() < god.kinetics().ka());
    }
}

//! Two-substrate ping-pong bi-bi kinetics.
//!
//! Oxidases work in two half-reactions: the flavin is reduced by the
//! substrate (glucose → gluconolactone), then reoxidized by O₂ producing
//! H₂O₂. The steady-state rate is
//!
//! `v = k_cat / (1 + K_A/[A] + K_B/[B])`
//!
//! which reduces to Michaelis–Menten in substrate A when the co-substrate
//! B (oxygen) is saturating, and explains the oxygen-limitation plateau
//! that shapes real glucose-sensor linear ranges.

use bios_units::{nearly_zero, Molar, RateConstant};

use crate::michaelis::MichaelisMenten;

/// Ping-pong bi-bi kinetics for substrates A (analyte) and B
/// (co-substrate, typically dissolved O₂).
///
/// # Examples
///
/// ```
/// use bios_enzyme::ping_pong::PingPongBiBi;
/// use bios_units::{nearly_zero, Molar, RateConstant};
///
/// let god = PingPongBiBi::new(
///     RateConstant::from_per_second(700.0),
///     Molar::from_milli_molar(25.0),   // K_glucose
///     Molar::from_micro_molar(200.0),  // K_O2
/// );
/// // Air-saturated water holds ~250 µM O2.
/// let v = god.rate(Molar::from_milli_molar(5.0), Molar::from_micro_molar(250.0));
/// assert!(v.as_per_second() > 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PingPongBiBi {
    kcat: RateConstant,
    ka: Molar,
    kb: Molar,
}

/// Dissolved O₂ concentration of air-saturated water at 25 °C, ≈ 250 µM.
pub const AIR_SATURATED_O2: Molar = Molar::from_molar(250.0e-6);

impl PingPongBiBi {
    /// Creates ping-pong kinetics from the limiting turnover and the two
    /// Michaelis constants.
    ///
    /// # Panics
    ///
    /// Panics if either Michaelis constant is not positive.
    #[must_use]
    pub fn new(kcat: RateConstant, ka: Molar, kb: Molar) -> PingPongBiBi {
        assert!(ka.as_molar() > 0.0, "K_A must be positive");
        assert!(kb.as_molar() > 0.0, "K_B must be positive");
        PingPongBiBi { kcat, ka, kb }
    }

    /// Limiting turnover number.
    #[must_use]
    pub fn kcat(&self) -> RateConstant {
        self.kcat
    }

    /// Michaelis constant for the analyte.
    #[must_use]
    pub fn ka(&self) -> Molar {
        self.ka
    }

    /// Michaelis constant for the co-substrate.
    #[must_use]
    pub fn kb(&self) -> Molar {
        self.kb
    }

    /// Steady-state per-molecule rate with analyte `a` and co-substrate
    /// `b` present.
    #[must_use]
    pub fn rate(&self, a: Molar, b: Molar) -> RateConstant {
        let a = a.as_molar().max(0.0);
        let b = b.as_molar().max(0.0);
        if nearly_zero(a) || nearly_zero(b) {
            return RateConstant::from_per_second(0.0);
        }
        let denom = 1.0 + self.ka.as_molar() / a + self.kb.as_molar() / b;
        RateConstant::from_per_second(self.kcat.as_per_second() / denom)
    }

    /// The apparent single-substrate kinetics in A at a fixed co-substrate
    /// level `b`:
    ///
    /// `k_cat' = k_cat/(1 + K_B/[B])`, `K_A' = K_A/(1 + K_B/[B])`.
    ///
    /// Oxygen starvation therefore *lowers* both the apparent `V_max` and
    /// the apparent `K_M` — the classic reason implanted glucose sensors
    /// read low in hypoxic tissue.
    #[must_use]
    pub fn apparent_in_a(&self, b: Molar) -> MichaelisMenten {
        let beta = 1.0 + self.kb.as_molar() / b.as_molar().max(f64::MIN_POSITIVE);
        MichaelisMenten::new(self.kcat / beta, self.ka / beta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn god() -> PingPongBiBi {
        PingPongBiBi::new(
            RateConstant::from_per_second(700.0),
            Molar::from_milli_molar(25.0),
            Molar::from_micro_molar(200.0),
        )
    }

    #[test]
    fn saturating_both_substrates_approaches_kcat() {
        let v = god().rate(Molar::from_molar(1.0), Molar::from_molar(1.0));
        assert!(v.as_per_second() > 680.0);
    }

    #[test]
    fn zero_either_substrate_stalls() {
        assert_eq!(
            god().rate(Molar::ZERO, AIR_SATURATED_O2).as_per_second(),
            0.0
        );
        assert_eq!(
            god()
                .rate(Molar::from_milli_molar(5.0), Molar::ZERO)
                .as_per_second(),
            0.0
        );
    }

    #[test]
    fn oxygen_starvation_reduces_rate() {
        let a = Molar::from_milli_molar(5.0);
        let v_air = god().rate(a, AIR_SATURATED_O2);
        let v_hypoxic = god().rate(a, Molar::from_micro_molar(25.0));
        assert!(v_hypoxic < v_air);
    }

    #[test]
    fn apparent_kinetics_match_full_model() {
        let b = AIR_SATURATED_O2;
        let app = god().apparent_in_a(b);
        for c in [0.5, 2.0, 10.0, 50.0] {
            let a = Molar::from_milli_molar(c);
            let full = god().rate(a, b).as_per_second();
            let approx = app.turnover_rate(a).as_per_second();
            assert!((full - approx).abs() / full < 1e-9, "at {c} mM");
        }
    }

    #[test]
    fn apparent_km_shrinks_when_oxygen_limits() {
        let app_air = god().apparent_in_a(AIR_SATURATED_O2);
        let app_low = god().apparent_in_a(Molar::from_micro_molar(20.0));
        assert!(app_low.km() < app_air.km());
        assert!(app_low.kcat() < app_air.kcat());
    }

    #[test]
    fn monotone_in_both_substrates() {
        let mut prev = 0.0;
        for c in [0.1, 1.0, 10.0] {
            let v = god()
                .rate(Molar::from_milli_molar(c), AIR_SATURATED_O2)
                .as_per_second();
            assert!(v > prev);
            prev = v;
        }
        let mut prev = 0.0;
        for o in [10.0, 100.0, 1000.0] {
            let v = god()
                .rate(Molar::from_milli_molar(5.0), Molar::from_micro_molar(o))
                .as_per_second();
            assert!(v > prev);
            prev = v;
        }
    }
}

//! Property tests for enzyme kinetics: saturation bounds, monotonicity,
//! inhibition inequalities, and film-model consistency.

use proptest::prelude::*;

use bios_enzyme::film::EnzymeFilm;
use bios_enzyme::inhibition::Inhibition;
use bios_enzyme::michaelis::{Hill, MichaelisMenten};
use bios_enzyme::ping_pong::PingPongBiBi;
use bios_units::{Centimeters, DiffusionCoefficient, Molar, RateConstant, SurfaceLoading};

fn mm(kcat: f64, km_milli: f64) -> MichaelisMenten {
    MichaelisMenten::new(
        RateConstant::from_per_second(kcat),
        Molar::from_milli_molar(km_milli),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// 0 ≤ rate < k_cat everywhere; rate(K_M) = k_cat/2 exactly.
    #[test]
    fn michaelis_menten_bounds(
        kcat in 0.1f64..1e4,
        km in 0.001f64..100.0,
        s in 0.0f64..1e4,
    ) {
        let k = mm(kcat, km);
        let v = k.turnover_rate(Molar::from_milli_molar(s)).as_per_second();
        prop_assert!(v >= 0.0);
        prop_assert!(v < kcat);
        let half = k.turnover_rate(Molar::from_milli_molar(km)).as_per_second();
        prop_assert!((half - kcat / 2.0).abs() / kcat < 1e-12);
    }

    /// Rate is monotone non-decreasing in substrate.
    #[test]
    fn michaelis_menten_monotone(
        kcat in 0.1f64..1e4,
        km in 0.001f64..100.0,
        s in 0.0f64..1e3,
        ds in 0.0f64..1e3,
    ) {
        let k = mm(kcat, km);
        let v1 = k.turnover_rate(Molar::from_milli_molar(s)).as_per_second();
        let v2 = k.turnover_rate(Molar::from_milli_molar(s + ds)).as_per_second();
        prop_assert!(v2 >= v1);
    }

    /// linear_limit and km_for_linear_limit are exact inverses.
    #[test]
    fn linear_limit_inverse(
        km in 0.001f64..100.0,
        tol in 0.01f64..0.5,
    ) {
        let k = mm(100.0, km);
        let limit = k.linear_limit(tol);
        let back = MichaelisMenten::km_for_linear_limit(limit, tol);
        prop_assert!((back.as_milli_molar() - km).abs() / km < 1e-9);
    }

    /// The deviation at the linear limit equals the tolerance.
    #[test]
    fn deviation_at_limit_equals_tolerance(
        km in 0.001f64..100.0,
        tol in 0.01f64..0.5,
    ) {
        let k = mm(100.0, km);
        let limit = k.linear_limit(tol);
        prop_assert!((k.linearity_deviation(limit) - tol).abs() < 1e-12);
    }

    /// Hill with n = 1 equals Michaelis–Menten for any substrate.
    #[test]
    fn hill_reduces_to_mm(
        km in 0.001f64..100.0,
        s in 0.0f64..1e3,
    ) {
        let h = Hill::new(RateConstant::from_per_second(50.0), Molar::from_milli_molar(km), 1.0);
        let k = mm(50.0, km);
        let c = Molar::from_milli_molar(s);
        prop_assert!((h.saturation(c) - k.saturation(c)).abs() < 1e-12);
    }

    /// All classical inhibitions reduce the rate (never enhance it).
    #[test]
    fn inhibition_never_enhances(
        ki in 0.01f64..10.0,
        s in 0.001f64..100.0,
        i in 0.0f64..10.0,
    ) {
        let base = mm(100.0, 1.0);
        let sub = Molar::from_milli_molar(s);
        let inh_c = Molar::from_milli_molar(i);
        let v0 = base.turnover_rate(sub).as_per_second();
        for inhibition in [
            Inhibition::Competitive { ki: Molar::from_milli_molar(ki) },
            Inhibition::Uncompetitive { ki: Molar::from_milli_molar(ki) },
            Inhibition::NonCompetitive { ki: Molar::from_milli_molar(ki) },
        ] {
            let v = inhibition.rate(&base, sub, inh_c).as_per_second();
            prop_assert!(v <= v0 * (1.0 + 1e-12), "{inhibition:?}");
        }
    }

    /// Ping-pong rate is bounded by min of the two single-substrate
    /// saturations times k_cat.
    #[test]
    fn ping_pong_bounds(
        ka in 0.01f64..50.0,
        kb in 0.001f64..1.0,
        a in 0.0f64..100.0,
        b in 0.0f64..2.0,
    ) {
        let pp = PingPongBiBi::new(
            RateConstant::from_per_second(100.0),
            Molar::from_milli_molar(ka),
            Molar::from_milli_molar(kb),
        );
        let v = pp
            .rate(Molar::from_milli_molar(a), Molar::from_milli_molar(b))
            .as_per_second();
        prop_assert!(v >= 0.0);
        prop_assert!(v <= 100.0);
        // Never faster than either substrate allows alone.
        let sat_a = a / (ka + a);
        let sat_b = b / (kb + b);
        prop_assert!(v <= 100.0 * sat_a.min(sat_b) + 1e-9);
    }

    /// The apparent single-substrate reduction of ping-pong kinetics is
    /// exact for any fixed co-substrate level.
    #[test]
    fn ping_pong_apparent_reduction_exact(
        ka in 0.01f64..50.0,
        kb in 0.001f64..1.0,
        b in 0.001f64..2.0,
        a in 0.001f64..100.0,
    ) {
        let pp = PingPongBiBi::new(
            RateConstant::from_per_second(100.0),
            Molar::from_milli_molar(ka),
            Molar::from_milli_molar(kb),
        );
        let fixed_b = Molar::from_milli_molar(b);
        let app = pp.apparent_in_a(fixed_b);
        let sub = Molar::from_milli_molar(a);
        let full = pp.rate(sub, fixed_b).as_per_second();
        let reduced = app.turnover_rate(sub).as_per_second();
        prop_assert!((full - reduced).abs() / full.max(1e-30) < 1e-9);
    }

    /// Film product flux scales linearly with effective loading and
    /// never exceeds Γ_eff · k_cat.
    #[test]
    fn film_flux_bounds(
        loading in 0.1f64..1000.0,
        activity in 0.05f64..1.0,
        s in 0.0f64..100.0,
    ) {
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(loading))
            .retained_activity(activity)
            .build();
        let kinetics = mm(100.0, 1.0);
        let flux = film.product_flux(&kinetics, Molar::from_milli_molar(s));
        let cap = film.effective_loading().as_mol_per_square_cm() * 100.0;
        prop_assert!(flux >= 0.0);
        prop_assert!(flux <= cap * (1.0 + 1e-12));
    }

    /// The effectiveness factor lies in (0, 1] and decreases with film
    /// thickness.
    #[test]
    fn effectiveness_bounds_and_monotonicity(
        loading in 1.0f64..10_000.0,
        thin_um in 0.05f64..5.0,
        factor in 2.0f64..20.0,
    ) {
        let kinetics = mm(500.0, 1.0);
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-7);
        let make = |um: f64| {
            EnzymeFilm::builder()
                .loading(SurfaceLoading::from_pico_mol_per_square_cm(loading))
                .thickness(Centimeters::from_micro_meters(um))
                .build()
        };
        let eta_thin = make(thin_um).effectiveness(&kinetics, d);
        let eta_thick = make(thin_um * factor).effectiveness(&kinetics, d);
        prop_assert!(eta_thin > 0.0 && eta_thin <= 1.0);
        prop_assert!(eta_thick > 0.0 && eta_thick <= 1.0);
        prop_assert!(eta_thick <= eta_thin + 1e-12);
    }
}

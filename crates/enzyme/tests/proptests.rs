//! Property tests for enzyme kinetics: saturation bounds, monotonicity,
//! inhibition inequalities, and film-model consistency. Sampled
//! deterministically via `bios_prng::cases`.

use bios_enzyme::film::EnzymeFilm;
use bios_enzyme::inhibition::Inhibition;
use bios_enzyme::michaelis::{Hill, MichaelisMenten};
use bios_enzyme::ping_pong::PingPongBiBi;
use bios_prng::cases;
use bios_units::{Centimeters, DiffusionCoefficient, Molar, RateConstant, SurfaceLoading};

fn mm(kcat: f64, km_milli: f64) -> MichaelisMenten {
    MichaelisMenten::new(
        RateConstant::from_per_second(kcat),
        Molar::from_milli_molar(km_milli),
    )
}

/// 0 ≤ rate < k_cat everywhere; rate(K_M) = k_cat/2 exactly.
#[test]
fn michaelis_menten_bounds() {
    cases(0x0201, 64, |rng| {
        let kcat = rng.log_uniform_in(0.1, 1e4);
        let km = rng.log_uniform_in(0.001, 100.0);
        let s = rng.uniform_in(0.0, 1e4);
        let k = mm(kcat, km);
        let v = k.turnover_rate(Molar::from_milli_molar(s)).as_per_second();
        assert!(v >= 0.0);
        assert!(v < kcat);
        let half = k.turnover_rate(Molar::from_milli_molar(km)).as_per_second();
        assert!((half - kcat / 2.0).abs() / kcat < 1e-12);
    });
}

/// Rate is monotone non-decreasing in substrate.
#[test]
fn michaelis_menten_monotone() {
    cases(0x0202, 64, |rng| {
        let kcat = rng.log_uniform_in(0.1, 1e4);
        let km = rng.log_uniform_in(0.001, 100.0);
        let s = rng.uniform_in(0.0, 1e3);
        let ds = rng.uniform_in(0.0, 1e3);
        let k = mm(kcat, km);
        let v1 = k.turnover_rate(Molar::from_milli_molar(s)).as_per_second();
        let v2 = k
            .turnover_rate(Molar::from_milli_molar(s + ds))
            .as_per_second();
        assert!(v2 >= v1);
    });
}

/// linear_limit and km_for_linear_limit are exact inverses.
#[test]
fn linear_limit_inverse() {
    cases(0x0203, 64, |rng| {
        let km = rng.log_uniform_in(0.001, 100.0);
        let tol = rng.uniform_in(0.01, 0.5);
        let k = mm(100.0, km);
        let limit = k.linear_limit(tol);
        let back = MichaelisMenten::km_for_linear_limit(limit, tol);
        assert!((back.as_milli_molar() - km).abs() / km < 1e-9);
    });
}

/// The deviation at the linear limit equals the tolerance.
#[test]
fn deviation_at_limit_equals_tolerance() {
    cases(0x0204, 64, |rng| {
        let km = rng.log_uniform_in(0.001, 100.0);
        let tol = rng.uniform_in(0.01, 0.5);
        let k = mm(100.0, km);
        let limit = k.linear_limit(tol);
        assert!((k.linearity_deviation(limit) - tol).abs() < 1e-12);
    });
}

/// Hill with n = 1 equals Michaelis–Menten for any substrate.
#[test]
fn hill_reduces_to_mm() {
    cases(0x0205, 64, |rng| {
        let km = rng.log_uniform_in(0.001, 100.0);
        let s = rng.uniform_in(0.0, 1e3);
        let h = Hill::new(
            RateConstant::from_per_second(50.0),
            Molar::from_milli_molar(km),
            1.0,
        );
        let k = mm(50.0, km);
        let c = Molar::from_milli_molar(s);
        assert!((h.saturation(c) - k.saturation(c)).abs() < 1e-12);
    });
}

/// All classical inhibitions reduce the rate (never enhance it).
#[test]
fn inhibition_never_enhances() {
    cases(0x0206, 64, |rng| {
        let ki = rng.log_uniform_in(0.01, 10.0);
        let s = rng.log_uniform_in(0.001, 100.0);
        let i = rng.uniform_in(0.0, 10.0);
        let base = mm(100.0, 1.0);
        let sub = Molar::from_milli_molar(s);
        let inh_c = Molar::from_milli_molar(i);
        let v0 = base.turnover_rate(sub).as_per_second();
        for inhibition in [
            Inhibition::Competitive {
                ki: Molar::from_milli_molar(ki),
            },
            Inhibition::Uncompetitive {
                ki: Molar::from_milli_molar(ki),
            },
            Inhibition::NonCompetitive {
                ki: Molar::from_milli_molar(ki),
            },
        ] {
            let v = inhibition.rate(&base, sub, inh_c).as_per_second();
            assert!(v <= v0 * (1.0 + 1e-12), "{inhibition:?}");
        }
    });
}

/// Ping-pong rate is bounded by min of the two single-substrate
/// saturations times k_cat.
#[test]
fn ping_pong_bounds() {
    cases(0x0207, 64, |rng| {
        let ka = rng.log_uniform_in(0.01, 50.0);
        let kb = rng.log_uniform_in(0.001, 1.0);
        let a = rng.uniform_in(0.0, 100.0);
        let b = rng.uniform_in(0.0, 2.0);
        let pp = PingPongBiBi::new(
            RateConstant::from_per_second(100.0),
            Molar::from_milli_molar(ka),
            Molar::from_milli_molar(kb),
        );
        let v = pp
            .rate(Molar::from_milli_molar(a), Molar::from_milli_molar(b))
            .as_per_second();
        assert!(v >= 0.0);
        assert!(v <= 100.0);
        // Never faster than either substrate allows alone.
        let sat_a = a / (ka + a);
        let sat_b = b / (kb + b);
        assert!(v <= 100.0 * sat_a.min(sat_b) + 1e-9);
    });
}

/// The apparent single-substrate reduction of ping-pong kinetics is
/// exact for any fixed co-substrate level.
#[test]
fn ping_pong_apparent_reduction_exact() {
    cases(0x0208, 64, |rng| {
        let ka = rng.log_uniform_in(0.01, 50.0);
        let kb = rng.log_uniform_in(0.001, 1.0);
        let b = rng.log_uniform_in(0.001, 2.0);
        let a = rng.log_uniform_in(0.001, 100.0);
        let pp = PingPongBiBi::new(
            RateConstant::from_per_second(100.0),
            Molar::from_milli_molar(ka),
            Molar::from_milli_molar(kb),
        );
        let fixed_b = Molar::from_milli_molar(b);
        let app = pp.apparent_in_a(fixed_b);
        let sub = Molar::from_milli_molar(a);
        let full = pp.rate(sub, fixed_b).as_per_second();
        let reduced = app.turnover_rate(sub).as_per_second();
        assert!((full - reduced).abs() / full.max(1e-30) < 1e-9);
    });
}

/// Film product flux scales linearly with effective loading and
/// never exceeds Γ_eff · k_cat.
#[test]
fn film_flux_bounds() {
    cases(0x0209, 64, |rng| {
        let loading = rng.log_uniform_in(0.1, 1000.0);
        let activity = rng.uniform_in(0.05, 1.0);
        let s = rng.uniform_in(0.0, 100.0);
        let film = EnzymeFilm::builder()
            .loading(SurfaceLoading::from_pico_mol_per_square_cm(loading))
            .retained_activity(activity)
            .build();
        let kinetics = mm(100.0, 1.0);
        let flux = film.product_flux(&kinetics, Molar::from_milli_molar(s));
        let cap = film.effective_loading().as_mol_per_square_cm() * 100.0;
        assert!(flux >= 0.0);
        assert!(flux <= cap * (1.0 + 1e-12));
    });
}

/// The effectiveness factor lies in (0, 1] and decreases with film
/// thickness.
#[test]
fn effectiveness_bounds_and_monotonicity() {
    cases(0x020A, 64, |rng| {
        let loading = rng.log_uniform_in(1.0, 10_000.0);
        let thin_um = rng.log_uniform_in(0.05, 5.0);
        let factor = rng.uniform_in(2.0, 20.0);
        let kinetics = mm(500.0, 1.0);
        let d = DiffusionCoefficient::from_square_cm_per_second(1e-7);
        let make = |um: f64| {
            EnzymeFilm::builder()
                .loading(SurfaceLoading::from_pico_mol_per_square_cm(loading))
                .thickness(Centimeters::from_micro_meters(um))
                .build()
        };
        let eta_thin = make(thin_um).effectiveness(&kinetics, d);
        let eta_thick = make(thin_um * factor).effectiveness(&kinetics, d);
        assert!(eta_thin > 0.0 && eta_thin <= 1.0);
        assert!(eta_thick > 0.0 && eta_thick <= 1.0);
        assert!(eta_thick <= eta_thin + 1e-12);
    });
}

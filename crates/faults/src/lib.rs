//! Deterministic fault injection for the biosensor platform.
//!
//! The paper's figures of merit (sensitivity, linear range, LOD) only
//! hold while the device stays healthy. In practice enzyme films
//! denature, CNT electrodes foul, reference electrodes drift, and
//! readout electronics glitch. This crate models those failure modes as
//! a seeded, *deterministic* [`FaultPlan`]: given the same plan, sensor
//! id, and job seed, exactly the same faults are realized — independent
//! of worker count, retry schedule, or wall-clock time — so a chaos run
//! is as reproducible as a healthy one.
//!
//! The crate is a leaf: it only knows `bios-prng` and `bios-units`.
//! Physics crates (`bios-enzyme`, `bios-electrochem`,
//! `bios-instrument`) depend on it and implement [`Faultable`] for
//! their own types, translating the realized fault fields into domain
//! effects. When no plan is armed the healthy code path is untouched.
//!
//! ```
//! use bios_faults::{FaultKind, FaultPlan};
//!
//! let plan = FaultPlan::builder("bench burn-in", 42)
//!     .spec(FaultKind::FilmDenaturation, 0.5, 0.6)
//!     .spec(FaultKind::ReadoutSpike, 0.3, 0.4)
//!     .build();
//! let faults = plan.realize("glucose/gox-swcnt", 7);
//! // Same inputs, same faults — always.
//! assert_eq!(faults, plan.realize("glucose/gox-swcnt", 7));
//! ```

use bios_prng::{Rng, SplitMix64};

/// FNV-1a over a byte stream; the same idiom `bios-core` uses for
/// protocol fingerprints, so plan fingerprints can join the memo-cache
/// key without a new hashing scheme.
fn fnv1a(bytes: impl IntoIterator<Item = u8>) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// The taxonomy of injectable physical failures.
///
/// Each variant maps to a concrete degradation mechanism in one layer
/// of the simulator (see DESIGN.md §9 for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Enzyme film loses catalytic activity (thermal/oxidative
    /// denaturation of the P450 or oxidase layer). Layer: `bios-enzyme`.
    FilmDenaturation,
    /// Passivating film grows on the working electrode, blocking a
    /// fraction of the active area. Layer: `bios-electrochem`.
    ElectrodeFouling,
    /// Pseudo-reference potential walks away from its nominal value,
    /// moving the operating point down the Tafel slope.
    /// Layer: `bios-electrochem`.
    ReferenceDrift,
    /// ADC front-end saturates early: its usable full scale shrinks.
    /// Layer: `bios-instrument`.
    AdcSaturation,
    /// One or more low-order ADC code bits stick at zero.
    /// Layer: `bios-instrument`.
    AdcStuckCode,
    /// Sporadic large-amplitude current spikes (ESD, switching
    /// transients) on the readout. Layer: `bios-instrument`.
    ReadoutSpike,
    /// Samples sporadically dropped; the chain holds the last good
    /// reading. Layer: `bios-instrument`.
    ReadoutDropout,
    /// The job fails transiently (comms timeout, bus contention) and
    /// succeeds when retried. Layer: `bios-runtime`.
    TransientGlitch,
    /// The job panics outright — a poisoned input or firmware abort.
    /// Layer: `bios-runtime`.
    WorkerPanic,
    /// The job hangs in a busy loop (livelocked solver, wedged bus) and
    /// never returns on its own — only the runtime's watchdog/deadline
    /// layer can reclaim the worker. Distinct from [`WorkerPanic`]:
    /// a panic is *loud* and caught by the unwind boundary, a stall is
    /// *silent* and needs cooperative cancellation.
    /// Layer: `bios-runtime`.
    ///
    /// [`WorkerPanic`]: FaultKind::WorkerPanic
    WorkerStall,
    /// Demand — not the device — misbehaves: requests arrive in
    /// compressed bursts instead of a smooth trickle, the overload
    /// pattern a point-of-care fleet sees when a clinic batch-uploads
    /// a ward's worth of panels at once. Unlike every other kind this
    /// fault is realized at the *arrival* level
    /// ([`FaultPlan::arrival_ticks`]), never per job: a burst changes
    /// when work shows up, not what any single job computes.
    /// Layer: `bios-gateway`.
    TrafficBurst,
    /// A whole tenant shard goes away mid-run — host reboot, cgroup
    /// OOM-kill, or a maintenance drain that never came back. Like
    /// [`TrafficBurst`] this is an infrastructure fault, not a device
    /// fault: it is realized at the *placement* level
    /// ([`FaultPlan::shard_loss_tick`]), changing *where* pending work
    /// runs, never what any single job computes. Layer: `bios-shard`.
    ///
    /// [`TrafficBurst`]: FaultKind::TrafficBurst
    ShardLoss,
    /// Demand concentrates on a few tenants instead of spreading
    /// evenly — the ward that batch-uploads ten times the panels of
    /// its neighbors. Realized at the *trace-shaping* level
    /// ([`FaultPlan::hotspot_factor`]), scaling how many requests a
    /// tenant contributes, never what one computes.
    /// Layer: `bios-shard`.
    TenantHotspot,
    /// A result is corrupted *in flight* after the physics completed —
    /// a bit-flip in a DMA buffer, a marginal DIMM, a defective core
    /// returning finite-but-wrong arithmetic. The perturbed value stays
    /// finite, so it sails past `NonFinite` quarantine; only redundant
    /// execution plus voting (or an end-to-end checksum) can catch it.
    /// Realized at the *replica* level
    /// ([`FaultPlan::silent_corruption`]), keyed to a replica-lane
    /// identity so offenders are repeatable — never inside
    /// [`FaultPlan::realize`], so healthy single-execution paths stay
    /// byte-identical whether or not the spec is armed.
    /// Layer: `bios-quorum`.
    SilentCorruption,
}

impl FaultKind {
    /// Every kind, in taxonomy order.
    pub const ALL: [FaultKind; 14] = [
        FaultKind::FilmDenaturation,
        FaultKind::ElectrodeFouling,
        FaultKind::ReferenceDrift,
        FaultKind::AdcSaturation,
        FaultKind::AdcStuckCode,
        FaultKind::ReadoutSpike,
        FaultKind::ReadoutDropout,
        FaultKind::TransientGlitch,
        FaultKind::WorkerPanic,
        FaultKind::WorkerStall,
        FaultKind::TrafficBurst,
        FaultKind::ShardLoss,
        FaultKind::TenantHotspot,
        FaultKind::SilentCorruption,
    ];

    /// Stable tag used to derive an independent PRNG stream per kind.
    fn stream_tag(self) -> u64 {
        match self {
            FaultKind::FilmDenaturation => 0x01,
            FaultKind::ElectrodeFouling => 0x02,
            FaultKind::ReferenceDrift => 0x03,
            FaultKind::AdcSaturation => 0x04,
            FaultKind::AdcStuckCode => 0x05,
            FaultKind::ReadoutSpike => 0x06,
            FaultKind::ReadoutDropout => 0x07,
            FaultKind::TransientGlitch => 0x08,
            FaultKind::WorkerPanic => 0x09,
            FaultKind::WorkerStall => 0x0A,
            FaultKind::TrafficBurst => 0x0B,
            FaultKind::ShardLoss => 0x0C,
            FaultKind::TenantHotspot => 0x0D,
            FaultKind::SilentCorruption => 0x0E,
        }
    }

    /// Short human label for tables and logs.
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::FilmDenaturation => "film denaturation",
            FaultKind::ElectrodeFouling => "electrode fouling",
            FaultKind::ReferenceDrift => "reference drift",
            FaultKind::AdcSaturation => "adc saturation",
            FaultKind::AdcStuckCode => "adc stuck code",
            FaultKind::ReadoutSpike => "readout spike",
            FaultKind::ReadoutDropout => "readout dropout",
            FaultKind::TransientGlitch => "transient glitch",
            FaultKind::WorkerPanic => "worker panic",
            FaultKind::WorkerStall => "worker stall",
            FaultKind::TrafficBurst => "traffic burst",
            FaultKind::ShardLoss => "shard loss",
            FaultKind::TenantHotspot => "tenant hotspot",
            FaultKind::SilentCorruption => "silent corruption",
        }
    }
}

/// One injectable fault: what, how often, how hard.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultSpec {
    /// Which failure mode to inject.
    pub kind: FaultKind,
    /// Per-job occurrence probability in `[0, 1]`.
    pub probability: f64,
    /// Severity knob in `[0, 1]`; each kind scales it into its own
    /// physical range (see [`FaultPlan::realize`]).
    pub intensity: f64,
}

impl FaultSpec {
    /// Build a spec, clamping probability and intensity into `[0, 1]`
    /// (non-finite values clamp to zero).
    pub fn new(kind: FaultKind, probability: f64, intensity: f64) -> Self {
        let clamp01 = |v: f64| {
            if v.is_finite() {
                v.clamp(0.0, 1.0)
            } else {
                0.0
            }
        };
        Self {
            kind,
            probability: clamp01(probability),
            intensity: clamp01(intensity),
        }
    }
}

/// A named, seeded set of fault specs — the unit the runtime arms.
///
/// Plans are pure data: realizing one never mutates it, and the same
/// `(plan, sensor_id, job_seed)` triple always yields the same
/// [`RealizedFaults`]. The [`fingerprint`](FaultPlan::fingerprint)
/// joins the memo-cache key so cached healthy results can never be
/// served to a faulted run (or vice versa).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    name: String,
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlan {
    /// Start building a plan.
    pub fn builder(name: impl Into<String>, seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            name: name.into(),
            seed,
            specs: Vec::new(),
        }
    }

    /// A ready-made "everything degrades at once" plan used by the
    /// chaos ablation: every physical fault armed with occurrence
    /// probability and severity both scaled by `intensity` in `[0, 1]`.
    /// At `intensity == 0` the plan is armed but realizes nothing, which
    /// is exactly the overhead-measurement baseline.
    pub fn chaos(seed: u64, intensity: f64) -> Self {
        let intensity = if intensity.is_finite() {
            intensity.clamp(0.0, 1.0)
        } else {
            0.0
        };
        let mut builder = Self::builder(format!("chaos(i={intensity:.2})"), seed);
        for kind in [
            FaultKind::FilmDenaturation,
            FaultKind::ElectrodeFouling,
            FaultKind::ReferenceDrift,
            FaultKind::AdcSaturation,
            FaultKind::AdcStuckCode,
            FaultKind::ReadoutSpike,
            FaultKind::ReadoutDropout,
        ] {
            builder = builder.spec(kind, 0.6 * intensity, intensity);
        }
        builder
            .spec(FaultKind::TransientGlitch, 0.4 * intensity, intensity)
            .spec(FaultKind::WorkerPanic, 0.1 * intensity, intensity)
            .spec(FaultKind::WorkerStall, 0.08 * intensity, intensity)
            .build()
    }

    /// The plan's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The plan seed all realization streams derive from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The armed specs.
    pub fn specs(&self) -> &[FaultSpec] {
        &self.specs
    }

    /// Stable content hash (FNV-1a over the `Debug` rendering), the
    /// same idiom as `CatalogEntry::protocol_fingerprint`. Two plans
    /// that would inject different faults have different fingerprints.
    pub fn fingerprint(&self) -> u64 {
        fnv1a(format!("{self:?}").bytes())
    }

    /// Realize the faults this plan injects into one job.
    ///
    /// Pure function of `(self, sensor_id, job_seed)`: each spec draws
    /// from its own `SplitMix64`-derived stream so adding or removing
    /// one spec never perturbs the others, and nothing depends on
    /// scheduling, retries, or worker count.
    pub fn realize(&self, sensor_id: &str, job_seed: u64) -> RealizedFaults {
        let id_hash = fnv1a(sensor_id.bytes());
        let base = SplitMix64::new(self.seed).derive(id_hash);
        let base = SplitMix64::new(base).derive(job_seed);
        let mut out = RealizedFaults::healthy();
        out.noise_seed = SplitMix64::new(base).derive(0xFA01_7BAD);
        for spec in &self.specs {
            let stream = SplitMix64::new(base).derive(spec.kind.stream_tag());
            let mut rng = Rng::seed_from_u64(stream);
            if rng.uniform() >= spec.probability {
                continue;
            }
            // Severity draw: between half and full intensity, so a ramp
            // of `intensity` produces a ramp of realized magnitudes.
            let magnitude = spec.intensity * (0.5 + 0.5 * rng.uniform());
            match spec.kind {
                FaultKind::FilmDenaturation => {
                    out.film_activity = (1.0 - 0.9 * magnitude).clamp(0.05, 1.0);
                }
                FaultKind::ElectrodeFouling => {
                    out.fouling_coverage = (0.8 * magnitude).min(0.95);
                }
                FaultKind::ReferenceDrift => {
                    // Drift away from the plateau: up to -80 mV.
                    out.reference_drift_volts = -0.08 * magnitude;
                }
                FaultKind::AdcSaturation => {
                    out.adc_saturation = (0.6 * magnitude).min(0.9);
                }
                FaultKind::AdcStuckCode => {
                    let stuck_bits = 1 + (magnitude * 4.0).floor() as u32;
                    out.adc_stuck_mask = (1u16 << stuck_bits.min(5)) - 1;
                }
                FaultKind::ReadoutSpike => {
                    out.spike_probability = 0.02 + 0.08 * magnitude;
                    out.spike_magnitude = 0.2 + 0.6 * magnitude;
                }
                FaultKind::ReadoutDropout => {
                    out.dropout_probability = 0.02 + 0.10 * magnitude;
                }
                FaultKind::TransientGlitch => {
                    out.transient_failures = 1 + (magnitude * 2.0).round() as u32;
                }
                FaultKind::WorkerPanic => {
                    out.panic_job = true;
                }
                FaultKind::WorkerStall => {
                    out.stall_job = true;
                }
                FaultKind::TrafficBurst => {
                    // Arrival-level fault: shapes *when* jobs arrive
                    // (see `arrival_ticks`), never what one computes.
                }
                FaultKind::ShardLoss => {
                    // Placement-level fault: decides *where* pending
                    // work runs (see `shard_loss_tick`), never what
                    // one job computes.
                }
                FaultKind::TenantHotspot => {
                    // Trace-shaping fault: scales how many requests a
                    // tenant contributes (see `hotspot_factor`), never
                    // what one computes.
                }
                FaultKind::SilentCorruption => {
                    // Replica-level fault: perturbs what one replica
                    // *observed* (see `silent_corruption`), never what
                    // the physics computed — the healthy path must
                    // stay byte-identical with the spec armed.
                }
            }
        }
        out
    }

    /// Generates the arrival tick of each of `n` requests under this
    /// plan's [`FaultKind::TrafficBurst`] spec — the overload-test
    /// input to `bios-gateway`.
    ///
    /// Pure function of `(plan, n, base_interval_ticks)`: the burst
    /// stream derives from the plan seed and the `TrafficBurst` stream
    /// tag, so the same plan always shapes the same trace. Without a
    /// `TrafficBurst` spec (or with zero probability) the trace is a
    /// smooth trickle, one request every `base_interval_ticks` logical
    /// ticks. With one, each inter-arrival gap collapses to zero with
    /// the spec's probability, and a triggered burst drags the next
    /// `2 + ⌊14·intensity·u⌋` requests onto the same tick — higher
    /// intensity, longer bursts. Ticks are non-decreasing; the first
    /// request always arrives at tick 0.
    #[must_use]
    pub fn arrival_ticks(&self, n: usize, base_interval_ticks: u64) -> Vec<u64> {
        let spec = self
            .specs
            .iter()
            .find(|s| s.kind == FaultKind::TrafficBurst)
            .copied()
            .filter(|s| s.probability > 0.0);
        let mut out = Vec::with_capacity(n);
        let Some(spec) = spec else {
            for i in 0..n as u64 {
                out.push(i * base_interval_ticks);
            }
            return out;
        };
        let stream = SplitMix64::new(self.seed).derive(spec.kind.stream_tag());
        let mut rng = Rng::seed_from_u64(stream);
        let mut tick = 0u64;
        let mut burst_left = 0u64;
        for i in 0..n {
            if i > 0 {
                if burst_left > 0 {
                    burst_left -= 1; // same tick: the burst continues
                } else if rng.uniform() < spec.probability {
                    burst_left = 2 + (14.0 * spec.intensity * rng.uniform()).floor() as u64;
                } else {
                    tick = tick.saturating_add(base_interval_ticks.max(1));
                }
            }
            out.push(tick);
        }
        out
    }

    /// Realizes this plan's [`FaultKind::ShardLoss`] spec for one
    /// shard: the logical tick the shard is lost, or `None` when it
    /// survives the horizon.
    ///
    /// Pure function of `(plan seed, spec, shard_index, horizon_ticks)`:
    /// each shard draws from its own `SplitMix64`-derived stream
    /// (dedicated tag, so it can never alias the per-job realization
    /// stream), and a realized loss lands in the first half of the
    /// horizon so the supervisor's quarantine-and-redistribute path is
    /// actually exercised before the run drains. Without a `ShardLoss`
    /// spec (or with zero probability) every shard survives.
    #[must_use]
    pub fn shard_loss_tick(&self, shard_index: usize, horizon_ticks: u64) -> Option<u64> {
        let spec = self
            .specs
            .iter()
            .find(|s| s.kind == FaultKind::ShardLoss)
            .copied()
            .filter(|s| s.probability > 0.0)?;
        let base = SplitMix64::new(self.seed).derive(shard_index as u64);
        let stream = SplitMix64::new(base).derive(0x5AAD_0000 | spec.kind.stream_tag());
        let mut rng = Rng::seed_from_u64(stream);
        if rng.uniform() >= spec.probability {
            return None;
        }
        Some((rng.uniform() * 0.5 * horizon_ticks.max(1) as f64).floor() as u64)
    }

    /// Realizes this plan's [`FaultKind::TenantHotspot`] spec for one
    /// tenant: the demand multiplier (≥ 1) that tenant's request volume
    /// carries. A cold tenant keeps factor 1; a hot one contributes
    /// `1 + ⌊7·intensity·u⌋` times the baseline, up to 8× at full
    /// intensity — the ward batch-uploading a backlog of panels.
    ///
    /// Pure function of `(plan seed, spec, tenant)` via a dedicated
    /// per-tenant stream, so adding tenants to a trace never perturbs
    /// who is hot. Without a `TenantHotspot` spec (or with zero
    /// probability) every tenant stays at factor 1.
    #[must_use]
    pub fn hotspot_factor(&self, tenant: &str) -> u64 {
        let spec = self
            .specs
            .iter()
            .find(|s| s.kind == FaultKind::TenantHotspot)
            .copied()
            .filter(|s| s.probability > 0.0);
        let Some(spec) = spec else {
            return 1;
        };
        let id_hash = fnv1a(tenant.bytes());
        let base = SplitMix64::new(self.seed).derive(id_hash);
        let stream = SplitMix64::new(base).derive(0x4075_0000 | spec.kind.stream_tag());
        let mut rng = Rng::seed_from_u64(stream);
        if rng.uniform() >= spec.probability {
            return 1;
        }
        1 + (7.0 * spec.intensity * rng.uniform()).floor() as u64
    }

    /// Realizes this plan's [`FaultKind::SilentCorruption`] spec for
    /// one replica lane of one job: the finite perturbation that lane's
    /// *observation* of the result carries, or `None` when the lane
    /// reports the true value.
    ///
    /// Two independent gates compose, both pure:
    ///
    /// * **offender gate** — a function of `(plan seed, lane)` only:
    ///   roughly half of all lane identities are offenders, and an
    ///   offender stays an offender for every job it observes, so a
    ///   suspect scoreboard accumulates strikes against the same
    ///   identity (the "defective core" model, not random cosmic rays);
    /// * **occurrence gate** — a function of
    ///   `(plan seed, sensor_id, job_seed, lane)` drawn against the
    ///   spec's probability, so corruption intensity ramps the per-job
    ///   firing rate on offender lanes.
    ///
    /// The returned delta is a relative factor with magnitude at least
    /// `10⁻⁴` (far outside any sane vote tolerance, so an injected
    /// corruption is *detectable* by construction) applied to one
    /// summary field chosen by the stream. Both streams use dedicated
    /// tag offsets, so they can never alias the per-job realization,
    /// shard-loss, hotspot, or aging streams. Without a
    /// `SilentCorruption` spec (or with zero probability) every lane
    /// observes the truth.
    #[must_use]
    pub fn silent_corruption(
        &self,
        sensor_id: &str,
        job_seed: u64,
        lane: u64,
    ) -> Option<CorruptionDelta> {
        let spec = self
            .specs
            .iter()
            .find(|s| s.kind == FaultKind::SilentCorruption)
            .copied()
            .filter(|s| s.probability > 0.0)?;
        // Offender gate: keyed to the lane identity alone.
        let offender_stream = SplitMix64::new(self.seed)
            .derive(0x0FFE_0000 | spec.kind.stream_tag())
            .wrapping_add(lane);
        let mut offender_rng = Rng::seed_from_u64(SplitMix64::new(offender_stream).derive(lane));
        if offender_rng.uniform() >= 0.5 {
            return None;
        }
        // Occurrence gate: this offender, this job.
        let id_hash = fnv1a(sensor_id.bytes());
        let base = SplitMix64::new(self.seed).derive(id_hash);
        let base = SplitMix64::new(base).derive(job_seed);
        let stream = SplitMix64::new(base).derive(0x51C7_0000 | spec.kind.stream_tag());
        let mut rng = Rng::seed_from_u64(SplitMix64::new(stream).derive(lane));
        if rng.uniform() >= spec.probability {
            return None;
        }
        // Severity draw mirrors `realize`: half to full intensity.
        let magnitude = spec.intensity * (0.5 + 0.5 * rng.uniform());
        let field = ((rng.uniform() * CorruptionDelta::FIELDS as f64).floor() as usize)
            .min(CorruptionDelta::FIELDS - 1);
        let sign = if rng.uniform() < 0.5 { -1.0 } else { 1.0 };
        Some(CorruptionDelta {
            field,
            relative: sign * (1e-4 + 0.05 * magnitude),
        })
    }

    /// Realizes this plan's [`FaultKind::FilmDenaturation`] spec along a
    /// **longitudinal time axis** for one patient channel: whether the
    /// film ages at all (the spec's probability), when the decay starts,
    /// and how fast it proceeds (scaled by the spec's intensity, with
    /// the same half-to-full severity draw as [`FaultPlan::realize`]).
    ///
    /// Where `realize` answers "how degraded is this sensor for this
    /// one job", `aging_profile` answers "how does this patient's film
    /// activity evolve tick by tick" — the drift-injection input of the
    /// stream engine. Pure function of `(plan seed, spec, patient_id,
    /// horizon_ticks)`: each patient draws from its own
    /// `SplitMix64`-derived stream, so cohort size and iteration order
    /// never perturb an individual profile. Without a `FilmDenaturation`
    /// spec (or with zero probability) the profile never ages.
    ///
    /// The onset is uniform over the first 40 % of the horizon so that
    /// detection *and* re-calibration both fit inside the run; at full
    /// magnitude the film loses 0.5 % activity per tick.
    #[must_use]
    pub fn aging_profile(&self, patient_id: &str, horizon_ticks: u64) -> AgingProfile {
        let spec = self
            .specs
            .iter()
            .find(|s| s.kind == FaultKind::FilmDenaturation)
            .copied()
            .filter(|s| s.probability > 0.0);
        let healthy = AgingProfile {
            onset_tick: None,
            decay_per_tick: 0.0,
        };
        let Some(spec) = spec else {
            return healthy;
        };
        let id_hash = fnv1a(patient_id.bytes());
        let base = SplitMix64::new(self.seed).derive(id_hash);
        // A dedicated stream tag: the longitudinal profile must not
        // alias the per-job realization stream of the same spec.
        let stream = SplitMix64::new(base).derive(0xA9E5_0000 | spec.kind.stream_tag());
        let mut rng = Rng::seed_from_u64(stream);
        if rng.uniform() >= spec.probability {
            return healthy;
        }
        let onset = (rng.uniform() * 0.4 * horizon_ticks.max(1) as f64).floor() as u64;
        // Severity draw between half and full intensity, mirroring
        // `realize` so an intensity ramp produces a decay-rate ramp.
        let magnitude = spec.intensity * (0.5 + 0.5 * rng.uniform());
        AgingProfile {
            onset_tick: Some(onset),
            decay_per_tick: 0.005 * magnitude,
        }
    }
}

/// The in-flight perturbation one replica lane's observation of a
/// result carries — the realization of a
/// [`FaultKind::SilentCorruption`] spec (see
/// [`FaultPlan::silent_corruption`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CorruptionDelta {
    /// Index of the perturbed summary field, in `[0, FIELDS)`.
    pub field: usize,
    /// Relative factor delta applied to that field: the lane observes
    /// `true_value * (1 + relative)`. Always finite and non-zero, with
    /// `|relative| ≥ 1e-4`.
    pub relative: f64,
}

impl CorruptionDelta {
    /// Number of comparable summary fields a corruption can land on
    /// (sensitivity, range low, range high, detection limit, R²).
    pub const FIELDS: usize = 5;
}

/// How one patient channel's enzyme-film activity evolves over a
/// longitudinal run — the time-axis realization of a
/// [`FaultKind::FilmDenaturation`] spec (see
/// [`FaultPlan::aging_profile`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AgingProfile {
    /// Tick the film starts losing activity; `None` never ages.
    pub onset_tick: Option<u64>,
    /// Fractional activity lost per tick once aging has started.
    pub decay_per_tick: f64,
}

impl AgingProfile {
    /// Films never decay below this retained-activity floor (matches
    /// the per-job realization clamp in [`FaultPlan::realize`]).
    pub const FLOOR: f64 = 0.05;

    /// Whether this profile ever injects drift.
    #[must_use]
    pub fn ages(&self) -> bool {
        self.onset_tick.is_some() && self.decay_per_tick > 0.0
    }

    /// Retained film activity at `tick`: 1.0 before onset, then a
    /// linear decay clamped at [`AgingProfile::FLOOR`].
    #[must_use]
    pub fn activity_at(&self, tick: u64) -> f64 {
        match self.onset_tick {
            Some(onset) if tick >= onset => {
                (1.0 - (tick - onset) as f64 * self.decay_per_tick).max(AgingProfile::FLOOR)
            }
            _ => 1.0,
        }
    }
}

/// Builder for [`FaultPlan`].
#[derive(Debug, Clone)]
pub struct FaultPlanBuilder {
    name: String,
    seed: u64,
    specs: Vec<FaultSpec>,
}

impl FaultPlanBuilder {
    /// Arm one fault kind with the given probability and intensity
    /// (both clamped into `[0, 1]`).
    pub fn spec(mut self, kind: FaultKind, probability: f64, intensity: f64) -> Self {
        self.specs
            .push(FaultSpec::new(kind, probability, intensity));
        self
    }

    /// Finish the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            name: self.name,
            seed: self.seed,
            specs: self.specs,
        }
    }
}

/// The concrete faults realized for one `(plan, sensor, seed)` job.
///
/// Every field's default is the healthy value, so physics code can
/// apply a `RealizedFaults` unconditionally and a healthy realization
/// is an exact no-op.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RealizedFaults {
    /// Multiplier on enzyme film activity, `(0, 1]`; 1.0 = healthy.
    pub film_activity: f64,
    /// Fraction of electrode area blocked by fouling, `[0, 1)`.
    pub fouling_coverage: f64,
    /// Reference-electrode drift in volts (negative = toward the foot
    /// of the wave); 0.0 = healthy.
    pub reference_drift_volts: f64,
    /// Fraction of ADC full scale lost to early saturation, `[0, 1)`.
    pub adc_saturation: f64,
    /// ADC code bits stuck at zero (mask over the low-order bits).
    pub adc_stuck_mask: u16,
    /// Per-sample probability of a readout spike.
    pub spike_probability: f64,
    /// Spike amplitude as a fraction of TIA full-scale current.
    pub spike_magnitude: f64,
    /// Per-sample probability of a dropped sample (hold-last-value).
    pub dropout_probability: f64,
    /// Number of leading attempts that fail transiently before the job
    /// can succeed; 0 = healthy.
    pub transient_failures: u32,
    /// Whether the job panics outright (permanent failure).
    pub panic_job: bool,
    /// Whether the job busy-hangs and must be reclaimed by the
    /// runtime's watchdog (surfaces as a deadline loss).
    pub stall_job: bool,
    /// Seed for the instrument-layer fault stream (spike/dropout
    /// timing), independent of the measurement noise stream.
    pub noise_seed: u64,
}

impl RealizedFaults {
    /// The all-healthy realization: applying it changes nothing.
    pub fn healthy() -> Self {
        Self {
            film_activity: 1.0,
            fouling_coverage: 0.0,
            reference_drift_volts: 0.0,
            adc_saturation: 0.0,
            adc_stuck_mask: 0,
            spike_probability: 0.0,
            spike_magnitude: 0.0,
            dropout_probability: 0.0,
            transient_failures: 0,
            panic_job: false,
            stall_job: false,
            noise_seed: 0,
        }
    }

    /// True when every field is at its healthy value.
    pub fn is_healthy(&self) -> bool {
        self.tally().total() == 0
    }

    /// Count the injected fault kinds by layer.
    pub fn tally(&self) -> FaultTally {
        let mut tally = FaultTally::default();
        if self.film_activity < 1.0 {
            tally.enzyme += 1;
        }
        if self.fouling_coverage > 0.0 {
            tally.electrode += 1;
        }
        if self.reference_drift_volts != 0.0 {
            tally.electrode += 1;
        }
        if self.adc_saturation > 0.0 {
            tally.instrument += 1;
        }
        if self.adc_stuck_mask != 0 {
            tally.instrument += 1;
        }
        if self.spike_probability > 0.0 {
            tally.instrument += 1;
        }
        if self.dropout_probability > 0.0 {
            tally.instrument += 1;
        }
        if self.transient_failures > 0 {
            tally.runtime += 1;
        }
        if self.panic_job {
            tally.runtime += 1;
        }
        if self.stall_job {
            tally.runtime += 1;
        }
        tally
    }
}

impl Default for RealizedFaults {
    fn default() -> Self {
        Self::healthy()
    }
}

/// Injected-fault counts bucketed by simulator layer.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultTally {
    /// Faults landing in `bios-enzyme` (film denaturation).
    pub enzyme: u32,
    /// Faults landing in `bios-electrochem` (fouling, drift).
    pub electrode: u32,
    /// Faults landing in `bios-instrument` (ADC + readout transients).
    pub instrument: u32,
    /// Faults landing in `bios-runtime` (transients, panics).
    pub runtime: u32,
}

impl FaultTally {
    /// Total injected fault count across layers.
    pub fn total(&self) -> u32 {
        self.enzyme + self.electrode + self.instrument + self.runtime
    }

    /// Element-wise sum, for aggregating a fleet's tallies.
    pub fn merge(&self, other: &FaultTally) -> FaultTally {
        FaultTally {
            enzyme: self.enzyme + other.enzyme,
            electrode: self.electrode + other.electrode,
            instrument: self.instrument + other.instrument,
            runtime: self.runtime + other.runtime,
        }
    }
}

/// Hook implemented by physics-layer types that can absorb faults.
///
/// Implementations must be exact no-ops for healthy fields so that an
/// unarmed or zero-intensity plan leaves results bit-identical to the
/// healthy path.
pub trait Faultable: Sized {
    /// Return `self` with the realized faults applied.
    fn with_faults(self, faults: &RealizedFaults) -> Self;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_plan() -> FaultPlan {
        FaultPlan::builder("demo", 99)
            .spec(FaultKind::FilmDenaturation, 1.0, 0.8)
            .spec(FaultKind::ReadoutSpike, 1.0, 0.5)
            .spec(FaultKind::TransientGlitch, 1.0, 1.0)
            .build()
    }

    #[test]
    fn realization_is_deterministic() {
        let plan = demo_plan();
        let a = plan.realize("glucose/gox", 7);
        let b = plan.realize("glucose/gox", 7);
        assert_eq!(a, b);
    }

    #[test]
    fn realization_depends_on_sensor_and_seed() {
        let plan = demo_plan();
        let base = plan.realize("glucose/gox", 7);
        assert_ne!(base, plan.realize("lactate/lox", 7));
        assert_ne!(base, plan.realize("glucose/gox", 8));
    }

    #[test]
    fn zero_probability_realizes_healthy() {
        let plan = FaultPlan::builder("calm", 1)
            .spec(FaultKind::ElectrodeFouling, 0.0, 1.0)
            .build();
        for seed in 0..32 {
            let realized = plan.realize("any", seed);
            assert!(realized.is_healthy(), "seed {seed} realized a fault");
        }
    }

    #[test]
    fn chaos_at_zero_intensity_is_harmless() {
        let plan = FaultPlan::chaos(5, 0.0);
        for seed in 0..16 {
            assert!(plan.realize("glucose/gox", seed).is_healthy());
        }
    }

    #[test]
    fn chaos_at_full_intensity_injects() {
        let plan = FaultPlan::chaos(5, 1.0);
        let injected: u32 = (0..16)
            .map(|seed| plan.realize("glucose/gox", seed).tally().total())
            .sum();
        assert!(injected > 0, "full-intensity chaos injected nothing");
    }

    #[test]
    fn specs_draw_independent_streams() {
        // Removing one spec must not change what the others realize.
        let both = FaultPlan::builder("p", 3)
            .spec(FaultKind::FilmDenaturation, 1.0, 0.5)
            .spec(FaultKind::ElectrodeFouling, 1.0, 0.5)
            .build();
        let film_only = FaultPlan::builder("p", 3)
            .spec(FaultKind::FilmDenaturation, 1.0, 0.5)
            .build();
        assert_eq!(
            both.realize("s", 1).film_activity,
            film_only.realize("s", 1).film_activity
        );
    }

    #[test]
    fn aging_profile_is_deterministic_and_per_patient() {
        let plan = demo_plan();
        let a = plan.aging_profile("p000001", 288);
        assert_eq!(a, plan.aging_profile("p000001", 288));
        // Probability 1.0 ages every patient, with onset in the early
        // window and a decay bounded by the intensity.
        let profiles: Vec<AgingProfile> = (0..16)
            .map(|i| plan.aging_profile(&format!("p{i:06}"), 288))
            .collect();
        for p in &profiles {
            assert!(p.ages());
            let onset = p.onset_tick.unwrap_or(u64::MAX);
            assert!(onset < 116, "onset {onset} outside the first 40%");
            assert!(p.decay_per_tick > 0.0 && p.decay_per_tick <= 0.005 * 0.8);
        }
        assert!(
            profiles.iter().any(|p| *p != profiles[0]),
            "patients must draw independent profiles"
        );
    }

    #[test]
    fn aging_profile_without_denaturation_never_ages() {
        let plan = FaultPlan::builder("calm", 1)
            .spec(FaultKind::ElectrodeFouling, 1.0, 1.0)
            .build();
        let p = plan.aging_profile("p000001", 288);
        assert!(!p.ages());
        for t in [0, 100, 1000] {
            assert!((p.activity_at(t) - 1.0).abs() < f64::EPSILON);
        }
        let zero = FaultPlan::builder("zero", 1)
            .spec(FaultKind::FilmDenaturation, 0.0, 1.0)
            .build();
        assert!(!zero.aging_profile("p000001", 288).ages());
    }

    #[test]
    fn aging_activity_decays_linearly_to_the_floor() {
        let profile = AgingProfile {
            onset_tick: Some(10),
            decay_per_tick: 0.01,
        };
        assert!((profile.activity_at(0) - 1.0).abs() < f64::EPSILON);
        assert!((profile.activity_at(10) - 1.0).abs() < f64::EPSILON);
        assert!((profile.activity_at(60) - 0.5).abs() < 1e-12);
        assert!((profile.activity_at(10_000) - AgingProfile::FLOOR).abs() < f64::EPSILON);
    }

    #[test]
    fn fingerprints_separate_distinct_plans() {
        let a = demo_plan();
        let b = FaultPlan::builder("demo", 100)
            .spec(FaultKind::FilmDenaturation, 1.0, 0.8)
            .spec(FaultKind::ReadoutSpike, 1.0, 0.5)
            .spec(FaultKind::TransientGlitch, 1.0, 1.0)
            .build();
        assert_ne!(a.fingerprint(), b.fingerprint(), "seed must fingerprint");
        assert_eq!(a.fingerprint(), demo_plan().fingerprint());
    }

    #[test]
    fn tally_buckets_by_layer() {
        let mut realized = RealizedFaults::healthy();
        realized.film_activity = 0.5;
        realized.fouling_coverage = 0.2;
        realized.spike_probability = 0.1;
        realized.panic_job = true;
        let tally = realized.tally();
        assert_eq!(tally.enzyme, 1);
        assert_eq!(tally.electrode, 1);
        assert_eq!(tally.instrument, 1);
        assert_eq!(tally.runtime, 1);
        assert_eq!(tally.total(), 4);
        assert_eq!(tally.merge(&tally).total(), 8);
    }

    #[test]
    fn spec_clamps_out_of_range_inputs() {
        let spec = FaultSpec::new(FaultKind::ReadoutSpike, 2.0, -1.0);
        assert_eq!(spec.probability, 1.0);
        assert_eq!(spec.intensity, 0.0);
        let nan = FaultSpec::new(FaultKind::ReadoutSpike, f64::NAN, f64::INFINITY);
        assert_eq!(nan.probability, 0.0);
        assert_eq!(nan.intensity, 0.0);
    }

    #[test]
    fn healthy_realization_reports_no_faults() {
        assert!(RealizedFaults::healthy().is_healthy());
        assert_eq!(RealizedFaults::default(), RealizedFaults::healthy());
    }

    #[test]
    fn traffic_burst_never_touches_job_physics() {
        let plan = FaultPlan::builder("burst-only", 11)
            .spec(FaultKind::TrafficBurst, 1.0, 1.0)
            .build();
        for seed in 0..16 {
            assert!(plan.realize("glucose/gox", seed).is_healthy());
        }
    }

    #[test]
    fn shard_loss_never_touches_job_physics() {
        let plan = FaultPlan::builder("loss-only", 13)
            .spec(FaultKind::ShardLoss, 1.0, 1.0)
            .spec(FaultKind::TenantHotspot, 1.0, 1.0)
            .build();
        for seed in 0..16 {
            assert!(plan.realize("glucose/gox", seed).is_healthy());
        }
    }

    #[test]
    fn shard_loss_tick_is_deterministic_and_in_the_first_half() {
        let plan = FaultPlan::builder("lossy", 0x10_55)
            .spec(FaultKind::ShardLoss, 1.0, 1.0)
            .build();
        let mut distinct = std::collections::BTreeSet::new();
        for shard in 0..8 {
            let tick = plan.shard_loss_tick(shard, 288);
            assert_eq!(tick, plan.shard_loss_tick(shard, 288));
            let t = tick.unwrap_or(u64::MAX);
            assert!(t < 144, "loss tick {t} outside the first half");
            distinct.insert(t);
        }
        assert!(distinct.len() > 1, "shards must draw independent ticks");
    }

    #[test]
    fn shard_loss_without_spec_never_fires() {
        let plan = demo_plan();
        for shard in 0..8 {
            assert_eq!(plan.shard_loss_tick(shard, 288), None);
        }
        let zero = FaultPlan::builder("zero", 1)
            .spec(FaultKind::ShardLoss, 0.0, 1.0)
            .build();
        assert_eq!(zero.shard_loss_tick(0, 288), None);
    }

    #[test]
    fn hotspot_factor_is_deterministic_and_bounded() {
        let plan = FaultPlan::builder("hot", 0x407)
            .spec(FaultKind::TenantHotspot, 1.0, 1.0)
            .build();
        let mut max_seen = 0;
        for i in 0..16 {
            let tenant = format!("ward-{i:02}");
            let f = plan.hotspot_factor(&tenant);
            assert_eq!(f, plan.hotspot_factor(&tenant));
            assert!((1..=8).contains(&f), "factor {f} outside [1, 8]");
            max_seen = max_seen.max(f);
        }
        assert!(max_seen > 1, "full-intensity hotspot never skewed");
        // Without a spec (or at zero probability) everyone stays cold.
        assert_eq!(demo_plan().hotspot_factor("ward-00"), 1);
        let zero = FaultPlan::builder("zero", 1)
            .spec(FaultKind::TenantHotspot, 0.0, 1.0)
            .build();
        assert_eq!(zero.hotspot_factor("ward-00"), 1);
    }

    #[test]
    fn silent_corruption_never_touches_job_physics() {
        let plan = FaultPlan::builder("sdc-only", 17)
            .spec(FaultKind::SilentCorruption, 1.0, 1.0)
            .build();
        for seed in 0..16 {
            assert!(plan.realize("glucose/gox", seed).is_healthy());
        }
    }

    #[test]
    fn silent_corruption_is_deterministic_finite_and_detectable() {
        let plan = FaultPlan::builder("sdc", 0x51C7)
            .spec(FaultKind::SilentCorruption, 1.0, 0.5)
            .build();
        let mut fired = 0;
        for lane in 0..8u64 {
            for seed in 0..8u64 {
                let a = plan.silent_corruption("glucose/gox", seed, lane);
                assert_eq!(a, plan.silent_corruption("glucose/gox", seed, lane));
                if let Some(d) = a {
                    fired += 1;
                    assert!(d.relative.is_finite());
                    assert!(
                        d.relative.abs() >= 1e-4,
                        "delta {} undetectable",
                        d.relative
                    );
                    assert!(d.field < CorruptionDelta::FIELDS);
                }
            }
        }
        assert!(fired > 0, "full-probability corruption never fired");
    }

    #[test]
    fn silent_corruption_offenders_are_repeatable_lane_identities() {
        // At probability 1.0 an offender lane fires on *every* job and
        // a non-offender lane on none: the offender set is a property
        // of the lane identity, not of the job.
        let plan = FaultPlan::builder("sdc", 0x0BAD_C0DE)
            .spec(FaultKind::SilentCorruption, 1.0, 1.0)
            .build();
        let mut offenders = Vec::new();
        for lane in 0..16u64 {
            let fires: Vec<bool> = (0..32u64)
                .map(|seed| plan.silent_corruption("lactate/lox", seed, lane).is_some())
                .collect();
            assert!(
                fires.iter().all(|&f| f == fires[0]),
                "lane {lane} flip-flopped between offender and honest"
            );
            if fires[0] {
                offenders.push(lane);
            }
        }
        assert!(!offenders.is_empty(), "no offender lane in 16 identities");
        assert!(offenders.len() < 16, "every lane offended");
    }

    #[test]
    fn silent_corruption_without_spec_never_fires() {
        let plan = demo_plan();
        for lane in 0..8u64 {
            assert_eq!(plan.silent_corruption("glucose/gox", 1, lane), None);
        }
        let zero = FaultPlan::builder("zero", 1)
            .spec(FaultKind::SilentCorruption, 0.0, 1.0)
            .build();
        assert_eq!(zero.silent_corruption("glucose/gox", 1, 0), None);
    }

    #[test]
    fn arrival_ticks_without_burst_spec_are_a_smooth_trickle() {
        let plan = demo_plan();
        assert_eq!(plan.arrival_ticks(5, 3), vec![0, 3, 6, 9, 12]);
        assert_eq!(
            FaultPlan::builder("empty", 0)
                .build()
                .arrival_ticks(0, 3)
                .len(),
            0
        );
    }

    #[test]
    fn arrival_ticks_are_deterministic_and_monotone() {
        let plan = FaultPlan::builder("bursty", 0xB00)
            .spec(FaultKind::TrafficBurst, 0.5, 0.8)
            .build();
        let a = plan.arrival_ticks(64, 2);
        let b = plan.arrival_ticks(64, 2);
        assert_eq!(a, b, "same plan must shape the same trace");
        assert_eq!(a[0], 0, "the first request arrives at tick 0");
        for w in a.windows(2) {
            assert!(w[1] >= w[0], "ticks must be non-decreasing");
        }
    }

    #[test]
    fn burst_spec_compresses_the_trace() {
        let calm = FaultPlan::builder("calm", 7).build().arrival_ticks(64, 2);
        let bursty = FaultPlan::builder("bursty", 7)
            .spec(FaultKind::TrafficBurst, 0.7, 1.0)
            .build()
            .arrival_ticks(64, 2);
        let calm_span = calm.last().copied().unwrap_or(0);
        let bursty_span = bursty.last().copied().unwrap_or(0);
        assert!(
            bursty_span < calm_span,
            "bursts must compress the span ({bursty_span} vs {calm_span})"
        );
        // At least one genuine burst: several requests on one tick.
        let max_same_tick = bursty
            .iter()
            .map(|t| bursty.iter().filter(|u| *u == t).count())
            .max()
            .unwrap_or(0);
        assert!(max_same_tick >= 3, "no burst realized");
    }
}

//! Per-sensor-family circuit breakers.
//!
//! A breaker watches the stream of job outcomes for one sensor family
//! (the catalog-id prefix before `/`) and cuts the family off when it
//! fails persistently, so a poisoned chemistry cannot keep burning
//! worker budget that healthy families need. The state machine is the
//! classic three-state breaker, driven entirely by logical ticks:
//!
//! ```text
//! Closed --trip_after consecutive failures--> Open
//! Open   --cooldown_ticks elapsed----------> HalfOpen
//! HalfOpen --probe_quota probe successes---> Closed
//! HalfOpen --any probe failure-------------> Open   (counts as a trip)
//! ```
//!
//! Every transition is a pure function of (config, outcome sequence,
//! tick), so breaker decisions are byte-identical across worker counts.

/// Tuning for one [`CircuitBreaker`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive breaker-relevant failures that trip Closed → Open.
    pub trip_after: u32,
    /// Logical ticks an Open breaker waits before probing.
    pub cooldown_ticks: u64,
    /// Probe successes required to close from HalfOpen; also the cap
    /// on probes in flight at once.
    pub probe_quota: u32,
}

impl Default for BreakerConfig {
    fn default() -> BreakerConfig {
        BreakerConfig {
            trip_after: 3,
            cooldown_ticks: 8,
            probe_quota: 2,
        }
    }
}

/// Where the breaker currently stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Healthy: all requests pass.
    Closed,
    /// Tripped: all requests rejected until the cooldown elapses.
    Open,
    /// Cooling down: a bounded number of probes pass to test recovery.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase label for digests and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// The breaker's verdict on one arriving request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Admission {
    /// Pass: the family is healthy.
    Admit,
    /// Pass as a recovery probe: the result must be reported back with
    /// `probe = true`.
    Probe,
    /// Reject: the family is cut off (or its probe quota is in use).
    Reject,
}

/// A three-state circuit breaker for one sensor family.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    opened_tick: u64,
    probes_in_flight: u32,
    probe_successes: u32,
}

impl CircuitBreaker {
    /// A closed (healthy) breaker.
    #[must_use]
    pub fn new(config: BreakerConfig) -> CircuitBreaker {
        CircuitBreaker {
            config: BreakerConfig {
                trip_after: config.trip_after.max(1),
                cooldown_ticks: config.cooldown_ticks,
                probe_quota: config.probe_quota.max(1),
            },
            state: BreakerState::Closed,
            consecutive_failures: 0,
            opened_tick: 0,
            probes_in_flight: 0,
            probe_successes: 0,
        }
    }

    /// Current state. `admit` may transition Open → HalfOpen first, so
    /// read this after the admission decision you care about.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Decides whether a request arriving at `tick` passes.
    pub fn admit(&mut self, tick: u64) -> Admission {
        if self.state == BreakerState::Open
            && tick.saturating_sub(self.opened_tick) >= self.config.cooldown_ticks
        {
            self.state = BreakerState::HalfOpen;
            self.probes_in_flight = 0;
            self.probe_successes = 0;
        }
        match self.state {
            BreakerState::Closed => Admission::Admit,
            BreakerState::Open => Admission::Reject,
            BreakerState::HalfOpen => {
                if self.probes_in_flight + self.probe_successes < self.config.probe_quota {
                    self.probes_in_flight += 1;
                    Admission::Probe
                } else {
                    Admission::Reject
                }
            }
        }
    }

    /// Releases a probe slot for a probe that was admitted but never
    /// executed (e.g. shed at dispatch for deadline exhaustion), so an
    /// abandoned probe cannot wedge the breaker half-open forever.
    pub fn cancel_probe(&mut self) {
        self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
    }

    /// Feeds one completed job outcome back. `probe` is whether that
    /// job was admitted via [`Admission::Probe`]. Returns `true` when
    /// this outcome trips the breaker open (from Closed or HalfOpen).
    pub fn on_result(&mut self, ok: bool, probe: bool, tick: u64) -> bool {
        match self.state {
            BreakerState::Closed => {
                if ok {
                    self.consecutive_failures = 0;
                    false
                } else {
                    self.consecutive_failures += 1;
                    if self.consecutive_failures >= self.config.trip_after {
                        self.trip(tick);
                        true
                    } else {
                        false
                    }
                }
            }
            BreakerState::HalfOpen => {
                if !probe {
                    // A straggler dispatched before the trip; it says
                    // nothing about recovery, so it moves no state.
                    return false;
                }
                self.probes_in_flight = self.probes_in_flight.saturating_sub(1);
                if ok {
                    self.probe_successes += 1;
                    if self.probe_successes >= self.config.probe_quota {
                        self.state = BreakerState::Closed;
                        self.consecutive_failures = 0;
                        self.probe_successes = 0;
                    }
                    false
                } else {
                    self.trip(tick);
                    true
                }
            }
            // Stragglers finishing while Open are already accounted
            // for by the trip that opened the breaker.
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self, tick: u64) {
        self.state = BreakerState::Open;
        self.opened_tick = tick;
        self.consecutive_failures = 0;
        self.probes_in_flight = 0;
        self.probe_successes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> BreakerConfig {
        BreakerConfig {
            trip_after: 2,
            cooldown_ticks: 4,
            probe_quota: 1,
        }
    }

    #[test]
    fn trips_only_on_consecutive_failures() {
        let mut b = CircuitBreaker::new(quick());
        assert!(!b.on_result(false, false, 0));
        assert!(!b.on_result(true, false, 1), "success resets the streak");
        assert!(!b.on_result(false, false, 2));
        assert!(
            b.on_result(false, false, 3),
            "second consecutive failure trips"
        );
        assert_eq!(b.state(), BreakerState::Open);
    }

    #[test]
    fn open_rejects_until_cooldown_then_probes() {
        let mut b = CircuitBreaker::new(quick());
        b.on_result(false, false, 0);
        b.on_result(false, false, 0);
        assert_eq!(b.admit(1), Admission::Reject);
        assert_eq!(b.admit(3), Admission::Reject);
        assert_eq!(b.admit(4), Admission::Probe, "cooldown elapsed at tick 4");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(4), Admission::Reject, "probe quota is 1");
    }

    #[test]
    fn probe_success_closes_and_probe_failure_reopens() {
        let mut recovered = CircuitBreaker::new(quick());
        recovered.on_result(false, false, 0);
        recovered.on_result(false, false, 0);
        assert_eq!(recovered.admit(10), Admission::Probe);
        assert!(!recovered.on_result(true, true, 11));
        assert_eq!(recovered.state(), BreakerState::Closed);

        let mut relapsed = CircuitBreaker::new(quick());
        relapsed.on_result(false, false, 0);
        relapsed.on_result(false, false, 0);
        assert_eq!(relapsed.admit(10), Admission::Probe);
        assert!(
            relapsed.on_result(false, true, 11),
            "probe failure is a trip"
        );
        assert_eq!(relapsed.state(), BreakerState::Open);
        assert_eq!(relapsed.admit(12), Admission::Reject, "cooldown restarts");
        assert_eq!(relapsed.admit(15), Admission::Probe);
    }

    #[test]
    fn stragglers_move_no_state_while_open_or_half_open() {
        let mut b = CircuitBreaker::new(quick());
        b.on_result(false, false, 0);
        b.on_result(false, false, 0);
        assert!(!b.on_result(false, false, 1), "straggler while open");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.admit(4), Admission::Probe);
        assert!(!b.on_result(false, false, 5), "straggler while half-open");
        assert_eq!(b.state(), BreakerState::HalfOpen);
    }

    #[test]
    fn cancelled_probe_frees_the_quota() {
        let mut b = CircuitBreaker::new(quick());
        b.on_result(false, false, 0);
        b.on_result(false, false, 0);
        assert_eq!(b.admit(4), Admission::Probe);
        assert_eq!(b.admit(4), Admission::Reject);
        b.cancel_probe();
        assert_eq!(b.admit(4), Admission::Probe, "slot reopened after cancel");
    }

    #[test]
    fn degenerate_config_is_clamped_sane() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            trip_after: 0,
            cooldown_ticks: 0,
            probe_quota: 0,
        });
        assert!(b.on_result(false, false, 0), "trip_after clamps to 1");
        assert_eq!(b.admit(0), Admission::Probe, "zero cooldown probes at once");
        assert!(!b.on_result(true, true, 0), "probe_quota clamps to 1");
        assert_eq!(b.state(), BreakerState::Closed);
    }
}

//! Deterministic token-bucket rate limiting.
//!
//! The bucket is clocked by the gateway's logical tick, never by wall
//! time, and holds its level in integer **millitokens** so refill
//! arithmetic is exact — no float drift, no platform-dependent
//! rounding. One admitted request costs [`TokenBucket::WHOLE_TOKEN`]
//! millitokens; fractional refill rates (e.g. one request every three
//! ticks) are expressed as `WHOLE_TOKEN / 3` millitokens per tick.

/// A token bucket clocked in logical ticks and denominated in
/// millitokens.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenBucket {
    capacity_milli: u64,
    refill_milli_per_tick: u64,
    level_milli: u64,
    last_refill_tick: u64,
}

impl TokenBucket {
    /// Millitokens in one whole token (the cost of one request).
    pub const WHOLE_TOKEN: u64 = 1000;

    /// A bucket that starts full at tick 0.
    #[must_use]
    pub fn new(capacity_milli: u64, refill_milli_per_tick: u64) -> TokenBucket {
        TokenBucket {
            capacity_milli,
            refill_milli_per_tick,
            level_milli: capacity_milli,
            last_refill_tick: 0,
        }
    }

    /// Credits refill for every tick elapsed since the last refill,
    /// saturating at capacity. Ticks never run backwards; a stale
    /// `tick` is a no-op rather than a drain.
    pub fn advance_to(&mut self, tick: u64) {
        if tick <= self.last_refill_tick {
            return;
        }
        let elapsed = tick - self.last_refill_tick;
        let credit = elapsed.saturating_mul(self.refill_milli_per_tick);
        self.level_milli = self
            .level_milli
            .saturating_add(credit)
            .min(self.capacity_milli);
        self.last_refill_tick = tick;
    }

    /// Takes `cost_milli` millitokens if available. Returns whether
    /// the request is within rate.
    pub fn try_take(&mut self, cost_milli: u64) -> bool {
        if self.level_milli >= cost_milli {
            self.level_milli -= cost_milli;
            true
        } else {
            false
        }
    }

    /// Current level in millitokens (after the last `advance_to`).
    #[must_use]
    pub fn level_milli(&self) -> u64 {
        self.level_milli
    }

    /// Configured capacity in millitokens.
    #[must_use]
    pub fn capacity_milli(&self) -> u64 {
        self.capacity_milli
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_full_and_spends_down() {
        let mut b = TokenBucket::new(2 * TokenBucket::WHOLE_TOKEN, 100);
        assert!(b.try_take(TokenBucket::WHOLE_TOKEN));
        assert!(b.try_take(TokenBucket::WHOLE_TOKEN));
        assert!(!b.try_take(TokenBucket::WHOLE_TOKEN));
        assert_eq!(b.level_milli(), 0);
    }

    #[test]
    fn refill_is_linear_and_saturates_at_capacity() {
        let mut b = TokenBucket::new(1000, 250);
        assert!(b.try_take(1000));
        b.advance_to(2);
        assert_eq!(b.level_milli(), 500);
        b.advance_to(10);
        assert_eq!(b.level_milli(), 1000, "refill must clamp at capacity");
    }

    #[test]
    fn stale_ticks_are_no_ops() {
        let mut b = TokenBucket::new(1000, 100);
        b.advance_to(5);
        assert!(b.try_take(400));
        let level = b.level_milli();
        b.advance_to(3);
        assert_eq!(b.level_milli(), level, "time must never run backwards");
        b.advance_to(5);
        assert_eq!(b.level_milli(), level, "same tick must not re-credit");
    }

    #[test]
    fn huge_gaps_never_overflow() {
        let mut b = TokenBucket::new(u64::MAX, u64::MAX / 2);
        b.advance_to(u64::MAX);
        assert_eq!(b.level_milli(), u64::MAX);
        assert!(b.try_take(u64::MAX));
        assert!(!b.try_take(1));
    }
}

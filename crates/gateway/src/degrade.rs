//! Brownout degradation policy.
//!
//! Under pressure the gateway prefers to *downgrade* work rather than
//! drop it: a calibration run at fewer sweep points still yields a
//! usable sensitivity estimate, while a shed request yields nothing.
//! The policy decides (a) when the queue is deep enough to brown out
//! and (b) how far to cut an entry's sweep resolution. Both are pure
//! integer arithmetic so brownout decisions are identical on every
//! machine and worker count.

use bios_core::catalog::CatalogEntry;

/// Whether a result was computed at full or reduced resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Quality {
    /// Full configured sweep resolution.
    Full,
    /// Reduced sweep resolution under brownout.
    Degraded,
}

impl Quality {
    /// Stable lowercase label for digests and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Quality::Full => "full",
            Quality::Degraded => "degraded",
        }
    }
}

/// When and how hard to brown out.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DegradationPolicy {
    /// Brownout trips when `queue_depth / queue_capacity` reaches
    /// `pressure_num / pressure_den`.
    pub pressure_num: usize,
    /// Denominator of the pressure watermark fraction.
    pub pressure_den: usize,
    /// Degraded sweep points = `full * sweep_num / sweep_den`…
    pub sweep_num: usize,
    /// Denominator of the sweep reduction fraction.
    pub sweep_den: usize,
    /// …but never fewer than this many points (a calibration line
    /// needs enough standards to fit).
    pub min_sweep_points: usize,
}

impl Default for DegradationPolicy {
    fn default() -> DegradationPolicy {
        DegradationPolicy {
            pressure_num: 3,
            pressure_den: 4,
            sweep_num: 1,
            sweep_den: 2,
            min_sweep_points: 7,
        }
    }
}

impl DegradationPolicy {
    /// Whether `queue_depth` of `queue_capacity` is past the brownout
    /// watermark.
    #[must_use]
    pub fn triggered(&self, queue_depth: usize, queue_capacity: usize) -> bool {
        if queue_capacity == 0 || self.pressure_den == 0 {
            return false;
        }
        queue_depth.saturating_mul(self.pressure_den)
            >= queue_capacity.saturating_mul(self.pressure_num)
    }

    /// Sweep points after degradation, floored at `min_sweep_points`
    /// and never *raised* above the full resolution.
    #[must_use]
    pub fn degraded_points(&self, full: usize) -> usize {
        if self.sweep_den == 0 {
            return full;
        }
        (full.saturating_mul(self.sweep_num) / self.sweep_den)
            .max(self.min_sweep_points)
            .min(full)
    }

    /// The degraded twin of `entry`: same chemistry and id, fewer
    /// sweep points. The changed sweep changes the entry's protocol
    /// fingerprint, so degraded and full runs never alias in the
    /// runtime's memo cache.
    #[must_use]
    pub fn degrade(&self, entry: &CatalogEntry) -> CatalogEntry {
        let points = self.degraded_points(entry.sweep_points());
        entry.clone().with_sweep_points(points)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_core::catalog::our_glucose_sensor;

    #[test]
    fn watermark_uses_integer_arithmetic() {
        let p = DegradationPolicy::default();
        assert!(!p.triggered(0, 8));
        assert!(!p.triggered(5, 8), "5/8 < 3/4");
        assert!(p.triggered(6, 8), "6/8 = 3/4 trips");
        assert!(p.triggered(8, 8));
        assert!(!p.triggered(100, 0), "zero capacity never browns out");
    }

    #[test]
    fn degraded_points_floor_and_never_exceed_full() {
        let p = DegradationPolicy::default();
        assert_eq!(p.degraded_points(25), 12);
        assert_eq!(p.degraded_points(8), 7, "floored at min_sweep_points");
        assert_eq!(p.degraded_points(5), 5, "never raised above full");
    }

    #[test]
    fn degraded_entry_changes_fingerprint_and_shrinks_workload() {
        let p = DegradationPolicy::default();
        let full = our_glucose_sensor();
        let thin = p.degrade(&full);
        assert_eq!(thin.id(), full.id());
        assert_ne!(
            thin.protocol_fingerprint(),
            full.protocol_fingerprint(),
            "degraded runs must not alias full runs in the memo cache"
        );
        assert!(thin.calibration_workload() < full.calibration_workload());
    }
}

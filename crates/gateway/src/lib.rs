//! # bios-gateway — the fleet runtime's overload-robust front door
//!
//! [`bios_runtime::Runtime`] executes whatever fleet it is handed; when
//! arrivals outrun capacity its queue grows without bound and every job
//! gets slower together. This crate puts an admission layer in front of
//! it, built from four cooperating mechanisms:
//!
//! * **Admission control** — a bounded intake queue plus per-tenant
//!   token-bucket rate limiting. Overflow is rejected *explicitly*
//!   ([`Rejected::QueueFull`], [`Rejected::RateLimited`]) instead of
//!   silently growing the queue.
//! * **Deadline propagation** — each [`Request`] carries a deadline
//!   budget in logical ticks. Time spent queueing is charged against
//!   it, and a request whose remaining budget cannot cover even a
//!   degraded run is shed *before* it burns a worker slot
//!   ([`Rejected::DeadlineShed`]).
//! * **Circuit breakers** — a per-sensor-family breaker watches job
//!   outcomes and cuts a persistently failing chemistry off
//!   ([`Rejected::BreakerOpen`]), probing deterministically for
//!   recovery after a cooldown.
//! * **Brownout degradation** — under queue pressure the gateway
//!   downgrades work instead of dropping it: entries are re-run at
//!   reduced sweep resolution and the result is tagged
//!   [`Quality::Degraded`].
//!
//! ## Determinism
//!
//! The gateway is clocked by a **logical tick**, never wall time. A
//! request's service time is derived from its
//! [`CatalogEntry::calibration_workload`] estimate, arrivals carry
//! explicit ticks, and every shed/trip/brownout decision is a pure
//! function of (config, arrival trace, tick). Jobs dispatched in the
//! same tick execute concurrently on the runtime's worker pool — job
//! *outcomes* are pure functions of (entry, seed, plan), so physical
//! parallelism never leaks into the decisions. The full
//! [`GatewayReport::digest`] is byte-identical at any worker count.
//!
//! ```
//! use bios_core::catalog;
//! use bios_gateway::{Gateway, GatewayConfig, Request};
//! use bios_runtime::{Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig { workers: 2, ..RuntimeConfig::default() });
//! let gateway = Gateway::new(GatewayConfig::default(), runtime);
//! let requests: Vec<Request> = (0..8)
//!     .map(|i| Request::new(i, "ward-3", catalog::our_glucose_sensor(), i, i, 64))
//!     .collect();
//! let report = gateway.run(&requests);
//! assert!(report.clean_drain());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::time::Duration;

use bios_core::catalog::CatalogEntry;
use bios_runtime::{Fleet, JobResult, Runtime};

pub mod breaker;
pub mod bucket;
pub mod degrade;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use bucket::TokenBucket;
pub use degrade::{DegradationPolicy, Quality};

/// One calibration request presented at the gateway's front door.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the outcome and digest.
    pub id: u64,
    /// Tenant whose token bucket this request draws from.
    pub tenant: String,
    /// The catalog entry to calibrate.
    pub entry: CatalogEntry,
    /// Noise seed for the run.
    pub seed: u64,
    /// Logical tick the request arrives at the gateway.
    pub arrival_tick: u64,
    /// Deadline budget in logical ticks, counted from arrival.
    pub deadline_ticks: u64,
}

impl Request {
    /// A request with every field explicit.
    #[must_use]
    pub fn new(
        id: u64,
        tenant: &str,
        entry: CatalogEntry,
        seed: u64,
        arrival_tick: u64,
        deadline_ticks: u64,
    ) -> Request {
        Request {
            id,
            tenant: tenant.to_string(),
            entry,
            seed,
            arrival_tick,
            deadline_ticks,
        }
    }

    /// The sensor family the request's breaker is keyed on: the
    /// catalog-id prefix before `/` (`"glucose/ours"` → `"glucose"`).
    #[must_use]
    pub fn family(&self) -> &str {
        family_of(&self.entry)
    }
}

fn family_of(entry: &CatalogEntry) -> &str {
    let id = entry.id();
    id.split('/').next().unwrap_or(id)
}

/// How a job outcome counts toward its family's breaker. `Some(true)`
/// is a success, `Some(false)` a breaker-relevant failure, `None`
/// neutral. Calibration errors, panics, deadline kills, and
/// non-finite quarantines indicate a sick family; exhausted-retry
/// transients and budget rejections say nothing about its chemistry,
/// so they move no breaker state.
fn breaker_verdict(result: &JobResult) -> Option<bool> {
    use bios_runtime::JobError;
    match &result.outcome {
        Ok(_) => Some(true),
        Err(JobError::Transient { .. } | JobError::Budget { .. }) => None,
        Err(
            JobError::Calibration(_)
            | JobError::Panicked(_)
            | JobError::Deadline
            | JobError::NonFinite,
        ) => Some(false),
    }
}

/// Why the gateway refused a request. Every rejection is explicit and
/// counted; nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded intake queue was full at arrival.
    QueueFull,
    /// The tenant's token bucket was empty at arrival.
    RateLimited,
    /// The sensor family's circuit breaker was open (or its half-open
    /// probe quota was in use).
    BreakerOpen,
    /// The remaining deadline budget at dispatch could not cover even
    /// a degraded run.
    DeadlineShed,
}

impl Rejected {
    /// Stable lowercase label for digests and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Rejected::QueueFull => "queue-full",
            Rejected::RateLimited => "rate-limited",
            Rejected::BreakerOpen => "breaker-open",
            Rejected::DeadlineShed => "deadline-shed",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the gateway ultimately did with one request.
#[derive(Debug, Clone)]
pub enum Disposition {
    /// The request ran on the runtime.
    Executed {
        /// Full or browned-out resolution.
        quality: Quality,
        /// Tick the job left the queue for a worker.
        dispatched_tick: u64,
        /// Tick the job's logical service time elapsed.
        done_tick: u64,
        /// The runtime's result for the job.
        result: JobResult,
    },
    /// The request was refused; the payload says where.
    Rejected(Rejected),
}

/// One request's journey through the gateway.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The caller-chosen request id.
    pub id: u64,
    /// The tenant the request billed against.
    pub tenant: String,
    /// Catalog id of the requested sensor.
    pub sensor: String,
    /// Noise seed of the requested run.
    pub seed: u64,
    /// Tick the request arrived.
    pub arrival_tick: u64,
    /// What happened to it.
    pub disposition: Disposition,
}

impl RequestOutcome {
    /// Whether the request executed (at any quality).
    #[must_use]
    pub fn executed(&self) -> bool {
        matches!(self.disposition, Disposition::Executed { .. })
    }

    /// The outcome's line in the canonical gateway digest (no trailing
    /// newline). Wall-clock fields never appear, so the digest is
    /// byte-identical at any worker count.
    #[must_use]
    pub fn digest_line(&self) -> String {
        match &self.disposition {
            Disposition::Executed {
                quality,
                dispatched_tick,
                done_tick,
                result,
            } => format!(
                "req {:04} {} t{}->{}->{} {} {}",
                self.id,
                self.tenant,
                self.arrival_tick,
                dispatched_tick,
                done_tick,
                quality.label(),
                result.digest_line()
            ),
            Disposition::Rejected(r) => format!(
                "req {:04} {} t{} rejected {} {} seed={}",
                self.id, self.tenant, self.arrival_tick, r, self.sensor, self.seed
            ),
        }
    }
}

/// The six overload counters, mirrored into the runtime's
/// [`bios_runtime::MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayCounters {
    /// Requests rejected because the intake queue was full.
    pub admission_rejected: u64,
    /// Requests rejected by a tenant's token bucket.
    pub rate_limited: u64,
    /// Closed→Open and HalfOpen→Open breaker transitions.
    pub breaker_trips: u64,
    /// Requests admitted as half-open recovery probes.
    pub breaker_half_open_probes: u64,
    /// Requests executed at degraded resolution.
    pub browned_out: u64,
    /// Requests shed at dispatch for an exhausted deadline budget.
    pub deadline_shed: u64,
}

impl GatewayCounters {
    /// Total requests refused outright: queue overflow, rate limiting,
    /// and deadline sheds. Breaker rejections are per-request outcomes
    /// (`breaker_trips` counts state transitions, not refusals), and
    /// brownouts still execute.
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.admission_rejected + self.rate_limited + self.deadline_shed
    }
}

impl fmt::Display for GatewayCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission_rejected={} rate_limited={} breaker_trips={} breaker_half_open_probes={} browned_out={} deadline_shed={}",
            self.admission_rejected,
            self.rate_limited,
            self.breaker_trips,
            self.breaker_half_open_probes,
            self.browned_out,
            self.deadline_shed
        )
    }
}

/// Everything one gateway run produced.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// Per-request outcomes, in the caller's request order.
    pub outcomes: Vec<RequestOutcome>,
    /// Logical tick the last in-flight job completed.
    pub drained_tick: u64,
    /// The overload counters for this run.
    pub counters: GatewayCounters,
}

impl GatewayReport {
    /// The canonical run digest: one [`RequestOutcome::digest_line`]
    /// per request in request order, then the counters. Contains no
    /// wall-clock fields, so equal configurations produce byte-equal
    /// digests at any worker count.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.digest_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "drained_tick={} {}\n",
            self.drained_tick, self.counters
        ));
        out
    }

    /// Whether every request reached a terminal outcome — executed or
    /// explicitly rejected — with nothing lost in the queue.
    #[must_use]
    pub fn clean_drain(&self) -> bool {
        let executed = self.outcomes.iter().filter(|o| o.executed()).count() as u64;
        let rejected = self.counters.admission_rejected
            + self.counters.rate_limited
            + self.counters.deadline_shed
            + self
                .outcomes
                .iter()
                .filter(|o| matches!(o.disposition, Disposition::Rejected(Rejected::BreakerOpen)))
                .count() as u64;
        executed + rejected == self.outcomes.len() as u64
    }

    /// Ids of requests that executed (any quality), in request order.
    #[must_use]
    pub fn executed_ids(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| o.executed())
            .map(|o| o.id)
            .collect()
    }

    /// Ids of requests rejected with the given reason, in request
    /// order.
    #[must_use]
    pub fn rejected_ids(&self, reason: Rejected) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.disposition, Disposition::Rejected(r) if r == reason))
            .map(|o| o.id)
            .collect()
    }

    /// Ids of requests that executed at degraded quality, in request
    /// order.
    #[must_use]
    pub fn browned_out_ids(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Executed {
                        quality: Quality::Degraded,
                        ..
                    }
                )
            })
            .map(|o| o.id)
            .collect()
    }
}

/// Gateway construction options. All time-like fields are logical
/// ticks except [`GatewayConfig::tick_wall`], which maps ticks onto
/// the runtime watchdog's wall-clock deadline as an execution safety
/// net — it is never an input to any admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayConfig {
    /// Bounded intake queue capacity; arrivals past it are rejected
    /// with [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Jobs the gateway dispatches concurrently per tick.
    pub service_slots: usize,
    /// Workload units ([`CatalogEntry::calibration_workload`] samples)
    /// one logical tick of service represents.
    pub work_units_per_tick: u64,
    /// Deadline budget assigned by [`Gateway::trace_from_plan`] when
    /// the caller does not choose one.
    pub default_deadline_ticks: u64,
    /// Per-tenant token-bucket capacity in millitokens
    /// ([`TokenBucket::WHOLE_TOKEN`] per request).
    pub bucket_capacity_milli: u64,
    /// Per-tenant refill rate in millitokens per tick.
    pub bucket_refill_milli_per_tick: u64,
    /// Per-sensor-family circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Brownout watermark and resolution cut.
    pub degradation: DegradationPolicy,
    /// Wall-clock length of one logical tick for the runtime watchdog
    /// handoff. [`Duration::ZERO`] (the default) leaves the watchdog
    /// alone.
    pub tick_wall: Duration,
}

impl Default for GatewayConfig {
    /// A queue of 32, four service slots, 256 work units per tick
    /// (one full-resolution amperometric calibration ≈ 4 ticks), a
    /// 64-tick default deadline, buckets of 8 tokens refilling 2 per
    /// tick, and default breaker/brownout tuning.
    fn default() -> GatewayConfig {
        GatewayConfig {
            queue_capacity: 32,
            service_slots: 4,
            work_units_per_tick: 256,
            default_deadline_ticks: 64,
            bucket_capacity_milli: 8 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 2 * TokenBucket::WHOLE_TOKEN,
            breaker: BreakerConfig::default(),
            degradation: DegradationPolicy::default(),
            tick_wall: Duration::ZERO,
        }
    }
}

impl GatewayConfig {
    /// Defaults overridden from the environment:
    ///
    /// * `BIOS_GATEWAY_QPS` — whole tokens refilled per tick, > 0.
    /// * `BIOS_BREAKER_THRESHOLD` — consecutive failures to trip, > 0.
    ///
    /// Malformed values produce one deterministic warning line on
    /// stderr (via [`bios_runtime::parse_env_value`]) and keep the
    /// default, same as [`bios_runtime::RuntimeConfig::from_env`].
    #[must_use]
    pub fn from_env() -> GatewayConfig {
        let mut config = GatewayConfig::default();
        if let Ok(raw) = std::env::var("BIOS_GATEWAY_QPS") {
            if let Some(qps) =
                bios_runtime::parse_env_value::<u64>("BIOS_GATEWAY_QPS", &raw, "a positive integer")
                    .filter(|&q| q > 0)
            {
                config.bucket_refill_milli_per_tick = qps.saturating_mul(TokenBucket::WHOLE_TOKEN);
                config.bucket_capacity_milli = config
                    .bucket_capacity_milli
                    .max(config.bucket_refill_milli_per_tick);
            }
        }
        if let Ok(raw) = std::env::var("BIOS_BREAKER_THRESHOLD") {
            if let Some(t) = bios_runtime::parse_env_value::<u32>(
                "BIOS_BREAKER_THRESHOLD",
                &raw,
                "a positive integer",
            )
            .filter(|&t| t > 0)
            {
                config.breaker.trip_after = t;
            }
        }
        config
    }
}

/// A job the gateway has dispatched whose logical service time has not
/// yet elapsed.
#[derive(Debug)]
struct InFlight {
    idx: usize,
    dispatched_tick: u64,
    done_tick: u64,
    probe: bool,
    quality: Quality,
    result: JobResult,
}

/// The overload-robust front door. Owns a [`Runtime`] and feeds it
/// per-tick batches of admitted work.
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    runtime: Runtime,
}

impl Gateway {
    /// A gateway in front of `runtime`. When
    /// [`GatewayConfig::tick_wall`] is non-zero the runtime's watchdog
    /// deadline is derived from it (ticks × wall-per-tick ×
    /// default deadline) purely as a hang safety net.
    #[must_use]
    pub fn new(config: GatewayConfig, runtime: Runtime) -> Gateway {
        Gateway { config, runtime }
    }

    /// The configuration the gateway was built with.
    #[must_use]
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// A snapshot of the owned runtime's metrics, including the six
    /// gateway overload counters this gateway has recorded into it.
    #[must_use]
    pub fn metrics(&self) -> bios_runtime::MetricsSnapshot {
        self.runtime.metrics_handle().snapshot()
    }

    /// Logical service ticks for `workload` sample units, always ≥ 1.
    #[must_use]
    pub fn service_ticks(&self, workload: u64) -> u64 {
        workload
            .div_ceil(self.config.work_units_per_tick.max(1))
            .max(1)
    }

    /// Runs a trace of requests to completion and reports every
    /// outcome. The trace need not be sorted; arrivals are processed
    /// in (arrival tick, trace order) order.
    #[must_use]
    pub fn run(&self, requests: &[Request]) -> GatewayReport {
        let metrics = self.runtime.metrics_handle();
        let mut outcomes: Vec<Option<Disposition>> = Vec::new();
        outcomes.resize_with(requests.len(), || None);
        let mut counters = GatewayCounters::default();

        // Arrival order: (arrival_tick, trace position), stable.
        let mut order: Vec<usize> = (0..requests.len()).collect();
        order.sort_by_key(|&i| requests[i].arrival_tick);

        let mut buckets: BTreeMap<&str, TokenBucket> = BTreeMap::new();
        let mut breakers: BTreeMap<&str, CircuitBreaker> = BTreeMap::new();
        let mut probes: BTreeSet<usize> = BTreeSet::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        let mut running: Vec<InFlight> = Vec::new();

        let slots = self.config.service_slots.max(1);
        let mut next_arrival = 0usize;
        let mut tick = match order.first() {
            Some(&i) => requests[i].arrival_tick,
            None => {
                return GatewayReport {
                    outcomes: Vec::new(),
                    drained_tick: 0,
                    counters,
                }
            }
        };
        let mut drained_tick = tick;

        loop {
            // 1. Completions due at this tick, in (done tick, dispatch
            // tick, trace position) order, feed the breakers.
            let mut due: Vec<InFlight> = Vec::new();
            let mut still: Vec<InFlight> = Vec::new();
            for r in running.drain(..) {
                if r.done_tick <= tick {
                    due.push(r);
                } else {
                    still.push(r);
                }
            }
            running = still;
            due.sort_by_key(|r| (r.done_tick, r.dispatched_tick, r.idx));
            for fin in due {
                let req = &requests[fin.idx];
                let breaker = breakers
                    .entry(req.family())
                    .or_insert_with(|| CircuitBreaker::new(self.config.breaker));
                match breaker_verdict(&fin.result) {
                    Some(ok) if breaker.on_result(ok, fin.probe, tick) => {
                        counters.breaker_trips += 1;
                        metrics.record_breaker_trip();
                    }
                    Some(_) => {}
                    None if fin.probe => breaker.cancel_probe(),
                    None => {}
                }
                drained_tick = drained_tick.max(fin.done_tick);
                outcomes[fin.idx] = Some(Disposition::Executed {
                    quality: fin.quality,
                    dispatched_tick: fin.dispatched_tick,
                    done_tick: fin.done_tick,
                    result: fin.result,
                });
            }

            // 2. Arrivals at this tick, in trace order: rate limit,
            // then queue capacity, then the family breaker.
            while next_arrival < order.len() && requests[order[next_arrival]].arrival_tick <= tick {
                let idx = order[next_arrival];
                next_arrival += 1;
                let req = &requests[idx];
                let bucket = buckets.entry(req.tenant.as_str()).or_insert_with(|| {
                    TokenBucket::new(
                        self.config.bucket_capacity_milli,
                        self.config.bucket_refill_milli_per_tick,
                    )
                });
                bucket.advance_to(tick);
                if !bucket.try_take(TokenBucket::WHOLE_TOKEN) {
                    counters.rate_limited += 1;
                    metrics.record_rate_limited();
                    outcomes[idx] = Some(Disposition::Rejected(Rejected::RateLimited));
                    continue;
                }
                if queue.len() >= self.config.queue_capacity.max(1) {
                    counters.admission_rejected += 1;
                    metrics.record_admission_rejected();
                    outcomes[idx] = Some(Disposition::Rejected(Rejected::QueueFull));
                    continue;
                }
                let breaker = breakers
                    .entry(req.family())
                    .or_insert_with(|| CircuitBreaker::new(self.config.breaker));
                match breaker.admit(tick) {
                    Admission::Reject => {
                        outcomes[idx] = Some(Disposition::Rejected(Rejected::BreakerOpen));
                        continue;
                    }
                    Admission::Probe => {
                        counters.breaker_half_open_probes += 1;
                        metrics.record_breaker_half_open_probe();
                        probes.insert(idx);
                    }
                    Admission::Admit => {}
                }
                queue.push_back(idx);
            }

            // 3. Dispatch into free slots: charge queueing time against
            // the deadline budget, brown out under pressure, shed what
            // cannot finish even degraded.
            let mut batch: Vec<(usize, CatalogEntry, Quality, u64)> = Vec::new();
            while batch.len() + running.len() < slots {
                let Some(idx) = queue.pop_front() else { break };
                let req = &requests[idx];
                let waited = tick.saturating_sub(req.arrival_tick);
                let remaining = req.deadline_ticks.saturating_sub(waited);
                let full_ticks = self.service_ticks(req.entry.calibration_workload());
                let pressured = self
                    .config
                    .degradation
                    .triggered(queue.len(), self.config.queue_capacity);
                let fits_full = full_ticks <= remaining;
                if fits_full && !pressured {
                    batch.push((idx, req.entry.clone(), Quality::Full, full_ticks));
                    continue;
                }
                let thin = self.config.degradation.degrade(&req.entry);
                let thin_ticks = self.service_ticks(thin.calibration_workload());
                if thin_ticks <= remaining && thin_ticks < full_ticks {
                    counters.browned_out += 1;
                    metrics.record_browned_out();
                    batch.push((idx, thin, Quality::Degraded, thin_ticks));
                } else if fits_full {
                    // Pressured, but degradation cannot shrink this
                    // entry: run it at full resolution anyway.
                    batch.push((idx, req.entry.clone(), Quality::Full, full_ticks));
                } else {
                    counters.deadline_shed += 1;
                    metrics.record_deadline_shed();
                    if probes.remove(&idx) {
                        if let Some(b) = breakers.get_mut(req.family()) {
                            b.cancel_probe();
                        }
                    }
                    outcomes[idx] = Some(Disposition::Rejected(Rejected::DeadlineShed));
                }
            }

            // 4. Execute the tick's batch as one fleet on the worker
            // pool. Outcomes are pure functions of (entry, seed, plan),
            // so physical parallelism cannot leak into decisions.
            if !batch.is_empty() {
                let mut builder = Fleet::builder("gateway-tick");
                for (idx, entry, _, _) in &batch {
                    builder = builder.job(entry.clone(), requests[*idx].seed);
                }
                let report = self.runtime.run(&builder.build());
                for (result, (idx, _, quality, serv)) in report.results.into_iter().zip(batch) {
                    running.push(InFlight {
                        idx,
                        dispatched_tick: tick,
                        done_tick: tick + serv,
                        probe: probes.remove(&idx),
                        quality,
                        result,
                    });
                }
            }

            // 5. Advance to the next event, or stop when fully drained.
            let upcoming_arrival = order
                .get(next_arrival)
                .map(|&i| requests[i].arrival_tick.max(tick + 1));
            let upcoming_done = running.iter().map(|r| r.done_tick).min();
            tick = match (upcoming_arrival, upcoming_done) {
                (Some(a), Some(d)) => a.min(d),
                (Some(a), None) => a,
                (None, Some(d)) => d,
                (None, None) => {
                    if queue.is_empty() {
                        break;
                    }
                    // Queue still holds work but nothing is running and
                    // no arrivals remain: loop again at the next tick to
                    // dispatch it.
                    tick + 1
                }
            };
        }

        let outcomes = requests
            .iter()
            .zip(outcomes)
            .map(|(req, slot)| RequestOutcome {
                id: req.id,
                tenant: req.tenant.clone(),
                sensor: req.entry.id().to_string(),
                seed: req.seed,
                arrival_tick: req.arrival_tick,
                // Every request is terminal by construction: arrivals
                // either reject or enqueue, and the loop only exits
                // once queue and running set are empty.
                disposition: slot.unwrap_or(Disposition::Rejected(Rejected::QueueFull)),
            })
            .collect();

        GatewayReport {
            outcomes,
            drained_tick,
            counters,
        }
    }

    /// Builds an arrival trace from a fault plan: one request per
    /// (entry, seed) pair, arrival ticks drawn from
    /// [`bios_faults::FaultPlan::arrival_ticks`] so a
    /// [`bios_faults::FaultKind::TrafficBurst`] spec compresses the
    /// trace into bursts.
    #[must_use]
    pub fn trace_from_plan(
        &self,
        plan: &bios_faults::FaultPlan,
        pairs: &[(CatalogEntry, u64)],
        tenant: &str,
        base_interval_ticks: u64,
    ) -> Vec<Request> {
        let ticks = plan.arrival_ticks(pairs.len(), base_interval_ticks);
        pairs
            .iter()
            .zip(ticks)
            .enumerate()
            .map(|(i, ((entry, seed), arrival))| {
                Request::new(
                    i as u64,
                    tenant,
                    entry.clone(),
                    *seed,
                    arrival,
                    self.config.default_deadline_ticks,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_core::catalog::{our_glucose_sensor, our_lactate_sensor};
    use bios_runtime::RuntimeConfig;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        })
    }

    #[test]
    fn a_gentle_trickle_all_executes_at_full_quality() {
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request::new(i, "icu", our_glucose_sensor(), i, i * 8, 64))
            .collect();
        let report = gw.run(&reqs);
        assert!(report.clean_drain());
        assert_eq!(report.executed_ids(), vec![0, 1, 2, 3]);
        assert!(report.browned_out_ids().is_empty());
        assert_eq!(report.counters, GatewayCounters::default());
    }

    #[test]
    fn a_burst_past_the_bucket_is_rate_limited() {
        let config = GatewayConfig {
            bucket_capacity_milli: 2 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 0,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        let reqs: Vec<Request> = (0..5)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), i, 0, 64))
            .collect();
        let report = gw.run(&reqs);
        assert_eq!(report.executed_ids(), vec![0, 1]);
        assert_eq!(report.rejected_ids(Rejected::RateLimited), vec![2, 3, 4]);
        assert_eq!(report.counters.rate_limited, 3);
        assert!(report.clean_drain());
    }

    #[test]
    fn a_full_queue_rejects_explicitly() {
        let config = GatewayConfig {
            queue_capacity: 2,
            service_slots: 1,
            bucket_capacity_milli: 100 * TokenBucket::WHOLE_TOKEN,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        // All at tick 0: slot takes one, queue holds two, rest bounce.
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), i, 0, 640))
            .collect();
        let report = gw.run(&reqs);
        assert!(report.counters.admission_rejected >= 1);
        assert!(!report.rejected_ids(Rejected::QueueFull).is_empty());
        assert!(report.clean_drain());
    }

    #[test]
    fn hopeless_deadlines_are_shed_before_burning_a_worker() {
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        // Deadline of 1 tick cannot cover even a degraded glucose run
        // (≈ 2 ticks at 256 units/tick).
        let reqs = vec![Request::new(7, "er", our_glucose_sensor(), 1, 0, 1)];
        let report = gw.run(&reqs);
        assert_eq!(report.rejected_ids(Rejected::DeadlineShed), vec![7]);
        assert_eq!(report.counters.deadline_shed, 1);
        assert!(report.clean_drain());
    }

    #[test]
    fn families_are_isolated_by_their_breakers() {
        // Two sweep points are below the linear-range detector's
        // three-standard minimum, so every run of this entry fails
        // with a deterministic calibration error.
        let bad = our_lactate_sensor().with_sweep_points(2);
        let config = GatewayConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ticks: 1000,
                probe_quota: 1,
            },
            bucket_capacity_milli: 100 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 100 * TokenBucket::WHOLE_TOKEN,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        let mut reqs: Vec<Request> = (0..4)
            .map(|i| Request::new(i, "lab", bad.clone(), i, i * 4, 64))
            .collect();
        reqs.extend((4..8).map(|i| Request::new(i, "lab", our_glucose_sensor(), i, 64 + i, 64)));
        let report = gw.run(&reqs);
        assert!(report.counters.breaker_trips >= 1, "lactate family trips");
        assert!(
            !report.rejected_ids(Rejected::BreakerOpen).is_empty(),
            "later lactate requests bounce off the open breaker"
        );
        assert_eq!(
            report.executed_ids().iter().filter(|&&i| i >= 4).count(),
            4,
            "the glucose family sails through untouched"
        );
    }

    #[test]
    fn digest_is_identical_across_worker_counts() {
        let reqs: Vec<Request> = (0..12)
            .map(|i| {
                Request::new(
                    i,
                    if i % 2 == 0 { "a" } else { "b" },
                    our_glucose_sensor(),
                    i,
                    i / 3,
                    64,
                )
            })
            .collect();
        let digests: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let rt = Runtime::new(RuntimeConfig {
                    workers: w,
                    ..RuntimeConfig::default()
                });
                Gateway::new(GatewayConfig::default(), rt)
                    .run(&reqs)
                    .digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn counters_mirror_into_the_runtime_metrics_snapshot() {
        let rt = runtime();
        let config = GatewayConfig {
            bucket_capacity_milli: TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 0,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, rt);
        let reqs: Vec<Request> = (0..3)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), 0, 0, 64))
            .collect();
        let report = gw.run(&reqs);
        assert_eq!(report.counters.rate_limited, 2);
        let snap = gw.metrics();
        assert_eq!(snap.rate_limited, 2, "counters mirror runtime-side");
        assert_eq!(snap.admission_rejected, 0);
    }

    #[test]
    fn from_env_reads_gateway_knobs_with_warnings() {
        // Env-var tests share a process; mutate distinct vars only.
        std::env::set_var("BIOS_GATEWAY_QPS", "5");
        std::env::set_var("BIOS_BREAKER_THRESHOLD", "9");
        let c = GatewayConfig::from_env();
        assert_eq!(c.bucket_refill_milli_per_tick, 5 * TokenBucket::WHOLE_TOKEN);
        assert_eq!(c.breaker.trip_after, 9);
        std::env::set_var("BIOS_GATEWAY_QPS", "fast");
        std::env::set_var("BIOS_BREAKER_THRESHOLD", "0");
        let d = GatewayConfig::from_env();
        assert_eq!(
            d.bucket_refill_milli_per_tick,
            GatewayConfig::default().bucket_refill_milli_per_tick,
            "malformed qps keeps the default"
        );
        assert_eq!(
            d.breaker.trip_after,
            GatewayConfig::default().breaker.trip_after,
            "zero threshold keeps the default"
        );
        std::env::remove_var("BIOS_GATEWAY_QPS");
        std::env::remove_var("BIOS_BREAKER_THRESHOLD");
    }

    #[test]
    fn trace_from_plan_matches_arrival_ticks() {
        use bios_faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::builder("burst", 11)
            .spec(FaultKind::TrafficBurst, 0.5, 1.0)
            .build();
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let pairs: Vec<(CatalogEntry, u64)> = (0..6).map(|s| (our_glucose_sensor(), s)).collect();
        let trace = gw.trace_from_plan(&plan, &pairs, "ward", 3);
        let expect = plan.arrival_ticks(6, 3);
        assert_eq!(
            trace.iter().map(|r| r.arrival_tick).collect::<Vec<_>>(),
            expect
        );
        assert!(trace.iter().all(|r| r.deadline_ticks == 64));
    }
}

//! # bios-gateway — the fleet runtime's overload-robust front door
//!
//! [`bios_runtime::Runtime`] executes whatever fleet it is handed; when
//! arrivals outrun capacity its queue grows without bound and every job
//! gets slower together. This crate puts an admission layer in front of
//! it, built from four cooperating mechanisms:
//!
//! * **Admission control** — a bounded intake queue plus per-tenant
//!   token-bucket rate limiting. Overflow is rejected *explicitly*
//!   ([`Rejected::QueueFull`], [`Rejected::RateLimited`]) instead of
//!   silently growing the queue.
//! * **Deadline propagation** — each [`Request`] carries a deadline
//!   budget in logical ticks. Time spent queueing is charged against
//!   it, and a request whose remaining budget cannot cover even a
//!   degraded run is shed *before* it burns a worker slot
//!   ([`Rejected::DeadlineShed`]).
//! * **Circuit breakers** — a per-sensor-family breaker watches job
//!   outcomes and cuts a persistently failing chemistry off
//!   ([`Rejected::BreakerOpen`]), probing deterministically for
//!   recovery after a cooldown.
//! * **Brownout degradation** — under queue pressure the gateway
//!   downgrades work instead of dropping it: entries are re-run at
//!   reduced sweep resolution and the result is tagged
//!   [`Quality::Degraded`].
//!
//! ## Determinism
//!
//! The gateway is clocked by a **logical tick**, never wall time. A
//! request's service time is derived from its
//! [`CatalogEntry::calibration_workload`] estimate, arrivals carry
//! explicit ticks, and every shed/trip/brownout decision is a pure
//! function of (config, arrival trace, tick). Jobs dispatched in the
//! same tick execute concurrently on the runtime's worker pool — job
//! *outcomes* are pure functions of (entry, seed, plan), so physical
//! parallelism never leaks into the decisions. The full
//! [`GatewayReport::digest`] is byte-identical at any worker count.
//!
//! ```
//! use bios_core::catalog;
//! use bios_gateway::{Gateway, GatewayConfig, Request};
//! use bios_runtime::{Runtime, RuntimeConfig};
//!
//! let runtime = Runtime::new(RuntimeConfig { workers: 2, ..RuntimeConfig::default() });
//! let gateway = Gateway::new(GatewayConfig::default(), runtime);
//! let requests: Vec<Request> = (0..8)
//!     .map(|i| Request::new(i, "ward-3", catalog::our_glucose_sensor(), i, i, 64))
//!     .collect();
//! let report = gateway.run(&requests);
//! assert!(report.clean_drain());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

use bios_core::catalog::CatalogEntry;
use bios_runtime::{JobResult, Runtime};

pub mod breaker;
pub mod bucket;
pub mod degrade;
mod session;

pub use breaker::{Admission, BreakerConfig, BreakerState, CircuitBreaker};
pub use bucket::TokenBucket;
pub use degrade::{DegradationPolicy, Quality};
pub use session::GatewaySession;

/// Scheduling class of a request.
///
/// [`Priority::Recalibration`] is the maintenance class used by the
/// streaming layer for drift-triggered re-calibrations. It bypasses
/// tenant rate limiting (a patient whose sensor has drifted must not
/// wait behind their own routine traffic), is drained ahead of routine
/// work at dispatch, and is **never browned out** — a degraded sweep
/// would corrupt the very calibration epoch it is meant to restore.
/// Recalibrations remain subject to queue capacity and the family
/// circuit breaker: a sick chemistry stays cut off.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, PartialOrd, Ord)]
pub enum Priority {
    /// Normal request class; full admission pipeline applies.
    #[default]
    Routine,
    /// Drift-recovery class: no rate limit, head-of-line dispatch,
    /// never degraded.
    Recalibration,
}

impl Priority {
    /// Stable lowercase label for digests and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Priority::Routine => "routine",
            Priority::Recalibration => "recal",
        }
    }
}

/// One calibration request presented at the gateway's front door.
#[derive(Debug, Clone)]
pub struct Request {
    /// Caller-chosen id, echoed in the outcome and digest.
    pub id: u64,
    /// Tenant whose token bucket this request draws from.
    pub tenant: String,
    /// The catalog entry to calibrate.
    pub entry: CatalogEntry,
    /// Noise seed for the run.
    pub seed: u64,
    /// Logical tick the request arrives at the gateway.
    pub arrival_tick: u64,
    /// Deadline budget in logical ticks, counted from arrival.
    pub deadline_ticks: u64,
    /// Scheduling class; [`Priority::Routine`] unless overridden with
    /// [`Request::with_priority`].
    pub priority: Priority,
}

impl Request {
    /// A routine-priority request with every other field explicit.
    #[must_use]
    pub fn new(
        id: u64,
        tenant: &str,
        entry: CatalogEntry,
        seed: u64,
        arrival_tick: u64,
        deadline_ticks: u64,
    ) -> Request {
        Request {
            id,
            tenant: tenant.to_string(),
            entry,
            seed,
            arrival_tick,
            deadline_ticks,
            priority: Priority::Routine,
        }
    }

    /// The same request in a different scheduling class.
    #[must_use]
    pub fn with_priority(mut self, priority: Priority) -> Request {
        self.priority = priority;
        self
    }

    /// Whether this request is in the recalibration class.
    #[must_use]
    pub fn is_recalibration(&self) -> bool {
        self.priority == Priority::Recalibration
    }

    /// The sensor family the request's breaker is keyed on: the
    /// catalog-id prefix before `/` (`"glucose/ours"` → `"glucose"`).
    #[must_use]
    pub fn family(&self) -> &str {
        family_of(&self.entry)
    }
}

fn family_of(entry: &CatalogEntry) -> &str {
    let id = entry.id();
    id.split('/').next().unwrap_or(id)
}

/// How a job outcome counts toward its family's breaker. `Some(true)`
/// is a success, `Some(false)` a breaker-relevant failure, `None`
/// neutral. Calibration errors, panics, deadline kills, and
/// non-finite quarantines indicate a sick family; exhausted-retry
/// transients and budget rejections say nothing about its chemistry,
/// so they move no breaker state.
fn breaker_verdict(result: &JobResult) -> Option<bool> {
    use bios_runtime::JobError;
    match &result.outcome {
        Ok(_) => Some(true),
        Err(JobError::Transient { .. } | JobError::Budget { .. }) => None,
        Err(
            JobError::Calibration(_)
            | JobError::Panicked(_)
            | JobError::Deadline
            | JobError::NonFinite,
        ) => Some(false),
    }
}

/// Why the gateway refused a request. Every rejection is explicit and
/// counted; nothing is silently dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rejected {
    /// The bounded intake queue was full at arrival.
    QueueFull,
    /// The tenant's token bucket was empty at arrival.
    RateLimited,
    /// The sensor family's circuit breaker was open (or its half-open
    /// probe quota was in use).
    BreakerOpen,
    /// The remaining deadline budget at dispatch could not cover even
    /// a degraded run.
    DeadlineShed,
}

impl Rejected {
    /// Stable lowercase label for digests and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Rejected::QueueFull => "queue-full",
            Rejected::RateLimited => "rate-limited",
            Rejected::BreakerOpen => "breaker-open",
            Rejected::DeadlineShed => "deadline-shed",
        }
    }
}

impl fmt::Display for Rejected {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// What the gateway ultimately did with one request.
#[derive(Debug, Clone)]
pub enum Disposition {
    /// The request ran on the runtime.
    Executed {
        /// Full or browned-out resolution.
        quality: Quality,
        /// Tick the job left the queue for a worker.
        dispatched_tick: u64,
        /// Tick the job's logical service time elapsed.
        done_tick: u64,
        /// The runtime's result for the job.
        result: JobResult,
    },
    /// The request was refused; the payload says where.
    Rejected(Rejected),
}

/// One request's journey through the gateway.
#[derive(Debug, Clone)]
pub struct RequestOutcome {
    /// The caller-chosen request id.
    pub id: u64,
    /// The tenant the request billed against.
    pub tenant: String,
    /// Catalog id of the requested sensor.
    pub sensor: String,
    /// Noise seed of the requested run.
    pub seed: u64,
    /// Tick the request arrived.
    pub arrival_tick: u64,
    /// Scheduling class the request carried.
    pub priority: Priority,
    /// What happened to it.
    pub disposition: Disposition,
}

impl RequestOutcome {
    /// Whether the request executed (at any quality).
    #[must_use]
    pub fn executed(&self) -> bool {
        matches!(self.disposition, Disposition::Executed { .. })
    }

    /// The outcome's line in the canonical gateway digest (no trailing
    /// newline). Wall-clock fields never appear, so the digest is
    /// byte-identical at any worker count. Routine lines are unchanged
    /// from earlier schema versions; recalibration-class lines insert
    /// a ` recal` tag after the tenant.
    #[must_use]
    pub fn digest_line(&self) -> String {
        let tag = match self.priority {
            Priority::Routine => "",
            Priority::Recalibration => " recal",
        };
        match &self.disposition {
            Disposition::Executed {
                quality,
                dispatched_tick,
                done_tick,
                result,
            } => format!(
                "req {:04} {}{} t{}->{}->{} {} {}",
                self.id,
                self.tenant,
                tag,
                self.arrival_tick,
                dispatched_tick,
                done_tick,
                quality.label(),
                result.digest_line()
            ),
            Disposition::Rejected(r) => format!(
                "req {:04} {}{} t{} rejected {} {} seed={}",
                self.id, self.tenant, tag, self.arrival_tick, r, self.sensor, self.seed
            ),
        }
    }
}

/// The six overload counters, mirrored into the runtime's
/// [`bios_runtime::MetricsSnapshot`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GatewayCounters {
    /// Requests rejected because the intake queue was full.
    pub admission_rejected: u64,
    /// Requests rejected by a tenant's token bucket.
    pub rate_limited: u64,
    /// Closed→Open and HalfOpen→Open breaker transitions.
    pub breaker_trips: u64,
    /// Requests admitted as half-open recovery probes.
    pub breaker_half_open_probes: u64,
    /// Requests executed at degraded resolution.
    pub browned_out: u64,
    /// Requests shed at dispatch for an exhausted deadline budget.
    pub deadline_shed: u64,
}

impl GatewayCounters {
    /// Total requests refused outright: queue overflow, rate limiting,
    /// and deadline sheds. Breaker rejections are per-request outcomes
    /// (`breaker_trips` counts state transitions, not refusals), and
    /// brownouts still execute.
    #[must_use]
    pub fn total_rejected(&self) -> u64 {
        self.admission_rejected + self.rate_limited + self.deadline_shed
    }
}

impl fmt::Display for GatewayCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "admission_rejected={} rate_limited={} breaker_trips={} breaker_half_open_probes={} browned_out={} deadline_shed={}",
            self.admission_rejected,
            self.rate_limited,
            self.breaker_trips,
            self.breaker_half_open_probes,
            self.browned_out,
            self.deadline_shed
        )
    }
}

/// Everything one gateway run produced.
#[derive(Debug, Clone)]
pub struct GatewayReport {
    /// Per-request outcomes, in the caller's request order.
    pub outcomes: Vec<RequestOutcome>,
    /// Logical tick the last in-flight job completed.
    pub drained_tick: u64,
    /// The overload counters for this run.
    pub counters: GatewayCounters,
}

impl GatewayReport {
    /// The canonical run digest: one [`RequestOutcome::digest_line`]
    /// per request in request order, then the counters. Contains no
    /// wall-clock fields, so equal configurations produce byte-equal
    /// digests at any worker count.
    #[must_use]
    pub fn digest(&self) -> String {
        let mut out = String::new();
        for o in &self.outcomes {
            out.push_str(&o.digest_line());
            out.push('\n');
        }
        out.push_str(&format!(
            "drained_tick={} {}\n",
            self.drained_tick, self.counters
        ));
        out
    }

    /// Whether every request reached a terminal outcome — executed or
    /// explicitly rejected — with nothing lost in the queue.
    #[must_use]
    pub fn clean_drain(&self) -> bool {
        let executed = self.outcomes.iter().filter(|o| o.executed()).count() as u64;
        let rejected = self.counters.admission_rejected
            + self.counters.rate_limited
            + self.counters.deadline_shed
            + self
                .outcomes
                .iter()
                .filter(|o| matches!(o.disposition, Disposition::Rejected(Rejected::BreakerOpen)))
                .count() as u64;
        executed + rejected == self.outcomes.len() as u64
    }

    /// Ids of requests that executed (any quality), in request order.
    #[must_use]
    pub fn executed_ids(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| o.executed())
            .map(|o| o.id)
            .collect()
    }

    /// Ids of requests rejected with the given reason, in request
    /// order.
    #[must_use]
    pub fn rejected_ids(&self, reason: Rejected) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| matches!(o.disposition, Disposition::Rejected(r) if r == reason))
            .map(|o| o.id)
            .collect()
    }

    /// Ids of requests that executed at degraded quality, in request
    /// order.
    #[must_use]
    pub fn browned_out_ids(&self) -> Vec<u64> {
        self.outcomes
            .iter()
            .filter(|o| {
                matches!(
                    o.disposition,
                    Disposition::Executed {
                        quality: Quality::Degraded,
                        ..
                    }
                )
            })
            .map(|o| o.id)
            .collect()
    }
}

/// Gateway construction options. All time-like fields are logical
/// ticks except [`GatewayConfig::tick_wall`], which maps ticks onto
/// the runtime watchdog's wall-clock deadline as an execution safety
/// net — it is never an input to any admission decision.
#[derive(Debug, Clone, PartialEq)]
pub struct GatewayConfig {
    /// Bounded intake queue capacity; arrivals past it are rejected
    /// with [`Rejected::QueueFull`].
    pub queue_capacity: usize,
    /// Jobs the gateway dispatches concurrently per tick.
    pub service_slots: usize,
    /// Workload units ([`CatalogEntry::calibration_workload`] samples)
    /// one logical tick of service represents.
    pub work_units_per_tick: u64,
    /// Deadline budget assigned by [`Gateway::trace_from_plan`] when
    /// the caller does not choose one.
    pub default_deadline_ticks: u64,
    /// Per-tenant token-bucket capacity in millitokens
    /// ([`TokenBucket::WHOLE_TOKEN`] per request).
    pub bucket_capacity_milli: u64,
    /// Per-tenant refill rate in millitokens per tick.
    pub bucket_refill_milli_per_tick: u64,
    /// Per-sensor-family circuit-breaker tuning.
    pub breaker: BreakerConfig,
    /// Brownout watermark and resolution cut.
    pub degradation: DegradationPolicy,
    /// Wall-clock length of one logical tick for the runtime watchdog
    /// handoff. [`Duration::ZERO`] (the default) leaves the watchdog
    /// alone.
    pub tick_wall: Duration,
}

impl Default for GatewayConfig {
    /// A queue of 32, four service slots, 256 work units per tick
    /// (one full-resolution amperometric calibration ≈ 4 ticks), a
    /// 64-tick default deadline, buckets of 8 tokens refilling 2 per
    /// tick, and default breaker/brownout tuning.
    fn default() -> GatewayConfig {
        GatewayConfig {
            queue_capacity: 32,
            service_slots: 4,
            work_units_per_tick: 256,
            default_deadline_ticks: 64,
            bucket_capacity_milli: 8 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 2 * TokenBucket::WHOLE_TOKEN,
            breaker: BreakerConfig::default(),
            degradation: DegradationPolicy::default(),
            tick_wall: Duration::ZERO,
        }
    }
}

impl GatewayConfig {
    /// Defaults overridden from the environment:
    ///
    /// * `BIOS_GATEWAY_QPS` — whole tokens refilled per tick, > 0.
    /// * `BIOS_BREAKER_THRESHOLD` — consecutive failures to trip, > 0.
    ///
    /// Malformed values produce one deterministic warning line on
    /// stderr (via [`bios_runtime::parse_env_value`]) and keep the
    /// default, same as [`bios_runtime::RuntimeConfig::from_env`].
    #[must_use]
    pub fn from_env() -> GatewayConfig {
        let mut config = GatewayConfig::default();
        if let Ok(raw) = std::env::var("BIOS_GATEWAY_QPS") {
            if let Some(qps) =
                bios_runtime::parse_env_value::<u64>("BIOS_GATEWAY_QPS", &raw, "a positive integer")
                    .filter(|&q| q > 0)
            {
                config.bucket_refill_milli_per_tick = qps.saturating_mul(TokenBucket::WHOLE_TOKEN);
                config.bucket_capacity_milli = config
                    .bucket_capacity_milli
                    .max(config.bucket_refill_milli_per_tick);
            }
        }
        if let Ok(raw) = std::env::var("BIOS_BREAKER_THRESHOLD") {
            if let Some(t) = bios_runtime::parse_env_value::<u32>(
                "BIOS_BREAKER_THRESHOLD",
                &raw,
                "a positive integer",
            )
            .filter(|&t| t > 0)
            {
                config.breaker.trip_after = t;
            }
        }
        config
    }
}

/// The overload-robust front door. Owns a [`Runtime`] and feeds it
/// per-tick batches of admitted work.
#[derive(Debug)]
pub struct Gateway {
    config: GatewayConfig,
    runtime: Runtime,
}

impl Gateway {
    /// A gateway in front of `runtime`. When
    /// [`GatewayConfig::tick_wall`] is non-zero the runtime's watchdog
    /// deadline is derived from it (ticks × wall-per-tick ×
    /// default deadline) purely as a hang safety net.
    #[must_use]
    pub fn new(config: GatewayConfig, runtime: Runtime) -> Gateway {
        Gateway { config, runtime }
    }

    /// The configuration the gateway was built with.
    #[must_use]
    pub fn config(&self) -> &GatewayConfig {
        &self.config
    }

    /// The runtime this gateway feeds. Streaming callers use this for
    /// work that deliberately bypasses admission (e.g. the bootstrap
    /// calibration fleet in `bios-stream`).
    #[must_use]
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Opens an incremental admission session: requests are offered
    /// tick by tick ([`GatewaySession::offer`]) instead of as one
    /// pre-assembled trace, and outcomes surface as their ticks pass
    /// ([`GatewaySession::advance_to`]). [`Gateway::run`] is this
    /// session driven to completion over a full trace.
    #[must_use]
    pub fn session(&self) -> GatewaySession<'_> {
        GatewaySession::new(self)
    }

    /// A snapshot of the owned runtime's metrics, including the six
    /// gateway overload counters this gateway has recorded into it.
    #[must_use]
    pub fn metrics(&self) -> bios_runtime::MetricsSnapshot {
        self.runtime.metrics_handle().snapshot()
    }

    /// Logical service ticks for `workload` sample units, always ≥ 1.
    #[must_use]
    pub fn service_ticks(&self, workload: u64) -> u64 {
        workload
            .div_ceil(self.config.work_units_per_tick.max(1))
            .max(1)
    }

    /// Runs a trace of requests to completion and reports every
    /// outcome. The trace need not be sorted; arrivals are processed
    /// in (arrival tick, trace order) order. This is a
    /// [`GatewaySession`] offered the whole trace up front and driven
    /// until every request is terminal.
    #[must_use]
    pub fn run(&self, requests: &[Request]) -> GatewayReport {
        let mut session = self.session();
        for req in requests {
            session.offer(req.clone());
        }
        session.finish()
    }

    /// Builds an arrival trace from a fault plan: one request per
    /// (entry, seed) pair, arrival ticks drawn from
    /// [`bios_faults::FaultPlan::arrival_ticks`] so a
    /// [`bios_faults::FaultKind::TrafficBurst`] spec compresses the
    /// trace into bursts.
    #[must_use]
    pub fn trace_from_plan(
        &self,
        plan: &bios_faults::FaultPlan,
        pairs: &[(CatalogEntry, u64)],
        tenant: &str,
        base_interval_ticks: u64,
    ) -> Vec<Request> {
        let ticks = plan.arrival_ticks(pairs.len(), base_interval_ticks);
        pairs
            .iter()
            .zip(ticks)
            .enumerate()
            .map(|(i, ((entry, seed), arrival))| {
                Request::new(
                    i as u64,
                    tenant,
                    entry.clone(),
                    *seed,
                    arrival,
                    self.config.default_deadline_ticks,
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bios_core::catalog::{our_glucose_sensor, our_lactate_sensor};
    use bios_runtime::RuntimeConfig;

    fn runtime() -> Runtime {
        Runtime::new(RuntimeConfig {
            workers: 1,
            ..RuntimeConfig::default()
        })
    }

    #[test]
    fn a_gentle_trickle_all_executes_at_full_quality() {
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let reqs: Vec<Request> = (0..4)
            .map(|i| Request::new(i, "icu", our_glucose_sensor(), i, i * 8, 64))
            .collect();
        let report = gw.run(&reqs);
        assert!(report.clean_drain());
        assert_eq!(report.executed_ids(), vec![0, 1, 2, 3]);
        assert!(report.browned_out_ids().is_empty());
        assert_eq!(report.counters, GatewayCounters::default());
    }

    #[test]
    fn a_burst_past_the_bucket_is_rate_limited() {
        let config = GatewayConfig {
            bucket_capacity_milli: 2 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 0,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        let reqs: Vec<Request> = (0..5)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), i, 0, 64))
            .collect();
        let report = gw.run(&reqs);
        assert_eq!(report.executed_ids(), vec![0, 1]);
        assert_eq!(report.rejected_ids(Rejected::RateLimited), vec![2, 3, 4]);
        assert_eq!(report.counters.rate_limited, 3);
        assert!(report.clean_drain());
    }

    #[test]
    fn a_full_queue_rejects_explicitly() {
        let config = GatewayConfig {
            queue_capacity: 2,
            service_slots: 1,
            bucket_capacity_milli: 100 * TokenBucket::WHOLE_TOKEN,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        // All at tick 0: slot takes one, queue holds two, rest bounce.
        let reqs: Vec<Request> = (0..6)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), i, 0, 640))
            .collect();
        let report = gw.run(&reqs);
        assert!(report.counters.admission_rejected >= 1);
        assert!(!report.rejected_ids(Rejected::QueueFull).is_empty());
        assert!(report.clean_drain());
    }

    #[test]
    fn hopeless_deadlines_are_shed_before_burning_a_worker() {
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        // Deadline of 1 tick cannot cover even a degraded glucose run
        // (≈ 2 ticks at 256 units/tick).
        let reqs = vec![Request::new(7, "er", our_glucose_sensor(), 1, 0, 1)];
        let report = gw.run(&reqs);
        assert_eq!(report.rejected_ids(Rejected::DeadlineShed), vec![7]);
        assert_eq!(report.counters.deadline_shed, 1);
        assert!(report.clean_drain());
    }

    #[test]
    fn families_are_isolated_by_their_breakers() {
        // Two sweep points are below the linear-range detector's
        // three-standard minimum, so every run of this entry fails
        // with a deterministic calibration error.
        let bad = our_lactate_sensor().with_sweep_points(2);
        let config = GatewayConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ticks: 1000,
                probe_quota: 1,
            },
            bucket_capacity_milli: 100 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 100 * TokenBucket::WHOLE_TOKEN,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        let mut reqs: Vec<Request> = (0..4)
            .map(|i| Request::new(i, "lab", bad.clone(), i, i * 4, 64))
            .collect();
        reqs.extend((4..8).map(|i| Request::new(i, "lab", our_glucose_sensor(), i, 64 + i, 64)));
        let report = gw.run(&reqs);
        assert!(report.counters.breaker_trips >= 1, "lactate family trips");
        assert!(
            !report.rejected_ids(Rejected::BreakerOpen).is_empty(),
            "later lactate requests bounce off the open breaker"
        );
        assert_eq!(
            report.executed_ids().iter().filter(|&&i| i >= 4).count(),
            4,
            "the glucose family sails through untouched"
        );
    }

    #[test]
    fn digest_is_identical_across_worker_counts() {
        let reqs: Vec<Request> = (0..12)
            .map(|i| {
                Request::new(
                    i,
                    if i % 2 == 0 { "a" } else { "b" },
                    our_glucose_sensor(),
                    i,
                    i / 3,
                    64,
                )
            })
            .collect();
        let digests: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let rt = Runtime::new(RuntimeConfig {
                    workers: w,
                    ..RuntimeConfig::default()
                });
                Gateway::new(GatewayConfig::default(), rt)
                    .run(&reqs)
                    .digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
    }

    #[test]
    fn counters_mirror_into_the_runtime_metrics_snapshot() {
        let rt = runtime();
        let config = GatewayConfig {
            bucket_capacity_milli: TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 0,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, rt);
        let reqs: Vec<Request> = (0..3)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), 0, 0, 64))
            .collect();
        let report = gw.run(&reqs);
        assert_eq!(report.counters.rate_limited, 2);
        let snap = gw.metrics();
        assert_eq!(snap.rate_limited, 2, "counters mirror runtime-side");
        assert_eq!(snap.admission_rejected, 0);
    }

    #[test]
    fn from_env_reads_gateway_knobs_with_warnings() {
        // Env-var tests share a process; mutate distinct vars only.
        std::env::set_var("BIOS_GATEWAY_QPS", "5");
        std::env::set_var("BIOS_BREAKER_THRESHOLD", "9");
        let c = GatewayConfig::from_env();
        assert_eq!(c.bucket_refill_milli_per_tick, 5 * TokenBucket::WHOLE_TOKEN);
        assert_eq!(c.breaker.trip_after, 9);
        std::env::set_var("BIOS_GATEWAY_QPS", "fast");
        std::env::set_var("BIOS_BREAKER_THRESHOLD", "0");
        let d = GatewayConfig::from_env();
        assert_eq!(
            d.bucket_refill_milli_per_tick,
            GatewayConfig::default().bucket_refill_milli_per_tick,
            "malformed qps keeps the default"
        );
        assert_eq!(
            d.breaker.trip_after,
            GatewayConfig::default().breaker.trip_after,
            "zero threshold keeps the default"
        );
        std::env::remove_var("BIOS_GATEWAY_QPS");
        std::env::remove_var("BIOS_BREAKER_THRESHOLD");
    }

    #[test]
    fn a_recalibration_is_never_browned_out_under_pressure() {
        // One service slot and a long queue: enough routine work piles
        // up at tick 0 that the brownout watermark is well past
        // triggered when the recal request reaches dispatch. Routine
        // requests degrade; the recalibration must run at full quality.
        let config = GatewayConfig {
            queue_capacity: 12,
            service_slots: 1,
            bucket_capacity_milli: 100 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 100 * TokenBucket::WHOLE_TOKEN,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        let mut reqs: Vec<Request> = (0..10)
            .map(|i| Request::new(i, "ward", our_glucose_sensor(), i, 0, 640))
            .collect();
        reqs.push(
            Request::new(99, "ward", our_glucose_sensor(), 99, 0, 640)
                .with_priority(Priority::Recalibration),
        );
        let report = gw.run(&reqs);
        assert!(report.clean_drain());
        assert!(
            report.counters.browned_out >= 1,
            "routine work must brown out under this pressure: {}",
            report.counters
        );
        assert!(
            !report.browned_out_ids().contains(&99),
            "the recalibration must not be degraded"
        );
        let recal = report.outcomes.iter().find(|o| o.id == 99).unwrap();
        assert!(
            matches!(
                recal.disposition,
                Disposition::Executed {
                    quality: Quality::Full,
                    ..
                }
            ),
            "recal outcome: {}",
            recal.digest_line()
        );
        // Head-of-line dispatch: despite being offered last, the recal
        // is the first request to leave the queue.
        let Disposition::Executed {
            dispatched_tick, ..
        } = recal.disposition
        else {
            unreachable!()
        };
        assert_eq!(dispatched_tick, 0, "recal dispatches in its arrival tick");
        assert!(recal.digest_line().contains(" recal "), "digest is tagged");
    }

    #[test]
    fn recalibrations_bypass_the_rate_limit_but_not_the_queue() {
        let config = GatewayConfig {
            bucket_capacity_milli: TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 0,
            ..GatewayConfig::default()
        };
        let gw = Gateway::new(config, runtime());
        let reqs = vec![
            Request::new(0, "ward", our_glucose_sensor(), 0, 0, 64),
            Request::new(1, "ward", our_glucose_sensor(), 1, 0, 64),
            Request::new(2, "ward", our_glucose_sensor(), 2, 0, 64)
                .with_priority(Priority::Recalibration),
        ];
        let report = gw.run(&reqs);
        // The bucket holds one token: request 1 is rate limited, but
        // the recalibration never draws from the bucket at all.
        assert_eq!(report.rejected_ids(Rejected::RateLimited), vec![1]);
        assert_eq!(report.executed_ids(), vec![0, 2]);
        assert!(report.clean_drain());
    }

    #[test]
    fn digest_with_recalibrations_is_identical_across_worker_counts() {
        let mut reqs: Vec<Request> = (0..9)
            .map(|i| {
                Request::new(
                    i,
                    if i % 2 == 0 { "a" } else { "b" },
                    our_glucose_sensor(),
                    i,
                    i / 3,
                    64,
                )
            })
            .collect();
        reqs.push(
            Request::new(50, "a", our_glucose_sensor(), 50, 1, 64)
                .with_priority(Priority::Recalibration),
        );
        let digests: Vec<String> = [1usize, 2, 8]
            .iter()
            .map(|&w| {
                let rt = Runtime::new(RuntimeConfig {
                    workers: w,
                    ..RuntimeConfig::default()
                });
                Gateway::new(GatewayConfig::default(), rt)
                    .run(&reqs)
                    .digest()
            })
            .collect();
        assert_eq!(digests[0], digests[1]);
        assert_eq!(digests[1], digests[2]);
        assert!(digests[0].contains(" recal "));
    }

    #[test]
    fn a_session_advanced_incrementally_matches_the_batch_digest() {
        let reqs: Vec<Request> = (0..8)
            .map(|i| Request::new(i, "icu", our_glucose_sensor(), i, i * 2, 64))
            .collect();
        let batch = Gateway::new(GatewayConfig::default(), runtime()).run(&reqs);
        // Same trace, offered tick by tick against a live session.
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let mut session = gw.session();
        let mut terminal = 0usize;
        for tick in 0..=14 {
            for req in reqs.iter().filter(|r| r.arrival_tick == tick) {
                session.offer(req.clone());
            }
            terminal += session.advance_to(tick).len();
        }
        assert_eq!(session.offered(), reqs.len());
        let report = session.finish();
        assert_eq!(report.digest(), batch.digest());
        assert!(terminal <= reqs.len());
    }

    #[test]
    fn offers_after_a_full_drain_clamp_forward_and_match_the_batch() {
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let mut session = gw.session();
        session.offer(Request::new(0, "icu", our_glucose_sensor(), 1, 0, 64));
        // Drain everything the session has been offered so far.
        while let Some(t) = session.next_event_tick() {
            let _ = session.advance_to(t);
        }
        assert_eq!(session.open(), 0, "the first request must be terminal");
        // A late offer with a stale arrival tick: clamped forward,
        // never landing in the already-processed past.
        session.offer(Request::new(1, "icu", our_glucose_sensor(), 2, 0, 64));
        let report = session.finish();
        let clamped = report.outcomes[1].arrival_tick;
        assert!(clamped > 0, "arrival must clamp past processed ticks");
        // The batch path, handed the *effective* trace, agrees byte
        // for byte.
        let batch = Gateway::new(GatewayConfig::default(), runtime()).run(&[
            Request::new(0, "icu", our_glucose_sensor(), 1, 0, 64),
            Request::new(1, "icu", our_glucose_sensor(), 2, clamped, 64),
        ]);
        assert_eq!(report.digest(), batch.digest());
    }

    #[test]
    fn a_zero_tenant_trace_matches_the_empty_batch() {
        let batch = Gateway::new(GatewayConfig::default(), runtime()).run(&[]);
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let session = gw.session();
        assert_eq!(session.next_event_tick(), None);
        let report = session.finish();
        assert_eq!(report.digest(), batch.digest());
        assert_eq!(report.drained_tick, 0);
        assert_eq!(report.counters, GatewayCounters::default());
    }

    #[test]
    fn a_breaker_opening_mid_session_matches_the_batch_digest() {
        // Two sweep points fail deterministically (below the detector's
        // three-standard minimum), so the lactate family's breaker
        // opens while later offers are still arriving.
        let bad = our_lactate_sensor().with_sweep_points(2);
        let config = GatewayConfig {
            breaker: BreakerConfig {
                trip_after: 2,
                cooldown_ticks: 1000,
                probe_quota: 1,
            },
            bucket_capacity_milli: 100 * TokenBucket::WHOLE_TOKEN,
            bucket_refill_milli_per_tick: 100 * TokenBucket::WHOLE_TOKEN,
            ..GatewayConfig::default()
        };
        let mut reqs: Vec<Request> = (0..4)
            .map(|i| Request::new(i, "lab", bad.clone(), i, i * 4, 64))
            .collect();
        reqs.extend((4..8).map(|i| Request::new(i, "lab", our_glucose_sensor(), i, 64 + i, 64)));
        let batch = Gateway::new(config.clone(), runtime()).run(&reqs);
        assert!(batch.counters.breaker_trips >= 1);
        assert!(!batch.rejected_ids(Rejected::BreakerOpen).is_empty());
        // The same trace offered tick by tick against a live session.
        let gw = Gateway::new(config, runtime());
        let mut session = gw.session();
        for tick in 0..=72 {
            for req in reqs.iter().filter(|r| r.arrival_tick == tick) {
                session.offer(req.clone());
            }
            let _ = session.advance_to(tick);
        }
        let report = session.finish();
        assert_eq!(report.digest(), batch.digest());
    }

    #[test]
    fn trace_from_plan_matches_arrival_ticks() {
        use bios_faults::{FaultKind, FaultPlan};
        let plan = FaultPlan::builder("burst", 11)
            .spec(FaultKind::TrafficBurst, 0.5, 1.0)
            .build();
        let gw = Gateway::new(GatewayConfig::default(), runtime());
        let pairs: Vec<(CatalogEntry, u64)> = (0..6).map(|s| (our_glucose_sensor(), s)).collect();
        let trace = gw.trace_from_plan(&plan, &pairs, "ward", 3);
        let expect = plan.arrival_ticks(6, 3);
        assert_eq!(
            trace.iter().map(|r| r.arrival_tick).collect::<Vec<_>>(),
            expect
        );
        assert!(trace.iter().all(|r| r.deadline_ticks == 64));
    }
}
